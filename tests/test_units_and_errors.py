"""Tests for the units helpers and the exception hierarchy."""

import pytest

from repro import errors, units


def test_unit_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024 ** 2
    assert units.GIB == 1024 ** 3
    assert units.MS == pytest.approx(1e-3)
    assert units.US == pytest.approx(1e-6)


def test_conversions_round_trip():
    assert units.gib(2) == 2 * units.GIB
    assert units.mib(3) == 3 * units.MIB
    assert units.kib(5) == 5 * units.KIB
    assert units.bytes_to_gib(units.gib(7)) == pytest.approx(7.0)


def test_fractional_conversions_truncate_to_int():
    assert isinstance(units.gib(0.5), int)
    assert units.gib(0.5) == units.GIB // 2


def test_defaults_are_sane():
    assert units.DEFAULT_PAGE_SIZE == 8 * units.KIB
    assert units.DEFAULT_STRIPE_SIZE == units.MIB
    assert units.DEFAULT_STRIPE_SIZE % units.DEFAULT_PAGE_SIZE == 0


def test_every_error_is_a_repro_error():
    for name in ("LayoutError", "RegularizationError", "CapacityError",
                 "WorkloadError", "CalibrationError", "SimulationError",
                 "SolverError"):
        error_type = getattr(errors, name)
        assert issubclass(error_type, errors.ReproError)


def test_specialized_layout_errors():
    assert issubclass(errors.RegularizationError, errors.LayoutError)
    assert issubclass(errors.CapacityError, errors.LayoutError)


def test_catching_the_base_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.CalibrationError("x")


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__