"""Tests for utilization estimation (Eq. 1 / Figure 6)."""

import numpy as np
import pytest

from repro import units
from repro.models.target_model import (
    TargetModel,
    estimate_utilization_matrix,
    estimate_utilizations,
    workload_arrays,
)
from repro.workload.spec import ObjectWorkload


class FlatModel:
    """Cost model returning a constant (for hand-checkable µ values)."""

    def __init__(self, cost):
        self.cost = cost

    def lookup(self, sizes, run_counts, chis):
        sizes = np.asarray(sizes, dtype=float)
        return np.full(sizes.shape, self.cost)


def _flat_target(name, read_cost=0.001, write_cost=0.002):
    return TargetModel(name, FlatModel(read_cost), FlatModel(write_cost))


def test_workload_arrays_shapes():
    workloads = [
        ObjectWorkload("a", read_rate=10, overlap={"b": 0.5}),
        ObjectWorkload("b", write_rate=5),
    ]
    arrays = workload_arrays(workloads)
    assert arrays["read_rate"].tolist() == [10, 0]
    assert arrays["write_rate"].tolist() == [0, 5]
    assert arrays["overlap"].shape == (2, 2)
    assert arrays["overlap"][0, 1] == 0.5


def test_utilization_is_rate_times_cost():
    """µ_ij = λR·CostR + λW·CostW, scaled by the layout fraction."""
    workloads = [ObjectWorkload("a", read_rate=100, write_rate=50)]
    layout = np.array([[1.0]])
    mu = estimate_utilization_matrix(workloads, layout, [_flat_target("t")])
    assert mu[0, 0] == pytest.approx(100 * 0.001 + 50 * 0.002)


def test_fraction_scales_utilization():
    workloads = [ObjectWorkload("a", read_rate=100)]
    layout = np.array([[0.25, 0.75]])
    mu = estimate_utilization_matrix(
        workloads, layout, [_flat_target("t0"), _flat_target("t1")]
    )
    assert mu[0, 0] == pytest.approx(0.25 * 100 * 0.001)
    assert mu[0, 1] == pytest.approx(0.75 * 100 * 0.001)


def test_target_utilizations_are_column_sums():
    workloads = [
        ObjectWorkload("a", read_rate=100),
        ObjectWorkload("b", read_rate=200),
    ]
    layout = np.array([[1.0, 0.0], [0.5, 0.5]])
    mu_j = estimate_utilizations(
        workloads, layout, [_flat_target("t0"), _flat_target("t1")]
    )
    assert mu_j[0] == pytest.approx((100 + 100) * 0.001)
    assert mu_j[1] == pytest.approx(100 * 0.001)


def test_different_models_per_target():
    workloads = [ObjectWorkload("a", read_rate=100)]
    layout = np.array([[0.5, 0.5]])
    slow = _flat_target("slow", read_cost=0.010)
    fast = _flat_target("fast", read_cost=0.001)
    mu = estimate_utilization_matrix(workloads, layout, [slow, fast])
    assert mu[0, 0] == pytest.approx(10 * mu[0, 1])


def test_model_count_mismatch_rejected():
    workloads = [ObjectWorkload("a", read_rate=1)]
    with pytest.raises(ValueError):
        estimate_utilization_matrix(workloads, np.array([[1.0, 0.0]]),
                                    [_flat_target("t")])


def test_request_cost_dispatches_by_kind():
    target = _flat_target("t", read_cost=0.003, write_cost=0.007)
    assert float(target.request_cost("read", 8192, 1, 0)) == 0.003
    assert float(target.request_cost("write", 8192, 1, 0)) == 0.007


def test_contention_raises_utilization_with_real_model():
    """With a contention-sensitive model, co-locating overlapping

    objects must cost more than separating them."""
    from repro.models.analytic import analytic_disk_target_model

    workloads = [
        ObjectWorkload("a", read_rate=100, run_count=64, overlap={"b": 1.0}),
        ObjectWorkload("b", read_rate=100, run_count=64, overlap={"a": 1.0}),
    ]
    models = [analytic_disk_target_model("t0"),
              analytic_disk_target_model("t1")]
    together = estimate_utilizations(
        workloads, np.array([[1.0, 0.0], [1.0, 0.0]]), models
    )
    apart = estimate_utilizations(
        workloads, np.array([[1.0, 0.0], [0.0, 1.0]]), models
    )
    assert together[0] > apart.max() * 1.5
