"""Tests for the closed-form analytic cost models."""

import numpy as np
import pytest

from repro import units
from repro.models.analytic import (
    AnalyticDiskCostModel,
    AnalyticSsdCostModel,
    analytic_disk_target_model,
    analytic_ssd_target_model,
)


def test_sequential_discount_uncontended():
    model = AnalyticDiskCostModel()
    random_cost = float(model.lookup(8192, 1, 0))
    sequential = float(model.lookup(8192, 64, 0))
    assert sequential < random_cost / 5


def test_sequential_collapse_past_depth():
    model = AnalyticDiskCostModel()
    preserved = float(model.lookup(8192, 64, 0.5))
    collapsed = float(model.lookup(8192, 64, 6.0))
    assert collapsed > 3 * preserved


def test_random_declines_with_contention():
    model = AnalyticDiskCostModel()
    assert float(model.lookup(8192, 1, 8)) < float(model.lookup(8192, 1, 0))


def test_raid_members_divide_cost():
    one = AnalyticDiskCostModel(n_members=1)
    three = AnalyticDiskCostModel(n_members=3)
    assert float(three.lookup(8192, 1, 0)) == pytest.approx(
        float(one.lookup(8192, 1, 0)) / 3
    )


def test_disk_write_positioning_penalty():
    read = AnalyticDiskCostModel(kind="read")
    write = AnalyticDiskCostModel(kind="write")
    assert float(write.lookup(8192, 1, 0)) > float(read.lookup(8192, 1, 0))


def test_ssd_flat_in_run_count_and_contention():
    model = AnalyticSsdCostModel()
    base = float(model.lookup(8192, 1, 0))
    assert float(model.lookup(8192, 64, 0)) == pytest.approx(base)
    assert float(model.lookup(8192, 1, 16)) == pytest.approx(base)


def test_ssd_write_premium():
    read = AnalyticSsdCostModel(kind="read")
    write = AnalyticSsdCostModel(kind="write")
    assert float(write.lookup(8192, 1, 0)) > float(read.lookup(8192, 1, 0))


def test_ssd_random_much_cheaper_than_disk_random():
    ssd = AnalyticSsdCostModel()
    disk = AnalyticDiskCostModel()
    assert float(ssd.lookup(8192, 1, 0)) < float(disk.lookup(8192, 1, 0)) / 10


def test_broadcasting_shapes():
    model = AnalyticDiskCostModel()
    result = model.lookup(np.full(5, 8192.0), np.arange(1, 6), 0.0)
    assert result.shape == (5,)


def test_factory_helpers_build_target_models():
    disk = analytic_disk_target_model("d")
    ssd = analytic_ssd_target_model("s")
    assert disk.name == "d"
    assert ssd.name == "s"
    assert float(disk.request_cost("read", 8192, 1, 0)) > 0
    assert float(ssd.request_cost("write", 8192, 1, 0)) > 0


def test_no_overflow_at_extreme_contention():
    model = AnalyticDiskCostModel()
    value = float(model.lookup(8192, 64, 1e6))
    assert np.isfinite(value)
