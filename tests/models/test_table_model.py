"""Tests for the tabulated interpolating cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CalibrationError
from repro.models.table_model import TableCostModel


@pytest.fixture
def model():
    sizes = [8192.0, 65536.0]
    runs = [1.0, 16.0]
    chis = [0.0, 2.0, 8.0]
    # cost = base + effects, chosen so every axis matters.
    costs = np.zeros((2, 2, 3))
    for i, s in enumerate(sizes):
        for j, q in enumerate(runs):
            for k, c in enumerate(chis):
                costs[i, j, k] = 0.001 * (1 + i) / (1 + j) * (1 + k)
    return TableCostModel(sizes, runs, chis, costs)


def test_exact_grid_points_returned(model):
    assert model.lookup(8192, 1, 0.0) == pytest.approx(0.001)
    assert model.lookup(65536, 16, 8.0) == pytest.approx(0.001 * 2 / 2 * 3)


def test_interpolation_between_contention_points(model):
    low = float(model.lookup(8192, 1, 0.0))
    high = float(model.lookup(8192, 1, 2.0))
    mid = float(model.lookup(8192, 1, 1.0))
    assert low < mid < high


def test_clamping_outside_grid(model):
    assert model.lookup(8192, 1, 100.0) == model.lookup(8192, 1, 8.0)
    assert model.lookup(8192, 1, -5.0) == model.lookup(8192, 1, 0.0)
    assert model.lookup(1024, 1, 0.0) == model.lookup(8192, 1, 0.0)
    assert model.lookup(8192, 500, 0.0) == model.lookup(8192, 16, 0.0)


def test_vectorized_lookup_broadcasts(model):
    sizes = np.array([8192.0, 65536.0])
    result = model.lookup(sizes, 1.0, 0.0)
    assert result.shape == (2,)
    assert result[0] != result[1]


def test_lookup_matches_scalar_loop(model, rng):
    sizes = rng.uniform(4096, 131072, 20)
    runs = rng.uniform(1, 32, 20)
    chis = rng.uniform(0, 10, 20)
    vectorized = model.lookup(sizes, runs, chis)
    for i in range(20):
        assert vectorized[i] == pytest.approx(
            float(model.lookup(sizes[i], runs[i], chis[i]))
        )


def test_shape_mismatch_rejected():
    with pytest.raises(CalibrationError):
        TableCostModel([8192], [1], [0.0, 1.0], np.zeros((1, 1, 3)))


def test_negative_costs_rejected():
    with pytest.raises(CalibrationError):
        TableCostModel([8192], [1], [0.0], [[[-1.0]]])


def test_non_monotone_axis_rejected():
    with pytest.raises(CalibrationError):
        TableCostModel([8192, 8192], [1], [0.0], np.zeros((2, 1, 1)))


def test_single_point_axes_work():
    model = TableCostModel([8192], [1], [0.0], [[[0.005]]])
    assert model.lookup(999999, 64, 10) == pytest.approx(0.005)


def test_from_samples_regrids_scattered_chi():
    samples = [
        (8192, 1, 0.0, 0.001),
        (8192, 1, 3.0, 0.004),
        (8192, 1, 9.0, 0.010),
    ]
    model = TableCostModel.from_samples(samples, chi_grid=(0.0, 3.0, 9.0))
    assert model.lookup(8192, 1, 3.0) == pytest.approx(0.004)
    # Between samples: interpolated.
    assert 0.001 < float(model.lookup(8192, 1, 1.5)) < 0.004


def test_from_samples_averages_duplicates():
    samples = [
        (8192, 1, 0.0, 0.002),
        (8192, 1, 0.0, 0.004),
    ]
    model = TableCostModel.from_samples(samples, chi_grid=(0.0,))
    assert model.lookup(8192, 1, 0.0) == pytest.approx(0.003)


def test_from_samples_missing_cell_rejected():
    samples = [(8192, 1, 0.0, 0.001), (65536, 16, 0.0, 0.002)]
    with pytest.raises(CalibrationError):
        TableCostModel.from_samples(samples)


def test_from_samples_empty_rejected():
    with pytest.raises(CalibrationError):
        TableCostModel.from_samples([])


def test_serialization_round_trip(model):
    clone = TableCostModel.from_dict(model.to_dict())
    probe = (10000.0, 4.0, 1.7)
    assert float(clone.lookup(*probe)) == pytest.approx(
        float(model.lookup(*probe))
    )


def test_slice_by_contention_returns_curve(model):
    chis, costs = model.slice_by_contention(8192, 1)
    assert len(chis) == len(costs) == 3
    assert list(costs) == sorted(costs)


@settings(max_examples=80, deadline=None)
@given(
    size=st.floats(1024, 1 << 20),
    run=st.floats(1, 512),
    chi=st.floats(0, 32),
)
def test_lookup_always_within_table_range(size, run, chi):
    """Property: interpolation never extrapolates beyond table values."""
    sizes = [8192.0, 65536.0]
    runs = [1.0, 16.0]
    chis = [0.0, 2.0, 8.0]
    costs = np.fromfunction(
        lambda i, j, k: 0.001 * (1 + i) / (1 + j) * (1 + k), (2, 2, 3)
    )
    model = TableCostModel(sizes, runs, chis, costs)
    value = float(model.lookup(size, run, chi))
    assert model.costs.min() <= value <= model.costs.max()
