"""Tests for the calibration harness (slow-ish: runs small simulations)."""

import pytest

from repro import units
from repro.models.calibration import (
    CalibrationConfig,
    calibrate_device,
    calibrate_target_model,
)
from repro.storage.disk import DiskDrive
from repro.storage.ssd import SolidStateDrive

FAST = CalibrationConfig(
    sizes=(units.kib(8),),
    run_counts=(1, 32),
    competitor_counts=(0, 4),
    n_requests=200,
)


@pytest.fixture(scope="module")
def disk_model():
    capacity = units.gib(0.25)
    return calibrate_device(lambda: DiskDrive("cal", capacity), FAST,
                            kind="read")


def test_sequential_cheaper_than_random_uncontended(disk_model):
    random_cost = float(disk_model.lookup(units.kib(8), 1, 0.0))
    sequential_cost = float(disk_model.lookup(units.kib(8), 32, 0.0))
    assert sequential_cost < random_cost / 5


def test_sequential_collapses_under_contention(disk_model):
    """The Figure 8 collapse: contended sequential approaches random."""
    uncontended = float(disk_model.lookup(units.kib(8), 32, 0.0))
    contended = float(disk_model.lookup(units.kib(8), 32, 4.0))
    random_cost = float(disk_model.lookup(units.kib(8), 1, 0.0))
    assert contended > 5 * uncontended
    assert contended > random_cost / 3


def test_random_cost_declines_with_contention(disk_model):
    """Elevator scheduling: deeper queues shorten seeks."""
    solo = float(disk_model.lookup(units.kib(8), 1, 0.0))
    busy = float(disk_model.lookup(units.kib(8), 1, 4.0))
    assert busy < solo


def test_ssd_flat_across_run_count_and_contention():
    capacity = units.gib(1)
    model = calibrate_device(lambda: SolidStateDrive("s", capacity), FAST,
                             kind="read")
    base = float(model.lookup(units.kib(8), 1, 0.0))
    assert float(model.lookup(units.kib(8), 32, 0.0)) == pytest.approx(
        base, rel=0.5
    )
    assert float(model.lookup(units.kib(8), 1, 4.0)) == pytest.approx(
        base, rel=0.5
    )


def test_calibrate_target_model_builds_both_kinds():
    capacity = units.gib(0.25)
    tiny = CalibrationConfig(
        sizes=(units.kib(8),), run_counts=(1,), competitor_counts=(0,),
        n_requests=100,
    )
    model = calibrate_target_model(lambda: DiskDrive("cal", capacity),
                                   "t0", config=tiny)
    read = float(model.read_model.lookup(units.kib(8), 1, 0))
    write = float(model.write_model.lookup(units.kib(8), 1, 0))
    assert read > 0
    assert write > read  # the write positioning penalty


def test_write_calibration_reflects_penalty():
    capacity = units.gib(0.25)
    tiny = CalibrationConfig(
        sizes=(units.kib(8),), run_counts=(1,), competitor_counts=(0,),
        n_requests=150,
    )
    read = calibrate_device(lambda: DiskDrive("c", capacity), tiny, "read")
    write = calibrate_device(lambda: DiskDrive("c", capacity), tiny, "write")
    assert float(write.lookup(units.kib(8), 1, 0)) > float(
        read.lookup(units.kib(8), 1, 0)
    )
