"""Tests for SEE and the isolation heuristics."""

import pytest

from repro import units
from repro.baselines.heuristics import (
    all_on_target_layout,
    isolate_tables_layout,
    isolate_tables_indexes_layout,
)
from repro.baselines.see import see_layout
from repro.db.schema import Database, DatabaseObject, INDEX, LOG, TABLE, TEMP
from repro.errors import LayoutError


@pytest.fixture
def db():
    return Database("t", [
        DatabaseObject("t1", TABLE, units.mib(100)),
        DatabaseObject("t2", TABLE, units.mib(50)),
        DatabaseObject("i1", INDEX, units.mib(20)),
        DatabaseObject("tmp", TEMP, units.mib(30)),
        DatabaseObject("log", LOG, units.mib(10)),
    ])


def test_see_layout_is_uniform(db):
    layout = see_layout(db.object_names, ["a", "b", "c", "d"])
    assert (layout.matrix == 0.25).all()
    assert layout.is_regular()


def test_isolate_tables(db):
    layout = isolate_tables_layout(db, ["big", "small"], table_target=0)
    assert layout.fraction("t1", "big") == 1.0
    assert layout.fraction("t2", "big") == 1.0
    assert layout.fraction("i1", "big") == 0.0
    assert layout.fraction("i1", "small") == 1.0
    assert layout.is_regular()


def test_isolate_tables_needs_two_targets(db):
    with pytest.raises(LayoutError):
        isolate_tables_layout(db, ["only"])


def test_isolate_tables_and_indexes(db):
    layout = isolate_tables_indexes_layout(db, ["big", "s1", "s2"])
    assert layout.fraction("t1", "big") == 1.0
    assert layout.fraction("i1", "s1") == 1.0
    assert layout.fraction("tmp", "s2") == 1.0
    assert layout.fraction("log", "s2") == 1.0


def test_isolate_tables_and_indexes_needs_three_targets(db):
    with pytest.raises(LayoutError):
        isolate_tables_indexes_layout(db, ["a", "b"])


def test_all_on_target(db):
    layout = all_on_target_layout(db, ["d0", "ssd"], 1)
    assert all(layout.fraction(o, "ssd") == 1.0 for o in db.object_names)


def test_all_on_target_capacity_guard(db):
    with pytest.raises(LayoutError):
        all_on_target_layout(db, ["d0", "ssd"], 1, capacity=units.mib(100))
    # Large enough capacity passes.
    layout = all_on_target_layout(db, ["d0", "ssd"], 1,
                                  capacity=units.gib(1))
    assert layout is not None
