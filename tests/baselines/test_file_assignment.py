"""Tests for the classic file-assignment baselines."""

import pytest

from repro import units
from repro.baselines.file_assignment import (
    greedy_rate_layout,
    round_robin_layout,
)
from repro.db.schema import Database, DatabaseObject, TABLE
from repro.errors import CapacityError
from repro.workload.spec import ObjectWorkload


@pytest.fixture
def db():
    return Database("t", [
        DatabaseObject("hot", TABLE, units.mib(10)),
        DatabaseObject("warm", TABLE, units.mib(10)),
        DatabaseObject("cold", TABLE, units.mib(10)),
    ])


def _workloads():
    return [
        ObjectWorkload("hot", read_rate=100),
        ObjectWorkload("warm", read_rate=60),
        ObjectWorkload("cold", read_rate=10),
    ]


def test_greedy_balances_rates(db):
    layout = greedy_rate_layout(db, _workloads(), ["d0", "d1"])
    # hot -> d0, warm -> d1, cold -> d1 (loads 100 vs 70).
    assert layout.fraction("hot", "d0") == 1.0
    assert layout.fraction("warm", "d1") == 1.0
    assert layout.fraction("cold", "d1") == 1.0


def test_greedy_one_target_per_object(db):
    layout = greedy_rate_layout(db, _workloads(), ["d0", "d1", "d2"])
    for name in db.object_names:
        assert sorted(layout.row(name).tolist())[-1] == 1.0
    assert layout.is_regular()


def test_greedy_respects_capacity(db):
    layout = greedy_rate_layout(
        db, _workloads(), ["small", "big"],
        capacities=[units.mib(10), units.mib(30)],
    )
    sizes = [db[o].size for o in db.object_names]
    layout.check_capacity(sizes, [units.mib(10), units.mib(30)])


def test_greedy_capacity_exhaustion_raises(db):
    with pytest.raises(CapacityError):
        greedy_rate_layout(
            db, _workloads(), ["d0"], capacities=[units.mib(15)]
        )


def test_greedy_handles_missing_workloads(db):
    layout = greedy_rate_layout(db, [], ["d0", "d1"])
    for name in db.object_names:
        assert layout.row(name).sum() == pytest.approx(1.0)


def test_round_robin_deals_in_order(db):
    layout = round_robin_layout(db, ["d0", "d1"])
    assert layout.fraction("hot", "d0") == 1.0
    assert layout.fraction("warm", "d1") == 1.0
    assert layout.fraction("cold", "d0") == 1.0


def test_interference_blindness(db):
    """The defining limitation: two always-co-accessed objects may land

    on the same device because only rates are considered."""
    workloads = [
        ObjectWorkload("hot", read_rate=100, overlap={"warm": 1.0}),
        ObjectWorkload("warm", read_rate=100, overlap={"hot": 1.0}),
        ObjectWorkload("cold", read_rate=99),
    ]
    layout = greedy_rate_layout(db, workloads, ["d0", "d1"])
    # hot -> d0 (load 100), warm -> d1 (100), cold -> d0 or d1...
    # the pair is separated here by accident of rates, so instead check
    # the algorithm never consults overlap: same result when overlaps
    # are erased.
    blind = [
        ObjectWorkload("hot", read_rate=100),
        ObjectWorkload("warm", read_rate=100),
        ObjectWorkload("cold", read_rate=99),
    ]
    a = greedy_rate_layout(db, workloads, ["d0", "d1"])
    b = greedy_rate_layout(db, blind, ["d0", "d1"])
    assert (a.matrix == b.matrix).all()