"""Tests for the AutoAdmin graph-based layout algorithm."""

import pytest

from repro import units
from repro.baselines.autoadmin import (
    AutoAdminAdvisor,
    autoadmin_layout,
    estimated_volumes,
)
from repro.db.profiles import QueryProfile, phase, rand, seq
from repro.db.schema import Database, DatabaseObject, TABLE, TEMP
from repro.db.tpch import tpch_database
from repro.db.workloads import OLAP1_63, OLAP8_63


@pytest.fixture
def db():
    return Database("t", [
        DatabaseObject("A", TABLE, units.mib(100)),
        DatabaseObject("B", TABLE, units.mib(100)),
        DatabaseObject("C", TABLE, units.mib(100)),
        DatabaseObject("D", TEMP, units.mib(50)),
    ])


def test_estimated_volumes_from_profile(db):
    profile = QueryProfile("q", (
        phase(seq("A", 0.5), rand("B", pages=10)),
    ))
    volumes = estimated_volumes(profile, db)
    assert volumes["A"] == pytest.approx(0.5 * units.mib(100) / 8192, abs=1)
    assert volumes["B"] == 10


def test_misestimates_inflate_volumes(db):
    profile = QueryProfile("q18", (phase(seq("D", 0.1, kind="write")),))
    plain = estimated_volumes(profile, db)
    inflated = estimated_volumes(
        profile, db, misestimates={("q18", "D"): 100.0}
    )
    assert inflated["D"] == pytest.approx(plain["D"] * 100, rel=0.01)


def test_coaccessed_objects_separated(db):
    """Step 1 must put heavily co-accessed objects on distinct targets."""
    together = QueryProfile("q", (phase(seq("A"), seq("B")),))
    layout = autoadmin_layout(db, [together] * 5, ["t0", "t1"])
    a_target = layout.row("A").argmax()
    b_target = layout.row("B").argmax()
    assert a_target != b_target


def test_layout_is_regular_and_valid(db):
    profiles = [QueryProfile("q", (phase(seq("A"), seq("B"), seq("C")),))]
    layout = autoadmin_layout(db, profiles, ["t0", "t1", "t2"])
    assert layout.is_regular()
    layout.check_integrity()


def test_unaccessed_objects_still_placed(db):
    profiles = [QueryProfile("q", (phase(seq("A")),))]
    layout = autoadmin_layout(db, profiles, ["t0", "t1"])
    for name in db.object_names:
        assert layout.row(name).sum() == pytest.approx(1.0)


def test_parallelism_step_widens_lonely_objects(db):
    """An object with no co-access partners spreads for parallelism."""
    profiles = [QueryProfile("q", (phase(seq("A")),))]
    layout = autoadmin_layout(db, profiles, ["t0", "t1", "t2"])
    assert (layout.row("A") > 0).sum() >= 2


def test_concurrency_oblivious_by_construction():
    """The paper's criticism: OLAP1-63 and OLAP8-63 contain the same

    statements, so AutoAdmin recommends the identical layout."""
    db = tpch_database(scale=1 / 64)
    targets = ["d0", "d1", "d2", "d3"]
    a = autoadmin_layout(db, OLAP1_63.profiles(), targets)
    b = autoadmin_layout(db, OLAP8_63.profiles(), targets)
    assert (a.matrix == b.matrix).all()


def test_capacity_respected():
    db = Database("t", [
        DatabaseObject("A", TABLE, units.mib(100)),
        DatabaseObject("B", TABLE, units.mib(100)),
    ])
    profiles = [QueryProfile("q", (phase(seq("A"), seq("B")),))]
    layout = autoadmin_layout(
        db, profiles, ["t0", "t1"],
        capacities=[units.mib(120), units.mib(120)],
    )
    sizes = [db[o].size for o in db.object_names]
    layout.check_capacity(sizes, [units.mib(120), units.mib(120)])


def test_tpch_layout_separates_hot_objects():
    """On the real workload, LINEITEM, ORDERS, and I_L_ORDERKEY end up

    mutually separated (paper Figure 20)."""
    db = tpch_database(scale=1 / 64)
    layout = autoadmin_layout(db, OLAP1_63.profiles(), ["d0", "d1", "d2", "d3"])
    hot = ["LINEITEM", "ORDERS", "I_L_ORDERKEY"]
    supports = [frozenset((layout.row(o) > 0).nonzero()[0].tolist())
                for o in hot]
    assert supports[0].isdisjoint(supports[1])
    assert supports[0].isdisjoint(supports[2])
