"""Tests for the simulator metrics collector (live engine and offline)."""

import pytest

from repro import units
from repro.obs.metrics import MetricsRegistry
from repro.obs.sim import SimMetricsCollector
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.request import CompletionRecord, IORequest
from repro.storage.target import StorageTarget


def _request(lba, size=8192, kind="read", stream=1):
    return IORequest(stream_id=stream, kind=kind, lba=lba, size=size)


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def target(engine):
    return StorageTarget(DiskDrive("d0", units.gib(1)), engine=engine)


def test_live_collector_observes_every_completion(engine, target):
    metrics = MetricsRegistry()
    collector = SimMetricsCollector(metrics, targets=[target]).attach(engine)
    for i in range(8):
        target.submit(_request(i * units.mib(1)))
    target.submit(_request(0, kind="write", size=4096))
    engine.run()
    collector.finalize()

    assert collector.observed == 9
    latency = metrics.get("repro_sim_request_latency_seconds", target="d0")
    assert latency.count == 9
    assert latency.sum > 0
    reads = metrics.get("repro_sim_requests_total", target="d0", kind="read")
    writes = metrics.get("repro_sim_requests_total", target="d0",
                         kind="write")
    assert reads.value == 8
    assert writes.value == 1
    assert metrics.get("repro_sim_bytes_total", target="d0",
                       kind="read").value == 8 * 8192
    assert metrics.get("repro_sim_bytes_total", target="d0",
                       kind="write").value == 4096


def test_live_collector_samples_queue_depth(engine, target):
    metrics = MetricsRegistry()
    SimMetricsCollector(metrics, targets=[target]).attach(engine)
    # A burst deep enough that completions still see waiters queued.
    for i in range(16):
        target.submit(_request(i * units.mib(4)))
    engine.run()
    depth = metrics.get("repro_sim_queue_depth", target="d0")
    assert depth.count == 16
    # At least one completion observed a non-empty queue (bucket 0 is
    # the <=0 bound, so a non-zero sample lands above it).
    assert depth.cumulative_counts()[0] < depth.count


def test_finalize_records_busy_time_and_utilization(engine, target):
    metrics = MetricsRegistry()
    collector = SimMetricsCollector(metrics, targets=[target]).attach(engine)
    target.submit(_request(0))
    engine.run()
    collector.finalize()
    busy = metrics.get("repro_sim_busy_seconds", target="d0").value
    util = metrics.get("repro_sim_utilization", target="d0").value
    assert busy > 0
    assert 0 < util <= 1.0
    assert util == pytest.approx(target.utilization(engine.now))
    assert metrics.get("repro_sim_requests_completed",
                       target="d0").value == 1
    assert metrics.get("repro_sim_engine_events_total").value \
        == engine.events_processed > 0


def test_detach_stops_observation(engine, target):
    metrics = MetricsRegistry()
    collector = SimMetricsCollector(metrics, targets=[target]).attach(engine)
    target.submit(_request(0))
    engine.run()
    collector.detach()
    target.submit(_request(units.mib(1)))
    engine.run()
    assert collector.observed == 1
    assert target.completed == 2


def test_offline_consume_rebuilds_metrics_from_archived_records():
    metrics = MetricsRegistry()
    records = [
        CompletionRecord(
            submit_time=i * 0.01, finish_time=i * 0.01 + 0.002,
            target="ssd", obj="a", stream_id=1, kind="read", lba=0,
            logical_offset=None, size=4096, service_time=0.002,
        )
        for i in range(5)
    ]
    collector = SimMetricsCollector(metrics).consume(records)
    collector.finalize(elapsed=0.05)
    assert collector.observed == 5
    latency = metrics.get("repro_sim_request_latency_seconds", target="ssd")
    assert latency.count == 5
    assert latency.mean == pytest.approx(0.002)
    # No live targets bound: no queue-depth or utilization metrics.
    assert metrics.get("repro_sim_queue_depth", target="ssd") is None
    assert metrics.get("repro_sim_utilization", target="ssd") is None


def test_custom_prefix_namespaces_all_metrics(engine, target):
    metrics = MetricsRegistry()
    SimMetricsCollector(metrics, targets=[target],
                        prefix="mysim").attach(engine)
    target.submit(_request(0))
    engine.run()
    assert metrics.get("mysim_request_latency_seconds",
                       target="d0") is not None
    assert metrics.get("repro_sim_request_latency_seconds",
                       target="d0") is None


def test_engine_counts_processed_events(engine, target):
    assert engine.events_processed == 0
    target.submit(_request(0))
    engine.run()
    assert engine.events_processed > 0
