"""Tests for metric instruments and the registry: semantics, round-trips,
and the disabled (null) path."""

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    NullRegistry,
    Series,
)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------

def test_counter_only_goes_up():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_inc():
    gauge = Gauge()
    gauge.set(3.5)
    gauge.inc(0.5)
    assert gauge.value == 4.0
    gauge.set(-2)
    assert gauge.value == -2.0


def test_histogram_buckets_are_upper_bounds():
    histogram = Histogram(buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 3.0, 100.0):
        histogram.observe(value)
    # Per-bucket: <=1: {0.5, 1.0}, <=2: {1.5}, <=4: {3.0}, +Inf: {100.0}
    assert histogram.bucket_counts == [2, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(106.0)


def test_histogram_cumulative_counts_end_at_total():
    histogram = Histogram(buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 3.0, 9.0):
        histogram.observe(value)
    cumulative = histogram.cumulative_counts()
    assert cumulative == [1, 2, 3, 4]
    assert cumulative[-1] == histogram.count
    # Cumulative counts never decrease (exposition-format invariant).
    assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))


def test_histogram_sorts_bounds_and_rejects_empty():
    histogram = Histogram(buckets=(4.0, 1.0, 2.0))
    assert histogram.bounds == (1.0, 2.0, 4.0)
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_histogram_mean_and_quantile():
    histogram = Histogram(buckets=(1.0, 2.0, 4.0))
    assert histogram.mean == 0.0
    assert histogram.quantile(0.5) is None
    for value in (0.5, 0.5, 0.5, 0.5, 3.0):
        histogram.observe(value)
    assert histogram.mean == pytest.approx(1.0)
    assert histogram.quantile(0.5) == 1.0       # bucket upper bound
    assert histogram.quantile(0.99) == 4.0
    tail = Histogram(buckets=(1.0,))
    tail.observe(50.0)
    assert tail.quantile(0.99) == float("inf")


def test_series_records_ordered_points():
    series = Series()
    series.record(iteration=0, objective=2.0)
    series.record(iteration=1, objective=1.5, accepted=True)
    assert len(series) == 2
    assert series.field("objective") == [2.0, 1.5]
    assert series.field("accepted") == [True]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_memoizes_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("hits", target="d0")
    b = registry.counter("hits", target="d0")
    c = registry.counter("hits", target="d1")
    assert a is b
    assert a is not c
    assert len(registry) == 2


def test_registry_kinds_do_not_collide():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    gauge = registry.gauge("x")
    assert counter is not gauge
    assert registry.get("x") is counter       # counter wins lookup order


def test_registry_get_and_find():
    registry = MetricsRegistry()
    registry.counter("reqs", target="d0").inc(2)
    registry.counter("reqs", target="d1").inc(3)
    assert registry.get("reqs", target="d1").value == 3
    assert registry.get("missing") is None
    found = registry.find("reqs")
    assert sorted(labels["target"] for labels, _ in found) == ["d0", "d1"]


def test_registry_iteration_yields_label_dicts():
    registry = MetricsRegistry()
    registry.gauge("util", target="ssd").set(0.5)
    rows = list(registry)
    assert rows[0][0] == "gauge"
    assert rows[0][1] == "util"
    assert rows[0][2] == {"target": "ssd"}


def test_registry_records_round_trip():
    registry = MetricsRegistry()
    registry.counter("c", k="v").inc(7)
    registry.gauge("g").set(1.25)
    histogram = registry.histogram("h", buckets=(1.0, 2.0))
    histogram.observe(0.5)
    histogram.observe(5.0)
    registry.series("s", attempt=0).record(iteration=0, objective=2.0)

    rebuilt = MetricsRegistry.from_records(registry.to_records())
    assert rebuilt.get("c", k="v").value == 7
    assert rebuilt.get("g").value == 1.25
    loaded = rebuilt.get("h")
    assert loaded.bounds == (1.0, 2.0)
    assert loaded.bucket_counts == histogram.bucket_counts
    assert loaded.cumulative_counts() == histogram.cumulative_counts()
    assert loaded.sum == histogram.sum
    assert loaded.count == 2
    assert rebuilt.get("s", attempt=0).field("objective") == [2.0]


def test_registry_from_records_skips_foreign_records():
    rebuilt = MetricsRegistry.from_records([
        {"type": "span", "id": 1, "name": "x", "start_s": 0.0},
        {"type": "meta", "format": 1},
        {"type": "metric", "kind": "counter", "name": "c", "value": 2},
    ])
    assert len(rebuilt) == 1
    assert rebuilt.get("c").value == 2


def test_registry_summary_mentions_every_instrument():
    registry = MetricsRegistry()
    registry.counter("hits", target="d0").inc()
    registry.histogram("lat", buckets=(1.0,)).observe(0.5)
    text = registry.summary()
    assert "hits{target=d0}" in text
    assert "lat" in text
    assert MetricsRegistry().summary() == "  (no metrics recorded)"


def test_default_latency_buckets_are_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


# ----------------------------------------------------------------------
# Null path
# ----------------------------------------------------------------------

def test_null_registry_hands_out_shared_inert_instrument():
    null = NullRegistry()
    assert null.enabled is False
    counter = null.counter("anything", label="x")
    assert counter is NULL_INSTRUMENT
    assert counter is null.gauge("other")
    assert counter is null.histogram("h")
    assert counter is null.series("s")
    counter.inc(10)
    counter.set(5)
    counter.observe(1.0)
    counter.record(objective=1.0)
    assert counter.value == 0
    assert counter.count == 0
    assert len(null) == 0
    assert list(null) == []
    assert null.get("anything") is None
    assert null.find("anything") == []
    assert null.to_records() == []


def test_shared_null_registry_is_disabled():
    assert NULL_REGISTRY.enabled is False
    assert NULL_REGISTRY.counter("x") is NULL_INSTRUMENT
