"""Tests for the exporters: unified JSONL traces and Prometheus text.

The Prometheus test validates the rendered output line-by-line against
the text exposition-format grammar (TYPE comments, ``name{labels}
value`` samples, cumulative ``_bucket``/``_sum``/``_count`` triples
with a ``+Inf`` bucket equal to the count), not just substrings — a
malformed escape or a non-cumulative bucket must fail.
"""

import json
import re

import pytest

from repro.obs import Instrumentation
from repro.errors import ReproError
from repro.obs.export import (
    TRACE_FORMAT,
    prometheus_text,
    prometheus_text_multi,
    read_request_trace,
    read_trace,
    trace_records,
    write_prometheus,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
#: One sample line: name, optional {labels}, value.
SAMPLE_RE = re.compile(
    r"^(?P<name>%s)(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$" % METRIC_NAME
)
LABEL_RE = re.compile(
    r'^(?P<name>%s)="(?P<value>(?:[^"\\]|\\.)*)"$' % LABEL_NAME
)
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>%s) (?P<kind>counter|gauge|histogram|summary|untyped)$"
    % METRIC_NAME
)


def _parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_exposition(text):
    """Strict-enough parser for the subset of the format we emit.

    Returns ``(types, samples)``: metric name → declared type, and a
    list of ``(name, labels_dict, value)``.
    """
    types = {}
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            match = TYPE_RE.match(line)
            assert match, "malformed comment line: %r" % line
            types[match.group("name")] = match.group("kind")
            continue
        match = SAMPLE_RE.match(line)
        assert match, "malformed sample line: %r" % line
        labels = {}
        if match.group("labels"):
            for part in match.group("labels").split(","):
                label = LABEL_RE.match(part)
                assert label, "malformed label: %r in %r" % (part, line)
                labels[label.group("name")] = label.group("value")
        samples.append(
            (match.group("name"), labels, _parse_value(match.group("value")))
        )
    return types, samples


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", target="d0", kind="read").inc(5)
    registry.counter("repro_requests_total", target="d1", kind="write").inc(2)
    registry.gauge("repro_utilization", target="d0").set(0.75)
    histogram = registry.histogram(
        "repro_latency_seconds", buckets=(0.001, 0.01, 0.1), target="d0"
    )
    for value in (0.0005, 0.005, 0.005, 0.05, 2.0):
        histogram.observe(value)
    registry.series("repro_convergence", attempt=0).record(
        iteration=0, objective=1.0
    )
    return registry


def test_prometheus_output_parses_under_grammar(registry):
    types, samples = parse_exposition(prometheus_text(registry))
    assert types["repro_requests_total"] == "counter"
    assert types["repro_utilization"] == "gauge"
    assert types["repro_latency_seconds"] == "histogram"
    values = {
        (name, tuple(sorted(labels.items()))): value
        for name, labels, value in samples
    }
    assert values[("repro_requests_total",
                   (("kind", "read"), ("target", "d0")))] == 5
    assert values[("repro_utilization", (("target", "d0"),))] == 0.75


def test_prometheus_histogram_buckets_are_cumulative(registry):
    _, samples = parse_exposition(prometheus_text(registry))
    buckets = [(labels["le"], value) for name, labels, value in samples
               if name == "repro_latency_seconds_bucket"]
    bounds = [_parse_value(le) for le, _ in buckets]
    counts = [value for _, value in buckets]
    assert bounds == sorted(bounds)
    assert bounds[-1] == float("inf")
    assert counts == [1, 3, 4, 5]                      # cumulative
    assert all(a <= b for a, b in zip(counts, counts[1:]))
    count = next(value for name, labels, value in samples
                 if name == "repro_latency_seconds_count")
    total = next(value for name, labels, value in samples
                 if name == "repro_latency_seconds_sum")
    assert counts[-1] == count == 5
    assert total == pytest.approx(2.0605)


def test_prometheus_skips_series_instruments(registry):
    text = prometheus_text(registry)
    assert "repro_convergence" not in text


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c", path='a"b\\c\nd').inc()
    text = prometheus_text(registry)
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    types, samples = parse_exposition(text)
    assert samples[0][1]["path"] == 'a\\"b\\\\c\\nd'


def test_prometheus_empty_registry_renders_empty(tmp_path):
    assert prometheus_text(MetricsRegistry()) == ""
    path = tmp_path / "empty.prom"
    write_prometheus(str(path), MetricsRegistry())
    assert path.read_text() == ""


def _instrumented_bundle():
    obs = Instrumentation.on()
    with obs.tracer.span("advise", restarts=2):
        with obs.tracer.span("advise.solve"):
            obs.tracer.finish(
                obs.tracer.start("solver.restart", attempt=0),
                objective=1.5,
            )
    obs.metrics.counter("repro_evaluator_probe_rows_total").inc(10)
    obs.metrics.series("repro_solver_convergence", attempt=0).record(
        iteration=0, objective=2.0
    )
    return obs


def test_trace_records_start_with_meta_header():
    obs = _instrumented_bundle()
    records = trace_records(obs, meta={"command": "advise"})
    assert records[0] == {
        "type": "meta", "format": TRACE_FORMAT, "command": "advise",
    }
    kinds = {record["type"] for record in records[1:]}
    assert kinds == {"span", "metric"}


def test_jsonl_round_trip_reconstructs_span_tree(tmp_path):
    obs = _instrumented_bundle()
    path = tmp_path / "trace.jsonl"
    write_trace(str(path), obs, meta={"command": "advise"})

    # Each line is standalone JSON.
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["type"] == "meta"

    trace = read_trace(str(path))
    assert trace.meta["command"] == "advise"
    assert trace.meta["format"] == TRACE_FORMAT
    roots, children = trace.tracer.tree()
    assert [s.name for s in roots] == ["advise"]
    solve = children[roots[0].span_id]
    assert [s.name for s in solve] == ["advise.solve"]
    restart = children[solve[0].span_id]
    assert [s.name for s in restart] == ["solver.restart"]
    assert restart[0].tags == {"attempt": 0, "objective": 1.5}
    assert trace.metrics.get("repro_evaluator_probe_rows_total").value == 10
    series = trace.metrics.get("repro_solver_convergence", attempt=0)
    assert series.field("objective") == [2.0]


def test_read_trace_without_meta_line(tmp_path):
    path = tmp_path / "bare.jsonl"
    path.write_text(json.dumps(
        {"type": "metric", "kind": "counter", "name": "c", "value": 1}
    ) + "\n")
    trace = read_trace(str(path))
    assert trace.meta == {}
    assert trace.metrics.get("c").value == 1
    assert trace.spans == []


def test_prometheus_nonfinite_values_use_strict_tokens():
    # Strict exposition parsers reject Python's repr spellings
    # (``inf`` / ``-inf`` / ``nan``); only +Inf / -Inf / NaN are legal.
    registry = MetricsRegistry()
    registry.gauge("g_pos").set(float("inf"))
    registry.gauge("g_neg").set(float("-inf"))
    registry.gauge("g_nan").set(float("nan"))
    text = prometheus_text(registry)
    assert "g_pos +Inf" in text
    assert "g_neg -Inf" in text
    assert "g_nan NaN" in text
    for bad in ("inf\n", "-inf\n", "nan\n"):
        assert bad not in text
    types, samples = parse_exposition(text)
    values = {name: value for name, _, value in samples}
    assert values["g_pos"] == float("inf")
    assert values["g_neg"] == float("-inf")
    assert values["g_nan"] != values["g_nan"]


def test_prometheus_multi_tenant_sections_escape_and_group():
    service = MetricsRegistry()
    service.counter("repro_requests_total", route="advise").inc(3)
    tenant = MetricsRegistry()
    tenant.counter("repro_requests_total", route="advise").inc(2)
    text = prometheus_text_multi([
        ({}, service),
        ({"tenant": 'evil"name\\with\nnewline'}, tenant),
    ])
    # One TYPE header even though two sections emit the metric.
    assert text.count("# TYPE repro_requests_total counter") == 1
    types, samples = parse_exposition(text)
    tenant_labels = [labels for _, labels, _ in samples if "tenant" in labels]
    assert tenant_labels == [
        {"route": "advise", "tenant": 'evil\\"name\\\\with\\nnewline'}
    ]


def test_read_request_trace_debug_payload(tmp_path):
    payload = {
        "trace_id": "feed1234", "route": "advise", "status": 200,
        "duration_s": 0.5, "worker_pids": [7],
        "spans": [
            {"type": "span", "id": 1, "name": "request",
             "start_s": 0.0, "end_s": 0.5},
            {"type": "span", "id": 2, "name": "pool.dispatch",
             "parent": 1, "start_s": 0.1, "end_s": 0.4},
        ],
    }
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(payload))
    trace = read_request_trace(str(path))
    assert trace.meta["trace_id"] == "feed1234"
    assert "spans" not in trace.meta
    roots, children = trace.tracer.tree()
    assert [s.name for s in roots] == ["request"]
    assert [s.name for s in children[roots[0].span_id]] == ["pool.dispatch"]


def test_read_request_trace_jsonl_records(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join([
        json.dumps({"type": "request", "trace_id": "aa", "status": 200}),
        json.dumps({"type": "span", "id": 1, "name": "request",
                    "start_s": 0.0}),
    ]) + "\n")
    trace = read_request_trace(str(path))
    assert trace.meta["trace_id"] == "aa"
    assert [s.name for s in trace.spans] == ["request"]
    # The request span was still open at capture time.
    assert trace.spans[0].duration_s is None


def test_read_request_trace_rejects_non_trace_file(tmp_path):
    path = tmp_path / "nope.jsonl"
    path.write_text(json.dumps({"type": "span", "id": 1, "name": "x",
                                "start_s": 0.0}) + "\n")
    with pytest.raises(ReproError, match="no request record"):
        read_request_trace(str(path))
    garbage = tmp_path / "garbage.txt"
    garbage.write_text("this is not json\n")
    with pytest.raises(ReproError, match="not a request-trace record"):
        read_request_trace(str(garbage))
