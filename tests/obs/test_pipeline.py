"""End-to-end instrumentation tests: advisor pipeline spans, solver
telemetry, rebind accounting, and the report renderer."""

import warnings

import pytest

from repro.core.advisor import LayoutAdvisor
from repro.core.objective import REBIND_WARN_FLOOR, ObjectiveEvaluator
from repro.core.solver import solve
from repro.obs import Instrumentation
from repro.obs.export import read_trace, write_trace
from repro.obs.report import render_report

from tests.conftest import make_problem


@pytest.fixture
def problem():
    return make_problem()


def _advise(problem, obs=None, restarts=1):
    return LayoutAdvisor(problem, restarts=restarts, obs=obs).recommend()


def test_advisor_records_stage_span_tree(problem):
    obs = Instrumentation.on()
    _advise(problem, obs=obs, restarts=2)
    roots, children = obs.tracer.tree()
    assert [s.name for s in roots] == ["advise"]
    stages = [s.name for s in children[roots[0].span_id]]
    assert stages == ["advise.initial", "advise.solve", "advise.regularize"]
    solve_span = obs.tracer.find("advise.solve")[0]
    restarts = children[solve_span.span_id]
    names = {s.name for s in restarts}
    assert "solver.restart" in names
    # restarts=2 means attempts 0..2.
    assert len(obs.tracer.find("solver.restart")) == 3
    assert all(s.duration_s is not None for s in obs.tracer.spans)
    assert roots[0].tags["objective"] > 0


def test_advisor_records_stage_objective_gauges(problem):
    obs = Instrumentation.on()
    result = _advise(problem, obs=obs)
    stages = {
        labels["stage"]: gauge.value
        for labels, gauge in obs.metrics.find("repro_advise_objective")
    }
    assert set(stages) == set(result.utilizations)
    for stage, values in result.utilizations.items():
        assert stages[stage] == pytest.approx(float(values.max()))
    times = obs.metrics.find("repro_advise_stage_seconds")
    assert {labels["stage"] for labels, _ in times} >= \
        {"initial", "solve"}


def test_solver_convergence_series_per_restart(problem):
    obs = Instrumentation.on()
    evaluator = problem.evaluator(metrics=obs.metrics)
    result = solve(problem, method="coordinate", restarts=1, seed=0,
                   evaluator=evaluator, workers=1, obs=obs)
    rows = obs.metrics.find("repro_solver_convergence")
    attempts = {labels["attempt"] for labels, _ in rows}
    assert {0, 1} <= attempts
    for labels, series in rows:
        objectives = series.field("objective")
        assert objectives, labels
        # Trajectories only improve or hold for accepted moves.
        assert min(objectives) <= objectives[0]
    restarts = obs.metrics.find("repro_solver_restarts_total")
    assert sum(counter.value for _, counter in restarts) == 2
    assert result.objective > 0


def test_instrumentation_does_not_change_the_answer(problem):
    plain = _advise(problem, restarts=1)
    obs = Instrumentation.on()
    traced = _advise(problem, obs=obs, restarts=1)
    assert traced.recommended.fractions_by_name() == \
        plain.recommended.fractions_by_name()
    for stage, values in plain.utilizations.items():
        assert list(traced.utilizations[stage]) == list(values)


def test_disabled_advisor_records_nothing(problem):
    advisor = LayoutAdvisor(problem)
    advisor.recommend()
    assert advisor.obs.enabled is False
    assert list(advisor.obs.tracer.spans) == []
    assert len(advisor.obs.metrics) == 0


def test_evaluator_metrics_feed_the_registry(problem):
    obs = Instrumentation.on()
    evaluator = problem.evaluator(metrics=obs.metrics)
    solve(problem, method="coordinate", restarts=0, seed=0,
          evaluator=evaluator, workers=1, obs=obs)
    probes = obs.metrics.get("repro_evaluator_probe_rows_total").value
    full = obs.metrics.get("repro_evaluator_full_evaluations_total").value
    assert probes == evaluator.incremental_evaluations > 0
    assert full == evaluator.full_evaluations > 0
    assert obs.metrics.get("repro_evaluator_commits_total").value \
        == evaluator.commits


def test_report_renders_all_pipeline_sections(problem, tmp_path):
    obs = Instrumentation.on()
    _advise(problem, obs=obs, restarts=1)
    path = tmp_path / "trace.jsonl"
    write_trace(str(path), obs, meta={"command": "advise"})
    text = render_report(read_trace(str(path)), tree=True)
    for heading in ("trace", "stage times", "solver restarts",
                    "convergence (per restart)", "evaluator cache",
                    "objective (max target utilization)", "span tree"):
        assert heading in text, heading
    assert "advise.solve" in text
    assert "cache hit rate" in text


def test_report_on_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    text = render_report(read_trace(str(path)))
    assert "empty trace" in text


# ----------------------------------------------------------------------
# Rebind accounting (satellite: detect thrashing evaluator caches)
# ----------------------------------------------------------------------

def _thrash(evaluator, problem, times):
    """Alternate probes between two base matrices to force rebinds."""
    import numpy as np
    rng = np.random.default_rng(0)
    n, m = problem.n_objects, problem.n_targets
    bases = []
    for _ in range(2):
        matrix = rng.random((n, m)) + 1e-6
        bases.append(matrix / matrix.sum(axis=1, keepdims=True))
    row = np.full(m, 1.0 / m)
    for i in range(times):
        evaluator.utilizations_with_row(bases[i % 2], 0, row)


def test_rebinds_are_counted(problem):
    evaluator = ObjectiveEvaluator(problem)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        _thrash(evaluator, problem, 6)
    # First call binds; each alternation after that rebinds.
    assert evaluator.rebinds == 5
    assert evaluator.commits == 0


def test_rebind_storm_warns_once(problem):
    evaluator = ObjectiveEvaluator(problem)
    with pytest.warns(RuntimeWarning, match="rebound its incremental"):
        _thrash(evaluator, problem, REBIND_WARN_FLOOR + 2)
    # Warned exactly once, not per rebind.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        _thrash(evaluator, problem, 4)


def test_normal_solver_use_does_not_warn(problem):
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        evaluator = problem.evaluator()
        solve(problem, method="coordinate", restarts=2, seed=0,
              evaluator=evaluator, workers=1)
    assert evaluator.rebinds <= REBIND_WARN_FLOOR
