"""Tests for the span tracer: nesting, clocks, round-trips, null path."""

import json

import numpy as np
import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    json_default,
)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, start=100.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


@pytest.fixture
def tracer():
    return Tracer(clock=FakeClock())


def test_nested_spans_get_parent_ids(tracer):
    outer = tracer.start("outer")
    inner = tracer.start("inner")
    leaf = tracer.start("leaf")
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert leaf.parent_id == inner.span_id
    tracer.finish(leaf)
    sibling = tracer.start("sibling")
    assert sibling.parent_id == inner.span_id


def test_injected_clock_stamps_durations(tracer):
    span = tracer.start("work")        # clock reads 100
    tracer.finish(span)                # clock reads 101
    assert span.start_s == 100.0
    assert span.end_s == 101.0
    assert span.duration_s == 1.0


def test_explicit_parent_and_forced_root(tracer):
    outer = tracer.start("outer")
    adopted = tracer.start("adopted", parent=outer)
    root = tracer.start("root", parent=False)
    assert adopted.parent_id == outer.span_id
    assert root.parent_id is None


def test_detached_span_is_recorded_but_not_a_parent(tracer):
    outer = tracer.start("outer")
    episode = tracer.start("episode", detached=True)
    child = tracer.start("child")
    assert episode in tracer.spans
    assert episode.parent_id == outer.span_id
    # The detached span never went on the stack: "child" nests under
    # "outer", not under the still-open episode.
    assert child.parent_id == outer.span_id


def test_out_of_order_finish_tolerated(tracer):
    outer = tracer.start("outer")
    inner = tracer.start("inner")
    tracer.finish(outer)
    tracer.finish(inner)
    assert outer.duration_s is not None
    assert inner.duration_s is not None
    # Double finish is a no-op, not a re-stamp.
    end = inner.end_s
    tracer.finish(inner)
    assert inner.end_s == end


def test_context_manager_finishes_and_tags_errors(tracer):
    with tracer.span("ok", method="slsqp") as span:
        pass
    assert span.end_s is not None
    assert span.tags == {"method": "slsqp"}

    with pytest.raises(ValueError):
        with tracer.span("boom") as span:
            raise ValueError("nope")
    assert span.end_s is not None
    assert span.tags["error"] == "ValueError"


def test_event_is_zero_duration(tracer):
    event = tracer.event("online.check", sim_time=5.0)
    assert event.duration_s == 0.0
    assert event.tags["sim_time"] == 5.0


def test_add_span_backdates_to_reported_duration(tracer):
    span = tracer.add_span("solver.restart", 2.5, parallel=True)
    assert span.duration_s == pytest.approx(2.5)
    assert span.end_s == 100.0            # the single clock read
    assert span.tags["parallel"] is True


def test_finish_merges_tags(tracer):
    span = tracer.start("solve", method="slsqp")
    tracer.finish(span, objective=1.25)
    assert span.tags == {"method": "slsqp", "objective": 1.25}


def test_find_and_tree(tracer):
    root = tracer.start("advise")
    tracer.start("advise.solve")
    tracer.finish(tracer.start("solver.restart"))
    assert [s.name for s in tracer.find("solver.restart")] == \
        ["solver.restart"]
    roots, children = tracer.tree()
    assert roots == [root]
    assert [s.name for s in children[root.span_id]] == ["advise.solve"]


def test_render_tree_indents_by_depth(tracer):
    with tracer.span("advise"):
        with tracer.span("advise.solve"):
            pass
    text = tracer.render_tree()
    lines = text.splitlines()
    assert lines[0].startswith("advise")
    assert lines[1].startswith("  advise.solve")
    # Depth limiting prunes children.
    assert "advise.solve" not in tracer.render_tree(max_depth=0)


def test_records_round_trip_preserves_tree(tracer):
    with tracer.span("advise", restarts=2):
        with tracer.span("advise.solve"):
            tracer.event("marker")
    rebuilt = Tracer.from_records(tracer.to_records())
    assert [s.name for s in rebuilt.spans] == \
        [s.name for s in tracer.spans]
    roots, children = rebuilt.tree()
    assert [s.name for s in roots] == ["advise"]
    assert roots[0].tags == {"restarts": 2}
    kids = children[roots[0].span_id]
    assert [s.name for s in kids] == ["advise.solve"]
    # New spans on the rebuilt tracer do not collide with loaded ids.
    fresh = rebuilt.start("later")
    assert fresh.span_id > max(s.span_id for s in tracer.spans)


def test_to_jsonl_writes_one_record_per_span(tracer, tmp_path):
    tracer.finish(tracer.start("a", index=np.int64(3)))
    path = tmp_path / "spans.jsonl"
    tracer.to_jsonl(str(path))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(records) == 1
    assert records[0]["name"] == "a"
    assert records[0]["tags"]["index"] == 3


def test_json_default_coerces_numpy_scalars():
    assert json_default(np.int64(7)) == 7
    assert json_default(np.float64(0.5)) == 0.5
    with pytest.raises(TypeError):
        json_default(object())


def test_open_span_serializes_without_end(tracer):
    span = tracer.start("open")
    record = span.to_record()
    assert "end_s" not in record
    assert Span.from_record(record).duration_s is None


def test_null_tracer_records_nothing():
    null = NullTracer()
    assert null.enabled is False
    span = null.start("anything", tag=1)
    null.finish(span, more=2)
    with null.span("scoped"):
        pass
    null.event("event")
    null.add_span("done", 1.0)
    assert list(null.spans) == []
    assert null.find("anything") == []
    assert null.to_records() == []
    assert null.render_tree() == ""


def test_null_tracer_singleton_span_is_inert():
    span = NULL_TRACER.start("x")
    assert span is NULL_TRACER.start("y")
    span.set_tag("k", "v")
    assert span.tags == {}


# -- cross-process contexts and grafting --------------------------------

def test_trace_context_mint_child_round_trip(tracer):
    ctx = TraceContext.mint()
    assert len(ctx.trace_id) == 16
    assert ctx.parent_span_id is None
    assert ctx.to_dict() == {"trace_id": ctx.trace_id}

    span = tracer.start("pool.dispatch")
    child = ctx.child(span)
    assert child.trace_id == ctx.trace_id
    assert child.parent_span_id == span.span_id
    wire = child.to_dict()
    assert wire == {"trace_id": ctx.trace_id, "parent": span.span_id}
    back = TraceContext.from_dict(json.loads(json.dumps(wire)))
    assert back.trace_id == child.trace_id
    assert back.parent_span_id == child.parent_span_id


def test_mint_produces_unique_trace_ids():
    ids = {TraceContext.mint().trace_id for _ in range(64)}
    assert len(ids) == 64


def _remote_records():
    """A worker-side tree stamped by an unrelated clock epoch."""
    remote = Tracer(clock=FakeClock(start=5000.0))
    root = remote.start("worker.advise")
    inner = remote.start("advise.solve")
    remote.finish(inner)
    remote.finish(root)
    return remote.to_records()


def test_graft_remaps_ids_and_attaches_under_parent(tracer):
    local = tracer.start("pool.dispatch")
    tracer.finish(local)
    grafted = tracer.graft_records(_remote_records(), parent=local)
    assert [s.name for s in grafted] == ["worker.advise", "advise.solve"]
    root, inner = grafted
    # Batch root hangs under the local parent; internal link preserved.
    assert root.parent_id == local.span_id
    assert inner.parent_id == root.span_id
    # Remapped ids continue the local sequence — no collisions.
    ids = [s.span_id for s in tracer.spans]
    assert len(ids) == len(set(ids))
    roots, children = tracer.tree()
    assert [s.name for s in roots] == ["pool.dispatch"]


def test_graft_end_at_shifts_remote_tree_onto_local_clock(tracer):
    local = tracer.start("pool.dispatch")   # 100 → 101
    tracer.finish(local)
    grafted = tracer.graft_records(_remote_records(), parent=local,
                                   end_at=local.end_s)
    root, inner = grafted
    # Latest remote finish lands exactly at end_at; relative structure
    # inside the worker (1s inner inside 3s root) is preserved.
    assert max(s.end_s for s in grafted) == pytest.approx(local.end_s)
    assert root.duration_s == pytest.approx(3.0)
    assert inner.duration_s == pytest.approx(1.0)
    assert inner.start_s > root.start_s
    # Worker-epoch timestamps (~5000) are gone from the local timeline.
    assert all(s.start_s < 200.0 for s in grafted)


def test_graft_keeps_unfinished_remote_spans_open(tracer):
    remote = Tracer(clock=FakeClock(start=9000.0))
    root = remote.start("worker.advise")
    remote.finish(root)
    remote.start("advise.solve")            # never finished (crash)
    grafted = tracer.graft_records(remote.to_records(), end_at=50.0)
    by_name = {s.name: s for s in grafted}
    assert by_name["worker.advise"].end_s == pytest.approx(50.0)
    assert by_name["advise.solve"].end_s is None
    assert by_name["advise.solve"].duration_s is None
    assert "…running" in tracer.render_tree()


def test_graft_without_parent_or_records(tracer):
    assert tracer.graft_records([]) == []
    assert tracer.graft_records([{"type": "metric"}]) == []
    grafted = tracer.graft_records(_remote_records())
    # No parent: batch roots become local roots.
    assert grafted[0].parent_id is None
    assert NULL_TRACER.graft_records(_remote_records()) == []
