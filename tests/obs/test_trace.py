"""Tests for the span tracer: nesting, clocks, round-trips, null path."""

import json

import numpy as np
import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    json_default,
)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, start=100.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


@pytest.fixture
def tracer():
    return Tracer(clock=FakeClock())


def test_nested_spans_get_parent_ids(tracer):
    outer = tracer.start("outer")
    inner = tracer.start("inner")
    leaf = tracer.start("leaf")
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert leaf.parent_id == inner.span_id
    tracer.finish(leaf)
    sibling = tracer.start("sibling")
    assert sibling.parent_id == inner.span_id


def test_injected_clock_stamps_durations(tracer):
    span = tracer.start("work")        # clock reads 100
    tracer.finish(span)                # clock reads 101
    assert span.start_s == 100.0
    assert span.end_s == 101.0
    assert span.duration_s == 1.0


def test_explicit_parent_and_forced_root(tracer):
    outer = tracer.start("outer")
    adopted = tracer.start("adopted", parent=outer)
    root = tracer.start("root", parent=False)
    assert adopted.parent_id == outer.span_id
    assert root.parent_id is None


def test_detached_span_is_recorded_but_not_a_parent(tracer):
    outer = tracer.start("outer")
    episode = tracer.start("episode", detached=True)
    child = tracer.start("child")
    assert episode in tracer.spans
    assert episode.parent_id == outer.span_id
    # The detached span never went on the stack: "child" nests under
    # "outer", not under the still-open episode.
    assert child.parent_id == outer.span_id


def test_out_of_order_finish_tolerated(tracer):
    outer = tracer.start("outer")
    inner = tracer.start("inner")
    tracer.finish(outer)
    tracer.finish(inner)
    assert outer.duration_s is not None
    assert inner.duration_s is not None
    # Double finish is a no-op, not a re-stamp.
    end = inner.end_s
    tracer.finish(inner)
    assert inner.end_s == end


def test_context_manager_finishes_and_tags_errors(tracer):
    with tracer.span("ok", method="slsqp") as span:
        pass
    assert span.end_s is not None
    assert span.tags == {"method": "slsqp"}

    with pytest.raises(ValueError):
        with tracer.span("boom") as span:
            raise ValueError("nope")
    assert span.end_s is not None
    assert span.tags["error"] == "ValueError"


def test_event_is_zero_duration(tracer):
    event = tracer.event("online.check", sim_time=5.0)
    assert event.duration_s == 0.0
    assert event.tags["sim_time"] == 5.0


def test_add_span_backdates_to_reported_duration(tracer):
    span = tracer.add_span("solver.restart", 2.5, parallel=True)
    assert span.duration_s == pytest.approx(2.5)
    assert span.end_s == 100.0            # the single clock read
    assert span.tags["parallel"] is True


def test_finish_merges_tags(tracer):
    span = tracer.start("solve", method="slsqp")
    tracer.finish(span, objective=1.25)
    assert span.tags == {"method": "slsqp", "objective": 1.25}


def test_find_and_tree(tracer):
    root = tracer.start("advise")
    tracer.start("advise.solve")
    tracer.finish(tracer.start("solver.restart"))
    assert [s.name for s in tracer.find("solver.restart")] == \
        ["solver.restart"]
    roots, children = tracer.tree()
    assert roots == [root]
    assert [s.name for s in children[root.span_id]] == ["advise.solve"]


def test_render_tree_indents_by_depth(tracer):
    with tracer.span("advise"):
        with tracer.span("advise.solve"):
            pass
    text = tracer.render_tree()
    lines = text.splitlines()
    assert lines[0].startswith("advise")
    assert lines[1].startswith("  advise.solve")
    # Depth limiting prunes children.
    assert "advise.solve" not in tracer.render_tree(max_depth=0)


def test_records_round_trip_preserves_tree(tracer):
    with tracer.span("advise", restarts=2):
        with tracer.span("advise.solve"):
            tracer.event("marker")
    rebuilt = Tracer.from_records(tracer.to_records())
    assert [s.name for s in rebuilt.spans] == \
        [s.name for s in tracer.spans]
    roots, children = rebuilt.tree()
    assert [s.name for s in roots] == ["advise"]
    assert roots[0].tags == {"restarts": 2}
    kids = children[roots[0].span_id]
    assert [s.name for s in kids] == ["advise.solve"]
    # New spans on the rebuilt tracer do not collide with loaded ids.
    fresh = rebuilt.start("later")
    assert fresh.span_id > max(s.span_id for s in tracer.spans)


def test_to_jsonl_writes_one_record_per_span(tracer, tmp_path):
    tracer.finish(tracer.start("a", index=np.int64(3)))
    path = tmp_path / "spans.jsonl"
    tracer.to_jsonl(str(path))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(records) == 1
    assert records[0]["name"] == "a"
    assert records[0]["tags"]["index"] == 3


def test_json_default_coerces_numpy_scalars():
    assert json_default(np.int64(7)) == 7
    assert json_default(np.float64(0.5)) == 0.5
    with pytest.raises(TypeError):
        json_default(object())


def test_open_span_serializes_without_end(tracer):
    span = tracer.start("open")
    record = span.to_record()
    assert "end_s" not in record
    assert Span.from_record(record).duration_s is None


def test_null_tracer_records_nothing():
    null = NullTracer()
    assert null.enabled is False
    span = null.start("anything", tag=1)
    null.finish(span, more=2)
    with null.span("scoped"):
        pass
    null.event("event")
    null.add_span("done", 1.0)
    assert list(null.spans) == []
    assert null.find("anything") == []
    assert null.to_records() == []
    assert null.render_tree() == ""


def test_null_tracer_singleton_span_is_inert():
    span = NULL_TRACER.start("x")
    assert span is NULL_TRACER.start("y")
    span.set_tag("k", "v")
    assert span.tags == {}
