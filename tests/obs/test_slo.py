"""Tests for the per-tenant SLO engine: objectives, windows, burn rates.

The burn-rate math is checked against hand-computed values for the
standard definition ``breach_rate / (1 - slo_target)`` — 1.0 means the
error budget burns exactly at the allowed pace, N means N times too
fast — and the sliding window is checked to actually slide (old
breaches age out, totals do not).
"""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_WINDOW, SloEngine, SloObjective


# -- objectives ---------------------------------------------------------

def test_objective_defaults_and_dict_round_trip():
    objective = SloObjective()
    assert objective.window == DEFAULT_WINDOW
    again = SloObjective(**objective.to_dict())
    assert again.to_dict() == objective.to_dict()


@pytest.mark.parametrize("kwargs", [
    {"p50_s": 0.0},
    {"p99_s": -1.0},
    {"p50_s": 10.0, "p99_s": 1.0},
    {"slo_target": 0.0},
    {"slo_target": 1.0},
    {"window": 0},
])
def test_objective_rejects_bad_targets(kwargs):
    with pytest.raises(ValueError):
        SloObjective(**kwargs)


def test_from_payload_fills_from_default_and_rejects_unknown():
    default = SloObjective(p50_s=0.5, p99_s=2.0, slo_target=0.9, window=8)
    assert SloObjective.from_payload(None, default=default) is default
    merged = SloObjective.from_payload({"p99_s": 4.0}, default=default)
    assert merged.p50_s == 0.5
    assert merged.p99_s == 4.0
    assert merged.window == 8
    with pytest.raises(ValueError, match="unknown slo field"):
        SloObjective.from_payload({"p99": 4.0}, default=default)
    with pytest.raises(ValueError, match="must be an object"):
        SloObjective.from_payload([1, 2])


# -- engine ingestion and math ------------------------------------------

def test_observe_auto_registers_under_default_objective():
    engine = SloEngine(SloObjective(p99_s=1.0, slo_target=0.9))
    assert len(engine) == 0
    assert engine.observe("t1", 0.5) is False      # under target
    assert engine.observe("t1", 2.0) is True       # breach
    assert len(engine) == 1
    assert engine.objective_for("t1").p99_s == 1.0


def test_burn_rate_matches_hand_computation():
    # slo_target 0.9 → allowed breach fraction 0.1.  2 breaches in 10
    # requests is a 0.2 breach rate → burn 2.0.
    engine = SloEngine(SloObjective(p99_s=1.0, slo_target=0.9, window=10))
    for _ in range(8):
        engine.observe("t", 0.1)
    engine.observe("t", 5.0)
    engine.observe("t", 5.0)
    snap = engine.snapshot("t")
    assert snap["window_requests"] == 10
    assert snap["breaches"] == 2
    assert snap["attainment"] == pytest.approx(0.8)
    assert snap["attained"] is False
    assert snap["burn_rate"] == pytest.approx(2.0)
    assert snap["error_budget_remaining"] == pytest.approx(0.0)


def test_errors_always_count_as_breaches():
    engine = SloEngine(SloObjective(p99_s=10.0, slo_target=0.5, window=4))
    engine.observe("t", 0.01, error=True)          # fast failure
    snap = engine.snapshot("t")
    assert snap["breaches"] == 1
    assert snap["errors"] == 1
    assert snap["total_errors"] == 1


def test_window_slides_but_totals_accumulate():
    engine = SloEngine(SloObjective(p99_s=1.0, slo_target=0.9, window=4))
    for _ in range(4):
        engine.observe("t", 9.0)                   # all breaches
    assert engine.snapshot("t")["burn_rate"] == pytest.approx(10.0)
    for _ in range(4):
        engine.observe("t", 0.1)                   # breaches age out
    snap = engine.snapshot("t")
    assert snap["breaches"] == 0
    assert snap["burn_rate"] == 0.0
    assert snap["attainment"] == 1.0
    assert snap["attained"] is True
    # Lifetime totals remember what the window forgot, and the worst
    # burn rate is a high-water mark.
    assert snap["total_requests"] == 8
    assert snap["total_breaches"] == 4
    assert snap["worst_burn_rate"] == pytest.approx(10.0)
    assert snap["error_budget_remaining"] == pytest.approx(1.0)


def test_window_quantiles_and_p50_flag():
    engine = SloEngine(SloObjective(p50_s=0.2, p99_s=10.0, slo_target=0.9,
                                    window=100))
    for index in range(100):
        engine.observe("t", (index + 1) / 100.0)   # 0.01 .. 1.00
    snap = engine.snapshot("t")
    assert snap["p50_s"] == pytest.approx(0.50)
    assert snap["p99_s"] == pytest.approx(0.99)
    assert snap["p50_met"] is False                # 0.50 > 0.2 target


def test_register_is_idempotent_until_objective_changes():
    engine = SloEngine()
    tight = SloObjective(p99_s=1.0, slo_target=0.9, window=4)
    engine.register("t", tight)
    engine.observe("t", 5.0)
    # Same objective: the window survives.
    engine.register("t", SloObjective(p99_s=1.0, slo_target=0.9, window=4))
    assert engine.snapshot("t")["breaches"] == 1
    # Changed objective: the window restarts under the new terms.
    engine.register("t", SloObjective(p99_s=8.0, slo_target=0.9, window=4))
    snap = engine.snapshot("t")
    assert snap["window_requests"] == 0
    assert snap["objective"]["p99_s"] == 8.0


def test_forget_and_unknown_snapshots():
    engine = SloEngine()
    engine.observe("t", 0.1)
    engine.forget("t")
    assert engine.snapshot("t") is None
    assert engine.objective_for("t") is None
    assert engine.snapshot_all() == {}
    assert len(engine) == 0


def test_export_to_mirrors_standing_as_gauges():
    engine = SloEngine(SloObjective(p99_s=2.0, slo_target=0.9, window=10))
    engine.observe("a", 0.1)
    engine.observe("b", 9.0)
    registry = engine.export_to(MetricsRegistry())
    assert registry.get("repro_slo_attainment_ratio", tenant="a").value \
        == pytest.approx(1.0)
    assert registry.get("repro_slo_burn_rate", tenant="b").value \
        == pytest.approx(10.0)
    assert registry.get("repro_slo_objective_p99_seconds",
                        tenant="a").value == pytest.approx(2.0)
    assert registry.get("repro_slo_error_budget_remaining",
                        tenant="b").value == pytest.approx(0.0)


def test_engine_is_thread_safe_under_concurrent_observe():
    engine = SloEngine(SloObjective(p99_s=1.0, slo_target=0.9, window=64))
    errors = []

    def hammer(tenant_id):
        try:
            for _ in range(500):
                engine.observe(tenant_id, 0.1)
                engine.snapshot(tenant_id)
        except Exception as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=("t%d" % i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    report = engine.snapshot_all()
    assert len(report) == 4
    assert all(snap["total_requests"] == 500 for snap in report.values())
