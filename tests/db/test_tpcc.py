"""Tests for the TPC-C catalog and transaction profiles."""

import numpy as np
import pytest

from repro import units
from repro.db.schema import INDEX, LOG, TABLE
from repro.db.tpcc import (
    TRANSACTION_MIX,
    new_order_profile,
    order_status_profile,
    payment_profile,
    sample_transaction,
    tpcc_database,
)


def test_catalog_matches_paper_figure_9():
    """Paper Figure 9: TPC-C has 9.1 GB in 9 tables, 10 indexes, 1 log."""
    db = tpcc_database()
    assert len(db) == 20
    assert len(db.of_kind(TABLE)) == 9
    assert len(db.of_kind(INDEX)) == 10
    assert len(db.of_kind(LOG)) == 1
    assert db.total_size == pytest.approx(9.1 * units.GIB, rel=0.05)


def test_stock_is_the_largest_table():
    db = tpcc_database()
    tables = [db[name] for name in db.of_kind(TABLE)]
    assert max(tables, key=lambda o: o.size).name == "STOCK"


def test_profiles_reference_only_catalog_objects():
    db = tpcc_database()
    for profile in (new_order_profile(), payment_profile(),
                    order_status_profile()):
        for obj in profile.objects:
            assert obj in db


def test_new_order_commits_to_the_log():
    profile = new_order_profile()
    log_writes = [
        access
        for phase in profile.phases
        for access in phase.accesses
        if access.obj == "XactionLOG"
    ]
    assert log_writes
    assert all(a.kind == "write" and a.mode == "seq" for a in log_writes)


def test_new_order_uses_absolute_page_counts():
    """OLTP I/O must not scale with table size."""
    profile = new_order_profile()
    for phase in profile.phases:
        for access in phase.accesses:
            assert access.pages > 0


def test_mix_weights_sum_to_one():
    assert sum(w for _, w in TRANSACTION_MIX) == pytest.approx(1.0)


def test_new_order_dominates_the_mix():
    weights = {p.name: w for p, w in TRANSACTION_MIX}
    assert weights["NewOrder"] == max(weights.values())


def test_sample_transaction_follows_weights():
    rng = np.random.default_rng(0)
    names = [sample_transaction(rng).name for _ in range(500)]
    share = names.count("NewOrder") / len(names)
    assert 0.5 < share < 0.7
