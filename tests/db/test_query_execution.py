"""Per-query execution tests: every TPC-H profile runs end to end."""

import pytest

from repro import units
from repro.db.engine import run_olap
from repro.db.tpch import TPCH_QUERY_NAMES, tpch_database, tpch_query_profile
from repro.storage.disk import DiskDrive

SCALE = 1 / 256


@pytest.fixture(scope="module")
def setup():
    database = tpch_database(SCALE)
    see = {name: [0.5, 0.5] for name in database.object_names}
    return database, see


def _devices():
    capacity = int(18.4 * units.GIB * SCALE)
    return [DiskDrive("d%d" % j, capacity) for j in range(2)]


@pytest.mark.parametrize("query", TPCH_QUERY_NAMES)
def test_query_profile_executes(setup, query):
    database, see = setup
    profile = tpch_query_profile(query)
    result = run_olap(database, [profile], see, _devices(),
                      collect_trace=True)
    assert result.completed_queries == 1
    assert result.elapsed_s > 0
    # Every object the profile names produced I/O.
    touched = {r.obj for r in result.trace}
    for obj in profile.objects:
        assert obj in touched, "%s never touched %s" % (query, obj)


def test_query_volumes_scale_with_profile(setup):
    """Q1 (full LINEITEM scan) moves more data than Q22 (CUSTOMER +

    index anti-join)."""
    database, see = setup
    q1 = run_olap(database, [tpch_query_profile("Q1")], see, _devices())
    q22 = run_olap(database, [tpch_query_profile("Q22")], see, _devices())
    q1_bytes = sum(t.bytes_read for t in [])
    # Compare via elapsed time, which tracks volume on a fixed layout.
    assert q1.elapsed_s > q22.elapsed_s


def test_q9_is_the_heaviest_query(setup):
    """The paper excluded Q9 for excessive run time; our profile should

    reflect that it is the single heaviest query."""
    database, see = setup
    times = {}
    for query in ("Q1", "Q9", "Q18"):
        result = run_olap(database, [tpch_query_profile(query)], see,
                          _devices())
        times[query] = result.elapsed_s
    assert times["Q9"] == max(times.values())