"""Tests for the TPC-H catalog and query profiles."""

import pytest

from repro import units
from repro.db.schema import INDEX, TABLE, TEMP
from repro.db.tpch import (
    TPCH_QUERY_NAMES,
    tpch_database,
    tpch_query_profile,
)


def test_catalog_matches_paper_figure_9():
    """Paper Figure 9: TPC-H has 9.4 GB total in 8 tables, 11 indexes,

    and one temp space (20 objects)."""
    db = tpch_database()
    assert len(db) == 20
    assert len(db.of_kind(TABLE)) == 8
    assert len(db.of_kind(INDEX)) == 11
    assert len(db.of_kind(TEMP)) == 1
    assert db.total_size == pytest.approx(9.4 * units.GIB, rel=0.05)


def test_lineitem_is_the_largest_object():
    db = tpch_database()
    assert max(db.objects, key=lambda o: o.size).name == "LINEITEM"


def test_scaling_shrinks_catalog():
    db = tpch_database(scale=1 / 64)
    assert db.total_size < units.mib(200)
    assert db["LINEITEM"].size == pytest.approx(4600 * units.MIB / 64, rel=0.01)


def test_all_22_queries_have_profiles():
    assert len(TPCH_QUERY_NAMES) == 22
    for name in TPCH_QUERY_NAMES:
        profile = tpch_query_profile(name)
        assert profile.name == name
        assert len(profile.phases) >= 1


def test_profiles_reference_only_catalog_objects():
    db = tpch_database()
    for name in TPCH_QUERY_NAMES:
        for obj in tpch_query_profile(name).objects:
            assert obj in db, "%s references unknown object %s" % (name, obj)


def test_q1_is_a_pure_lineitem_scan():
    profile = tpch_query_profile("Q1")
    assert profile.objects == ["LINEITEM"]


def test_q18_spills_heavily_to_temp():
    """The paper singles out Q18's temp usage (the PostgreSQL

    cardinality misestimate example)."""
    profile = tpch_query_profile("Q18")
    assert "TEMP SPACE" in profile.objects
    temp_writes = [
        access
        for phase in profile.phases
        for access in phase.accesses
        if access.obj == "TEMP SPACE" and access.kind == "write"
    ]
    assert temp_writes and temp_writes[0].fraction >= 0.5


def test_lineitem_and_orders_are_the_hottest_objects():
    """Across the query pool LINEITEM and ORDERS must be the two most

    accessed tables, matching the paper's Figure 1 ordering."""
    from repro.baselines.autoadmin import estimated_volumes

    db = tpch_database()
    totals = {}
    for name in TPCH_QUERY_NAMES:
        if name == "Q9":
            continue
        for obj, pages in estimated_volumes(
            tpch_query_profile(name), db
        ).items():
            totals[obj] = totals.get(obj, 0) + pages
    ranked = sorted(totals, key=lambda o: -totals[o])
    assert ranked[0] == "LINEITEM"
    assert "ORDERS" in ranked[:3]


def test_unknown_query_raises():
    with pytest.raises(KeyError):
        tpch_query_profile("Q99")


def test_profile_renaming():
    profile = tpch_query_profile("Q1").renamed({"LINEITEM": "h.LINEITEM"})
    assert profile.objects == ["h.LINEITEM"]
