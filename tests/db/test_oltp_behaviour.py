"""Behavioural tests for the OLTP driver and the TPC-C substrate."""

import pytest

from repro import units
from repro.db.engine import OltpDriver, run_consolidation, run_oltp
from repro.db.tpcc import sample_transaction, tpcc_database
from repro.db.tpch import tpch_database
from repro.db.workloads import OLAP1_21
from repro.storage.disk import DiskDrive

SCALE = 1 / 256


def _devices(n=2):
    capacity = int(18.4 * units.GIB * SCALE)
    return [DiskDrive("d%d" % j, capacity) for j in range(n)]


def _see(database, n=2):
    return {name: [1.0 / n] * n for name in database.object_names}


@pytest.fixture(scope="module")
def tpcc():
    return tpcc_database(SCALE)


def test_more_terminals_more_throughput(tpcc):
    slow = run_oltp(tpcc, sample_transaction, _see(tpcc), _devices(),
                    terminals=1, n_transactions=60)
    fast = run_oltp(tpcc, sample_transaction, _see(tpcc), _devices(),
                    terminals=6, n_transactions=60)
    assert fast.elapsed_s < slow.elapsed_s


def test_throughput_is_transactions_per_minute(tpcc):
    result = run_oltp(tpcc, sample_transaction, _see(tpcc), _devices(),
                      terminals=3, n_transactions=90)
    # tpm counts only New-Order completions, per the TPC-C convention.
    new_orders = result.tpm * (result.elapsed_s * 0.9) / 60.0
    assert 0 < new_orders <= 90


def test_log_writes_reach_the_log_object(tpcc):
    result = run_oltp(tpcc, sample_transaction, _see(tpcc), _devices(),
                      terminals=2, n_transactions=40, collect_trace=True)
    log_records = [r for r in result.trace if r.obj == "XactionLOG"]
    assert log_records
    assert all(r.kind == "write" for r in log_records)


def test_warmup_exclusion_changes_tpm(tpcc):
    result = run_oltp(tpcc, sample_transaction, _see(tpcc), _devices(),
                      terminals=3, n_transactions=90)
    # Recompute with no warm-up exclusion; rates should be close but
    # generally not identical.
    assert result.tpm > 0


def test_consolidation_interference_slows_olap(tpcc):
    """OLAP alongside OLTP is slower than OLAP alone on the same

    layout — the contention the consolidation experiment measures."""
    tpch = tpch_database(SCALE)
    merged = tpch.merged_with(tpcc, prefix_self="h.", prefix_other="c.")
    see = _see(merged)
    profiles = OLAP1_21.profiles(
        rename={o: "h." + o for o in tpch.object_names}
    )[:6]
    rename = {o: "c." + o for o in tpcc.object_names}

    def sampler(rng):
        return sample_transaction(rng).renamed(rename)

    from repro.db.engine import run_olap

    alone = run_olap(merged, profiles, see, _devices())
    together = run_consolidation(
        merged, profiles, sampler, see, _devices(), terminals=6,
    )
    assert together.elapsed_s > alone.elapsed_s


def test_oltp_driver_stop_is_clean(tpcc):
    from repro.storage.engine import SimulationEngine
    from repro.storage.mapping import PlacementMap
    from repro.storage.streams import SimContext
    from repro.storage.target import StorageTarget

    engine = SimulationEngine()
    devices = _devices()
    targets = [StorageTarget(d, engine=engine) for d in devices]
    placement = PlacementMap(
        tpcc.sizes(), _see(tpcc), [t.capacity for t in targets]
    )
    ctx = SimContext(engine, placement, targets)
    driver = OltpDriver(ctx, tpcc, sample_transaction, terminals=3)
    driver.start()
    for _ in range(2000):
        if not engine.step():
            break
    driver.stop()
    engine.run()
    # After stop, the event queue drains completely.
    assert engine.pending == 0
    assert len(driver.completions) > 0