"""Tests for the Figure-10 workload definitions."""

import pytest

from repro.db.workloads import (
    OLAP1_21,
    OLAP1_63,
    OLAP8_63,
    OLAP_QUERY_POOL,
    OLTP,
    olap_workload,
)


def test_pool_excludes_q9():
    assert "Q9" not in OLAP_QUERY_POOL
    assert len(OLAP_QUERY_POOL) == 21


def test_olap1_21_composition():
    assert len(OLAP1_21.queries) == 21
    assert OLAP1_21.concurrency == 1
    assert sorted(set(OLAP1_21.queries)) == sorted(OLAP_QUERY_POOL)


def test_olap1_63_repeats_each_query_three_times():
    assert len(OLAP1_63.queries) == 63
    for query in OLAP_QUERY_POOL:
        assert OLAP1_63.queries.count(query) == 3


def test_olap8_63_same_queries_higher_concurrency():
    """OLAP8-63 is OLAP1-63 at concurrency eight (paper §6.1)."""
    assert sorted(OLAP8_63.queries) == sorted(OLAP1_63.queries)
    assert OLAP8_63.concurrency == 8
    assert OLAP1_63.concurrency == 1


def test_same_seed_same_permutation():
    a = olap_workload("x", repetitions=2, seed=5)
    b = olap_workload("y", repetitions=2, seed=5)
    assert a.queries == b.queries


def test_different_seed_different_permutation():
    a = olap_workload("x", repetitions=2, seed=5)
    b = olap_workload("y", repetitions=2, seed=6)
    assert a.queries != b.queries


def test_profiles_resolve():
    profiles = OLAP1_21.profiles()
    assert len(profiles) == 21
    assert all(p.phases for p in profiles)


def test_profiles_renaming_applies_to_all():
    profiles = OLAP1_21.profiles(rename={"LINEITEM": "h.LINEITEM"})
    for profile in profiles:
        assert "LINEITEM" not in profile.objects


def test_oltp_has_nine_terminals():
    assert OLTP.terminals == 9
