"""Tests for query profile types."""

import pytest

from repro.db.profiles import AccessSpec, Phase, QueryProfile, phase, rand, seq


def test_seq_shorthand_defaults():
    access = seq("obj")
    assert access.mode == "seq"
    assert access.fraction == 1.0
    assert access.kind == "read"


def test_rand_requires_some_volume():
    with pytest.raises(ValueError):
        rand("obj")
    assert rand("obj", fraction=0.1).fraction == 0.1
    assert rand("obj", pages=5).pages == 5


def test_seq_with_absolute_pages():
    access = seq("log", pages=2, kind="write")
    assert access.pages == 2
    assert access.kind == "write"


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        AccessSpec(obj="o", mode="zigzag", fraction=1.0)


def test_empty_phase_rejected():
    with pytest.raises(ValueError):
        Phase(())


def test_empty_profile_rejected():
    with pytest.raises(ValueError):
        QueryProfile("q", ())


def test_objects_deduplicated_in_order():
    profile = QueryProfile("q", (
        phase(seq("a"), seq("b")),
        phase(seq("a"), seq("c")),
    ))
    assert profile.objects == ["a", "b", "c"]


def test_renamed_rewrites_every_access():
    profile = QueryProfile("q", (
        phase(seq("a"), rand("b", pages=3)),
    ))
    renamed = profile.renamed({"a": "x.a", "b": "x.b"})
    assert renamed.objects == ["x.a", "x.b"]
    # Original untouched.
    assert profile.objects == ["a", "b"]
    # Other attributes survive the rename.
    access = renamed.phases[0].accesses[1]
    assert access.pages == 3
    assert access.mode == "rand"
