"""Tests for the opt-in buffer-pool cache."""

import pytest

from repro import units
from repro.db.cache import CachedContext, LruPageCache
from repro.storage.streams import ScanStream


class TestLruPageCache:
    def test_miss_then_hit(self):
        cache = LruPageCache(units.mib(1))
        assert cache.lookup("a", 0) is False
        cache.insert("a", 0)
        assert cache.lookup("a", 0) is True
        assert cache.hits == 1
        assert cache.misses == 1

    def test_pages_keyed_by_object_and_page(self):
        cache = LruPageCache(units.mib(1))
        cache.insert("a", 0)
        assert cache.lookup("b", 0) is False
        assert cache.lookup("a", 8192) is False
        # Same page, offset within it: hit.
        cache.insert("a", 8192)
        assert cache.lookup("a", 8192 + 100) is True

    def test_lru_eviction(self):
        cache = LruPageCache(2 * units.kib(8))
        cache.insert("a", 0)
        cache.insert("a", 8192)
        cache.insert("a", 16384)  # evicts page 0
        assert cache.lookup("a", 0) is False
        assert cache.lookup("a", 8192) is True

    def test_recency_refresh_prevents_eviction(self):
        cache = LruPageCache(2 * units.kib(8))
        cache.insert("a", 0)
        cache.insert("a", 8192)
        cache.lookup("a", 0)          # refresh page 0
        cache.insert("a", 16384)      # evicts page 1, not page 0
        assert cache.lookup("a", 0) is True
        assert cache.lookup("a", 8192) is False

    def test_zero_capacity_never_caches(self):
        cache = LruPageCache(0)
        cache.insert("a", 0)
        assert cache.lookup("a", 0) is False

    def test_invalidate(self):
        cache = LruPageCache(units.mib(1))
        cache.insert("a", 0)
        cache.insert("b", 0)
        cache.invalidate("a")
        assert cache.lookup("a", 0) is False
        assert cache.lookup("b", 0) is True
        cache.invalidate()
        assert len(cache) == 0

    def test_hit_ratio(self):
        cache = LruPageCache(units.mib(1))
        cache.insert("a", 0)
        cache.lookup("a", 0)
        cache.lookup("a", 8192)
        assert cache.hit_ratio == pytest.approx(0.5)


class TestCachedContext:
    def test_second_scan_is_nearly_free(self, single_disk_ctx, disk_target):
        cached = CachedContext(single_disk_ctx, capacity_bytes=units.mib(8))
        engine = single_disk_ctx.engine
        ScanStream(cached, "obj", length=units.mib(4), window=4).start()
        engine.run()
        first_scan_time = engine.now
        first_scan_ios = disk_target.completed

        ScanStream(cached, "obj", length=units.mib(4), window=4).start()
        engine.run()
        second_scan_time = engine.now - first_scan_time

        # The second scan hits the buffer pool entirely.
        assert disk_target.completed == first_scan_ios
        assert second_scan_time < first_scan_time / 5
        assert cached.cache.hit_ratio > 0.4

    def test_cache_smaller_than_object_thrashes(self, single_disk_ctx,
                                                disk_target):
        cached = CachedContext(single_disk_ctx, capacity_bytes=units.mib(1))
        engine = single_disk_ctx.engine
        ScanStream(cached, "obj", length=units.mib(4), window=2).start()
        engine.run()
        before = disk_target.completed
        ScanStream(cached, "obj", length=units.mib(4), window=2).start()
        engine.run()
        # LRU + sequential rescan: every page was evicted before reuse.
        assert disk_target.completed == 2 * before

    def test_writes_are_write_through(self, single_disk_ctx, disk_target):
        cached = CachedContext(single_disk_ctx, capacity_bytes=units.mib(8))
        engine = single_disk_ctx.engine
        ScanStream(cached, "obj", length=units.mib(1), window=2,
                   kind="write").start()
        engine.run()
        # Writes reached the device...
        assert disk_target.bytes_written == units.mib(1)
        # ...and populated the cache for subsequent reads.
        ScanStream(cached, "obj", length=units.mib(1), window=2).start()
        engine.run()
        assert disk_target.bytes_read == 0

    def test_context_properties_delegate(self, single_disk_ctx):
        cached = CachedContext(single_disk_ctx, capacity_bytes=units.mib(1))
        assert cached.engine is single_disk_ctx.engine
        assert cached.placement is single_disk_ctx.placement
        assert cached.targets == single_disk_ctx.targets