"""Tests for the workload execution engine."""

import pytest

from repro import units
from repro.db.engine import run_consolidation, run_olap, run_oltp
from repro.db.profiles import QueryProfile, phase, rand, seq
from repro.db.schema import Database, DatabaseObject, LOG, TABLE, TEMP
from repro.db.tpcc import sample_transaction
from repro.storage.disk import DiskDrive


def _db():
    return Database("mini", [
        DatabaseObject("T", TABLE, units.mib(8)),
        DatabaseObject("U", TABLE, units.mib(4)),
        DatabaseObject("TMP", TEMP, units.mib(4)),
        DatabaseObject("LOG", LOG, units.mib(2)),
    ])


def _devices(n=2, mib=64):
    return [DiskDrive("d%d" % j, units.mib(mib)) for j in range(n)]


def _see(db, n=2):
    return {name: [1.0 / n] * n for name in db.object_names}


def _scan_query(name="q", fraction=1.0):
    return QueryProfile(name, (phase(seq("T", fraction)),))


def test_olap_run_completes_all_queries():
    db = _db()
    result = run_olap(db, [_scan_query()] * 3, _see(db), _devices())
    assert result.completed_queries == 3
    assert result.elapsed_s > 0
    assert len(result.query_times) == 3


def test_concurrency_overlaps_non_interfering_queries():
    """Queries on separate objects laid out on separate disks overlap,

    so concurrency shrinks wall-clock time."""
    db = _db()
    separated = {"T": [1.0, 0.0], "U": [0.0, 1.0],
                 "TMP": [0.0, 1.0], "LOG": [0.0, 1.0]}
    qt = QueryProfile("qt", (phase(seq("T", 1.0)),))
    qu = QueryProfile("qu", (phase(seq("U", 1.0)),))
    # Ordered so that consecutive active queries always touch different
    # objects; otherwise same-object interference dominates.
    queries = [qt, qu, qu, qt]
    serial = run_olap(db, queries, separated, _devices(), concurrency=1)
    concurrent = run_olap(db, queries, separated, _devices(), concurrency=2)
    assert concurrent.elapsed_s < serial.elapsed_s


def test_concurrent_same_object_scans_interfere():
    """Concurrent scans of one object interleave at the device, break

    readahead, and can take longer than running serially — the
    interference phenomenon the whole paper is about."""
    db = _db()
    serial = run_olap(db, [_scan_query()] * 4, _see(db), _devices(),
                      concurrency=1)
    concurrent = run_olap(db, [_scan_query()] * 4, _see(db), _devices(),
                          concurrency=4)
    assert concurrent.elapsed_s > serial.elapsed_s


def test_phases_run_in_sequence():
    db = _db()
    two_phase = QueryProfile("q", (
        phase(seq("T", 0.5)),
        phase(seq("TMP", 0.5, kind="write")),
    ))
    result = run_olap(db, [two_phase], _see(db), _devices(),
                      collect_trace=True)
    temp_times = [r.finish_time for r in result.trace if r.obj == "TMP"]
    table_times = [r.finish_time for r in result.trace if r.obj == "T"]
    assert min(temp_times) > max(table_times) - 1e-9


def test_random_access_fraction_scales_with_object():
    db = _db()
    probe = QueryProfile("q", (phase(rand("T", fraction=0.25)),))
    result = run_olap(db, [probe], _see(db), _devices(), collect_trace=True)
    expected = 0.25 * units.mib(8) / units.kib(8)
    assert result.completed_queries == 1
    assert len(result.trace) == pytest.approx(expected, rel=0.05)


def test_log_appends_advance_and_wrap():
    db = _db()
    committer = QueryProfile("q", (
        phase(seq("LOG", pages=64, kind="write", window=1)),
    ))
    result = run_olap(db, [committer] * 6, _see(db), _devices(),
                      collect_trace=True)
    offsets = [r.logical_offset for r in result.trace if r.obj == "LOG"]
    # 6 x 64 pages against a 256-page log: appends advanced and wrapped
    # without ever exceeding the object.
    assert max(offsets) < units.mib(2)
    assert len(set(offsets)) == 256


def test_trace_collection_optional():
    db = _db()
    untraced = run_olap(db, [_scan_query()], _see(db), _devices())
    assert untraced.trace is None


def test_utilizations_reported_per_target():
    db = _db()
    result = run_olap(db, [_scan_query()], _see(db), _devices())
    assert set(result.utilizations) == {"d0", "d1"}
    assert all(0 <= u <= 1 for u in result.utilizations.values())


def test_oltp_reports_throughput():
    db = _db()
    mini_txn = QueryProfile("NewOrder", (
        phase(rand("T", pages=2), rand("U", pages=1)),
        phase(seq("LOG", pages=1, kind="write", window=1)),
    ))
    result = run_oltp(db, lambda rng: mini_txn, _see(db), _devices(),
                      terminals=3, n_transactions=30)
    assert result.completed_transactions == 30
    assert result.tpm > 0


def test_consolidation_runs_both_sides():
    db = _db()
    mini_txn = QueryProfile("NewOrder", (
        phase(rand("U", pages=1)),
        phase(seq("LOG", pages=1, kind="write", window=1)),
    ))
    result = run_consolidation(
        db, [_scan_query()] * 3, lambda rng: mini_txn, _see(db), _devices(),
        olap_concurrency=1, terminals=2,
    )
    assert result.completed_queries == 3
    assert result.completed_transactions > 0
    assert result.tpm is not None


def test_consolidation_oltp_stops_with_olap():
    """The OLTP side stops at the OLAP finish (paper §6.3 procedure)."""
    db = _db()
    mini_txn = QueryProfile("NewOrder", (
        phase(rand("U", pages=1)),
    ))
    result = run_consolidation(
        db, [_scan_query()], lambda rng: mini_txn, _see(db), _devices(),
    )
    # All transaction completions happen within a short drain window of
    # the workload end.
    assert result.elapsed_s > 0


def test_layout_affects_elapsed_time():
    """Two interfering scans: separated layout beats co-located."""
    db = _db()
    both = QueryProfile("q", (phase(seq("T", 1.0), seq("U", 1.0)),))
    colocated = {n: [1.0, 0.0] if n in ("T", "U") else [0.0, 1.0]
                 for n in db.object_names}
    separated = {"T": [1.0, 0.0], "U": [0.0, 1.0],
                 "TMP": [0.0, 1.0], "LOG": [0.0, 1.0]}
    slow = run_olap(db, [both] * 8, colocated, _devices(), seed=3)
    fast = run_olap(db, [both] * 8, separated, _devices(), seed=3)
    assert fast.elapsed_s < slow.elapsed_s


def test_tpcc_sampler_integrates():
    from repro.db.tpcc import tpcc_database

    db = tpcc_database(scale=1 / 256)
    fractions = {name: [0.5, 0.5] for name in db.object_names}
    devices = _devices(2, mib=256)
    result = run_oltp(db, sample_transaction, fractions, devices,
                      terminals=2, n_transactions=20)
    assert result.completed_transactions == 20
