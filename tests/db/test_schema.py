"""Tests for database catalogs."""

import pytest

from repro import units
from repro.db.schema import Database, DatabaseObject, INDEX, LOG, TABLE, TEMP


def _db():
    return Database("test", [
        DatabaseObject("t1", TABLE, units.mib(100)),
        DatabaseObject("i1", INDEX, units.mib(10)),
        DatabaseObject("tmp", TEMP, units.mib(50)),
        DatabaseObject("log", LOG, units.mib(20)),
    ])


def test_lookup_and_contains():
    db = _db()
    assert db["t1"].size == units.mib(100)
    assert "i1" in db
    assert "ghost" not in db
    assert len(db) == 4


def test_total_size_and_sizes_mapping():
    db = _db()
    assert db.total_size == units.mib(180)
    assert db.sizes()["tmp"] == units.mib(50)


def test_of_kind_filters():
    db = _db()
    assert db.of_kind(TABLE) == ["t1"]
    assert db.of_kind(INDEX) == ["i1"]
    assert db.of_kind(LOG) == ["log"]


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        DatabaseObject("x", "blob", 100)


def test_zero_size_rejected():
    with pytest.raises(ValueError):
        DatabaseObject("x", TABLE, 0)


def test_duplicate_names_rejected():
    with pytest.raises(ValueError):
        Database("bad", [
            DatabaseObject("a", TABLE, 1),
            DatabaseObject("a", INDEX, 1),
        ])


def test_scaled_preserves_proportions():
    db = _db().scaled(0.5)
    assert db["t1"].size == units.mib(50)
    assert db["i1"].size == units.mib(5)


def test_scaled_floors_at_one_stripe():
    db = _db().scaled(1e-9)
    assert db["i1"].size == units.DEFAULT_STRIPE_SIZE


def test_merged_with_prefixes():
    merged = _db().merged_with(_db(), prefix_self="h.", prefix_other="c.")
    assert "h.t1" in merged
    assert "c.t1" in merged
    assert len(merged) == 8
    assert merged.total_size == 2 * _db().total_size
