"""Tests for the characterization report."""

import pytest

from repro.experiments.characterize import _bar, characterize
from repro.storage.request import CompletionRecord


def _record(obj, t, offset=0, kind="read", target="t0"):
    return CompletionRecord(
        submit_time=t, finish_time=t, target=target, obj=obj, stream_id=1,
        kind=kind, lba=0, logical_offset=offset, size=8192,
        service_time=0.002,
    )


@pytest.fixture
def trace():
    records = []
    for i in range(200):
        records.append(_record("hot", i * 0.01, offset=i * 8192))
    for i in range(20):
        records.append(_record("cold", i * 0.1, target="t1"))
    return records


def test_report_contains_all_sections(trace):
    report = characterize(trace)
    assert "Workload characterization" in report
    assert "Overlap matrix" in report
    assert "Per-target busy fraction" in report


def test_hottest_objects_listed_first(trace):
    report = characterize(trace, top=2)
    lines = report.splitlines()
    hot_line = next(i for i, l in enumerate(lines) if l.startswith("hot"))
    cold_line = next(i for i, l in enumerate(lines) if l.startswith("cold"))
    assert hot_line < cold_line


def test_top_limits_the_detail_table(trace):
    report = characterize(trace, top=1)
    table = report.split("Overlap matrix")[0]
    assert "cold" not in table


def test_busy_section_covers_both_targets(trace):
    report = characterize(trace)
    busy = report.split("Per-target busy fraction")[1]
    assert "t0" in busy
    assert "t1" in busy


def test_bar_rendering():
    assert _bar(0.0) == "." * 24
    assert _bar(1.0) == "#" * 24
    assert _bar(0.5).count("#") == 12
    # Clamped outside [0, 1].
    assert _bar(7.0) == "#" * 24
    assert _bar(-1.0) == "." * 24


def test_report_on_real_simulation(single_disk_ctx, disk_target, rng):
    from repro.storage.streams import RandomStream, ScanStream

    ScanStream(single_disk_ctx, "obj", length=1 << 20, window=4).start()
    single_disk_ctx.engine.run()
    report = characterize(disk_target.trace)
    assert "obj" in report