"""Tests for device scenario specifications."""

import pytest

from repro import units
from repro.experiments.scenarios import (
    DeviceSpec,
    config_2_1_1,
    config_3_1,
    disk_spec,
    disks_plus_ssd,
    four_disks,
    raid0_spec,
    ssd_spec,
)
from repro.storage.disk import DiskDrive
from repro.storage.raid import Raid0Group
from repro.storage.ssd import SolidStateDrive


def test_disk_spec_builds_disk():
    spec = disk_spec("d", scale=1 / 64)
    device = spec.build()
    assert isinstance(device, DiskDrive)
    assert device.capacity == int(18.4 * units.GIB / 64)


def test_raid_spec_builds_group():
    spec = raid0_spec("r", 3, scale=1 / 64)
    device = spec.build()
    assert isinstance(device, Raid0Group)
    assert device.n_members == 3
    assert device.capacity == 3 * int(18.4 * units.GIB / 64)


def test_ssd_spec_capacity_configurable():
    spec = ssd_spec("s", capacity_gib=6, scale=1.0)
    device = spec.build()
    assert isinstance(device, SolidStateDrive)
    assert device.capacity == 6 * units.GIB


def test_build_returns_fresh_instances():
    spec = disk_spec("d")
    assert spec.build() is not spec.build()


def test_model_key_distinguishes_kinds():
    assert disk_spec("a").model_key != ssd_spec("a").model_key
    assert raid0_spec("a", 2).model_key != raid0_spec("a", 3).model_key


def test_model_key_shared_across_names():
    assert disk_spec("a").model_key == disk_spec("b").model_key


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        DeviceSpec("x", "tape", 100).build()


def test_standard_configurations():
    assert len(four_disks()) == 4
    assert [s.kind for s in config_3_1()] == ["raid0", "disk15k"]
    assert [s.kind for s in config_2_1_1()] == ["raid0", "disk15k", "disk15k"]
    assert [s.kind for s in disks_plus_ssd()][-1] == "ssd"


def test_config_3_1_capacity_totals_match_four_disks():
    base = sum(s.capacity for s in four_disks(1 / 64))
    grouped = sum(s.capacity for s in config_3_1(1 / 64))
    assert grouped == base
