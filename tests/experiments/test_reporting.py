"""Tests for report formatting."""

from repro.core.layout import Layout
from repro.experiments.reporting import format_layout, format_table, speedup
from repro.workload.spec import ObjectWorkload


def test_format_table_alignment():
    text = format_table(
        ["Workload", "SEE", "Optimized", "Speedup"],
        [["OLAP1-63", 40927, 31879, "1.28x"]],
        title="Figure 11",
    )
    lines = text.splitlines()
    assert lines[0] == "Figure 11"
    assert "Workload" in lines[1]
    assert "40927" in lines[3]
    assert "1.28x" in lines[3]


def test_format_table_floats_rendered():
    text = format_table(["a"], [[1.23456]])
    assert "1.23" in text


def test_speedup_formatting():
    assert speedup(40927, 31879) == "1.28x"


def test_format_layout_orders_by_rate():
    layout = Layout.see(["cold", "hot"], ["t0", "t1"])
    workloads = [
        ObjectWorkload("cold", read_rate=1),
        ObjectWorkload("hot", read_rate=100),
    ]
    text = format_layout(layout, workloads)
    assert text.index("hot") < text.index("cold")


def test_format_layout_top_cuts_list():
    layout = Layout.see(["a", "b", "c"], ["t0"])
    workloads = [
        ObjectWorkload("a", read_rate=3),
        ObjectWorkload("b", read_rate=2),
        ObjectWorkload("c", read_rate=1),
    ]
    text = format_layout(layout, workloads, top=2)
    assert "c" not in [line.split()[0] for line in text.splitlines()]
