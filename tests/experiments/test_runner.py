"""Tests for the experiment pipeline (uses tiny calibrations)."""

import pytest

from repro import units
from repro.db.profiles import QueryProfile, phase, seq
from repro.db.schema import Database, DatabaseObject, TABLE
from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    build_problem,
    clear_model_cache,
    fit_workloads_from_run,
    get_target_model,
    measure_olap,
    see_fractions,
)
from repro.experiments.scenarios import disk_spec
from repro.models.calibration import CalibrationConfig

TINY = CalibrationConfig(
    sizes=(units.kib(8),), run_counts=(1, 16), competitor_counts=(0, 2),
    n_requests=120,
)


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch, tmp_path):
    monkeypatch.setattr(runner_module, "CACHE_DIR", str(tmp_path / "cache"))
    clear_model_cache()
    yield
    clear_model_cache()


@pytest.fixture
def db():
    return Database("mini", [
        DatabaseObject("T", TABLE, units.mib(8)),
        DatabaseObject("U", TABLE, units.mib(4)),
    ])


@pytest.fixture
def specs():
    return [disk_spec("d%d" % j, scale=1 / 256) for j in range(2)]


def test_get_target_model_caches_in_memory(specs):
    first = get_target_model(specs[0], config=TINY)
    second = get_target_model(specs[1], config=TINY)
    # Same device type: the underlying cost tables are shared objects.
    assert first.read_model is second.read_model


def test_get_target_model_uses_disk_cache(specs, tmp_path):
    get_target_model(specs[0], config=TINY)
    clear_model_cache()
    # Second load hits the JSON cache; results agree.
    again = get_target_model(specs[0], config=TINY)
    assert float(again.read_model.lookup(8192, 1, 0)) > 0


def test_see_fractions_shape(db):
    fractions = see_fractions(db, 4)
    assert fractions["T"] == [0.25] * 4


def test_measure_and_fit_round_trip(db, specs):
    scan = QueryProfile("q", (phase(seq("T", 1.0)),))
    result = measure_olap(db, [scan], see_fractions(db, 2), specs,
                          collect_trace=True)
    fitted = fit_workloads_from_run(result, db)
    names = {w.name for w in fitted}
    assert names == {"T", "U"}
    t_spec = next(w for w in fitted if w.name == "T")
    u_spec = next(w for w in fitted if w.name == "U")
    assert t_spec.read_rate > 0
    assert u_spec.total_rate == 0  # idle object still described


def test_fit_requires_trace(db, specs):
    scan = QueryProfile("q", (phase(seq("T", 1.0)),))
    result = measure_olap(db, [scan], see_fractions(db, 2), specs)
    with pytest.raises(ValueError):
        fit_workloads_from_run(result, db)


def test_build_problem_assembles_targets(db, specs):
    scan = QueryProfile("q", (phase(seq("T", 1.0)),))
    result = measure_olap(db, [scan], see_fractions(db, 2), specs,
                          collect_trace=True)
    fitted = fit_workloads_from_run(result, db)
    problem = build_problem(db, specs, fitted, calibration=TINY)
    assert problem.n_objects == 2
    assert problem.n_targets == 2
    # Capacities carry a one-stripe-per-object placement slack so every
    # advisor layout is physically implementable by a striping LVM.
    import repro.units as units_module

    slack = 2 * units_module.DEFAULT_STRIPE_SIZE
    assert problem.capacities[0] == specs[0].capacity - slack
    without = build_problem(db, specs, fitted, calibration=TINY,
                            placement_slack=False)
    assert without.capacities[0] == specs[0].capacity
