"""Tests for seed-deterministic scenario compilation.

Covers the determinism contract (same spec + same seed ⇒ identical
signature and byte-identical synthetic trace), the schedule-shape
rate-integral closed forms, workload fitting, and layout lowering.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScenarioError
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.schema import ScenarioSpec

from tests.scenarios.conftest import base_payload


def compiled(payload=None, seed=None, **overrides):
    payload = payload or base_payload(**overrides)
    spec = ScenarioSpec.from_payload(payload, label="unit.yaml")
    return compile_scenario(spec, seed=seed)


def with_schedule(*entries, duration=20):
    payload = base_payload()
    payload["duration_s"] = duration
    payload["schedule"] = list(entries)
    return payload


# ----------------------------------------------------------------------
# Determinism contract
# ----------------------------------------------------------------------

SHAPE_ENTRIES = st.sampled_from([
    {"mix": "steady", "shape": "constant", "t0": 0, "t1": 20,
     "level": 1.5},
    {"mix": "steady", "shape": "ramp", "t0": 2, "t1": 18,
     "from": 0.1, "to": 2.0},
    {"mix": "steady", "shape": "diurnal", "t0": 0, "t1": 20,
     "mean": 1.0, "amplitude": 0.8, "period_s": 7},
    {"mix": "steady", "shape": "step", "t0": 0, "t1": 20,
     "base": 0.5, "peak": 3.0, "at": 6, "until": 11},
])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       entry=SHAPE_ENTRIES,
       with_tenants=st.booleans())
def test_same_seed_same_compile(seed, entry, with_tenants):
    payload = with_schedule(entry)
    if with_tenants:
        payload["tenants"] = {"arrival_rate_per_s": 0.4,
                              "mean_lifetime_s": 5, "max_active": 4}
    one = compiled(payload, seed=seed)
    two = compiled(payload, seed=seed)
    assert one.signature() == two.signature()
    assert one.synthesize_trace() == two.synthesize_trace()
    assert one.tenant_schedule() == two.tenant_schedule()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_different_seed_different_trace(seed):
    payload = with_schedule(
        {"mix": "steady", "shape": "constant", "t0": 0, "t1": 20},
    )
    one = compiled(payload, seed=seed)
    two = compiled(payload, seed=seed + 1)
    assert one.signature() != two.signature()
    assert one.synthesize_trace() != two.synthesize_trace()


def test_signature_tracks_schedule_change():
    base = compiled(with_schedule(
        {"mix": "steady", "shape": "constant", "t0": 0, "t1": 20,
         "level": 1.0},
    ))
    changed = compiled(with_schedule(
        {"mix": "steady", "shape": "constant", "t0": 0, "t1": 20,
         "level": 1.1},
    ))
    assert base.signature() != changed.signature()


def test_trace_is_sorted_and_attributed():
    trace = compiled().synthesize_trace()
    assert trace, "constant 100 req/s over 20 s produced no records"
    finishes = [r.finish_time for r in trace]
    assert finishes == sorted(finishes)
    assert {r.target for r in trace} <= {"d0", "d1"}
    assert {r.obj for r in trace} <= {"hot", "cold"}


# ----------------------------------------------------------------------
# Rate-integral closed forms
# ----------------------------------------------------------------------

def test_constant_rate_integral():
    c = compiled(with_schedule(
        {"mix": "steady", "shape": "constant", "t0": 0, "t1": 20,
         "level": 1.5},
    ))
    assert c.rate_integral() == pytest.approx(100 * 1.5 * 20)


def test_ramp_rate_integral_is_endpoint_mean():
    c = compiled(with_schedule(
        {"mix": "steady", "shape": "ramp", "t0": 0, "t1": 20,
         "from": 0.2, "to": 1.0},
    ))
    assert c.rate_integral() == pytest.approx(100 * 20 * (0.2 + 1.0) / 2)


def test_diurnal_rate_integral_cancels_over_whole_periods():
    # Two whole periods: the sine term integrates to exactly zero.
    c = compiled(with_schedule(
        {"mix": "steady", "shape": "diurnal", "t0": 0, "t1": 20,
         "mean": 1.0, "amplitude": 0.9, "period_s": 10},
    ))
    assert c.rate_integral() == pytest.approx(100 * 20, rel=1e-9)


def test_diurnal_partial_period_matches_analytic_integral():
    amplitude, period, t1 = 0.5, 8.0, 14.0
    c = compiled(with_schedule(
        {"mix": "steady", "shape": "diurnal", "t0": 0, "t1": t1,
         "mean": 1.0, "amplitude": amplitude, "period_s": period},
        duration=t1,
    ))
    omega = 2 * math.pi / period
    analytic = 100 * (t1 + amplitude * (1 - math.cos(omega * t1)) / omega)
    assert c.rate_integral() == pytest.approx(analytic, rel=1e-9)


def test_step_rate_integral_adds_peak_window():
    c = compiled(with_schedule(
        {"mix": "steady", "shape": "step", "t0": 0, "t1": 20,
         "base": 1.0, "peak": 3.0, "at": 5, "until": 10},
    ))
    assert c.rate_integral() == pytest.approx(100 * (15 * 1.0 + 5 * 3.0))


def test_drift_conserves_total_rate():
    payload = with_schedule(
        {"shape": "drift", "from_mix": "steady", "to_mix": "other",
         "t0": 0, "t1": 20},
    )
    payload["mixes"]["other"] = {
        "rate": 100,
        "tasks": [{"name": "scan", "weight": 1, "objects": "cold",
                   "kind": "read", "run_count": 8}],
    }
    c = compiled(payload)
    # Equal-rate crossfade: total request mass is conserved while the
    # per-object split moves from 'steady' to 'other'.
    assert c.rate_integral() == pytest.approx(100 * 20, rel=1e-9)
    first, last = c.segments[0], c.segments[-1]
    assert first.object_rate("hot") > last.object_rate("hot")
    assert first.object_rate("cold") < last.object_rate("cold")


# ----------------------------------------------------------------------
# Workload fitting and lowering
# ----------------------------------------------------------------------

def test_mean_workloads_split_rates():
    workloads = {w.name: w for w in compiled().mean_workloads()}
    # 70 req/s read on hot + half of the 30 req/s write set share.
    assert workloads["hot"].read_rate == pytest.approx(70.0)
    assert workloads["hot"].write_rate == pytest.approx(15.0)
    assert workloads["cold"].write_rate == pytest.approx(15.0)
    assert workloads["cold"].read_rate == pytest.approx(0.0)
    assert workloads["hot"].overlap["cold"] == pytest.approx(1.0)


def test_baseline_workloads_cover_first_entry():
    c = compiled(with_schedule(
        {"mix": "steady", "shape": "constant", "t0": 0, "t1": 10,
         "level": 2.0},
        {"mix": "steady", "shape": "constant", "t0": 10, "t1": 20,
         "level": 0.5},
    ))
    baseline = {w.name: w for w in c.baseline_workloads()}
    assert baseline["hot"].read_rate == pytest.approx(140.0)


def test_problem_payload_round_trips_through_cli_loader():
    from repro.cli import load_problem

    problem = load_problem(compiled().problem_payload())
    assert problem.object_names == ["hot", "cold"]
    assert [t.name for t in problem.targets] == ["d0", "d1"]


def test_problem_payload_requires_targets():
    payload = base_payload()
    payload.pop("targets")
    with pytest.raises(ScenarioError, match="targets"):
        compiled(payload).problem_payload()


def test_initial_layout_lowering():
    payload = base_payload()
    payload["initial_layout"] = {"hot": [1.0, 0.0], "cold": [0.5, 0.5]}
    layout = compiled(payload).initial_layout()
    fractions = layout.fractions_by_name()
    assert fractions["hot"] == pytest.approx([1.0, 0.0])
    assert fractions["cold"] == pytest.approx([0.5, 0.5])
    assert compiled(base_payload()).initial_layout() is None


def test_chunks_partition_trace():
    c = compiled()
    trace = c.synthesize_trace()
    chunks = c.chunks(5.0, trace=trace)
    assert len(chunks) == 4
    assert sum(len(chunk) for chunk in chunks) == len(trace)
    for index, chunk in enumerate(chunks[:-1]):
        for record in chunk:
            assert record.finish_time < (index + 1) * 5.0 + 1e-9


def test_tenant_schedule_respects_cap_and_horizon():
    payload = base_payload()
    payload["tenants"] = {"arrival_rate_per_s": 2.0,
                          "mean_lifetime_s": 6, "max_active": 3}
    c = compiled(payload)
    events = c.tenant_schedule()
    assert events, "expected arrivals at 2/s over 20 s"
    for event in events:
        assert 0.0 <= event.arrive_s < event.depart_s <= c.duration_s
    for event in events:
        live = sum(1 for other in events
                   if other.arrive_s <= event.arrive_s < other.depart_s)
        assert live <= 3


def test_negative_compile_seed_rejected():
    with pytest.raises(ScenarioError, match="non-negative"):
        compiled(seed=-1)
