"""Tests for the scenario × controller matrix runner."""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios.matrix import (
    check_results,
    load_matrix,
    run_cell,
    run_matrix,
    save_results,
)

from tests.scenarios.conftest import base_payload


def write_scenario(tmp_path, name="cell", **overrides):
    payload = base_payload(**overrides)
    payload["name"] = name
    path = tmp_path / ("%s.yaml" % name)
    lines = [
        "name: %s" % payload["name"],
        "duration_s: %s" % payload["duration_s"],
        "seed: %s" % payload["seed"],
        "objects:",
        "  hot: {size_mib: 32}",
        "  cold: {size_mib: 64}",
        "targets:",
        "  - {name: d0, kind: disk15k, capacity_mib: 200}",
        "  - {name: d1, kind: disk15k, capacity_mib: 200}",
        "mixes:",
        "  steady:",
        "    rate: 50",
        "    tasks:",
        "      - {name: read, weight: 70, objects: hot, kind: read}",
        "      - {name: write, weight: 30, objects: cold, kind: write}",
        "schedule:",
        "  - {mix: steady, shape: constant, t0: 0, t1: %s}"
        % payload["duration_s"],
    ]
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def write_matrix(tmp_path, scenarios, controllers=None, workers=1):
    controllers = controllers or [{"name": "frozen", "enabled": False}]
    lines = ["name: unit", "seed: 3", "workers: %d" % workers,
             "scenarios:"]
    lines += ["  - %s" % ref for ref in scenarios]
    lines.append("controllers:")
    for entry in controllers:
        fields = ", ".join("%s: %s" % (k, str(v).lower()
                                       if isinstance(v, bool) else v)
                           for k, v in entry.items())
        lines.append("  - {%s}" % fields)
    path = tmp_path / "matrix.yaml"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def test_load_matrix_validates(tmp_path):
    scenario = write_scenario(tmp_path)
    path = write_matrix(tmp_path, [scenario],
                        [{"name": "frozen", "enabled": False},
                         {"name": "eager", "patience": 1}])
    matrix = load_matrix(path)
    assert matrix["name"] == "unit"
    assert matrix["scenarios"] == [scenario]
    assert [c["name"] for c in matrix["controllers"]] == ["frozen",
                                                          "eager"]


def test_load_matrix_rejects_unknown_config_field(tmp_path):
    scenario = write_scenario(tmp_path)
    path = write_matrix(tmp_path, [scenario],
                        [{"name": "bad", "no_such_knob": 1}])
    with pytest.raises(ScenarioError, match="no_such_knob"):
        load_matrix(path)


def test_load_matrix_rejects_duplicate_controllers(tmp_path):
    scenario = write_scenario(tmp_path)
    path = write_matrix(tmp_path, [scenario],
                        [{"name": "x"}, {"name": "x"}])
    with pytest.raises(ScenarioError, match="duplicates"):
        load_matrix(path)


def test_load_matrix_rejects_missing_scenario(tmp_path):
    path = write_matrix(tmp_path, [str(tmp_path / "ghost.yaml")])
    with pytest.raises(ScenarioError, match="does not exist"):
        load_matrix(path)


def test_run_cell_stats(tmp_path):
    scenario = write_scenario(tmp_path, duration_s=10)
    cell = run_cell(scenario, {"name": "frozen", "enabled": False},
                    seed=1)
    assert cell["status"] == "ok"
    assert cell["records"] > 0
    assert cell["resolves"] == 0
    assert cell["util_end"] == cell["util_end_frozen"]
    assert cell["latency_p99_ms"] >= cell["latency_p50_ms"] > 0


def test_run_cell_is_seed_deterministic(tmp_path):
    scenario = write_scenario(tmp_path, duration_s=10)
    one = run_cell(scenario, {"name": "frozen", "enabled": False}, seed=5)
    two = run_cell(scenario, {"name": "frozen", "enabled": False}, seed=5)
    for key in ("records", "latency_p50_ms", "latency_p99_ms",
                "util_baseline", "util_end"):
        assert one[key] == two[key]


def test_matrix_isolates_failing_cells(tmp_path):
    good = write_scenario(tmp_path, name="good", duration_s=10)
    # Syntactically valid scenario with no targets section: the cell
    # fails at problem lowering, the sweep must survive it.
    bad = tmp_path / "bad.yaml"
    bad.write_text("\n".join([
        "name: bad", "duration_s: 5",
        "objects: {x: {size_mib: 8}}",
        "mixes:",
        "  m: {rate: 10, tasks: [{name: t, weight: 1, objects: x}]}",
        "schedule:",
        "  - {mix: m, shape: constant, t0: 0, t1: 5}",
    ]) + "\n")
    path = write_matrix(tmp_path, [good, str(bad)])
    results = run_matrix(path)
    assert results["ok"] == 1
    assert results["errors"] == 1
    statuses = {cell["scenario"]: cell["status"]
                for cell in results["cells"]}
    assert statuses["good"] == "ok"
    failed = [c for c in results["cells"] if c["status"] == "error"]
    assert "targets" in failed[0]["error"]
    check_results(results)  # one ok cell is enough for the gate


def test_matrix_parallel_matches_serial(tmp_path):
    refs = [write_scenario(tmp_path, name="s%d" % i, duration_s=8,
                           seed=i + 1)
            for i in range(2)]
    path = write_matrix(tmp_path, refs, workers=2)
    serial = run_matrix(path, workers=1)
    parallel = run_matrix(path, workers=2)
    strip = ("elapsed_s",)
    for a, b in zip(serial["cells"], parallel["cells"]):
        assert {k: v for k, v in a.items() if k not in strip} \
            == {k: v for k, v in b.items() if k not in strip}


def test_save_and_check_results(tmp_path):
    scenario = write_scenario(tmp_path, duration_s=10)
    results = run_matrix(write_matrix(tmp_path, [scenario]))
    out = tmp_path / "bench.json"
    save_results(results, str(out))
    loaded = json.loads(out.read_text())
    check_results(loaded)
    assert loaded["ok"] == 1


def test_check_results_rejects_malformed():
    with pytest.raises(ScenarioError):
        check_results({"cells": [{"scenario": "x"}]})
    with pytest.raises(ScenarioError, match="no successful"):
        check_results({"cells": [
            {"scenario": "x", "controller": "c", "status": "error",
             "error": "boom"},
        ]})
