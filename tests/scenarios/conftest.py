"""Shared builders for the scenario-language tests."""

import copy

import pytest


def base_payload(**overrides):
    """A minimal valid scenario payload; override fields per test."""
    payload = {
        "name": "unit",
        "description": "unit-test scenario",
        "duration_s": 20,
        "seed": 7,
        "objects": {
            "hot": {"size_mib": 32},
            "cold": {"size_mib": 64},
        },
        "sets": {"all": ["hot", "cold"]},
        "targets": [
            {"name": "d0", "kind": "disk15k", "capacity_mib": 200},
            {"name": "d1", "kind": "disk15k", "capacity_mib": 200},
        ],
        "mixes": {
            "steady": {
                "rate": 100,
                "tasks": [
                    {"name": "read", "weight": 70, "objects": "hot",
                     "kind": "read"},
                    {"name": "write", "weight": 30, "objects": "all",
                     "kind": "write"},
                ],
            },
        },
        "schedule": [
            {"mix": "steady", "shape": "constant", "t0": 0, "t1": 20,
             "level": 1.0},
        ],
    }
    payload.update(copy.deepcopy(overrides))
    return payload


@pytest.fixture
def payload():
    return base_payload()
