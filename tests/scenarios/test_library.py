"""Tests for the shipped scenario library."""

import shutil

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    compile_scenario,
    library_dir,
    list_scenarios,
    load_scenario,
)
from repro.scenarios.library import ALIASES


def test_library_present_and_large_enough():
    names = [name for name, _ in list_scenarios()]
    assert len(names) >= 10
    assert "oltp-scan-drift" in names
    assert "oltp-steady" in names


def test_every_library_scenario_validates_and_compiles():
    for name, path in list_scenarios():
        spec = load_scenario(path)
        assert spec.name == name, "file %s names itself %r" % (path,
                                                               spec.name)
        compiled = compile_scenario(spec)
        assert compiled.rate_integral() > 0
        assert compiled.signature() == compile_scenario(spec).signature()


def test_default_alias_resolves_to_drift_scenario():
    assert ALIASES["default"] == "oltp-scan-drift"
    assert load_scenario("default").name == "oltp-scan-drift"


def test_drift_scenario_keeps_the_benchmark_contract():
    """The library file still encodes the classic bench's shape."""
    spec = load_scenario("oltp-scan-drift")
    compiled = compile_scenario(spec)
    assert spec.schedule[0].t1 == pytest.approx(30.0)
    assert spec.duration_s == pytest.approx(100.0)
    baseline = {w.name: w for w in compiled.baseline_workloads()}
    assert baseline["orders"].read_rate == pytest.approx(130.0)
    assert baseline["orders"].write_rate == pytest.approx(35.0)
    assert baseline["history"].read_rate == pytest.approx(55.0)
    assert baseline["history"].write_rate == pytest.approx(15.0)
    assert baseline["lineitem"].read_rate == pytest.approx(0.0)
    layout = compiled.initial_layout()
    assert layout is not None
    assert layout.fractions_by_name()["lineitem"] == \
        pytest.approx([0.0, 0.0, 0.0, 1.0])


def test_matrix_files_are_not_listed_as_scenarios():
    assert all(not name.startswith("matrix")
               for name, _ in list_scenarios())


def test_unknown_scenario_error_names_known_ones():
    with pytest.raises(ScenarioError, match="oltp-steady"):
        load_scenario("no-such-scenario")


def test_missing_file_path_errors():
    with pytest.raises(ScenarioError, match="does not exist"):
        load_scenario("/nonexistent/path/scn.yaml")


def test_env_override_directory(tmp_path, monkeypatch):
    src = dict(list_scenarios())["oltp-steady"]
    shutil.copy(src, tmp_path / "only-one.yaml")
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path))
    assert library_dir() == str(tmp_path)
    assert [name for name, _ in list_scenarios()] == ["only-one"]
