"""Tests for the `repro scenarios` / `repro experiments` subcommands."""

import json

import pytest

from repro.cli import main

from tests.scenarios.test_matrix import write_matrix, write_scenario


@pytest.fixture
def scenario_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path))
    write_scenario(tmp_path, name="alpha", duration_s=10)
    write_scenario(tmp_path, name="beta", duration_s=10)
    return tmp_path


def test_scenarios_list(scenario_dir, capsys):
    assert main(["scenarios", "list"]) == 0
    out = capsys.readouterr().out
    assert "alpha" in out and "beta" in out


def test_scenarios_list_json(scenario_dir, capsys):
    assert main(["scenarios", "list", "--json"]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert [e["name"] for e in entries] == ["alpha", "beta"]


def test_scenarios_validate_ok(scenario_dir, capsys):
    assert main(["scenarios", "validate", "alpha", "beta"]) == 0
    out = capsys.readouterr().out
    assert out.count(" ok ") == 2


def test_scenarios_validate_reports_failures(scenario_dir, capsys):
    bad = scenario_dir / "bad.yaml"
    bad.write_text("name: bad\n")
    assert main(["scenarios", "validate", "alpha", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "INVALID" in captured.err
    assert "alpha" in captured.out


def test_scenarios_validate_unknown_name(scenario_dir, capsys):
    assert main(["scenarios", "validate", "ghost"]) == 1
    assert "unknown scenario" in capsys.readouterr().err


def test_experiments_run(scenario_dir, tmp_path, capsys):
    matrix = write_matrix(tmp_path, ["alpha", "beta"])
    out_json = tmp_path / "bench.json"
    out_txt = tmp_path / "report.txt"
    assert main(["experiments", "run", matrix,
                 "--out", str(out_json), "--report", str(out_txt)]) == 0
    table = capsys.readouterr().out
    assert "alpha" in table and "beta" in table
    results = json.loads(out_json.read_text())
    assert results["ok"] == 2 and results["errors"] == 0
    assert "scenario matrix" in out_txt.read_text()


def test_experiments_run_json_output(scenario_dir, tmp_path, capsys):
    matrix = write_matrix(tmp_path, ["alpha"])
    assert main(["experiments", "run", matrix, "--json"]) == 0
    results = json.loads(capsys.readouterr().out)
    assert results["cells"][0]["status"] == "ok"


def test_experiments_run_missing_matrix(tmp_path, capsys):
    assert main(["experiments", "run",
                 str(tmp_path / "missing.yaml")]) == 1
    assert "error:" in capsys.readouterr().err
