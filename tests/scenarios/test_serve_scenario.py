"""Serve-mode integration: tenants created from scenario names."""

import asyncio

import pytest

from repro.errors import ReproError
from repro.serve.service import AdvisorService, ServeConfig

from tests.scenarios.test_matrix import write_scenario


@pytest.fixture
def scenario_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCENARIO_DIR", str(tmp_path))
    write_scenario(tmp_path, name="tenant-mix", duration_s=10)
    return tmp_path


def run(coro):
    return asyncio.run(coro)


def test_create_tenant_from_scenario(scenario_dir):
    async def scenario():
        service = AdvisorService(ServeConfig(workers=1,
                                             use_processes=False))
        await service.start()
        try:
            out = await service.create_tenant({"scenario": "tenant-mix"})
            assert out["tenant"] == "tenant-0001"
            assert set(out["layout"]) == {"hot", "cold"}
            tenant = service.tenants[out["tenant"]]
            assert tenant.problem.object_names == ["hot", "cold"]
        finally:
            await service.drain()

    run(scenario())


def test_create_tenant_rejects_scenario_and_problem(scenario_dir):
    async def scenario():
        service = AdvisorService(ServeConfig(workers=1,
                                             use_processes=False))
        await service.start()
        try:
            with pytest.raises(ReproError, match="not both"):
                await service.create_tenant(
                    {"scenario": "tenant-mix", "problem": {}})
            with pytest.raises(ReproError, match="unknown scenario"):
                await service.create_tenant({"scenario": "ghost"})
        finally:
            await service.drain()

    run(scenario())
