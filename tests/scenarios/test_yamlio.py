"""Tests for the YAML loader and the safe-subset fallback parser."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios.yamlio import _MiniYaml, load_yaml_file, parse_yaml

SAMPLE = """
name: sample
duration_s: 12.5
nested:
  flag: true
  nothing: null
  quoted: "a: b"
list:
  - 1
  - two
  - {k: v, n: 3}
compact:
  - {name: read, weight: 60, objects: [a, b], kind: read}
  - name: write
    weight: 40
"""


def mini(text):
    return _MiniYaml(text, "<test>").parse()


def test_parse_yaml_basic_types():
    data = parse_yaml(SAMPLE, "<test>")
    assert data["name"] == "sample"
    assert data["duration_s"] == 12.5
    assert data["nested"] == {"flag": True, "nothing": None,
                             "quoted": "a: b"}
    assert data["list"] == [1, "two", {"k": "v", "n": 3}]
    assert data["compact"][0]["objects"] == ["a", "b"]
    assert data["compact"][1] == {"name": "write", "weight": 40}


def test_mini_parser_matches_pyyaml_on_sample():
    yaml = pytest.importorskip("yaml")
    assert mini(SAMPLE) == yaml.safe_load(SAMPLE)


def test_mini_parser_multiline_flow():
    text = "tasks:\n  - {name: scan, weight: 90,\n     run_count: 64}\n"
    assert mini(text) == {
        "tasks": [{"name": "scan", "weight": 90, "run_count": 64}]
    }


def test_mini_parser_comments_and_blanks():
    text = "# header\na: 1  # trailing\n\nb: '#not a comment'\n"
    assert mini(text) == {"a": 1, "b": "#not a comment"}


def test_mini_parser_rejects_tabs():
    with pytest.raises(ScenarioError, match="tabs"):
        mini("a:\n\tb: 1\n")


def test_mini_parser_rejects_duplicate_keys():
    with pytest.raises(ScenarioError, match="duplicate key"):
        mini("a: 1\na: 2\n")


def test_mini_parser_rejects_unterminated_flow():
    with pytest.raises(ScenarioError, match="flow"):
        mini("a: [1, 2\n")


def test_error_carries_file_and_line(tmp_path):
    path = tmp_path / "bad.yaml"
    path.write_text("a: 1\n\tb: 2\n")
    with pytest.raises(ScenarioError, match="bad.yaml"):
        _MiniYaml(path.read_text(), str(path)).parse()


def test_load_yaml_file_missing(tmp_path):
    with pytest.raises(ScenarioError, match="cannot read"):
        load_yaml_file(str(tmp_path / "nope.yaml"))


def test_pyyaml_error_is_one_line(tmp_path):
    path = tmp_path / "broken.yaml"
    path.write_text("a: [1, 2\nb: }\n")
    with pytest.raises(ScenarioError) as exc:
        load_yaml_file(str(path))
    assert "\n" not in str(exc.value)
