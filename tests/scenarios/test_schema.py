"""Tests for scenario spec validation."""

import pytest

from repro import units
from repro.errors import ScenarioError
from repro.scenarios.schema import ScenarioSpec

from tests.scenarios.conftest import base_payload


def parse(payload):
    return ScenarioSpec.from_payload(payload, label="unit.yaml")


def test_happy_path(payload):
    spec = parse(payload)
    assert spec.name == "unit"
    assert spec.object_sizes == {"hot": units.mib(32),
                                 "cold": units.mib(64)}
    assert spec.sets["all"] == ("hot", "cold")
    assert spec.target_names == ["d0", "d1"]
    mix = spec.mixes["steady"]
    rates = dict((t.name, r) for t, r in mix.task_rates())
    assert rates["read"] == pytest.approx(70.0)
    assert rates["write"] == pytest.approx(30.0)


def test_error_messages_are_one_line_with_path(payload):
    del payload["mixes"]["steady"]["rate"]
    with pytest.raises(ScenarioError) as exc:
        parse(payload)
    message = str(exc.value)
    assert "\n" not in message
    assert "unit.yaml" in message
    assert "mixes.steady.rate" in message


@pytest.mark.parametrize("mutate, fragment", [
    (lambda p: p.pop("name"), "name is required"),
    (lambda p: p.update(duration_s=-1), "duration_s"),
    (lambda p: p.update(seed=-3), "seed"),
    (lambda p: p.update(seed=True), "seed"),
    (lambda p: p.update(objects={}), "objects"),
    (lambda p: p["sets"].update(hot=["cold"]), "collides"),
    (lambda p: p["sets"].update(bad=["nope"]), "unknown object"),
    (lambda p: p["mixes"]["steady"]["tasks"][0].update(objects="nope"),
     "unknown object"),
    (lambda p: p["mixes"]["steady"]["tasks"][0].update(kind="scan"),
     "kind"),
    (lambda p: p["mixes"]["steady"]["tasks"][0].update(weight=0),
     "positive"),
    (lambda p: p.update(schedule=[]), "schedule"),
    (lambda p: p["schedule"][0].update(shape="sawtooth"), "shape"),
    (lambda p: p["schedule"][0].update(mix="nope"), "unknown mix"),
    (lambda p: p["schedule"][0].update(t0=10, t1=5), "t1"),
    (lambda p: p["targets"][0].update(kind="tape"), "kind"),
    (lambda p: p.update(unexpected=1), "unknown top-level key"),
])
def test_validation_failures(mutate, fragment):
    payload = base_payload()
    mutate(payload)
    with pytest.raises(ScenarioError, match=fragment):
        parse(payload)


def test_duplicate_target_names(payload):
    payload["targets"].append(
        {"name": "d0", "kind": "disk15k", "capacity_mib": 100})
    with pytest.raises(ScenarioError, match="duplicates target"):
        parse(payload)


def test_schedule_shapes_parse(payload):
    payload["schedule"] = [
        {"mix": "steady", "shape": "ramp", "t0": 0, "t1": 5,
         "from": 0.2, "to": 1.0},
        {"mix": "steady", "shape": "diurnal", "t0": 5, "t1": 15,
         "mean": 1.0, "amplitude": 0.5, "period_s": 5},
        {"mix": "steady", "shape": "step", "t0": 15, "t1": 20,
         "base": 1.0, "peak": 3.0, "at": 16, "until": 18},
    ]
    spec = parse(payload)
    assert [e.shape for e in spec.schedule] == ["ramp", "diurnal", "step"]
    assert spec.schedule[0].ramp_from == pytest.approx(0.2)


def test_drift_needs_both_mixes(payload):
    payload["schedule"] = [
        {"shape": "drift", "from_mix": "steady", "t0": 0, "t1": 20},
    ]
    with pytest.raises(ScenarioError, match="to_mix"):
        parse(payload)


def test_step_window_must_nest(payload):
    payload["schedule"] = [
        {"mix": "steady", "shape": "step", "t0": 0, "t1": 20,
         "base": 1, "peak": 2, "at": 15, "until": 25},
    ]
    with pytest.raises(ScenarioError, match="until"):
        parse(payload)


def test_faults_compile_to_plan(payload):
    payload["faults"] = [
        {"time": 5, "kind": "stall", "target": "d0", "duration_s": 2},
        {"time": 8, "kind": "degrade", "target": "d1",
         "service_scale": 2.0, "duration_s": 4},
    ]
    spec = parse(payload)
    assert len(spec.fault_plan) == 2
    assert spec.fault_plan.signature()  # FaultPlan contract holds


def test_fault_on_unknown_target(payload):
    payload["faults"] = [
        {"time": 5, "kind": "stall", "target": "nope", "duration_s": 2},
    ]
    with pytest.raises(ScenarioError, match="nope"):
        parse(payload)


def test_tenants_section(payload):
    payload["tenants"] = {"arrival_rate_per_s": 0.5,
                          "mean_lifetime_s": 10, "max_active": 3}
    spec = parse(payload)
    assert spec.tenants.max_active == 3


def test_initial_layout_happy(payload):
    payload["initial_layout"] = {
        "hot": [1.0, 0.0],
        "cold": [0.25, 0.75],
    }
    spec = parse(payload)
    assert spec.initial_layout["cold"] == (0.25, 0.75)


@pytest.mark.parametrize("layout, fragment", [
    ({"hot": [1.0, 0.0]}, "cold"),                      # missing row
    ({"hot": [1.0], "cold": [0.5, 0.5]}, "per target"),  # wrong width
    ({"hot": [0.7, 0.7], "cold": [1, 0]}, "sum to 1"),
    ({"hot": [1.5, -0.5], "cold": [1, 0]}, r"\[0, 1\]"),
    ({"hot": [1, 0], "cold": [1, 0], "x": [1, 0]}, "unknown object"),
])
def test_initial_layout_failures(payload, layout, fragment):
    payload["initial_layout"] = layout
    with pytest.raises(ScenarioError, match=fragment):
        parse(payload)


def test_initial_layout_requires_targets(payload):
    payload.pop("targets")
    payload["initial_layout"] = {"hot": [1.0], "cold": [1.0]}
    with pytest.raises(ScenarioError, match="targets"):
        parse(payload)
