"""Tests for the standalone CLI advisor."""

import json

import pytest

from repro.cli import load_problem, main
from repro.units import gib, mib


@pytest.fixture
def problem_file(tmp_path):
    data = {
        "stripe_size": 1 << 20,
        "targets": [
            {"name": "disk0", "capacity": gib(2), "kind": "disk15k"},
            {"name": "disk1", "capacity": gib(2), "kind": "disk15k"},
            {"name": "ssd", "capacity": mib(512), "kind": "ssd"},
        ],
        "objects": [
            {"name": "lineitem", "size": gib(1), "read_rate": 800,
             "run_count": 64, "overlap": {"orders": 0.9}},
            {"name": "orders", "size": mib(300), "read_rate": 300,
             "run_count": 64, "overlap": {"lineitem": 0.9}},
            {"name": "hot_index", "size": mib(200), "read_rate": 200,
             "run_count": 1},
        ],
    }
    path = tmp_path / "problem.json"
    path.write_text(json.dumps(data))
    return str(path)


def test_load_problem_builds_layout_problem(problem_file):
    with open(problem_file) as handle:
        problem = load_problem(json.load(handle))
    assert problem.n_objects == 3
    assert problem.n_targets == 3
    assert problem.target_names == ["disk0", "disk1", "ssd"]


def test_advise_prints_layout(problem_file, capsys):
    assert main(["advise", problem_file]) == 0
    out = capsys.readouterr().out
    assert "lineitem" in out
    assert "max utilization after" in out


def test_advise_json_output(problem_file, capsys):
    assert main(["advise", problem_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["layout"]) == {"lineitem", "orders", "hot_index"}
    assert payload["max_utilization"]["solver"] <= (
        payload["max_utilization"]["see"] + 1e-9
    )
    # JSON rows are valid fractions.
    for row in payload["layout"].values():
        assert abs(sum(row) - 1.0) < 1e-6


def test_advise_non_regular(problem_file, capsys):
    assert main(["advise", problem_file, "--non-regular", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "regular" not in payload["max_utilization"]


def test_missing_file_is_an_error(capsys):
    assert main(["advise", "/nonexistent/problem.json"]) == 1
    assert "error" in capsys.readouterr().err


def test_malformed_problem_is_an_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"targets": [], "objects": []}))
    assert main(["advise", str(path)]) == 1


def test_unknown_target_kind_is_an_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "targets": [{"name": "t", "capacity": gib(1), "kind": "tape"}],
        "objects": [{"name": "a", "size": mib(1)}],
    }))
    assert main(["advise", str(path)]) == 1


def test_raid_target_kind(tmp_path, capsys):
    path = tmp_path / "raid.json"
    path.write_text(json.dumps({
        "targets": [
            {"name": "raid", "capacity": gib(4), "kind": "raid0",
             "members": 3},
            {"name": "disk", "capacity": gib(2), "kind": "disk7200"},
        ],
        "objects": [
            {"name": "a", "size": gib(1), "read_rate": 500, "run_count": 32},
        ],
    }))
    assert main(["advise", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # The 3-wide RAID0 is the faster target; the hot object should use it.
    assert payload["layout"]["a"][0] > 0
