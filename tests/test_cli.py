"""Tests for the standalone CLI advisor."""

import json

import pytest

from repro.cli import load_problem, main
from repro.units import gib, mib


@pytest.fixture
def problem_file(tmp_path):
    data = {
        "stripe_size": 1 << 20,
        "targets": [
            {"name": "disk0", "capacity": gib(2), "kind": "disk15k"},
            {"name": "disk1", "capacity": gib(2), "kind": "disk15k"},
            {"name": "ssd", "capacity": mib(512), "kind": "ssd"},
        ],
        "objects": [
            {"name": "lineitem", "size": gib(1), "read_rate": 800,
             "run_count": 64, "overlap": {"orders": 0.9}},
            {"name": "orders", "size": mib(300), "read_rate": 300,
             "run_count": 64, "overlap": {"lineitem": 0.9}},
            {"name": "hot_index", "size": mib(200), "read_rate": 200,
             "run_count": 1},
        ],
    }
    path = tmp_path / "problem.json"
    path.write_text(json.dumps(data))
    return str(path)


def test_load_problem_builds_layout_problem(problem_file):
    with open(problem_file) as handle:
        problem = load_problem(json.load(handle))
    assert problem.n_objects == 3
    assert problem.n_targets == 3
    assert problem.target_names == ["disk0", "disk1", "ssd"]


def test_advise_prints_layout(problem_file, capsys):
    assert main(["advise", problem_file]) == 0
    out = capsys.readouterr().out
    assert "lineitem" in out
    assert "max utilization after" in out


def test_advise_json_output(problem_file, capsys):
    assert main(["advise", problem_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["layout"]) == {"lineitem", "orders", "hot_index"}
    assert payload["max_utilization"]["solver"] <= (
        payload["max_utilization"]["see"] + 1e-9
    )
    # JSON rows are valid fractions.
    for row in payload["layout"].values():
        assert abs(sum(row) - 1.0) < 1e-6


def test_advise_non_regular(problem_file, capsys):
    assert main(["advise", problem_file, "--non-regular", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "regular" not in payload["max_utilization"]


def test_missing_file_is_an_error(capsys):
    assert main(["advise", "/nonexistent/problem.json"]) == 1
    assert "error" in capsys.readouterr().err


def test_malformed_problem_is_an_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"targets": [], "objects": []}))
    assert main(["advise", str(path)]) == 1


def test_unknown_target_kind_is_an_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "targets": [{"name": "t", "capacity": gib(1), "kind": "tape"}],
        "objects": [{"name": "a", "size": mib(1)}],
    }))
    assert main(["advise", str(path)]) == 1


def test_raid_target_kind(tmp_path, capsys):
    path = tmp_path / "raid.json"
    path.write_text(json.dumps({
        "targets": [
            {"name": "raid", "capacity": gib(4), "kind": "raid0",
             "members": 3},
            {"name": "disk", "capacity": gib(2), "kind": "disk7200"},
        ],
        "objects": [
            {"name": "a", "size": gib(1), "read_rate": 500, "run_count": 32},
        ],
    }))
    assert main(["advise", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # The 3-wide RAID0 is the faster target; the hot object should use it.
    assert payload["layout"]["a"][0] > 0


# ----------------------------------------------------------------------
# Online subcommands: monitor / replay-online
# ----------------------------------------------------------------------

def _write_trace(path, specs):
    """specs: list of (obj, rate, t0, t1); writes a synthetic trace."""
    from repro.storage.request import CompletionRecord
    from repro.workload.trace_io import save_trace

    records = []
    for obj, rate, t0, t1 in specs:
        for i in range(int((t1 - t0) * rate)):
            t = t0 + (i + 0.5) / rate
            records.append(CompletionRecord(
                submit_time=t - 0.001, finish_time=t, target="disk0",
                obj=obj, stream_id=1, kind="read", lba=0,
                logical_offset=None, size=8192, service_time=0.001,
            ))
    records.sort(key=lambda r: r.finish_time)
    save_trace(records, str(path))


@pytest.fixture
def online_problem_file(tmp_path):
    data = {
        "stripe_size": 1 << 20,
        "targets": [
            {"name": "disk0", "capacity": mib(512), "kind": "disk15k"},
            {"name": "disk1", "capacity": mib(512), "kind": "disk15k"},
        ],
        "objects": [
            {"name": "a", "size": mib(64), "read_rate": 50},
            {"name": "b", "size": mib(64)},
        ],
    }
    path = tmp_path / "online_problem.json"
    path.write_text(json.dumps(data))
    return str(path)


def test_monitor_prints_fitted_rates(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _write_trace(trace, [("a", 50.0, 0.0, 30.0)])
    assert main(["monitor", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "monitored 1500 records" in out
    assert "a" in out


def test_monitor_json_payload(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _write_trace(trace, [("a", 50.0, 0.0, 30.0)])
    assert main(["monitor", str(trace), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["observed"] == 1500
    assert payload["objects"]["a"]["read_rate"] == pytest.approx(50.0,
                                                                 rel=0.05)


def test_replay_online_reports_decisions(online_problem_file, tmp_path,
                                         capsys):
    trace = tmp_path / "trace.jsonl"
    _write_trace(trace, [("a", 50.0, 0.0, 120.0), ("b", 150.0, 20.0, 120.0)])
    events = tmp_path / "events.jsonl"
    assert main(["replay-online", online_problem_file, str(trace),
                 "--non-regular", "--events", str(events)]) == 0
    out = capsys.readouterr().out
    assert "online controller summary" in out
    assert "final layout" in out
    kinds = {json.loads(line)["kind"]
             for line in events.read_text().splitlines() if line}
    assert "baseline" in kinds
    assert "check" in kinds


def test_replay_online_json_payload(online_problem_file, tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _write_trace(trace, [("a", 50.0, 0.0, 120.0), ("b", 150.0, 20.0, 120.0)])
    assert main(["replay-online", online_problem_file, str(trace),
                 "--non-regular", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"initial", "final_layout", "resolves",
                            "emergencies", "events"}
    kinds = {e["kind"] for e in payload["events"]}
    # The surge of "b" drifts the workload and forces decisions; the
    # advisor's striped start is already optimal for it, so the
    # re-solves come back as justified rejections, not migrations.
    assert "trigger" in kinds
    assert "reject" in kinds
    assert payload["resolves"] == sum(
        1 for e in payload["events"] if e["kind"] == "accept"
    )
    assert set(payload["final_layout"]) == {"a", "b"}
    for row in payload["final_layout"].values():
        assert sum(row) == pytest.approx(1.0)


def test_replay_online_missing_trace_is_an_error(online_problem_file,
                                                 capsys):
    assert main(["replay-online", online_problem_file,
                 "/nonexistent/trace.jsonl"]) == 1
    assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Chaos flags: fault injection from the command line
# ----------------------------------------------------------------------

def test_replay_online_chaos_seed_injects_faults(online_problem_file,
                                                 tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _write_trace(trace, [("a", 50.0, 0.0, 120.0), ("b", 150.0, 20.0, 120.0)])
    assert main(["replay-online", online_problem_file, str(trace),
                 "--non-regular", "--chaos-seed", "7",
                 "--solver-budget", "30"]) == 0
    out = capsys.readouterr().out
    assert "faults injected" in out


def test_replay_online_chaos_seed_is_deterministic(online_problem_file,
                                                   tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _write_trace(trace, [("a", 50.0, 0.0, 120.0), ("b", 150.0, 20.0, 120.0)])
    argv = ["replay-online", online_problem_file, str(trace),
            "--non-regular", "--chaos-seed", "3", "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)
    assert first["final_layout"] == second["final_layout"]
    assert ([e["kind"] for e in first["events"]]
            == [e["kind"] for e in second["events"]])


def test_replay_online_fault_plan_file(online_problem_file, tmp_path,
                                       capsys):
    trace = tmp_path / "trace.jsonl"
    _write_trace(trace, [("a", 50.0, 0.0, 120.0), ("b", 150.0, 20.0, 120.0)])
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps({"faults": [
        {"time": 30.0, "kind": "fail-stop", "target": "disk0"},
    ]}))
    assert main(["replay-online", online_problem_file, str(trace),
                 "--non-regular", "--fault-plan", str(plan),
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    kinds = {e["kind"] for e in payload["events"]}
    assert "fault" in kinds
    assert "emergency" in kinds
    assert payload["emergencies"] >= 1
    # The dead target holds nothing at the end.
    for row in payload["final_layout"].values():
        assert row[0] <= 1e-9


def test_replay_online_fault_plan_unknown_target_is_an_error(
        online_problem_file, tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _write_trace(trace, [("a", 50.0, 0.0, 30.0)])
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps({"faults": [
        {"time": 5.0, "kind": "fail-stop", "target": "no-such-disk"},
    ]}))
    assert main(["replay-online", online_problem_file, str(trace),
                 "--fault-plan", str(plan)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "no-such-disk" in err


def test_replay_online_malformed_fault_plan_is_an_error(
        online_problem_file, tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _write_trace(trace, [("a", 50.0, 0.0, 30.0)])
    plan = tmp_path / "plan.json"
    plan.write_text("{not json")
    assert main(["replay-online", online_problem_file, str(trace),
                 "--fault-plan", str(plan)]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_advise_method_partitioned(problem_file, capsys):
    """--method partitioned routes the solve through the overlap-graph
    decomposition and reports its method in the JSON payload."""
    assert main(["advise", problem_file, "--method", "partitioned",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["method"] in ("partitioned", "partitioned-fallback")
    for row in payload["layout"].values():
        assert sum(row) == pytest.approx(1.0, abs=1e-6)


def test_advise_method_explicit_coordinate(problem_file, capsys):
    assert main(["advise", problem_file, "--method", "coordinate",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["method"] == "coordinate"


def test_advise_rejects_unknown_method(problem_file, capsys):
    with pytest.raises(SystemExit):
        main(["advise", problem_file, "--method", "simplex"])


def test_advise_solver_budget_accepts_and_solves(problem_file, capsys):
    assert main(["advise", problem_file, "--solver-budget", "30",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["degraded"] is False
    assert payload["watchdog_rung"] == "portfolio"


# ----------------------------------------------------------------------
# Observability: advise --trace / replay-online --metrics / report
# ----------------------------------------------------------------------

def test_advise_trace_writes_span_tree(problem_file, tmp_path, capsys):
    from repro.obs.export import read_trace

    out = tmp_path / "trace.jsonl"
    assert main(["advise", problem_file, "--restarts", "2",
                 "--trace", str(out)]) == 0
    assert "trace written to" in capsys.readouterr().out

    trace = read_trace(str(out))
    assert trace.meta["command"] == "advise"
    assert trace.meta["restarts"] == 2
    roots, children = trace.tracer.tree()
    assert [s.name for s in roots] == ["advise"]
    stages = [s.name for s in children[roots[0].span_id]]
    assert stages == ["advise.initial", "advise.solve", "advise.regularize"]
    assert trace.tracer.find("solver.restart")
    series = trace.metrics.find("repro_solver_convergence")
    assert series
    assert all(s.field("objective") for _, s in series)
    assert trace.metrics.get("repro_evaluator_full_evaluations_total")


def test_advise_trace_prom_extension_writes_prometheus(problem_file,
                                                       tmp_path, capsys):
    out = tmp_path / "metrics.prom"
    assert main(["advise", problem_file, "--trace", str(out)]) == 0
    text = out.read_text()
    assert "# TYPE repro_evaluator_full_evaluations_total counter" in text
    assert 'repro_advise_objective{stage="solver"}' in text


def test_advise_without_trace_writes_nothing(problem_file, tmp_path,
                                             capsys):
    assert main(["advise", problem_file]) == 0
    assert "trace written" not in capsys.readouterr().out


def test_report_renders_saved_trace(problem_file, tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    assert main(["advise", problem_file, "--trace", str(out)]) == 0
    capsys.readouterr()

    assert main(["report", str(out)]) == 0
    text = capsys.readouterr().out
    for heading in ("stage times", "solver restarts", "evaluator cache",
                    "objective (max target utilization)"):
        assert heading in text, heading
    assert "cache hit rate" in text
    assert "span tree" not in text

    assert main(["report", str(out), "--tree"]) == 0
    tree_text = capsys.readouterr().out
    assert "span tree" in tree_text
    assert "advise.solve" in tree_text


def test_report_missing_file_is_an_error(capsys):
    assert main(["report", "/nonexistent/trace.jsonl"]) == 1
    assert "error" in capsys.readouterr().err


def test_report_corrupt_trace_is_one_line_error(tmp_path, capsys):
    """A garbled trace gets one clean diagnostic, not a traceback."""
    path = tmp_path / "trace.jsonl"
    path.write_text('{"type": "meta"}\n{torn line, not JSON\n')
    assert main(["report", str(path)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert len(err.strip().splitlines()) == 1


def test_report_non_object_trace_line_is_one_line_error(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"type": "meta"}\n"a string, not a record"\n')
    assert main(["report", str(path)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "not an instrumentation trace record" in err
    assert len(err.strip().splitlines()) == 1


def test_report_renders_controller_event_log(tmp_path, capsys):
    """``report`` on a controller event log prints the run summary —
    including the skipped-malformed-line counter, with the per-line
    warnings silenced (the summary already says it)."""
    import warnings

    path = tmp_path / "events.jsonl"
    path.write_text("\n".join([
        json.dumps({"seq": 0, "time": 0.0, "kind": "baseline"}),
        json.dumps({"seq": 1, "time": 2.0, "kind": "check"}),
        "{torn line",
        json.dumps({"seq": 2, "time": 4.0, "kind": "trigger",
                    "reason": "utilization"}),
    ]) + "\n")
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the CLI must not leak warnings
        assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "online controller summary" in out
    assert "SKIPPED" in out
    assert "drift triggers" in out


def test_replay_online_metrics_trace(online_problem_file, tmp_path,
                                     capsys):
    from repro.obs.export import read_trace

    trace_path = tmp_path / "trace.jsonl"
    _write_trace(trace_path, [("a", 50.0, 0.0, 120.0),
                              ("b", 150.0, 20.0, 120.0)])
    metrics_path = tmp_path / "metrics.jsonl"
    assert main(["replay-online", online_problem_file, str(trace_path),
                 "--non-regular", "--metrics", str(metrics_path)]) == 0
    assert "metrics written to" in capsys.readouterr().out

    trace = read_trace(str(metrics_path))
    assert trace.meta["command"] == "replay-online"
    assert trace.meta["records"] == 21000
    # Controller decisions and simulator metrics share the file.
    checks = trace.metrics.get("repro_online_events_total", kind="check")
    assert checks is not None and checks.value > 0
    latency = trace.metrics.get("repro_sim_request_latency_seconds",
                                target="disk0")
    assert latency is not None and latency.count == 21000
    # The initial advise was instrumented through the same bundle.
    assert trace.tracer.find("advise")

    capsys.readouterr()
    assert main(["report", str(metrics_path)]) == 0
    text = capsys.readouterr().out
    assert "online controller" in text
    assert "simulator (per target)" in text


def test_report_request_trace_renders_stitched_tree(tmp_path, capsys):
    # The JSON shape of GET /debug/traces/{id}: summary + spans.
    payload = {
        "trace_id": "cafe0123", "route": "advise", "tenant": "t1",
        "status": 200, "duration_s": 0.2, "queue_wait_s": 0.01,
        "solve_s": 0.15, "rung": "portfolio", "worker_pids": [999],
        "spans": [
            {"type": "span", "id": 1, "name": "request",
             "start_s": 0.0, "end_s": 0.2},
            {"type": "span", "id": 2, "name": "scheduler.queue",
             "parent": 1, "start_s": 0.0, "end_s": 0.01},
            {"type": "span", "id": 3, "name": "pool.dispatch",
             "parent": 1, "start_s": 0.01, "end_s": 0.18},
            {"type": "span", "id": 4, "name": "worker.advise",
             "parent": 3, "start_s": 0.02, "end_s": 0.17,
             "tags": {"pid": 999}},
            {"type": "span", "id": 5, "name": "advise.solve",
             "parent": 4, "start_s": 0.03},
        ],
    }
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(payload))
    assert main(["report", str(path), "--request-trace"]) == 0
    text = capsys.readouterr().out
    assert "request cafe0123" in text
    assert "rung" in text and "portfolio" in text
    assert "queue wait" in text and "solve" in text
    assert "1 local + 1 worker (pid 999)" in text
    for name in ("request", "scheduler.queue", "pool.dispatch",
                 "worker.advise"):
        assert name in text
    assert "pid=999" in text
    # The solve span was still open when the ring captured the trace.
    assert "…running" in text
    # Full depth by default: the level-4 span is visible.
    assert "advise.solve" in text


def test_report_request_trace_reads_jsonl_records(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join([
        json.dumps({"type": "request", "trace_id": "aa", "route": "feed",
                    "status": 200, "duration_s": 0.1}),
        json.dumps({"type": "span", "id": 1, "name": "request",
                    "start_s": 0.0, "end_s": 0.1}),
    ]) + "\n")
    assert main(["report", str(path), "--request-trace"]) == 0
    text = capsys.readouterr().out
    assert "request aa" in text
    assert "feed" in text


def test_report_request_trace_rejects_ordinary_trace(tmp_path, capsys):
    path = tmp_path / "plain.jsonl"
    path.write_text(json.dumps({"type": "meta", "format": 1}) + "\n")
    assert main(["report", str(path), "--request-trace"]) == 1
    assert "no request record" in capsys.readouterr().err
