"""Tests for the Section 4.2 greedy initial layout."""

import numpy as np
import pytest

from repro import units
from repro.core.initial import initial_layout
from repro.core.pinning import PinningConstraints
from repro.core.problem import LayoutProblem, TargetSpec
from repro.errors import CapacityError
from repro.models.analytic import analytic_disk_target_model
from repro.workload.spec import ObjectWorkload

from tests.conftest import make_problem


def test_each_object_on_exactly_one_target(small_problem):
    layout = initial_layout(small_problem)
    for row in layout.matrix:
        assert sorted(row.tolist()) == [0.0, 0.0, 0.0, 1.0]


def test_layout_is_valid(small_problem):
    layout = initial_layout(small_problem)
    small_problem.validate_layout(layout)


def test_hottest_objects_spread_across_targets(small_problem):
    """Greedy by request rate: the three objects land on three

    different targets (each target has the lowest assigned rate when
    its object arrives)."""
    layout = initial_layout(small_problem)
    used = {int(np.argmax(layout.row(name))) for name in ("big", "medium",
                                                          "small")}
    assert len(used) == 3


def test_capacity_forces_spill_to_other_target():
    targets = [
        TargetSpec("small_t", units.mib(10), analytic_disk_target_model("s")),
        TargetSpec("big_t", units.gib(4), analytic_disk_target_model("b")),
    ]
    workloads = [ObjectWorkload("huge", read_rate=100),
                 ObjectWorkload("tiny", read_rate=50)]
    problem = LayoutProblem(
        {"huge": units.gib(1), "tiny": units.mib(5)}, targets, workloads
    )
    layout = initial_layout(problem)
    # "huge" cannot fit the 10 MiB target even though it is least loaded.
    assert layout.fraction("huge", "big_t") == 1.0


def test_oversized_object_splits_across_targets():
    """An object larger than any single target falls back to a split

    (the paper's heuristic assumes whole-object placement; the library
    degrades gracefully instead of failing)."""
    targets = [
        TargetSpec("t0", units.mib(10), analytic_disk_target_model("t0")),
        TargetSpec("t1", units.mib(10), analytic_disk_target_model("t1")),
    ]
    workloads = [ObjectWorkload("a", read_rate=1),
                 ObjectWorkload("b", read_rate=1)]
    problem = LayoutProblem(
        {"a": units.mib(15), "b": units.mib(1)}, targets, workloads
    )
    layout = initial_layout(problem)
    problem.validate_layout(layout)
    row = layout.row("a")
    assert (row > 0).sum() == 2


def test_pinned_objects_respect_allowed_targets():
    pinning = PinningConstraints(allowed={"big": ["t3"]})
    problem = make_problem(pinning=pinning)
    layout = initial_layout(problem)
    assert layout.fraction("big", "t3") == 1.0


def test_fixed_rows_pass_through():
    pinning = PinningConstraints(fixed={"small": [0.25, 0.25, 0.25, 0.25]})
    problem = make_problem(pinning=pinning)
    layout = initial_layout(problem)
    assert layout.row("small").tolist() == [0.25] * 4


def test_jitter_changes_choices_reproducibly():
    problem = make_problem()
    rng1 = np.random.default_rng(7)
    rng2 = np.random.default_rng(7)
    a = initial_layout(problem, rng=rng1, jitter=0.5)
    b = initial_layout(problem, rng=rng2, jitter=0.5)
    assert np.array_equal(a.matrix, b.matrix)


def test_zero_jitter_is_deterministic(small_problem):
    a = initial_layout(small_problem)
    b = initial_layout(small_problem)
    assert np.array_equal(a.matrix, b.matrix)


def _rate_scaled_problem(scale, n_objects=6, n_targets=3):
    """Identical problems up to a multiplicative request-rate scale."""
    rates = [5.0, 4.0, 3.0, 2.0, 1.0, 0.5][:n_objects]
    sizes = {"o%d" % i: units.mib(40 + 5 * i) for i in range(n_objects)}
    workloads = [
        ObjectWorkload("o%d" % i, read_rate=rates[i] * scale, run_count=1.0)
        for i in range(n_objects)
    ]
    targets = [
        TargetSpec("t%d" % j, units.gib(2),
                   analytic_disk_target_model("t%d" % j))
        for j in range(n_targets)
    ]
    return LayoutProblem(sizes, targets, workloads)


def test_jitter_is_relative_to_rate_scale():
    """Regression: the tie-break perturbation must scale with the
    workload's request rates.  An absolute (requests/second) noise term
    swamps the real load differences of low-rate workloads, turning
    perturbed-greedy placement into a uniformly random one — the same
    seed then places a milli-request-scale workload differently from the
    identically-shaped kilo-request-scale workload."""
    low = initial_layout(_rate_scaled_problem(1e-3),
                         rng=np.random.default_rng(7), jitter=0.3)
    high = initial_layout(_rate_scaled_problem(1e3),
                          rng=np.random.default_rng(7), jitter=0.3)
    assert np.allclose(low.matrix, high.matrix)


def test_jitter_same_seed_same_layout():
    problem = _rate_scaled_problem(1.0)
    first = initial_layout(problem, rng=np.random.default_rng(3), jitter=0.3)
    second = initial_layout(problem, rng=np.random.default_rng(3), jitter=0.3)
    assert np.array_equal(first.matrix, second.matrix)
