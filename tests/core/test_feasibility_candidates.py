"""Tests for the regularizer's feasibility fallback candidates."""

import numpy as np
import pytest

from repro import units
from repro.core.layout import Layout
from repro.core.problem import LayoutProblem, TargetSpec
from repro.core.regularize import feasibility_candidates, regularize
from repro.core.solver import solve
from repro.models.analytic import (
    analytic_disk_target_model,
    analytic_ssd_target_model,
)
from repro.workload.spec import ObjectWorkload


def test_candidates_ordered_by_free_space():
    free = np.array([100.0, 900.0, 500.0])
    rows = feasibility_candidates(size=200.0, free=free, n_targets=3)
    # k=1: the roomiest target (index 1).
    assert rows[0].tolist() == [0.0, 1.0, 0.0]
    # k=2: split over targets 1 and 2 (both fit 100 each).
    assert rows[1].tolist() == [0.0, 0.5, 0.5]


def test_infeasible_widths_dropped():
    free = np.array([10.0, 900.0])
    rows = feasibility_candidates(size=500.0, free=free, n_targets=2)
    # k=1 on target 1 fits; k=2 needs 250 on target 0, which does not.
    assert len(rows) == 1
    assert rows[0].tolist() == [0.0, 1.0]


def test_no_candidates_when_nothing_fits():
    free = np.array([10.0, 10.0])
    assert feasibility_candidates(1000.0, free, 2) == []


def test_regularize_survives_attractive_full_target():
    """Regression: a small fast target (SSD) that fills up early must

    not strand later objects — every paper candidate class orders it
    first, so only the feasibility class can place them."""
    targets = [
        TargetSpec("d%d" % j, units.gib(2),
                   analytic_disk_target_model("d%d" % j))
        for j in range(2)
    ]
    targets.append(
        TargetSpec("ssd", units.mib(320), analytic_ssd_target_model("ssd"))
    )
    sizes = {
        "hot_a": units.mib(300),
        "hot_b": units.mib(300),
        "bulk": units.gib(1),
    }
    workloads = [
        ObjectWorkload("hot_a", read_rate=500, run_count=1),
        ObjectWorkload("hot_b", read_rate=400, run_count=1),
        ObjectWorkload("bulk", read_rate=100, run_count=64),
    ]
    problem = LayoutProblem(sizes, targets, workloads)
    solved = solve(problem)
    regular = regularize(problem, solved.layout)
    assert regular.is_regular()
    problem.validate_layout(regular)