"""Tests for the NLP solve step."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import units
from repro.core.initial import initial_layout
from repro.core.pinning import PinningConstraints
from repro.core.solver import (
    PARALLEL_MIN_VARIABLES,
    SLSQP_VARIABLE_LIMIT,
    _renormalize_row,
    _snap,
    solve,
    solve_coordinate,
    solve_slsqp,
)

from tests.conftest import make_problem


def make_wide_problem(n_objects=16, n_targets=4):
    """A problem with enough layout variables to engage the process pool."""
    from repro.core.problem import LayoutProblem, TargetSpec
    from repro.models.analytic import analytic_disk_target_model
    from repro.workload.spec import ObjectWorkload

    rng = np.random.default_rng(42)
    sizes = {}
    workloads = []
    names = ["obj%02d" % i for i in range(n_objects)]
    for i, name in enumerate(names):
        sizes[name] = units.mib(50 + 10 * i)
        overlap = {names[(i + 1) % n_objects]: 0.5} if i % 2 == 0 else {}
        workloads.append(ObjectWorkload(
            name,
            read_rate=float(rng.integers(50, 400)),
            write_rate=float(rng.integers(0, 100)),
            run_count=float(rng.integers(1, 32)),
            overlap=overlap,
        ))
    targets = [
        TargetSpec("t%d" % j, units.gib(8),
                   analytic_disk_target_model("t%d" % j))
        for j in range(n_targets)
    ]
    return LayoutProblem(sizes, targets, workloads)


@pytest.fixture
def problem():
    return make_problem()


def test_slsqp_improves_on_initial(problem):
    start = initial_layout(problem)
    evaluator = problem.evaluator()
    before = evaluator.objective(start.matrix)
    result = solve_slsqp(problem, start, evaluator=evaluator)
    assert result.objective <= before + 1e-9
    assert result.method == "slsqp"


def test_slsqp_beats_see(problem):
    """The solver must find something at least as good as SEE — the

    paper's core claim that optimization dominates the heuristic."""
    evaluator = problem.evaluator()
    see_value = evaluator.objective(problem.see_layout().matrix)
    result = solve_slsqp(problem, initial_layout(problem),
                         evaluator=evaluator)
    assert result.objective <= see_value * 1.001


def test_slsqp_result_is_valid(problem):
    result = solve_slsqp(problem, initial_layout(problem))
    problem.validate_layout(result.layout)


def test_solver_separates_interfering_objects(problem):
    """big and medium overlap heavily and are sequential: a good layout

    gives them disjoint target sets."""
    result = solve(problem, restarts=1)
    big = set(np.nonzero(result.layout.row("big") > 0.02)[0])
    medium = set(np.nonzero(result.layout.row("medium") > 0.02)[0])
    assert not (big & medium)


def test_coordinate_improves_on_initial(problem):
    start = initial_layout(problem)
    evaluator = problem.evaluator()
    before = evaluator.objective(start.matrix)
    result = solve_coordinate(problem, start, evaluator=evaluator)
    assert result.objective <= before + 1e-9
    assert result.method == "coordinate"
    problem.validate_layout(result.layout)


def test_auto_picks_method_by_size(problem):
    result = solve(problem, method="auto")
    expected = (
        "slsqp"
        if problem.n_objects * problem.n_targets <= SLSQP_VARIABLE_LIMIT
        else "coordinate"
    )
    # A coordinate polish pass may be appended when it improves the
    # solution; the base method is still the expected one.
    assert result.method.split("+")[0] == expected


def test_explicit_method_is_respected(problem):
    assert solve(problem, method="coordinate").method == "coordinate"


def test_expert_layouts_are_considered(problem):
    """A domain-expert starting layout that happens to be optimal must

    not be ignored (paper §4.1)."""
    from repro.core.layout import Layout

    good = solve(problem, restarts=2).layout
    result = solve(problem, expert_layouts=[good])
    assert result.objective <= solve(problem).objective + 1e-9


def test_invalid_expert_layout_rejected(problem):
    import numpy as np
    import pytest as _pytest
    from repro.core.layout import Layout
    from repro.errors import LayoutError

    bad = Layout(
        np.full((problem.n_objects, problem.n_targets), 0.4),
        problem.object_names, problem.target_names,
    )
    with _pytest.raises(LayoutError):
        solve(problem, expert_layouts=[bad])


def test_restarts_never_hurt(problem):
    single = solve(problem, restarts=1, seed=3)
    multi = solve(problem, restarts=3, seed=3)
    assert multi.objective <= single.objective + 1e-9


def test_pinning_respected_by_both_methods():
    pinning = PinningConstraints(allowed={"big": ["t0", "t1"]})
    problem = make_problem(pinning=pinning)
    for method in ("slsqp", "coordinate"):
        result = solve(problem, method=method)
        row = result.layout.row("big")
        assert row[2] == 0.0
        assert row[3] == 0.0


def test_fixed_rows_survive_solving():
    pinning = PinningConstraints(fixed={"small": [1.0, 0.0, 0.0, 0.0]})
    problem = make_problem(pinning=pinning)
    for method in ("slsqp", "coordinate"):
        result = solve(problem, method=method)
        assert result.layout.row("small").tolist() == [1.0, 0.0, 0.0, 0.0]


def test_capacity_constraint_enforced():
    """Squeeze capacity so 'big' cannot sit on one target alone."""
    problem = make_problem(capacity=units.mib(700))
    result = solve(problem)
    assigned = problem.sizes @ result.layout.matrix
    assert np.all(assigned <= problem.capacities * (1 + 1e-6))


def test_result_diagnostics_populated(problem):
    result = solve(problem)
    assert result.elapsed_s > 0
    assert result.evaluations > 0
    assert result.utilizations.shape == (4,)
    assert result.objective == pytest.approx(result.utilizations.max())


def test_serial_restarts_report_lifetime_evaluations(problem):
    """Regression: serial restarts share one evaluator, and each restart
    result snapshots the counter at its own finish — so when an *early*
    restart wins, the reported count silently dropped everything later
    restarts spent.  Both the serial and parallel paths must report the
    evaluator's lifetime total."""
    evaluator = problem.evaluator()
    result = solve(problem, method="coordinate", restarts=3, seed=0,
                   evaluator=evaluator, workers=1)
    assert result.evaluations == evaluator.evaluations

    # A single-start solve does strictly less work, so the multi-start
    # count can only be a lifetime total, never one restart's snapshot.
    single = solve(problem, method="coordinate", restarts=1, seed=0,
                   workers=1)
    assert result.evaluations > single.evaluations


# ----------------------------------------------------------------------
# Warm-started (incremental) solves
# ----------------------------------------------------------------------

def test_warm_start_requires_initial(problem):
    from repro.errors import SolverError

    with pytest.raises(SolverError):
        solve(problem, warm_start=True)


def _spy_starts(monkeypatch):
    import repro.core.solver as solver_module

    starts = []
    real = solver_module.solve_slsqp

    def spy(problem, initial, **kwargs):
        starts.append(initial)
        return real(problem, initial, **kwargs)

    monkeypatch.setattr(solver_module, "solve_slsqp", spy)
    return starts


def test_warm_start_skips_greedy_and_see(problem, monkeypatch):
    starts = _spy_starts(monkeypatch)
    prior = solve(problem, method="slsqp").layout
    cold_starts = len(starts)
    assert cold_starts >= 2   # greedy + SEE portfolio

    del starts[:]
    result = solve(problem, initial=prior, warm_start=True, method="slsqp")
    assert len(starts) == 1
    assert starts[0] is prior
    # Refining a near-optimal prior does not lose ground.
    evaluator = problem.evaluator()
    assert result.objective <= evaluator.objective(prior.matrix) + 1e-9


def test_warm_start_restarts_add_exploration(problem, monkeypatch):
    starts = _spy_starts(monkeypatch)
    prior = initial_layout(problem)
    solve(problem, initial=prior, warm_start=True, restarts=3,
          method="slsqp")
    # Explicit restarts still add jittered greedy starts to the warm one.
    assert len(starts) == 3
    assert starts[0] is prior


def test_warm_start_keeps_expert_layouts(problem, monkeypatch):
    starts = _spy_starts(monkeypatch)
    prior = initial_layout(problem)
    expert = problem.see_layout()
    solve(problem, initial=prior, warm_start=True, method="slsqp",
          expert_layouts=[expert])
    assert len(starts) == 2
    assert starts[1] is expert


def test_warm_start_same_seed_same_portfolio(problem):
    prior = initial_layout(problem)
    first = solve(problem, initial=prior, warm_start=True, restarts=3,
                  seed=11, method="slsqp")
    second = solve(problem, initial=prior, warm_start=True, restarts=3,
                   seed=11, method="slsqp")
    assert np.allclose(first.layout.matrix, second.layout.matrix)


# ----------------------------------------------------------------------
# Row renormalization within pinning caps (_snap)
# ----------------------------------------------------------------------

def test_renormalize_respects_fractional_caps():
    """Regression: dividing a short row by its sum can push an entry
    back over a cap it was just clamped to."""
    row = np.array([0.5, 0.3])
    upper = np.array([0.5, 1.0])
    fixed = _renormalize_row(row, upper)
    assert fixed.sum() == pytest.approx(1.0)
    assert np.all(fixed <= upper + 1e-12)
    assert fixed == pytest.approx([0.5, 0.5])


def test_renormalize_scaling_down_unchanged():
    row = np.array([0.8, 0.8])
    fixed = _renormalize_row(row, np.array([1.0, 1.0]))
    assert fixed == pytest.approx([0.5, 0.5])


def test_renormalize_cascading_caps():
    """Growing the slack entries can push another entry to its cap; the
    deficit must keep flowing to whatever slack remains."""
    row = np.array([0.4, 0.29, 0.01])
    upper = np.array([0.4, 0.3, 1.0])
    fixed = _renormalize_row(row, upper)
    assert fixed.sum() == pytest.approx(1.0)
    assert np.all(fixed <= upper + 1e-12)
    assert fixed == pytest.approx([0.4, 0.3, 0.3])


def test_renormalize_zero_mass_slack():
    """When all row mass sits on capped entries, the deficit spreads
    over zero-mass slack entries headroom-proportionally."""
    row = np.array([0.5, 0.0, 0.0])
    upper = np.array([0.5, 0.3, 1.0])
    fixed = _renormalize_row(row, upper)
    assert fixed.sum() == pytest.approx(1.0)
    assert np.all(fixed <= upper + 1e-12)
    assert fixed[0] == pytest.approx(0.5)


def test_renormalize_zero_row():
    fixed = _renormalize_row(np.zeros(3), np.array([0.2, 0.5, 1.0]))
    assert fixed.sum() == pytest.approx(1.0)
    assert np.all(fixed <= np.array([0.2, 0.5, 1.0]) + 1e-12)


def test_renormalize_clamped_surplus_scales_down_within_caps():
    """A row far over budget whose proportional scaling violates a cap:
    clamping leaves a surplus, which must be scaled away rather than
    returned (found by the property test below)."""
    row = np.array([2.8459, 0.9355])
    upper = np.array([0.5867, 1.0])
    fixed = _renormalize_row(row, upper)
    assert fixed.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(fixed <= upper + 1e-12)


def test_renormalize_exact_cap_sum_has_no_residual_deficit():
    """Regression: when the caps are binding and sum to exactly 1.0,
    the cap-clamp loop can terminate with a residual deficit (float
    tolerance in the headroom test) and return a row summing to less
    than 1.  The only feasible answer is the caps themselves."""
    row = np.array([0.3, 0.2])
    upper = np.array([0.3, 0.7])
    fixed = _renormalize_row(row, upper)
    assert fixed.sum() == pytest.approx(1.0, abs=1e-9)
    assert fixed == pytest.approx([0.3, 0.7])


@settings(max_examples=200, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    m=st.integers(2, 6),
    tight=st.booleans(),
)
def test_renormalize_row_property(seed, m, tight):
    """Whenever the caps admit a distribution (upper.sum() >= 1), the
    renormalized row is one: sums to 1 within 1e-9, within caps,
    nonnegative.  ``tight`` draws caps summing to exactly 1.0 — the
    regime of the residual-deficit regression."""
    rng = np.random.default_rng(seed)
    upper = rng.random(m) + 1e-3
    if tight:
        upper = upper / upper.sum()
    else:
        upper = np.minimum(1.0, upper * (1.0 + rng.random()))
        assume(upper.sum() >= 1.0)
    row = rng.random(m) * rng.choice([0.2, 1.0, 3.0])
    fixed = _renormalize_row(row, upper)
    assert abs(fixed.sum() - 1.0) <= 1e-9
    assert np.all(fixed <= upper + 1e-9)
    assert np.all(fixed >= -1e-12)


def test_snap_rows_sum_to_one_within_caps():
    rng = np.random.default_rng(0)
    matrix = rng.random((6, 4))
    matrix[0, 0] = 1e-5     # dust entry below SNAP_THRESHOLD gets zeroed
    upper = np.clip(rng.random((6, 4)) + 0.4, 0.0, 1.0)
    snapped = _snap(matrix, upper)
    assert np.allclose(snapped.sum(axis=1), 1.0)
    assert np.all(snapped <= upper + 1e-9)
    assert snapped[0, 0] == 0.0 or upper[0, 0] == 0.0


# ----------------------------------------------------------------------
# Parallel multi-start portfolio
# ----------------------------------------------------------------------

def test_parallel_portfolio_matches_serial():
    """workers > 1 fans restarts over a process pool with deterministic
    per-restart seeds, so the result is identical to the serial path."""
    wide = make_wide_problem()
    assert wide.n_objects * wide.n_targets >= PARALLEL_MIN_VARIABLES
    serial = solve(wide, method="coordinate", restarts=2, seed=7, workers=1)
    pooled = solve(wide, method="coordinate", restarts=2, seed=7, workers=2)
    assert pooled.objective == pytest.approx(serial.objective, abs=1e-12)
    assert np.allclose(pooled.layout.matrix, serial.layout.matrix)


def test_tiny_problem_skips_pool(problem, monkeypatch):
    """Below PARALLEL_MIN_VARIABLES the pool is never engaged."""
    import repro.core.solver as solver_module

    def boom(*args, **kwargs):
        raise AssertionError("pool used for a tiny problem")

    monkeypatch.setattr(solver_module, "_run_portfolio_parallel", boom)
    assert problem.n_objects * problem.n_targets < PARALLEL_MIN_VARIABLES
    result = solve(problem, method="coordinate", restarts=2, workers=4)
    assert result.success


def test_pool_failure_falls_back_to_serial(monkeypatch):
    """A pool that cannot start must not lose the solve."""
    import repro.core.solver as solver_module

    calls = []

    def broken(*args, **kwargs):
        calls.append(1)
        return None

    monkeypatch.setattr(solver_module, "_run_portfolio_parallel", broken)
    wide = make_wide_problem()
    result = solve(wide, method="coordinate", restarts=2, seed=7, workers=2)
    assert calls, "pool path was not attempted"
    serial = solve(wide, method="coordinate", restarts=2, seed=7, workers=1)
    assert result.objective == pytest.approx(serial.objective, abs=1e-12)


def _suicidal_attempt(problem, start_layout, method, attempt_seed,
                      max_iter, capture=False):
    """Worker entry that dies the way an OOM-killed worker does.

    Module-level so the pool can pickle it by reference; only pool
    workers ever execute it (the serial path has its own closure)."""
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def test_worker_crash_mid_run_falls_back_to_serial(monkeypatch):
    """A worker process dying *mid-solve* (OOM kill, segfault) surfaces
    as BrokenProcessPool from future.result(); the portfolio must catch
    it and redo the restarts serially rather than crash or return a
    partial result."""
    import repro.core.solver as solver_module

    monkeypatch.setattr(solver_module, "_portfolio_attempt",
                        _suicidal_attempt)
    wide = make_wide_problem()
    result = solve(wide, method="coordinate", restarts=2, seed=7, workers=2)
    assert result.success
    serial = solve(wide, method="coordinate", restarts=2, seed=7, workers=1)
    assert result.objective == pytest.approx(serial.objective, abs=1e-12)
    assert np.allclose(result.layout.matrix, serial.layout.matrix)
