"""Parity tests for the incremental objective-evaluation cache.

Every probe answered from the µ_ij cache must agree with a full (N, M)
rebuild to well under the solver's 1e-9 comparison tolerance — the
incremental path is a performance layer, never a different model.
"""

import numpy as np
import pytest

from repro.core.objective import ObjectiveEvaluator

from tests.conftest import make_problem


def _random_matrix(rng, n, m):
    matrix = rng.random((n, m)) + 1e-6
    return matrix / matrix.sum(axis=1, keepdims=True)


def _random_row(rng, m):
    row = rng.random(m) + 1e-6
    return row / row.sum()


def _full_utilizations_with_row(problem, matrix, i, row):
    scratch = matrix.copy()
    scratch[i] = row
    return ObjectiveEvaluator(problem).utilizations(scratch)


@pytest.fixture
def problem():
    return make_problem()


@pytest.mark.filterwarnings(
    "ignore:ObjectiveEvaluator rebound:RuntimeWarning"
)
def test_utilizations_with_row_matches_full(problem):
    # Probing 20 unrelated base matrices through one evaluator is the
    # rebind pattern the cache warns about; here it is the point.
    rng = np.random.default_rng(0)
    n, m = problem.n_objects, problem.n_targets
    evaluator = problem.evaluator()
    for trial in range(20):
        matrix = _random_matrix(rng, n, m)
        i = int(rng.integers(n))
        row = _random_row(rng, m)
        fast = evaluator.utilizations_with_row(matrix, i, row)
        slow = _full_utilizations_with_row(problem, matrix, i, row)
        assert np.max(np.abs(fast - slow)) < 1e-9


def test_objective_with_row_matches_full(problem):
    rng = np.random.default_rng(1)
    n, m = problem.n_objects, problem.n_targets
    evaluator = problem.evaluator()
    matrix = _random_matrix(rng, n, m)
    for i in range(n):
        row = _random_row(rng, m)
        fast = evaluator.objective_with_row(matrix, i, row)
        slow = float(_full_utilizations_with_row(problem, matrix, i, row).max())
        assert fast == pytest.approx(slow, abs=1e-9)


def test_evaluate_rows_batch_matches_full(problem):
    """The batched pass over K candidate rows equals K full rebuilds."""
    rng = np.random.default_rng(2)
    n, m = problem.n_objects, problem.n_targets
    evaluator = problem.evaluator()
    matrix = _random_matrix(rng, n, m)
    i = 1
    rows = np.stack([_random_row(rng, m) for _ in range(9)])
    fast = evaluator.evaluate_rows(matrix, i, rows)
    slow = np.array([
        float(_full_utilizations_with_row(problem, matrix, i, row).max())
        for row in rows
    ])
    assert fast.shape == (9,)
    assert np.max(np.abs(fast - slow)) < 1e-9


def test_zero_and_degenerate_rows(problem):
    """Zero rows and single-target rows stay in the model's domain."""
    rng = np.random.default_rng(3)
    n, m = problem.n_objects, problem.n_targets
    evaluator = problem.evaluator()
    matrix = _random_matrix(rng, n, m)
    one_hot = np.zeros(m)
    one_hot[2] = 1.0
    for row in (np.zeros(m), one_hot):
        for i in range(n):
            fast = evaluator.utilizations_with_row(matrix, i, row)
            slow = _full_utilizations_with_row(problem, matrix, i, row)
            assert np.max(np.abs(fast - slow)) < 1e-9


def test_utilizations_without_row_matches_zeroed_rebuild(problem):
    rng = np.random.default_rng(4)
    n, m = problem.n_objects, problem.n_targets
    evaluator = problem.evaluator()
    matrix = _random_matrix(rng, n, m)
    for i in range(n):
        fast = evaluator.utilizations_without_row(matrix, i)
        slow = _full_utilizations_with_row(problem, matrix, i, np.zeros(m))
        assert np.max(np.abs(fast - slow)) < 1e-9


def test_commit_row_keeps_cache_exact(problem):
    """A long random probe/commit walk never drifts from full parity."""
    rng = np.random.default_rng(5)
    n, m = problem.n_objects, problem.n_targets
    evaluator = problem.evaluator()
    matrix = _random_matrix(rng, n, m)
    evaluator.bind(matrix)
    oracle = ObjectiveEvaluator(problem, incremental=False)
    for step in range(60):
        i = int(rng.integers(n))
        row = _random_row(rng, m)
        matrix[i] = row
        evaluator.commit_row(i, row)
        fast = evaluator.utilizations_for(matrix)
        slow = oracle.utilizations(matrix)
        assert np.max(np.abs(fast - slow)) < 1e-9, "drift at step %d" % step


def test_rebind_on_foreign_matrix(problem):
    """Probing a matrix that differs from the bound base rebinds."""
    rng = np.random.default_rng(6)
    n, m = problem.n_objects, problem.n_targets
    evaluator = problem.evaluator()
    first = _random_matrix(rng, n, m)
    second = _random_matrix(rng, n, m)
    row = _random_row(rng, m)
    evaluator.utilizations_with_row(first, 0, row)
    fast = evaluator.utilizations_with_row(second, 0, row)
    slow = _full_utilizations_with_row(problem, second, 0, row)
    assert np.max(np.abs(fast - slow)) < 1e-9


def test_probes_avoid_full_rebuilds(problem):
    rng = np.random.default_rng(7)
    n, m = problem.n_objects, problem.n_targets
    evaluator = problem.evaluator()
    matrix = _random_matrix(rng, n, m)
    evaluator.bind(matrix)
    full_before = evaluator.full_evaluations
    rows = np.stack([_random_row(rng, m) for _ in range(25)])
    evaluator.evaluate_rows(matrix, 0, rows)
    assert evaluator.full_evaluations == full_before
    assert evaluator.incremental_evaluations == 25
    assert evaluator.evaluations >= 25


def test_non_incremental_fallback_matches(problem):
    rng = np.random.default_rng(8)
    n, m = problem.n_objects, problem.n_targets
    fast = ObjectiveEvaluator(problem)
    slow = ObjectiveEvaluator(problem, incremental=False)
    matrix = _random_matrix(rng, n, m)
    rows = np.stack([_random_row(rng, m) for _ in range(5)])
    assert np.max(np.abs(
        fast.evaluate_rows(matrix, 2, rows) - slow.evaluate_rows(matrix, 2, rows)
    )) < 1e-9
    assert np.max(np.abs(
        fast.utilizations_for(matrix) - slow.utilizations_for(matrix)
    )) < 1e-9
    assert np.max(np.abs(
        fast.object_loads_for(matrix) - slow.object_loads_for(matrix)
    )) < 1e-9


def test_no_overlap_probe_touches_only_own_row():
    """Without overlaps a probe has no coupled neighbours, and parity
    still holds (the delta reduces to object i's own contribution)."""
    from repro import units
    from repro.core.problem import LayoutProblem, TargetSpec
    from repro.models.analytic import analytic_disk_target_model
    from repro.workload.spec import ObjectWorkload

    workloads = [
        ObjectWorkload("a", read_rate=200.0, run_count=8.0),
        ObjectWorkload("b", read_rate=100.0, write_rate=30.0, run_count=2.0),
    ]
    targets = [
        TargetSpec("t%d" % j, units.gib(2), analytic_disk_target_model("t%d" % j))
        for j in range(3)
    ]
    problem = LayoutProblem(
        {"a": units.mib(200), "b": units.mib(100)}, targets, workloads
    )
    rng = np.random.default_rng(9)
    evaluator = problem.evaluator()
    matrix = _random_matrix(rng, 2, 3)
    row = _random_row(rng, 3)
    fast = evaluator.utilizations_with_row(matrix, 0, row)
    slow = _full_utilizations_with_row(problem, matrix, 0, row)
    assert np.max(np.abs(fast - slow)) < 1e-9


def test_nonzero_overlap_diagonal_keeps_parity(problem):
    """Regression: a nonzero diagonal smuggled into the overlap matrix
    (hand-built arrays, or an external workload source) put object i in
    its *own* neighbor set, double-counting its µ contribution on the
    incremental probe path.  Eq. 2 sums over k ≠ i; the evaluator must
    normalize the diagonal away so incremental and full paths agree no
    matter what the arrays carry."""
    rng = np.random.default_rng(31)
    n, m = problem.n_objects, problem.n_targets
    fast = ObjectiveEvaluator(problem)
    full = ObjectiveEvaluator(problem, incremental=False)
    for evaluator in (fast, full):
        overlap = evaluator.arrays["overlap"].copy()
        np.fill_diagonal(overlap, 0.6)
        evaluator.arrays["overlap"] = overlap

    matrix = _random_matrix(rng, n, m)
    for i in range(n):
        row = _random_row(rng, m)
        a = fast.utilizations_with_row(matrix, i, row)
        b = full.utilizations_with_row(matrix, i, row)
        assert np.max(np.abs(a - b)) < 1e-9, i
    # And both paths must match the clean-diagonal model exactly: the
    # self-entry carries no physical meaning.
    clean = _full_utilizations_with_row(problem, matrix, 0, _random_row(rng, m))
    assert clean.shape == (m,)


def test_workload_arrays_diagonal_is_zero():
    """The array extractor is the first line of defense: even a spec
    that names itself in its own overlap set yields a zero diagonal."""
    from repro.models.target_model import workload_arrays
    from repro.workload.spec import ObjectWorkload

    workloads = [
        ObjectWorkload("a", read_rate=100.0, run_count=4.0,
                       overlap={"a": 0.9, "b": 0.5}),
        ObjectWorkload("b", read_rate=50.0, run_count=2.0),
    ]
    arrays = workload_arrays(workloads)
    assert np.all(np.diag(arrays["overlap"]) == 0.0)
    assert arrays["overlap"][0, 1] == pytest.approx(0.5)
