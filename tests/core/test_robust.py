"""Tests for the multi-scenario robust layout problem."""

import numpy as np
import pytest

from repro import units
from repro.core.advisor import LayoutAdvisor
from repro.core.problem import TargetSpec
from repro.core.robust import RobustProblem
from repro.core.solver import solve
from repro.errors import WorkloadError
from repro.models.analytic import analytic_disk_target_model
from repro.workload.spec import ObjectWorkload


def _targets(n=3, capacity=units.gib(2)):
    return [
        TargetSpec("t%d" % j, capacity, analytic_disk_target_model("t%d" % j))
        for j in range(n)
    ]


def _sizes():
    return {"a": units.mib(600), "b": units.mib(600), "c": units.mib(200)}


def _scenario(hot):
    """One scenario where ``hot`` is busy and the others idle-ish."""
    return [
        ObjectWorkload("a", read_rate=500 if hot == "a" else 20,
                       run_count=32, overlap={"b": 0.8}),
        ObjectWorkload("b", read_rate=500 if hot == "b" else 20,
                       run_count=32, overlap={"a": 0.8}),
        ObjectWorkload("c", read_rate=300 if hot == "c" else 10,
                       run_count=1),
    ]


def test_requires_at_least_one_scenario():
    with pytest.raises(WorkloadError):
        RobustProblem(_sizes(), _targets(), [])


def test_single_scenario_matches_plain_problem():
    robust = RobustProblem(_sizes(), _targets(), [_scenario("a")])
    evaluator = robust.evaluator()
    see = robust.see_layout().matrix
    from repro.core.problem import LayoutProblem

    plain = LayoutProblem(_sizes(), _targets(), _scenario("a"))
    assert np.allclose(
        evaluator.utilizations(see), plain.evaluator().utilizations(see)
    )


def test_evaluator_takes_worst_case_per_target():
    robust = RobustProblem(
        _sizes(), _targets(), [_scenario("a"), _scenario("b")]
    )
    evaluator = robust.evaluator()
    see = robust.see_layout().matrix
    worst = evaluator.utilizations(see)
    per_scenario = [
        p.evaluator().utilizations(see) for p in robust.scenario_problems
    ]
    assert np.allclose(worst, np.maximum.reduce(per_scenario))


def test_robust_solve_bounds_every_scenario():
    robust = RobustProblem(
        _sizes(), _targets(), [_scenario("a"), _scenario("b")]
    )
    evaluator = robust.evaluator()
    result = solve(robust, evaluator=evaluator)
    per_scenario = evaluator.per_scenario_objectives(result.layout.matrix)
    assert max(per_scenario) == pytest.approx(result.objective, rel=1e-6)


def test_robust_layout_no_worse_than_specialized_on_worst_case():
    """The robust layout's worst-case is at least as good as either

    specialized layout's worst-case."""
    from repro.core.problem import LayoutProblem

    scenarios = [_scenario("a"), _scenario("b")]
    robust = RobustProblem(_sizes(), _targets(), scenarios)
    robust_evaluator = robust.evaluator()
    robust_result = solve(robust, evaluator=robust_evaluator)
    robust_worst = max(robust_evaluator.per_scenario_objectives(
        robust_result.layout.matrix
    ))

    for scenario in scenarios:
        specialized = solve(LayoutProblem(_sizes(), _targets(), scenario))
        specialized_worst = max(robust_evaluator.per_scenario_objectives(
            specialized.layout.matrix
        ))
        assert robust_worst <= specialized_worst * 1.05


# ----------------------------------------------------------------------
# Incremental-evaluation parity: the scenario-wise max of per-scenario
# incremental caches must agree exactly with evaluating from scratch
# ----------------------------------------------------------------------

def _parity_case(n_scenarios):
    scenarios = [_scenario(hot) for hot in "abc"[:n_scenarios]]
    robust = RobustProblem(_sizes(), _targets(), scenarios)
    matrix = robust.see_layout().matrix.copy()
    rows = np.array([
        [0.7, 0.2, 0.1],
        [0.0, 0.5, 0.5],
        [1.0, 0.0, 0.0],
    ])
    return robust, matrix, rows


@pytest.mark.parametrize("n_scenarios", [1, 3])
def test_utilizations_with_row_matches_fresh_evaluation(n_scenarios):
    robust, matrix, rows = _parity_case(n_scenarios)
    incremental = robust.evaluator()
    for i in range(robust.n_objects):
        for row in rows:
            fast = incremental.utilizations_with_row(matrix, i, row)
            modified = matrix.copy()
            modified[i] = row
            fresh = robust.evaluator().utilizations(modified)
            assert np.allclose(fast, fresh, atol=1e-12)


@pytest.mark.parametrize("n_scenarios", [1, 3])
def test_commit_row_keeps_the_cache_honest(n_scenarios):
    """After a sequence of commits, incremental answers must still equal
    a from-scratch evaluation of the accumulated matrix."""
    robust, matrix, rows = _parity_case(n_scenarios)
    incremental = robust.evaluator()
    incremental.utilizations_for(matrix)  # prime the per-scenario caches
    for i in range(robust.n_objects):
        row = rows[i % len(rows)]
        matrix[i] = row
        incremental.commit_row(i, row)
    fresh = robust.evaluator()
    assert np.allclose(incremental.utilizations_for(matrix),
                       fresh.utilizations(matrix), atol=1e-12)
    assert incremental.objective_with_row(
        matrix, 0, matrix[0]
    ) == pytest.approx(fresh.objective(matrix), abs=1e-12)
    assert np.allclose(incremental.object_loads_for(matrix),
                       fresh.object_loads(matrix), atol=1e-12)


def test_evaluate_rows_matches_per_row_objectives():
    robust, matrix, rows = _parity_case(2)
    incremental = robust.evaluator()
    batched = incremental.evaluate_rows(matrix, 1, rows)
    fresh = robust.evaluator()
    for value, row in zip(batched, rows):
        modified = matrix.copy()
        modified[1] = row
        assert value == pytest.approx(fresh.objective(modified), abs=1e-12)


def test_utilizations_without_row_matches_zeroed_row():
    robust, matrix, _ = _parity_case(2)
    incremental = robust.evaluator()
    for i in range(robust.n_objects):
        without = incremental.utilizations_without_row(matrix, i)
        zeroed = matrix.copy()
        zeroed[i] = 0.0
        fresh = robust.evaluator().utilizations(zeroed)
        assert np.allclose(without, fresh, atol=1e-12)


def test_advisor_pipeline_works_on_robust_problem():
    robust = RobustProblem(
        _sizes(), _targets(), [_scenario("a"), _scenario("c")]
    )
    outcome = LayoutAdvisor(robust, regular=True).recommend()
    assert outcome.recommended.is_regular()
    robust.validate_layout(outcome.recommended)
    assert outcome.max_utilization("solver") <= outcome.max_utilization("see")