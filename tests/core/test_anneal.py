"""Tests for the randomized-search (annealing) solver."""

import numpy as np
import pytest

from repro.core.initial import initial_layout
from repro.core.anneal import solve_anneal
from repro.core.pinning import PinningConstraints
from repro.core.solver import solve

from tests.conftest import make_problem


def test_anneal_improves_on_initial():
    problem = make_problem()
    start = initial_layout(problem)
    evaluator = problem.evaluator()
    before = evaluator.objective(start.matrix)
    result = solve_anneal(problem, start, evaluator=evaluator, seed=3)
    assert result.objective <= before + 1e-9
    assert result.method == "anneal"


def test_anneal_result_is_valid():
    problem = make_problem()
    result = solve_anneal(problem, initial_layout(problem), seed=3)
    problem.validate_layout(result.layout)


def test_anneal_beats_see():
    problem = make_problem()
    evaluator = problem.evaluator()
    see_value = evaluator.objective(problem.see_layout().matrix)
    result = solve_anneal(problem, initial_layout(problem),
                          evaluator=evaluator, seed=3)
    assert result.objective <= see_value


def test_anneal_quality_near_nlp():
    """The randomized search should land within a reasonable factor of

    the NLP solver on this small problem (paper §7: 'an alternative to
    the NLP solver')."""
    problem = make_problem()
    nlp = solve(problem, method="slsqp")
    anneal = solve(problem, method="anneal", seed=5)
    assert anneal.objective <= nlp.objective * 1.5


def test_anneal_respects_pinning():
    pinning = PinningConstraints(allowed={"big": ["t0", "t1"]},
                                 fixed={"small": [1.0, 0.0, 0.0, 0.0]})
    problem = make_problem(pinning=pinning)
    result = solve_anneal(problem, initial_layout(problem), seed=3,
                          iterations=800)
    row = result.layout.row("big")
    assert row[2] == 0.0 and row[3] == 0.0
    assert result.layout.row("small").tolist() == [1.0, 0.0, 0.0, 0.0]


def test_anneal_respects_capacity():
    from repro import units

    problem = make_problem(capacity=units.mib(700))
    result = solve_anneal(problem, initial_layout(problem), seed=3)
    assigned = problem.sizes @ result.layout.matrix
    assert np.all(assigned <= problem.capacities * (1 + 1e-6))


def test_anneal_is_deterministic_per_seed():
    problem = make_problem()
    a = solve_anneal(problem, initial_layout(problem), seed=9)
    b = solve_anneal(problem, initial_layout(problem), seed=9)
    assert np.array_equal(a.layout.matrix, b.layout.matrix)


def test_solve_dispatches_anneal_method():
    problem = make_problem()
    result = solve(problem, method="anneal", seed=1)
    assert result.method == "anneal"