"""Tests for the wall-clock solver watchdog and its fallback chain."""

import time

import pytest

from repro.core.watchdog import (
    RUNG_GREEDY,
    RUNG_PARTITIONED,
    RUNG_PORTFOLIO,
    RUNG_SERIAL,
    solve_with_watchdog,
)
from repro.obs import Instrumentation

from tests.conftest import make_problem

pytestmark = pytest.mark.chaos


@pytest.fixture
def problem():
    return make_problem()


def test_no_budget_runs_the_plain_solve(problem):
    outcome = solve_with_watchdog(problem)
    assert outcome.rung == RUNG_PORTFOLIO
    assert outcome.degraded is False
    assert outcome.budget_s is None
    assert outcome.attempts == [(RUNG_PORTFOLIO, "ok")]
    problem.validate_layout(outcome.layout)


def test_generous_budget_answers_from_the_portfolio(problem):
    outcome = solve_with_watchdog(problem, budget_s=60.0)
    assert outcome.rung == RUNG_PORTFOLIO
    assert outcome.degraded is False
    assert outcome.elapsed_s < 60.0
    problem.validate_layout(outcome.layout)


def test_hung_solve_falls_back_to_greedy(problem):
    """A chaos stall longer than the budget times the portfolio rung
    out; the leftover budget is below the rung floor, so serial is
    skipped and greedy answers — degraded, but never empty-handed."""
    outcome = solve_with_watchdog(
        problem, budget_s=0.3, chaos_hook=lambda: time.sleep(1.0),
    )
    assert outcome.rung == RUNG_GREEDY
    assert outcome.degraded is True
    assert outcome.attempts == [
        (RUNG_PORTFOLIO, "timeout"),
        (RUNG_PARTITIONED, "skipped"),
        (RUNG_SERIAL, "skipped"),
        (RUNG_GREEDY, "ok"),
    ]
    assert outcome.result.success
    problem.validate_layout(outcome.layout)


def test_zero_budget_still_yields_a_valid_layout(problem):
    outcome = solve_with_watchdog(problem, budget_s=0.0)
    assert outcome.rung == RUNG_GREEDY
    assert outcome.degraded is True
    assert outcome.attempts == [
        (RUNG_PORTFOLIO, "skipped"),
        (RUNG_PARTITIONED, "skipped"),
        (RUNG_SERIAL, "skipped"),
        (RUNG_GREEDY, "ok"),
    ]
    assert outcome.result.method == "greedy"
    problem.validate_layout(outcome.layout)
    assert outcome.result.objective > 0


def test_one_shot_failure_lands_on_the_partitioned_rung(problem):
    """A hook that blows up only its first caller models a transient
    solver crash: the portfolio rung errors out immediately (leaving
    budget on the table), the retry on the partitioned rung sails
    through."""
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient solver crash")

    outcome = solve_with_watchdog(problem, budget_s=5.0, chaos_hook=flaky)
    assert outcome.rung == RUNG_PARTITIONED
    assert outcome.degraded is True
    assert outcome.attempts[0] == (RUNG_PORTFOLIO, "error")
    assert outcome.attempts[1] == (RUNG_PARTITIONED, "ok")
    assert outcome.result.method in ("partitioned", "partitioned-fallback")
    problem.validate_layout(outcome.layout)


def test_two_shot_failure_lands_on_the_serial_rung(problem):
    """Two consecutive crashes burn the portfolio and partitioned
    rungs; the tightened serial retry answers."""
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] <= 2:
            raise RuntimeError("transient solver crash")

    outcome = solve_with_watchdog(problem, budget_s=5.0, chaos_hook=flaky)
    assert outcome.rung == RUNG_SERIAL
    assert outcome.degraded is True
    assert outcome.attempts[:3] == [
        (RUNG_PORTFOLIO, "error"),
        (RUNG_PARTITIONED, "error"),
        (RUNG_SERIAL, "ok"),
    ]
    problem.validate_layout(outcome.layout)


def test_partitioned_method_skips_the_partitioned_rung(problem):
    """When the caller already asked for a partitioned solve, retrying
    the identical thing is not a fallback — the chain goes straight
    from portfolio to serial."""
    outcome = solve_with_watchdog(
        problem, budget_s=0.0, method="partitioned",
    )
    assert outcome.attempts == [
        (RUNG_PORTFOLIO, "skipped"),
        (RUNG_SERIAL, "skipped"),
        (RUNG_GREEDY, "ok"),
    ]


def test_rung_error_falls_through(problem, monkeypatch):
    from repro.core import watchdog as watchdog_module

    def explode(*args, **kwargs):
        raise RuntimeError("solver blew up")

    monkeypatch.setattr(watchdog_module, "solve", explode)
    outcome = solve_with_watchdog(problem, budget_s=5.0)
    assert outcome.rung == RUNG_GREEDY
    assert [a for _, a in outcome.attempts[:3]] == ["error"] * 3
    problem.validate_layout(outcome.layout)


def test_watchdog_reports_rung_and_timeout_counters(problem):
    obs = Instrumentation.on()
    solve_with_watchdog(problem, budget_s=0.3,
                        chaos_hook=lambda: time.sleep(1.0), obs=obs)
    rung = obs.metrics.get("repro_watchdog_rung_total", rung=RUNG_GREEDY)
    assert rung is not None and rung.value == 1
    timeouts = obs.metrics.get("repro_watchdog_timeouts_total",
                               rung=RUNG_PORTFOLIO)
    assert timeouts is not None and timeouts.value == 1
    spans = obs.tracer.find("watchdog.rung")
    assert [(s.tags["rung"], s.tags["outcome"]) for s in spans] == [
        (RUNG_PORTFOLIO, "timeout"), (RUNG_GREEDY, "ok"),
    ]


def test_budget_solution_no_worse_than_greedy(problem):
    """When the solve fits the budget it must beat (or match) what the
    last-resort rung would have produced."""
    bounded = solve_with_watchdog(problem, budget_s=60.0)
    floor = solve_with_watchdog(problem, budget_s=0.0)
    assert bounded.result.objective <= floor.result.objective + 1e-9
