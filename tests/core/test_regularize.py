"""Tests for the Section 4.3 regularization step."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.core.layout import Layout
from repro.core.regularize import (
    balancing_candidates,
    consistent_candidates,
    regularize,
)
from repro.core.solver import solve
from repro.errors import RegularizationError

from tests.conftest import make_problem


def test_paper_example_candidates():
    """The paper's example: solver row (47%, 35%, 18%) yields candidates

    (100,0,0), (50,50,0), (33,33,33)."""
    candidates = consistent_candidates(np.array([0.47, 0.35, 0.18]), 3)
    assert [c.tolist() for c in candidates] == [
        [1.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [1 / 3, 1 / 3, 1 / 3],
    ]


def test_consistent_candidates_tie_broken_by_target_id():
    candidates = consistent_candidates(np.array([0.5, 0.5]), 2)
    assert candidates[0].tolist() == [1.0, 0.0]


def test_consistent_candidates_preserve_solver_order():
    candidates = consistent_candidates(np.array([0.1, 0.9]), 2)
    assert candidates[0].tolist() == [0.0, 1.0]
    assert candidates[1].tolist() == [0.5, 0.5]


def test_balancing_candidates_prefer_least_loaded():
    candidates = balancing_candidates(np.array([0.9, 0.1, 0.5]), 3)
    assert candidates[0].tolist() == [0.0, 1.0, 0.0]
    assert candidates[1].tolist() == [0.0, 0.5, 0.5]


def test_regularized_layout_is_regular_and_valid():
    problem = make_problem()
    solved = solve(problem)
    regular = regularize(problem, solved.layout)
    assert regular.is_regular()
    problem.validate_layout(regular)


def test_regularization_cost_is_bounded():
    """Regularizing should not blow up the objective (paper Fig. 13:

    regular layouts are close to the solver's)."""
    problem = make_problem()
    evaluator = problem.evaluator()
    solved = solve(problem, evaluator=evaluator)
    regular = regularize(problem, solved.layout, evaluator=evaluator)
    solver_value = evaluator.objective(solved.layout.matrix)
    regular_value = evaluator.objective(regular.matrix)
    assert regular_value <= solver_value * 2.0


def test_already_regular_layout_stays_close():
    problem = make_problem()
    see = problem.see_layout()
    regular = regularize(problem, see)
    assert regular.is_regular()


def test_tight_capacity_raises_regularization_error():
    """When no regular candidate fits, the paper notes manual

    intervention is needed — we raise.  Pinning two objects onto one
    undersized target makes the failure deterministic."""
    from repro import units as u
    from repro.core.pinning import PinningConstraints
    from repro.core.problem import LayoutProblem, TargetSpec
    from repro.models.analytic import analytic_disk_target_model
    from repro.workload.spec import ObjectWorkload

    targets = [
        TargetSpec("t0", u.mib(800), analytic_disk_target_model("t0")),
        TargetSpec("t1", u.gib(4), analytic_disk_target_model("t1")),
    ]
    workloads = [ObjectWorkload("a", read_rate=100),
                 ObjectWorkload("b", read_rate=50)]
    pinning = PinningConstraints(allowed={"a": ["t0"], "b": ["t0"]})
    problem = LayoutProblem(
        {"a": u.mib(500), "b": u.mib(400)}, targets, workloads,
        pinning=pinning,
    )
    # Both objects are pinned to t0 (800 MiB) but total 900 MiB: every
    # regular candidate for the second object violates capacity.
    start = Layout(np.array([[1.0, 0.0], [1.0, 0.0]]), ["a", "b"],
                   ["t0", "t1"])
    with pytest.raises(RegularizationError):
        regularize(problem, start)


def test_fixed_rows_bypass_regularization():
    from repro.core.pinning import PinningConstraints

    pinning = PinningConstraints(fixed={"small": [0.25, 0.25, 0.25, 0.25]})
    problem = make_problem(pinning=pinning)
    solved = solve(problem)
    regular = regularize(problem, solved.layout)
    assert regular.row("small").tolist() == [0.25] * 4


@settings(max_examples=40, deadline=None)
@given(row=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=6))
def test_consistent_candidates_always_regular(row):
    """Property: every generated candidate is an equal-share row."""
    row = np.asarray(row)
    candidates = consistent_candidates(row, len(row))
    assert len(candidates) == len(row)
    for candidate in candidates:
        positive = candidate[candidate > 0]
        assert np.allclose(positive, positive[0])
        assert candidate.sum() == pytest.approx(1.0)


def test_balancing_order_ignores_own_fractional_row():
    """Regression: the balancing target order must be ranked with the
    object's own fractional row removed.  Ranking by the full
    utilizations lets the object's current placement inflate its own
    targets and push the genuinely attractive combination out of the
    candidate set entirely.

    Setup (identical targets, run_count=1, no overlap, so µ_j is exactly
    proportional to the assigned request rate): fixed background loads
    are a=300 on t0, b=50 on t1, c=100 on t2, and the object x (rate
    350) currently sits wholly on t2.

    * Unbiased least-utilized order (x removed): t1(50), t2(100),
      t0(300) — its 2-target candidate {t1, t2} splits x into 175+175
      and the worst target becomes t0 at 300.
    * Biased order (x's 350 counted on t2): t1, t0, t2 — {t1, t2} is
      never generated, and the best available candidate ({t1} alone,
      worst target 400) loses a third of the headroom.
    """
    from repro.core.pinning import PinningConstraints
    from repro.core.problem import LayoutProblem, TargetSpec
    from repro.models.analytic import analytic_disk_target_model
    from repro.workload.spec import ObjectWorkload

    targets = [
        TargetSpec("t%d" % j, units.gib(1),
                   analytic_disk_target_model("t%d" % j))
        for j in range(3)
    ]
    sizes = {name: units.mib(100) for name in ("a", "b", "c", "x")}
    workloads = [
        ObjectWorkload("a", read_rate=300.0, run_count=1.0),
        ObjectWorkload("b", read_rate=50.0, run_count=1.0),
        ObjectWorkload("c", read_rate=100.0, run_count=1.0),
        ObjectWorkload("x", read_rate=350.0, run_count=1.0),
    ]
    pinning = PinningConstraints(fixed={
        "a": [1.0, 0.0, 0.0],
        "b": [0.0, 1.0, 0.0],
        "c": [0.0, 0.0, 1.0],
    })
    problem = LayoutProblem(sizes, targets, workloads, pinning=pinning)
    solved = Layout(
        np.array([
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0],
        ]),
        problem.object_names, problem.target_names,
    )
    regular = regularize(problem, solved)
    assert regular.row("x") == pytest.approx([0.0, 0.5, 0.5])
