"""Tests for the migration planner."""

import numpy as np
import pytest

from repro import units
from repro.core.layout import Layout
from repro.core.migration import (
    migration_cost_seconds,
    plan_migration,
)
from repro.errors import LayoutError

OBJECTS = ["a", "b"]
TARGETS = ["t0", "t1", "t2"]
SIZES = {"a": units.mib(120), "b": units.mib(60)}


def _layout(rows):
    return Layout(np.array(rows, dtype=float), OBJECTS, TARGETS)


def test_identical_layouts_move_nothing():
    layout = _layout([[0.5, 0.5, 0.0], [1.0, 0.0, 0.0]])
    plan = plan_migration(layout, layout, SIZES)
    assert plan.total_bytes == 0
    assert plan.moves == []


def test_single_object_relocation():
    current = _layout([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    target = _layout([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
    plan = plan_migration(current, target, SIZES)
    assert plan.total_bytes == units.mib(120)
    assert len(plan.moves) == 1
    move = plan.moves[0]
    assert (move.obj, move.source, move.destination) == ("a", "t0", "t1")


def test_partial_spread_moves_only_the_delta():
    current = _layout([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    target = _layout([[0.5, 0.5, 0.0], [1.0, 0.0, 0.0]])
    plan = plan_migration(current, target, SIZES)
    assert plan.total_bytes == units.mib(60)


def test_multi_source_multi_destination():
    current = _layout([[0.5, 0.5, 0.0], [1.0, 0.0, 0.0]])
    target = _layout([[0.0, 0.0, 1.0], [0.0, 0.5, 0.5]])
    plan = plan_migration(current, target, SIZES)
    # a: 60 MiB from each of t0, t1 to t2; b: 30 to t1, 30 to t2.
    assert plan.total_bytes == units.mib(120 + 60)
    assert plan.bytes_written["t2"] == units.mib(120 + 30)
    assert plan.bytes_read["t0"] == units.mib(60 + 60)


def test_moves_sorted_largest_first():
    current = _layout([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    target = _layout([[0.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
    plan = plan_migration(current, target, SIZES)
    sizes = [move.bytes for move in plan.moves]
    assert sizes == sorted(sizes, reverse=True)


def test_mismatched_layouts_rejected():
    current = _layout([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    other = Layout(np.array([[1.0, 0.0]]), ["a"], ["t0", "t1"])
    with pytest.raises(LayoutError):
        plan_migration(current, other, SIZES)


def test_moved_fraction():
    current = _layout([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    target = _layout([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
    plan = plan_migration(current, target, SIZES)
    total = sum(SIZES.values())
    assert plan.moved_fraction(total) == pytest.approx(120 / 180)


def test_describe_lists_moves():
    current = _layout([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    target = _layout([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    plan = plan_migration(current, target, SIZES)
    text = plan.describe(top=1)
    assert "a" in text
    assert "smaller moves" in text


def test_cost_bound_uses_busiest_target():
    current = _layout([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    target = _layout([[0.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
    plan = plan_migration(current, target, SIZES)
    # t0 reads 180 MiB; t1 writes 180 MiB: bound = 180 MiB / rate.
    seconds = migration_cost_seconds(plan, transfer_bps=units.mib(180))
    assert seconds == pytest.approx(1.0)


def test_advisor_migration_integration(small_problem):
    """Plan from SEE to the advisor's recommendation on a real problem."""
    from repro.core.advisor import LayoutAdvisor

    outcome = LayoutAdvisor(small_problem, regular=True).recommend()
    see = small_problem.see_layout()
    sizes = dict(zip(small_problem.object_names, small_problem.sizes))
    plan = plan_migration(see, outcome.recommended, sizes)
    assert plan.total_bytes > 0
    assert plan.moved_fraction(sum(sizes.values())) <= 1.0

def test_describe_without_top_lists_everything():
    current = _layout([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    target = _layout([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    plan = plan_migration(current, target, SIZES)
    text = plan.describe()
    assert "a" in text and "b" in text
    assert "smaller moves" not in text


def test_describe_top_covering_all_moves_adds_no_truncation_line():
    current = _layout([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    target = _layout([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    plan = plan_migration(current, target, SIZES)
    text = plan.describe(top=len(plan.moves))
    assert "smaller moves" not in text


def test_describe_truncation_counts_hidden_moves():
    sizes = {"a": units.mib(120), "b": units.mib(60), "c": units.mib(30)}
    current = Layout(np.array([[1.0, 0.0, 0.0]] * 3), list(sizes), TARGETS)
    target = Layout(np.array([[0.0, 1.0, 0.0]] * 3), list(sizes), TARGETS)
    plan = plan_migration(current, target, sizes)
    assert len(plan.moves) == 3
    text = plan.describe(top=1)
    # Largest move shown, the other two counted.
    assert "a" in text
    assert "... and 2 smaller moves" in text
    assert "\n  c" not in text
