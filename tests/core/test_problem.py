"""Tests for LayoutProblem validation and helpers."""

import pytest

from repro import units
from repro.core.problem import LayoutProblem, TargetSpec
from repro.errors import CapacityError, WorkloadError
from repro.models.analytic import analytic_disk_target_model
from repro.workload.spec import ObjectWorkload

from tests.conftest import make_problem, make_workloads


def test_object_order_follows_size_mapping(small_problem):
    assert small_problem.object_names == ["big", "medium", "small"]
    assert small_problem.sizes[0] == units.gib(1)


def test_workloads_matched_by_name():
    problem = make_problem()
    assert [w.name for w in problem.workloads] == problem.object_names


def test_missing_workload_rejected():
    targets = [TargetSpec("t", units.gib(4), analytic_disk_target_model("t"))]
    with pytest.raises(WorkloadError):
        LayoutProblem({"a": units.mib(1)}, targets, [])


def test_extra_workload_rejected():
    targets = [TargetSpec("t", units.gib(4), analytic_disk_target_model("t"))]
    workloads = [ObjectWorkload("a"), ObjectWorkload("ghost")]
    with pytest.raises(WorkloadError):
        LayoutProblem({"a": units.mib(1)}, targets, workloads)


def test_total_capacity_shortfall_rejected():
    targets = [TargetSpec("t", units.mib(1), analytic_disk_target_model("t"))]
    with pytest.raises(CapacityError):
        LayoutProblem({"a": units.mib(100)}, targets, [ObjectWorkload("a")])


def test_objects_by_rate_descends(small_problem):
    order = small_problem.objects_by_rate()
    rates = [small_problem.workloads[i].total_rate for i in order]
    assert rates == sorted(rates, reverse=True)


def test_see_layout_shape(small_problem):
    see = small_problem.see_layout()
    assert see.matrix.shape == (3, 4)
    small_problem.validate_layout(see)


def test_evaluator_round_trip(small_problem):
    evaluator = small_problem.evaluator()
    see = small_problem.see_layout()
    utilizations = evaluator.utilizations(see.matrix)
    assert utilizations.shape == (4,)
    assert (utilizations > 0).all()
    # SEE on identical targets is perfectly balanced.
    assert utilizations.max() == pytest.approx(utilizations.min())


def test_objective_is_max_utilization(small_problem):
    evaluator = small_problem.evaluator()
    see = small_problem.see_layout()
    assert evaluator.objective(see.matrix) == pytest.approx(
        evaluator.utilizations(see.matrix).max()
    )


def test_object_loads_sum_to_total(small_problem):
    evaluator = small_problem.evaluator()
    see = small_problem.see_layout()
    loads = evaluator.object_loads(see.matrix)
    assert loads.sum() == pytest.approx(
        evaluator.utilizations(see.matrix).sum()
    )


def test_softmax_bounds_true_max(small_problem):
    evaluator = small_problem.evaluator()
    see = small_problem.see_layout().matrix
    true_max = evaluator.objective(see)
    smooth = evaluator.softmax_objective(see, beta=50.0)
    assert smooth >= true_max
    assert smooth <= true_max + 0.1
