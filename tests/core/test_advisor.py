"""Tests for the LayoutAdvisor pipeline (paper Figure 4)."""

import numpy as np
import pytest

from repro.core.advisor import LayoutAdvisor

from tests.conftest import make_problem


@pytest.fixture(scope="module")
def result():
    return LayoutAdvisor(make_problem(), regular=True).recommend()


def test_all_stages_present(result):
    assert result.initial is not None
    assert result.solver is not None
    assert result.regular is not None
    assert set(result.utilizations) == {"see", "initial", "solver", "regular"}


def test_recommended_is_regular(result):
    assert result.recommended is result.regular
    assert result.recommended.is_regular()


def test_solver_stage_beats_see(result):
    assert result.max_utilization("solver") <= result.max_utilization("see")


def test_solver_stage_beats_initial(result):
    assert result.max_utilization("solver") <= result.max_utilization("initial") + 1e-9


def test_timings_recorded(result):
    assert result.solver_time_s > 0
    assert result.regularization_time_s > 0
    assert result.total_time_s >= result.solver_time_s


def test_non_regular_mode_skips_regularization():
    outcome = LayoutAdvisor(make_problem(), regular=False).recommend()
    assert outcome.regular is None
    assert outcome.recommended is outcome.solver
    assert "regular" not in outcome.utilizations
    assert outcome.regularization_time_s == 0.0


def test_utilizations_match_layouts(result):
    problem = make_problem()
    evaluator = problem.evaluator()
    recomputed = evaluator.utilizations(result.solver.matrix)
    assert np.allclose(recomputed, result.utilizations["solver"], rtol=1e-6)


def test_heterogeneous_targets_attract_load(ssd_problem):
    """With an SSD in the mix, the random-heavy object should prefer it

    (the paper's heterogeneity claim)."""
    outcome = LayoutAdvisor(ssd_problem, regular=True).recommend()
    # 'small' is the random-access object; the SSD handles random I/O
    # an order of magnitude cheaper than the disks.
    assert outcome.recommended.fraction("small", "ssd") > 0.5


def test_method_recorded(result):
    assert result.method in ("slsqp", "coordinate")
