"""Property-based tests on the objective and layout-model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.core.problem import LayoutProblem, TargetSpec
from repro.models.analytic import analytic_disk_target_model
from repro.workload.spec import ObjectWorkload


def _problem(rates, run_counts, overlap):
    n = len(rates)
    names = ["o%d" % i for i in range(n)]
    workloads = []
    for i in range(n):
        overlaps = {
            names[k]: overlap for k in range(n) if k != i
        }
        workloads.append(ObjectWorkload(
            names[i], read_rate=rates[i], run_count=run_counts[i],
            overlap=overlaps,
        ))
    targets = [
        TargetSpec("t%d" % j, units.gib(4),
                   analytic_disk_target_model("t%d" % j))
        for j in range(3)
    ]
    sizes = {name: units.mib(100) for name in names}
    return LayoutProblem(sizes, targets, workloads)


def _random_layout(rng, n, m):
    matrix = rng.random((n, m)) + 1e-6
    return matrix / matrix.sum(axis=1, keepdims=True)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    overlap=st.floats(0.0, 1.0),
)
def test_utilizations_are_nonnegative_and_finite(seed, overlap):
    rng = np.random.default_rng(seed)
    problem = _problem([100, 300, 50], [1, 16, 64], overlap)
    matrix = _random_layout(rng, 3, 3)
    mu = problem.evaluator().utilizations(matrix)
    assert np.all(mu >= 0)
    assert np.all(np.isfinite(mu))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_objective_is_max_of_utilizations(seed):
    rng = np.random.default_rng(seed)
    problem = _problem([100, 300, 50], [1, 16, 64], 0.5)
    matrix = _random_layout(rng, 3, 3)
    evaluator = problem.evaluator()
    assert evaluator.objective(matrix) == pytest.approx(
        evaluator.utilizations(matrix).max()
    )


@settings(max_examples=25, deadline=None)
@given(
    rate_scale=st.floats(0.5, 4.0),
    seed=st.integers(0, 1000),
)
def test_utilization_scales_linearly_with_rates(rate_scale, seed):
    """µ is linear in request rates for fixed layout and contention

    structure (rates scale overlaps' χ numerator and denominator
    equally, so per-request costs are unchanged)."""
    rng = np.random.default_rng(seed)
    base = _problem([100, 300, 50], [1, 16, 64], 0.5)
    scaled = _problem(
        [100 * rate_scale, 300 * rate_scale, 50 * rate_scale],
        [1, 16, 64], 0.5,
    )
    matrix = _random_layout(rng, 3, 3)
    mu_base = base.evaluator().utilizations(matrix)
    mu_scaled = scaled.evaluator().utilizations(matrix)
    assert np.allclose(mu_scaled, rate_scale * mu_base, rtol=1e-6)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_separation_never_increases_total_cost_without_overlap(seed):
    """With zero overlap there is no interference term, so co-location

    and separation only differ through balance: total utilization is
    layout-independent."""
    rng = np.random.default_rng(seed)
    problem = _problem([100, 300, 50], [4, 4, 4], 0.0)
    evaluator = problem.evaluator()
    a = _random_layout(rng, 3, 3)
    b = _random_layout(rng, 3, 3)
    # run counts are in the stripe-preserving regime (Q·B < stripe),
    # so per-request costs don't depend on the layout at all.
    assert evaluator.utilizations(a).sum() == pytest.approx(
        evaluator.utilizations(b).sum(), rel=1e-6
    )


@settings(max_examples=20, deadline=None)
@given(
    overlap=st.floats(0.1, 1.0),
    seed=st.integers(0, 1000),
)
def test_more_overlap_never_cheaper_when_colocated(overlap, seed):
    """Raising pairwise overlap cannot reduce the co-located cost."""
    low = _problem([200, 200], [64, 64], overlap * 0.5)
    high = _problem([200, 200], [64, 64], overlap)
    together = np.array([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])

    def patched(problem):
        return problem.evaluator().utilizations(together).max()

    # Build the 2-object problems directly.
    def two_object(level):
        names = ["a", "b"]
        workloads = [
            ObjectWorkload("a", read_rate=200, run_count=64,
                           overlap={"b": level}),
            ObjectWorkload("b", read_rate=200, run_count=64,
                           overlap={"a": level}),
        ]
        targets = [
            TargetSpec("t%d" % j, units.gib(4),
                       analytic_disk_target_model("t%d" % j))
            for j in range(3)
        ]
        sizes = {name: units.mib(100) for name in names}
        return LayoutProblem(sizes, targets, workloads)

    low_value = two_object(overlap * 0.5).evaluator().utilizations(
        together[:2]
    ).max()
    high_value = two_object(overlap).evaluator().utilizations(
        together[:2]
    ).max()
    assert high_value >= low_value - 1e-12