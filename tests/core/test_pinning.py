"""Tests for administrative pinning constraints."""

import pytest

from repro.core.pinning import PinningConstraints
from repro.errors import LayoutError

OBJECTS = ["a", "b"]
TARGETS = ["t0", "t1", "t2"]


def test_empty_constraints_allow_everything():
    pinning = PinningConstraints()
    assert pinning.is_empty()
    upper, fixed = pinning.resolve(OBJECTS, TARGETS)
    assert upper.min() == 1.0
    assert fixed == {}


def test_allowed_targets_zero_out_others():
    pinning = PinningConstraints(allowed={"a": ["t1"]})
    upper, _ = pinning.resolve(OBJECTS, TARGETS)
    assert upper[0].tolist() == [0.0, 1.0, 0.0]
    assert upper[1].tolist() == [1.0, 1.0, 1.0]


def test_allowed_accepts_indices():
    pinning = PinningConstraints(allowed={"b": [0, 2]})
    upper, _ = pinning.resolve(OBJECTS, TARGETS)
    assert upper[1].tolist() == [1.0, 0.0, 1.0]


def test_fixed_row_resolved():
    pinning = PinningConstraints(fixed={"a": [0.5, 0.5, 0.0]})
    _, fixed = pinning.resolve(OBJECTS, TARGETS)
    assert fixed[0].tolist() == [0.5, 0.5, 0.0]


def test_unknown_object_rejected():
    with pytest.raises(LayoutError):
        PinningConstraints(allowed={"ghost": ["t0"]}).resolve(OBJECTS, TARGETS)


def test_empty_allowed_set_rejected():
    with pytest.raises(LayoutError):
        PinningConstraints(allowed={"a": []}).resolve(OBJECTS, TARGETS)


def test_invalid_fixed_row_rejected():
    with pytest.raises(LayoutError):
        PinningConstraints(fixed={"a": [0.5, 0.2, 0.0]}).resolve(
            OBJECTS, TARGETS
        )
    with pytest.raises(LayoutError):
        PinningConstraints(fixed={"a": [0.5, 0.5]}).resolve(OBJECTS, TARGETS)


def test_permits_queries():
    pinning = PinningConstraints(allowed={"a": ["t1"]},
                                 fixed={"b": [1.0, 0.0, 0.0]})
    assert pinning.permits("a", 1, OBJECTS, TARGETS)
    assert not pinning.permits("a", 0, OBJECTS, TARGETS)
    assert pinning.permits("b", 0, OBJECTS, TARGETS)
    assert not pinning.permits("b", 2, OBJECTS, TARGETS)
