"""Tests for the Layout matrix type."""

import numpy as np
import pytest

from repro import units
from repro.core.layout import Layout
from repro.errors import LayoutError

OBJECTS = ["a", "b", "c"]
TARGETS = ["t0", "t1"]


def test_see_is_valid_and_regular():
    layout = Layout.see(OBJECTS, TARGETS)
    layout.check_integrity()
    assert layout.is_regular()
    assert layout.fraction("a", "t0") == 0.5


def test_shape_mismatch_rejected():
    with pytest.raises(LayoutError):
        Layout(np.zeros((2, 2)), OBJECTS, TARGETS)


def test_integrity_violation_detected():
    matrix = np.array([[0.5, 0.4], [1.0, 0.0], [0.0, 1.0]])
    layout = Layout(matrix, OBJECTS, TARGETS)
    with pytest.raises(LayoutError):
        layout.check_integrity()


def test_entries_outside_unit_interval_rejected():
    matrix = np.array([[1.5, -0.5], [1.0, 0.0], [0.0, 1.0]])
    with pytest.raises(LayoutError):
        Layout(matrix, OBJECTS, TARGETS).check_integrity()


def test_capacity_violation_detected():
    layout = Layout.from_assignment(
        {"a": "t0", "b": "t0", "c": "t0"}, OBJECTS, TARGETS
    )
    sizes = [units.gib(1)] * 3
    capacities = [units.gib(2), units.gib(2)]
    with pytest.raises(LayoutError):
        layout.check_capacity(sizes, capacities)
    assert not layout.is_valid(sizes, capacities)


def test_is_valid_accepts_fitting_layout():
    layout = Layout.see(OBJECTS, TARGETS)
    assert layout.is_valid([units.mib(10)] * 3, [units.gib(1)] * 2)


def test_regularity_of_uneven_row():
    matrix = np.array([[0.3, 0.7], [1.0, 0.0], [0.5, 0.5]])
    layout = Layout(matrix, OBJECTS, TARGETS)
    assert not layout.is_regular()


def test_from_assignment_single_and_multi():
    layout = Layout.from_assignment(
        {"a": "t0", "b": ["t0", "t1"], "c": 1}, OBJECTS, TARGETS
    )
    assert layout.row("a").tolist() == [1.0, 0.0]
    assert layout.row("b").tolist() == [0.5, 0.5]
    assert layout.row("c").tolist() == [0.0, 1.0]
    assert layout.is_regular()


def test_from_assignment_empty_targets_rejected():
    with pytest.raises(LayoutError):
        Layout.from_assignment({"a": [], "b": "t0", "c": "t0"},
                               OBJECTS, TARGETS)


def test_regular_row_builder():
    row = Layout.regular_row([0, 2], 4)
    assert row.tolist() == [0.5, 0.0, 0.5, 0.0]


def test_with_row_does_not_mutate_original():
    layout = Layout.see(OBJECTS, TARGETS)
    updated = layout.with_row(0, np.array([1.0, 0.0]))
    assert layout.row("a").tolist() == [0.5, 0.5]
    assert updated.row("a").tolist() == [1.0, 0.0]


def test_fractions_by_name_round_trip():
    layout = Layout.see(OBJECTS, TARGETS)
    fractions = layout.fractions_by_name()
    assert fractions["b"] == [0.5, 0.5]


def test_describe_hides_small_fractions():
    matrix = np.array([[0.999, 0.001], [1.0, 0.0], [0.0, 1.0]])
    layout = Layout(matrix, OBJECTS, TARGETS)
    text = layout.describe()
    assert "t1:0%" not in text


def test_describe_respects_order():
    layout = Layout.see(OBJECTS, TARGETS)
    text = layout.describe(order=["c", "a"])
    assert text.index("c") < text.index("a")
    assert "b" not in text.splitlines()[0]


def test_row_lookup_by_index_and_name():
    layout = Layout.see(OBJECTS, TARGETS)
    assert layout.row(1).tolist() == layout.row("b").tolist()
