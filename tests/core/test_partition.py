"""Tests for the overlap-graph partitioned solver (fleet scale-out).

The load-bearing invariants:

* partitions are an exact cover of the object indices, never larger
  than the size cap, and never split a true connected component that
  fits under the cap;
* for a block-diagonal overlap matrix the decomposition is *exact*:
  the stitched full-problem utilizations equal the sums of the
  independently-evaluated per-partition utilizations, so the
  partitioned objective meets the monolithic one at solver tolerance;
* pinned-fixed rows survive budgeting, sub-solving, stitching, and the
  balancing pass;
* the result is always validated against the full (monolithic) model.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.core.partition import (
    PARTITION_PARITY_RTOL,
    _partition_budgets,
    _subproblem,
    overlap_partitions,
    solve_partitioned,
)
from repro.core.pinning import PinningConstraints
from repro.core.problem import LayoutProblem, TargetSpec
from repro.core.solver import solve, solve_coordinate
from repro.core.initial import initial_layout
from repro.models.analytic import analytic_disk_target_model
from repro.obs import Instrumentation
from repro.workload.spec import ObjectWorkload

from tests.conftest import make_problem


def block_problem(block_sizes, n_targets=3, seed=0, pinning=None):
    """A problem whose overlap graph is exactly the given blocks."""
    rng = np.random.default_rng(seed)
    names = []
    blocks = []
    for b, size in enumerate(block_sizes):
        block = ["b%d_o%d" % (b, i) for i in range(size)]
        blocks.append(block)
        names.extend(block)
    workloads = []
    sizes = {}
    for block in blocks:
        for name in block:
            sizes[name] = units.mib(int(rng.integers(50, 150)))
            overlap = {
                other: float(rng.uniform(0.3, 0.9))
                for other in block if other != name
            }
            workloads.append(ObjectWorkload(
                name,
                read_rate=float(rng.integers(50, 400)),
                write_rate=float(rng.integers(0, 80)),
                run_count=float(rng.integers(1, 32)),
                overlap=overlap,
            ))
    targets = [
        TargetSpec("t%d" % j, units.gib(4),
                   analytic_disk_target_model("t%d" % j))
        for j in range(n_targets)
    ]
    return LayoutProblem(sizes, targets, workloads, pinning=pinning), blocks


# ----------------------------------------------------------------------
# overlap_partitions: cover, cap, component integrity
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 24),
    density=st.floats(0.0, 0.4),
    max_size=st.integers(1, 10),
)
def test_partitions_cover_exactly_and_respect_cap(seed, n, density, max_size):
    rng = np.random.default_rng(seed)
    overlap = (rng.random((n, n)) < density).astype(float)
    overlap = np.triu(overlap, 1)
    overlap = overlap + overlap.T
    partitions = overlap_partitions(overlap, max_size=max_size)
    flat = sorted(i for part in partitions for i in part)
    assert flat == list(range(n))
    assert all(len(part) <= max_size for part in partitions)
    assert all(part == sorted(part) for part in partitions)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    block_sizes=st.lists(st.integers(1, 4), min_size=1, max_size=4),
)
def test_small_components_are_never_split(seed, block_sizes):
    """A component that fits under the cap lands whole in one partition
    (merging whole components into a bin is fine; cutting one is not)."""
    rng = np.random.default_rng(seed)
    n = sum(block_sizes)
    overlap = np.zeros((n, n))
    start = 0
    blocks = []
    for size in block_sizes:
        idx = list(range(start, start + size))
        blocks.append(idx)
        for a in idx:
            for b in idx:
                if a != b:
                    overlap[a, b] = rng.uniform(0.2, 1.0)
        start += size
    cap = max(block_sizes)
    partitions = [set(p) for p in overlap_partitions(overlap, max_size=cap)]
    for block in blocks:
        owners = [p for p in partitions if p & set(block)]
        assert len(owners) == 1
        assert set(block) <= owners[0]


def test_giant_component_is_split_to_cap():
    """One ring (a single connected component) larger than the cap is
    cut into BFS chunks, all within the cap."""
    n = 13
    overlap = np.zeros((n, n))
    for i in range(n):
        overlap[i, (i + 1) % n] = overlap[(i + 1) % n, i] = 0.5
    partitions = overlap_partitions(overlap, max_size=5)
    assert sorted(i for p in partitions for i in p) == list(range(n))
    assert all(len(p) <= 5 for p in partitions)
    assert len(partitions) >= 3


def test_no_overlap_merges_into_bins():
    """N isolated objects pack first-fit into ceil(N / cap) partitions
    instead of paying per-object solve overhead N times."""
    partitions = overlap_partitions(np.zeros((10, 10)), max_size=4)
    assert sorted(i for p in partitions for i in p) == list(range(10))
    assert len(partitions) == 3


# ----------------------------------------------------------------------
# Exact decomposition on block-diagonal overlap
# ----------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 1_000),
    block_sizes=st.lists(st.integers(2, 3), min_size=2, max_size=3),
)
def test_block_diagonal_utilizations_are_additive(seed, block_sizes):
    """For true components the stitched full-model utilizations are
    exactly the sums of the per-partition ones — the decomposition
    theorem the whole module rests on."""
    problem, blocks = block_problem(block_sizes, seed=seed)
    cap = max(block_sizes)
    result = solve_partitioned(problem, restarts=1, seed=seed,
                               max_partition_size=cap, balance_rounds=0)
    arrays_overlap = problem.evaluator().arrays["overlap"]
    partitions = overlap_partitions(arrays_overlap, max_size=cap)
    total = np.zeros(problem.n_targets)
    for indices in partitions:
        sub = _subproblem(problem, indices, problem.capacities)
        total += sub.evaluator().utilizations(
            result.layout.matrix[indices]
        )
    full = problem.evaluator().utilizations(result.layout.matrix)
    assert np.allclose(full, total, atol=1e-9)
    assert result.objective == pytest.approx(float(full.max()))


@pytest.mark.parametrize("seed", [0, 7, 42, 500, 999])
def test_block_diagonal_meets_monolithic_at_tolerance(seed):
    """The documented parity contract on exactly-decomposable
    instances: the partitioned objective comes within
    PARTITION_PARITY_RTOL of the monolithic coordinate solve.

    Deliberately *not* hypothesis-fuzzed: on 8-object instances both
    solvers' basins of attraction swing the comparison by ±30% (almost
    always in the partitioned path's favor — sub-solves escape local
    minima the monolithic descent walks into), so the statistical form
    of the contract is enforced where basin noise averages out: the
    N=80 forced-decomposition gate in ``bench_solver_scaling``."""
    problem, blocks = block_problem([3, 3, 2], seed=seed)
    mono = solve_coordinate(problem, initial_layout(problem))
    part = solve_partitioned(problem, restarts=1, seed=0,
                             max_partition_size=3)
    assert part.objective <= mono.objective * (1 + PARTITION_PARITY_RTOL)
    problem.validate_layout(part.layout)


# ----------------------------------------------------------------------
# Budgets, pinning, degenerate cases
# ----------------------------------------------------------------------

def test_partition_budgets_never_oversubscribe():
    problem, _ = block_problem([3, 2, 2])
    partitions = overlap_partitions(
        problem.evaluator().arrays["overlap"], max_size=3
    )
    budgets = _partition_budgets(problem, partitions)
    floors = len(partitions)  # 1-byte floor per partition per target
    assert np.all(budgets.sum(axis=0) <= problem.capacities + floors)
    assert np.all(budgets >= 1.0)


def test_pinned_object_spanning_partitions_keeps_its_row():
    """A pinned-fixed object keeps its exact row through budgeting,
    sub-solving, stitching, and balancing, even when the partitioner is
    forced to put every object in its own partition."""
    pinning = PinningConstraints(fixed={"big": [1.0, 0.0, 0.0, 0.0]})
    problem = make_problem(pinning=pinning)
    result = solve_partitioned(problem, restarts=1, seed=0,
                               max_partition_size=1)
    i = problem.object_names.index("big")
    assert result.layout.matrix[i] == pytest.approx([1.0, 0.0, 0.0, 0.0])
    problem.validate_layout(result.layout)


def test_pinned_allowed_targets_respected():
    pinning = PinningConstraints(allowed={"medium": ["t1", "t2"]})
    problem = make_problem(pinning=pinning)
    result = solve_partitioned(problem, restarts=1, seed=0,
                               max_partition_size=1)
    i = problem.object_names.index("medium")
    assert result.layout.matrix[i, 0] == 0.0
    assert result.layout.matrix[i, 3] == 0.0
    problem.validate_layout(result.layout)


def test_single_partition_degenerates_gracefully():
    """A fully-connected small problem yields one partition; the solve
    still runs end to end and reports the partitioned method."""
    problem = make_problem()
    result = solve_partitioned(problem, restarts=1, seed=0)
    assert result.method == "partitioned"
    assert result.success
    problem.validate_layout(result.layout)
    mono = solve_coordinate(problem, initial_layout(problem))
    assert result.objective <= mono.objective * (1 + PARTITION_PARITY_RTOL)


def test_solve_dispatches_partitioned_method():
    problem = make_problem()
    result = solve(problem, method="partitioned", restarts=1, seed=0)
    assert result.method in ("partitioned", "partitioned-fallback")
    problem.validate_layout(result.layout)


def test_balancing_pass_never_hurts():
    """The reconciliation pass starts from the stitched matrix and is
    pure descent, so enabling it can only improve the objective."""
    problem, _ = block_problem([3, 3])
    unbalanced = solve_partitioned(problem, restarts=1, seed=0,
                                   max_partition_size=3, balance_rounds=0)
    balanced = solve_partitioned(problem, restarts=1, seed=0,
                                 max_partition_size=3)
    assert balanced.objective <= unbalanced.objective + 1e-9


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------

def test_partition_spans_and_counters_recorded():
    problem, _ = block_problem([3, 2, 2])
    obs = Instrumentation.on()
    solve_partitioned(problem, restarts=1, seed=0, max_partition_size=3,
                      obs=obs)
    spans = obs.tracer.find("solver.partition")
    gauge = obs.metrics.get("repro_solver_partition_count")
    assert gauge is not None and gauge.value == len(spans)
    assert len(spans) >= 2
    assert sorted(s.tags["partition"] for s in spans) == list(
        range(len(spans))
    )
    assert sum(s.tags["n_objects"] for s in spans) == problem.n_objects
    counter = obs.metrics.get("repro_solver_partitions_total",
                              method="coordinate")
    assert counter is not None and counter.value == len(spans)
    balance = obs.tracer.find("solver.partition_balance")
    assert len(balance) == 1
    assert balance[0].tags["objective"] > 0
