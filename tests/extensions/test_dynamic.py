"""Tests for FlexVol-style dynamic placement guidance."""

import pytest

from repro import units
from repro.core.problem import TargetSpec
from repro.errors import CapacityError
from repro.extensions.dynamic import DynamicPlacer
from repro.models.analytic import analytic_disk_target_model
from repro.workload.spec import ObjectWorkload


def _placer(n_targets=3, capacity=units.gib(1)):
    targets = [
        TargetSpec("t%d" % j, capacity, analytic_disk_target_model("t%d" % j))
        for j in range(n_targets)
    ]
    return DynamicPlacer(targets)


def test_growth_lands_on_some_target():
    placer = _placer()
    placer.set_workload(ObjectWorkload("a", read_rate=100, run_count=8))
    target = placer.grow("a", units.mib(64))
    assert 0 <= target < 3
    layout = placer.current_layout()
    assert layout.row("a").sum() == pytest.approx(1.0)


def test_interfering_objects_grow_apart():
    placer = _placer()
    placer.set_workload(
        ObjectWorkload("a", read_rate=400, run_count=64, overlap={"b": 1.0})
    )
    placer.set_workload(
        ObjectWorkload("b", read_rate=400, run_count=64, overlap={"a": 1.0})
    )
    a_target = placer.grow("a", units.mib(128))
    b_target = placer.grow("b", units.mib(128))
    assert a_target != b_target


def test_growth_spreads_under_load():
    """A single hot object growing repeatedly ends up using several

    targets, mirroring how FlexVol growth spreads."""
    placer = _placer()
    placer.set_workload(ObjectWorkload("a", read_rate=800, run_count=1))
    used = {placer.grow("a", units.mib(64)) for _ in range(6)}
    assert len(used) >= 2


def test_capacity_exhaustion_raises():
    placer = _placer(n_targets=1, capacity=units.mib(100))
    placer.set_workload(ObjectWorkload("a", read_rate=10))
    placer.grow("a", units.mib(80))
    with pytest.raises(CapacityError):
        placer.grow("a", units.mib(80))
    # The failed growth did not corrupt the book-keeping.
    assert placer.current_layout().row("a").sum() == pytest.approx(1.0)


def test_drift_reports_current_vs_optimal():
    placer = _placer()
    placer.set_workload(
        ObjectWorkload("a", read_rate=400, run_count=64, overlap={"b": 1.0})
    )
    placer.set_workload(
        ObjectWorkload("b", read_rate=400, run_count=64, overlap={"a": 1.0})
    )
    placer.grow("a", units.mib(64))
    placer.grow("b", units.mib(64))
    current, optimal = placer.drift()
    assert current >= optimal - 1e-9


def test_reoptimize_returns_full_advisor_result():
    placer = _placer()
    placer.set_workload(ObjectWorkload("a", read_rate=100, run_count=8))
    placer.grow("a", units.mib(64))
    outcome = placer.reoptimize()
    assert outcome.recommended.is_regular()


def test_unknown_object_gets_idle_workload():
    placer = _placer()
    target = placer.grow("mystery", units.mib(32))
    assert 0 <= target < 3


def test_reoptimize_payoff_closes_the_drift():
    # Grow "a" while it is the only (cold-ish) object, then make "b"
    # hot: the incrementally grown layout is stuck with history the
    # advisor pass is free to undo.
    placer = _placer()
    placer.set_workload(ObjectWorkload("a", read_rate=400))
    placer.grow("a", units.mib(128))
    placer.set_workload(ObjectWorkload("b", read_rate=400,
                                       overlap={"a": 1.0}))
    placer.set_workload(ObjectWorkload("a", read_rate=400,
                                       overlap={"b": 1.0}))
    placer.grow("b", units.mib(128))

    current, optimal = placer.drift()
    outcome = placer.reoptimize(regular=False)
    payoff = outcome.max_utilization("solver")
    # The relocation pass recovers (at least) the drift the incremental
    # placements accumulated, and reproduces drift()'s optimum.
    assert payoff <= current + 1e-9
    assert payoff == pytest.approx(optimal, rel=1e-6)


def test_reoptimize_regular_flag_controls_regularization():
    placer = _placer()
    placer.set_workload(ObjectWorkload("a", read_rate=100, run_count=8))
    placer.grow("a", units.mib(64))
    assert placer.reoptimize(regular=False).regular is None
    assert placer.reoptimize(regular=True).regular is not None
