"""Tests for the storage configuration advisor extension."""

import pytest

from repro import units
from repro.extensions.config_advisor import (
    ConfigurationAdvisor,
    enumerate_configurations,
)
from repro.models.analytic import AnalyticDiskCostModel
from repro.models.target_model import TargetModel
from repro.workload.spec import ObjectWorkload


def _model_factory(name, members):
    return TargetModel(
        name=name,
        read_model=AnalyticDiskCostModel(n_members=members, kind="read"),
        write_model=AnalyticDiskCostModel(n_members=members, kind="write"),
    )


def test_partitions_of_four_disks():
    groupings = enumerate_configurations(4)
    assert [4] in groupings
    assert [3, 1] in groupings
    assert [2, 2] in groupings
    assert [2, 1, 1] in groupings
    assert [1, 1, 1, 1] in groupings
    assert len(groupings) == 5


def test_max_groups_filter():
    groupings = enumerate_configurations(4, max_groups=2)
    assert all(len(g) <= 2 for g in groupings)
    assert [2, 1, 1] not in groupings


def _advisor(workloads, sizes):
    return ConfigurationAdvisor(
        object_sizes=sizes,
        workloads=workloads,
        disk_capacity=units.gib(2),
        n_disks=4,
        target_model_factory=_model_factory,
    )


def test_recommend_returns_best_of_all_candidates():
    workloads = [
        ObjectWorkload("a", read_rate=500, run_count=64, overlap={"b": 1.0}),
        ObjectWorkload("b", read_rate=500, run_count=64, overlap={"a": 1.0}),
    ]
    sizes = {"a": units.gib(1), "b": units.gib(1)}
    result = _advisor(workloads, sizes).recommend()
    assert len(result.candidates) == 5
    best_objective = min(value for _, value in result.candidates)
    assert result.objective == pytest.approx(best_objective)


def test_interfering_objects_reject_single_big_group():
    """Two always-overlapping sequential objects: one big RAID0 target

    forces co-location, so any multi-target grouping must win."""
    workloads = [
        ObjectWorkload("a", read_rate=500, run_count=64, overlap={"b": 1.0}),
        ObjectWorkload("b", read_rate=500, run_count=64, overlap={"a": 1.0}),
    ]
    sizes = {"a": units.gib(1), "b": units.gib(1)}
    result = _advisor(workloads, sizes).recommend()
    assert result.grouping != [4]


def test_layout_comes_with_configuration():
    workloads = [ObjectWorkload("a", read_rate=100, run_count=8)]
    sizes = {"a": units.gib(1)}
    result = _advisor(workloads, sizes).recommend()
    layout = result.advisor_result.recommended
    assert layout.is_regular()
    assert len(layout.target_names) == len(result.grouping)


def test_max_groups_restricts_search():
    workloads = [ObjectWorkload("a", read_rate=100, run_count=8)]
    sizes = {"a": units.gib(1)}
    advisor = ConfigurationAdvisor(
        object_sizes=sizes,
        workloads=workloads,
        disk_capacity=units.gib(2),
        n_disks=4,
        target_model_factory=_model_factory,
        max_groups=1,
    )
    result = advisor.recommend()
    assert result.grouping == [4]
    assert result.candidates == [([4], pytest.approx(result.objective))]


def test_wide_raid_group_serves_oversized_object():
    """A 5 GiB object cannot sit whole on a 2 GiB disk; groupings with

    a wide RAID0 target can host it unsplit and should be evaluated."""
    workloads = [ObjectWorkload("a", read_rate=100, run_count=8)]
    sizes = {"a": units.gib(5)}
    result = _advisor(workloads, sizes).recommend()
    # Every candidate admitted a valid layout (fractional placement
    # handles the narrow groupings), and a best one was chosen.
    assert result.candidates
    assert result.objective > 0
