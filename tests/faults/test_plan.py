"""Tests for declarative fault plans: validation, determinism, and
JSON round-trips."""

import json

import pytest

from repro.errors import FaultError
from repro.faults.plan import FaultEvent, FaultPlan

pytestmark = pytest.mark.chaos


def test_events_sorted_by_time():
    plan = FaultPlan([
        FaultEvent(time=30.0, kind="fail-stop", target="t1"),
        FaultEvent(time=10.0, kind="stall", target="t0", duration_s=2.0),
    ])
    assert [e.time for e in plan] == [10.0, 30.0]
    assert len(plan) == 2


@pytest.mark.parametrize("event", [
    FaultEvent(time=1.0, kind="meteor", target="t0"),
    FaultEvent(time=-1.0, kind="fail-stop", target="t0"),
    FaultEvent(time=1.0, kind="fail-stop"),              # no target
    FaultEvent(time=1.0, kind="stall", target="t0"),     # no duration
    FaultEvent(time=1.0, kind="degrade", target="t0", service_scale=0.0),
    FaultEvent(time=1.0, kind="capacity-loss", target="t0",
               capacity_factor=1.5),
    FaultEvent(time=1.0, kind="solver-stall"),           # no duration
])
def test_invalid_events_rejected(event):
    with pytest.raises(FaultError):
        FaultPlan([event])


def test_validate_targets_rejects_unknown_names():
    plan = FaultPlan([FaultEvent(time=1.0, kind="fail-stop", target="t9")])
    with pytest.raises(FaultError):
        plan.validate_targets(["t0", "t1"])
    plan.validate_targets(["t9"])  # and passes when the target exists


def test_kind_partitions():
    plan = FaultPlan([
        FaultEvent(time=1.0, kind="fail-stop", target="t0"),
        FaultEvent(time=2.0, kind="solver-stall", duration_s=1.0),
        FaultEvent(time=3.0, kind="crash"),
    ])
    assert [e.kind for e in plan.target_events] == ["fail-stop"]
    assert [e.kind for e in plan.solver_stalls] == ["solver-stall"]
    assert [e.kind for e in plan.crashes] == ["crash"]


def test_same_seed_same_schedule():
    """The determinism contract: one seed, one fault schedule."""
    names = ["t0", "t1", "t2"]
    first = FaultPlan.random(42, names, horizon_s=100.0, n_faults=5)
    second = FaultPlan.random(42, names, horizon_s=100.0, n_faults=5)
    assert first.signature() == second.signature()
    assert FaultPlan.random(43, names, 100.0, n_faults=5).signature() \
        != first.signature()


def test_random_plan_is_valid_and_windowed():
    names = ["t0", "t1"]
    plan = FaultPlan.random(7, names, horizon_s=200.0, n_faults=8)
    plan.validate_targets(names)
    strikes = [e for e in plan if e.kind != "repair"]
    assert strikes
    for event in strikes:
        assert 20.0 <= event.time <= 180.0  # middle 80% of the horizon


def test_random_plan_one_fail_stop_per_target_with_repair():
    names = ["t0"]
    plan = FaultPlan.random(3, names, horizon_s=100.0, n_faults=20,
                            kinds=("fail-stop",))
    fails = [e for e in plan if e.kind == "fail-stop"]
    repairs = [e for e in plan if e.kind == "repair"]
    assert len(fails) == 1
    assert len(repairs) == 1
    assert repairs[0].time > fails[0].time


def test_random_needs_targets():
    with pytest.raises(FaultError):
        FaultPlan.random(0, [], horizon_s=10.0)


def test_save_load_round_trip(tmp_path):
    plan = FaultPlan.random(11, ["t0", "t1"], horizon_s=60.0, n_faults=4)
    path = tmp_path / "plan.json"
    plan.save(str(path))
    loaded = FaultPlan.load(str(path))
    assert loaded.signature() == plan.signature()


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(FaultError):
        FaultPlan.load(str(path))


def test_from_payload_rejects_bad_shapes():
    with pytest.raises(FaultError):
        FaultPlan.from_payload(["not", "a", "dict"])
    with pytest.raises(FaultError):
        FaultPlan.from_payload({"faults": "nope"})
    with pytest.raises(FaultError):
        FaultPlan.from_payload({"faults": [{"time": 1.0, "kind": "stall",
                                            "target": "t0", "bogus": 1}]})


def test_payload_omits_defaults(tmp_path):
    plan = FaultPlan([FaultEvent(time=5.0, kind="fail-stop", target="t0")])
    path = tmp_path / "plan.json"
    plan.save(str(path))
    entry = json.loads(path.read_text())["faults"][0]
    assert entry == {"time": 5.0, "kind": "fail-stop", "target": "t0"}
