"""Tests for the crash-safe migration journal file format."""

import json

import numpy as np
import pytest

from repro import units
from repro.core.layout import Layout
from repro.core.migration import plan_migration
from repro.errors import FaultError
from repro.faults.journal import MigrationJournal

pytestmark = pytest.mark.chaos

SIZE = units.mib(8)


def _plan(sizes=None):
    current = Layout(np.array([[1.0, 0.0]]), ["a"], ["t0", "t1"])
    target = Layout(np.array([[0.0, 1.0]]), ["a"], ["t0", "t1"])
    return plan_migration(current, target, sizes or {"a": SIZE})


def test_create_then_load_round_trip(tmp_path):
    path = str(tmp_path / "migration.jsonl")
    plan = _plan()
    journal = MigrationJournal.create(path, plan, chunk=units.mib(1),
                                      meta={"predicted_util": 0.5})
    journal.record_chunk(0)
    journal.record_chunk(3)
    journal.close()

    loaded = MigrationJournal.load(path)
    assert loaded.done == {0, 3}
    assert loaded.total_chunks == 8
    assert loaded.remaining() == [1, 2, 4, 5, 6, 7]
    assert loaded.committed is False
    assert loaded.meta == {"predicted_util": 0.5}
    assert loaded.matches(plan, units.mib(1))
    assert not loaded.matches(plan, units.mib(2))


def test_chunking_matches_plan_bytes(tmp_path):
    journal = MigrationJournal.create(
        str(tmp_path / "m.jsonl"), _plan({"a": units.mib(3) + 17}),
        chunk=units.mib(1),
    )
    assert [size for _, _, size in journal.chunks] == \
        [units.mib(1), units.mib(1), units.mib(1), 17]
    journal.close()


def test_record_chunk_is_idempotent_and_bounded(tmp_path):
    path = str(tmp_path / "m.jsonl")
    journal = MigrationJournal.create(path, _plan(), chunk=units.mib(1))
    journal.record_chunk(2)
    journal.record_chunk(2)
    journal.close()
    lines = [json.loads(l) for l in open(path) if l.strip()]
    assert sum(1 for r in lines if r["kind"] == "chunk") == 1
    with pytest.raises(FaultError):
        MigrationJournal.load(path).record_chunk(99)


def test_commit_recorded_once(tmp_path):
    path = str(tmp_path / "m.jsonl")
    journal = MigrationJournal.create(path, _plan(), chunk=units.mib(1))
    journal.record_commit()
    journal.record_commit()
    journal.close()
    loaded = MigrationJournal.load(path)
    assert loaded.committed
    lines = [json.loads(l) for l in open(path) if l.strip()]
    assert sum(1 for r in lines if r["kind"] == "commit") == 1


def test_torn_final_line_is_tolerated(tmp_path):
    """A crash can leave one partial trailing write; recovery must shrug
    it off (the chunk it described is simply re-copied)."""
    path = str(tmp_path / "m.jsonl")
    journal = MigrationJournal.create(path, _plan(), chunk=units.mib(1))
    journal.record_chunk(0)
    journal.close()
    with open(path, "a") as handle:
        handle.write('{"kind": "chunk", "ind')  # torn mid-record
    loaded = MigrationJournal.load(path)
    assert loaded.done == {0}
    assert loaded.malformed == 1


def test_mid_file_corruption_raises(tmp_path):
    path = str(tmp_path / "m.jsonl")
    journal = MigrationJournal.create(path, _plan(), chunk=units.mib(1))
    journal.record_chunk(0)
    journal.close()
    lines = open(path).read().splitlines()
    lines.insert(1, "garbage not json")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(FaultError):
        MigrationJournal.load(path)


def test_missing_begin_record_raises(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text('{"kind": "chunk", "index": 0}\n')
    with pytest.raises(FaultError):
        MigrationJournal.load(str(path))


def test_wrong_version_raises(tmp_path):
    path = str(tmp_path / "m.jsonl")
    journal = MigrationJournal.create(path, _plan(), chunk=units.mib(1))
    journal.close()
    record = json.loads(open(path).readline())
    record["version"] = 99
    open(path, "w").write(json.dumps(record) + "\n")
    with pytest.raises(FaultError):
        MigrationJournal.load(path)


def test_unknown_record_kind_raises(tmp_path):
    path = str(tmp_path / "m.jsonl")
    journal = MigrationJournal.create(path, _plan(), chunk=units.mib(1))
    journal.close()
    with open(path, "a") as handle:
        handle.write('{"kind": "sabotage"}\n')
        handle.write('{"kind": "chunk", "index": 1}\n')
    with pytest.raises(FaultError):
        MigrationJournal.load(path)


def test_out_of_range_done_index_raises(tmp_path):
    path = str(tmp_path / "m.jsonl")
    journal = MigrationJournal.create(path, _plan(), chunk=units.mib(1))
    journal.close()
    with open(path, "a") as handle:
        handle.write('{"kind": "chunk", "index": 12345}\n')
        handle.write('{"kind": "commit"}\n')
    with pytest.raises(FaultError):
        MigrationJournal.load(path)


def test_loaded_journal_appends_further_records(tmp_path):
    """Recovery continues the same file: chunks recorded after a load
    land alongside the pre-crash ones."""
    path = str(tmp_path / "m.jsonl")
    MigrationJournal.create(path, _plan(), chunk=units.mib(1)).close()
    first = MigrationJournal.load(path)
    first.record_chunk(0)
    first.close()
    second = MigrationJournal.load(path)
    assert second.done == {0}
    second.record_chunk(1)
    second.record_commit()
    second.close()
    final = MigrationJournal.load(path)
    assert final.done == {0, 1}
    assert final.committed
