"""Tests for the fault injector: replay-mode application, live-mode
scheduling, health bookkeeping, and the solver chaos hook."""

import pytest

from repro import units
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.target import StorageTarget

pytestmark = pytest.mark.chaos


def _plan(*events):
    return FaultPlan(list(events))


def _live_targets(engine, n=2):
    return [
        StorageTarget(DiskDrive("t%d" % j, units.mib(256)), engine)
        for j in range(n)
    ]


# ----------------------------------------------------------------------
# Replay mode
# ----------------------------------------------------------------------

def test_pop_due_applies_events_in_order():
    injector = FaultInjector(_plan(
        FaultEvent(time=5.0, kind="fail-stop", target="t0"),
        FaultEvent(time=10.0, kind="degrade", target="t1",
                   service_scale=3.0),
    ), target_names=["t0", "t1"])
    assert injector.pop_due(4.0) == []
    applied = injector.pop_due(11.0)
    assert [e.kind for e in applied] == ["fail-stop", "degrade"]
    assert injector.health["t0"].state == "failed"
    assert not injector.health["t0"].alive
    assert injector.health["t1"].state == "degraded"
    assert injector.health["t1"].service_scale == 3.0
    assert injector.alive_targets() == ["t1"]
    assert injector.exhausted
    assert injector.injected == 2


def test_repair_restores_health():
    injector = FaultInjector(_plan(
        FaultEvent(time=1.0, kind="fail-stop", target="t0"),
        FaultEvent(time=2.0, kind="repair", target="t0"),
    ), target_names=["t0"])
    injector.pop_due(1.5)
    assert not injector.health["t0"].alive
    injector.pop_due(2.5)
    assert injector.health["t0"].healthy


def test_stall_clears_itself_with_synthetic_repair():
    injector = FaultInjector(_plan(
        FaultEvent(time=5.0, kind="stall", target="t0", duration_s=2.0),
    ), target_names=["t0"])
    seen = []
    injector.add_listener(lambda event, health: seen.append(event.kind))
    injector.pop_due(6.0)
    assert injector.health["t0"].state == "stalled"
    injector.pop_due(8.0)
    assert injector.health["t0"].healthy
    assert seen == ["stall", "repair"]


def test_bounded_degrade_clears_itself():
    injector = FaultInjector(_plan(
        FaultEvent(time=5.0, kind="degrade", target="t0",
                   service_scale=2.5, duration_s=3.0),
    ), target_names=["t0"])
    injector.pop_due(5.0)
    assert injector.health["t0"].service_scale == 2.5
    injector.pop_due(8.0)
    assert injector.health["t0"].healthy


def test_capacity_loss_is_planning_only():
    engine = SimulationEngine()
    targets = _live_targets(engine, n=1)
    injector = FaultInjector(_plan(
        FaultEvent(time=1.0, kind="capacity-loss", target="t0",
                   capacity_factor=0.5),
    ), targets=targets)
    injector.pop_due(2.0)
    assert injector.health["t0"].capacity_factor == 0.5
    # The simulated device itself is untouched: no failure, no errors.
    assert not targets[0].failed


def test_unknown_plan_target_rejected():
    from repro.errors import FaultError

    with pytest.raises(FaultError):
        FaultInjector(_plan(
            FaultEvent(time=1.0, kind="fail-stop", target="t9"),
        ), target_names=["t0", "t1"])


# ----------------------------------------------------------------------
# Live mode
# ----------------------------------------------------------------------

def test_arm_applies_faults_to_live_targets():
    engine = SimulationEngine()
    targets = _live_targets(engine)
    injector = FaultInjector(_plan(
        FaultEvent(time=5.0, kind="fail-stop", target="t0"),
        FaultEvent(time=8.0, kind="degrade", target="t1",
                   service_scale=2.0),
    ), targets=targets)
    injector.arm(engine)
    engine.run(until=10.0)
    assert targets[0].failed
    assert targets[1].service_scale == 2.0
    assert injector.health["t0"].state == "failed"
    assert injector.health["t1"].state == "degraded"


def test_arm_rejects_past_events():
    engine = SimulationEngine()
    targets = _live_targets(engine, n=1)
    engine.schedule(10.0, lambda: None)
    engine.run()
    injector = FaultInjector(_plan(
        FaultEvent(time=5.0, kind="fail-stop", target="t0"),
    ), targets=targets)
    with pytest.raises(ValueError):
        injector.arm(engine)


def test_live_repair_resumes_the_target():
    engine = SimulationEngine()
    targets = _live_targets(engine, n=1)
    injector = FaultInjector(_plan(
        FaultEvent(time=2.0, kind="fail-stop", target="t0"),
        FaultEvent(time=6.0, kind="repair", target="t0"),
    ), targets=targets)
    injector.arm(engine)
    engine.run(until=10.0)
    assert not targets[0].failed
    assert injector.health["t0"].healthy


# ----------------------------------------------------------------------
# Solver chaos hook
# ----------------------------------------------------------------------

def test_solver_hook_consumes_stalls_in_order():
    injector = FaultInjector(_plan(
        FaultEvent(time=1.0, kind="solver-stall", duration_s=0.5),
        FaultEvent(time=2.0, kind="solver-stall", duration_s=0.25),
    ), target_names=["t0"])
    slept = []
    hook = injector.solver_hook(sleep=slept.append)
    hook()
    hook()
    hook()  # beyond the planned stalls: instant no-op
    assert slept == [0.5, 0.25]


def test_solver_stalls_never_hit_the_timeline():
    injector = FaultInjector(_plan(
        FaultEvent(time=1.0, kind="solver-stall", duration_s=0.5),
    ), target_names=["t0"])
    assert injector.pop_due(100.0) == []
