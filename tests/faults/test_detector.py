"""Tests for the failure-detection policy layer."""

import pytest

from repro.faults.detector import (
    REASON_CAPACITY,
    REASON_DEGRADED,
    REASON_FAILED,
    FailureDetector,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan

pytestmark = pytest.mark.chaos


def _wired(**kwargs):
    emergencies = []
    recoveries = []
    detector = FailureDetector(
        on_emergency=lambda event, health, reason:
            emergencies.append((event.target, reason)),
        on_recovery=lambda event, health: recoveries.append(event.target),
        **kwargs,
    )
    return detector, emergencies, recoveries


def _observe(detector, *events, target_names=("t0", "t1")):
    injector = FaultInjector(FaultPlan(list(events)),
                             target_names=list(target_names))
    injector.add_listener(detector.observe)
    injector.pop_due(float("inf"))
    return injector


def test_fail_stop_is_always_an_emergency():
    detector, emergencies, _ = _wired()
    _observe(detector, FaultEvent(time=1.0, kind="fail-stop", target="t0"))
    assert emergencies == [("t0", REASON_FAILED)]
    assert detector.failed_targets == ["t0"]


def test_mild_degrade_is_ridden_out():
    detector, emergencies, _ = _wired(degrade_threshold=2.0)
    _observe(detector, FaultEvent(time=1.0, kind="degrade", target="t0",
                                  service_scale=1.5))
    assert emergencies == []
    assert detector.flagged == {}


def test_severe_degrade_is_an_emergency():
    detector, emergencies, _ = _wired(degrade_threshold=2.0)
    _observe(detector, FaultEvent(time=1.0, kind="degrade", target="t0",
                                  service_scale=3.0))
    assert emergencies == [("t0", REASON_DEGRADED)]


def test_capacity_loss_threshold():
    detector, emergencies, _ = _wired(capacity_threshold=0.8)
    _observe(detector,
             FaultEvent(time=1.0, kind="capacity-loss", target="t0",
                        capacity_factor=0.9),
             FaultEvent(time=2.0, kind="capacity-loss", target="t1",
                        capacity_factor=0.5))
    assert emergencies == [("t1", REASON_CAPACITY)]


def test_one_emergency_per_incident():
    """A target already being evacuated is not re-reported when it also
    degrades; a repair resets the incident."""
    detector, emergencies, recoveries = _wired()
    _observe(detector,
             FaultEvent(time=1.0, kind="fail-stop", target="t0"),
             FaultEvent(time=2.0, kind="degrade", target="t0",
                        service_scale=5.0),
             FaultEvent(time=3.0, kind="repair", target="t0"),
             FaultEvent(time=4.0, kind="fail-stop", target="t0"))
    assert emergencies == [("t0", REASON_FAILED), ("t0", REASON_FAILED)]
    assert recoveries == ["t0"]
    assert detector.emergencies == 2
    assert detector.recoveries == 1


def test_repair_of_unflagged_target_is_quiet():
    detector, _, recoveries = _wired()
    _observe(detector, FaultEvent(time=1.0, kind="repair", target="t0"))
    assert recoveries == []


def test_transient_stall_clear_counts_as_recovery():
    """The injector's synthetic repair after a stall window clears a
    flagged incident, too (a stall alone never flags, so pair it with a
    severe degrade)."""
    detector, emergencies, recoveries = _wired()
    _observe(detector,
             FaultEvent(time=1.0, kind="degrade", target="t0",
                        service_scale=4.0, duration_s=2.0))
    assert emergencies == [("t0", REASON_DEGRADED)]
    assert recoveries == ["t0"]  # the bounded degrade cleared itself
