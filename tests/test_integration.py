"""End-to-end integration tests: the full paper pipeline in miniature.

These run the complete methodology — SEE run with tracing, workload
fitting, calibration, advising, regularization, and measurement — on a
heavily scaled-down database so they stay fast.
"""

import pytest

from repro import units
from repro.core import LayoutAdvisor
from repro.db import tpch_database
from repro.db.workloads import olap_workload
from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    build_problem,
    clear_model_cache,
    fit_workloads_from_run,
    measure_olap,
    see_fractions,
)
from repro.experiments.scenarios import four_disks
from repro.models.calibration import CalibrationConfig

SCALE = 1 / 256
CALIBRATION = CalibrationConfig(
    sizes=(units.kib(8),), run_counts=(1, 8, 64), competitor_counts=(0, 1, 4),
    n_requests=250,
)


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    runner_module.CACHE_DIR = str(tmp_path_factory.mktemp("cache"))
    clear_model_cache()

    database = tpch_database(SCALE)
    specs = four_disks(SCALE)
    workload = olap_workload("mini", repetitions=1, concurrency=1, seed=9)
    profiles = workload.profiles()
    see = see_fractions(database, len(specs))

    traced = measure_olap(database, profiles, see, specs,
                          concurrency=1, collect_trace=True)
    fitted = fit_workloads_from_run(traced, database)
    problem = build_problem(database, specs, fitted,
                            calibration=CALIBRATION)
    outcome = LayoutAdvisor(problem, regular=True).recommend()
    optimized = measure_olap(
        database, profiles, outcome.recommended.fractions_by_name(), specs,
        concurrency=1,
    )
    return {
        "database": database,
        "traced": traced,
        "fitted": fitted,
        "problem": problem,
        "outcome": outcome,
        "optimized": optimized,
    }


def test_trace_covers_active_objects(pipeline):
    active = {w.name for w in pipeline["fitted"] if w.total_rate > 0}
    assert "LINEITEM" in active
    assert "ORDERS" in active
    assert "TEMP SPACE" in active


def test_lineitem_fitted_as_hot_and_sequential(pipeline):
    lineitem = next(w for w in pipeline["fitted"] if w.name == "LINEITEM")
    rates = sorted(pipeline["fitted"], key=lambda w: -w.total_rate)
    assert rates[0].name == "LINEITEM"
    assert lineitem.run_count > 8


def test_advisor_layout_is_regular_and_valid(pipeline):
    layout = pipeline["outcome"].recommended
    assert layout.is_regular()
    pipeline["problem"].validate_layout(layout)


def test_estimated_utilization_beats_see(pipeline):
    outcome = pipeline["outcome"]
    assert outcome.max_utilization("solver") < outcome.max_utilization("see")


def test_measured_time_beats_see(pipeline):
    """The headline claim: the optimized layout completes the workload

    faster than SEE (paper Figure 11 reports 1.28x at full scale)."""
    see_time = pipeline["traced"].elapsed_s
    optimized_time = pipeline["optimized"].elapsed_s
    assert optimized_time < see_time


def test_hot_objects_separated(pipeline):
    """LINEITEM and ORDERS overlap and are sequential: the advisor must

    not co-locate them (paper Figure 1)."""
    layout = pipeline["outcome"].recommended
    lineitem = set((layout.row("LINEITEM") > 0.01).nonzero()[0].tolist())
    orders = set((layout.row("ORDERS") > 0.01).nonzero()[0].tolist())
    assert lineitem.isdisjoint(orders)


def test_all_queries_completed(pipeline):
    assert pipeline["optimized"].completed_queries == 21
