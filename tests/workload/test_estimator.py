"""Tests for the trace-free workload estimator (paper ref [19])."""

import pytest

from repro import units
from repro.db.profiles import QueryProfile, phase, rand, seq
from repro.db.schema import Database, DatabaseObject, TABLE, TEMP
from repro.db.tpch import tpch_database
from repro.db.workloads import OLAP1_63, OLAP8_63
from repro.workload.estimator import WorkloadEstimator, estimate_workloads


@pytest.fixture
def db():
    return Database("t", [
        DatabaseObject("A", TABLE, units.mib(64)),
        DatabaseObject("B", TABLE, units.mib(32)),
        DatabaseObject("C", TEMP, units.mib(16)),
    ])


def test_rates_proportional_to_volumes(db):
    profile = QueryProfile("q", (phase(seq("A", 1.0), seq("B", 1.0)),))
    estimator = WorkloadEstimator(db, [profile])
    a = estimator.estimate("A")
    b = estimator.estimate("B")
    # A is twice B's size and both are fully scanned: 2x the rate.
    assert a.read_rate == pytest.approx(2 * b.read_rate, rel=0.01)


def test_writes_counted_separately(db):
    profile = QueryProfile("q", (
        phase(seq("A", 1.0)),
        phase(seq("C", 1.0, kind="write")),
    ))
    estimator = WorkloadEstimator(db, [profile])
    c = estimator.estimate("C")
    assert c.write_rate > 0
    assert c.read_rate == 0


def test_sequential_accesses_estimated_as_long_runs(db):
    profile = QueryProfile("q", (phase(seq("A", 1.0)),))
    spec = WorkloadEstimator(db, [profile]).estimate("A")
    assert spec.run_count > 16


def test_random_probes_estimated_as_short_runs(db):
    profile = QueryProfile("q", (phase(rand("A", pages=100)),))
    spec = WorkloadEstimator(db, [profile]).estimate("A")
    assert spec.run_count == pytest.approx(1.0)


def test_concurrency_reduces_run_count(db):
    profile = QueryProfile("q", (phase(seq("A", 1.0)),))
    solo = WorkloadEstimator(db, [profile], concurrency=1).estimate("A")
    packed = WorkloadEstimator(db, [profile] * 8, concurrency=8).estimate("A")
    assert packed.run_count < solo.run_count


def test_same_phase_objects_overlap_fully(db):
    profile = QueryProfile("q", (phase(seq("A", 1.0), seq("B", 1.0)),))
    estimator = WorkloadEstimator(db, [profile])
    assert estimator.estimate("A").overlap_with("B") > 0.9


def test_different_phase_objects_overlap_little_at_c1(db):
    profile = QueryProfile("q", (
        phase(seq("A", 1.0)),
        phase(seq("B", 1.0)),
    ))
    estimator = WorkloadEstimator(db, [profile], concurrency=1)
    assert estimator.estimate("A").overlap_with("B") < 0.1


def test_concurrency_raises_cross_query_overlap(db):
    queries = [
        QueryProfile("qa", (phase(seq("A", 1.0)),)),
        QueryProfile("qb", (phase(seq("B", 1.0)),)),
    ]
    solo = WorkloadEstimator(db, queries, concurrency=1)
    packed = WorkloadEstimator(db, queries, concurrency=8)
    assert packed.estimate("A").overlap_with("B") > \
        solo.estimate("A").overlap_with("B")


def test_estimate_all_covers_catalog(db):
    profile = QueryProfile("q", (phase(seq("A", 1.0)),))
    specs = estimate_workloads(db, [profile])
    assert {s.name for s in specs} == {"A", "B", "C"}
    idle = next(s for s in specs if s.name == "B")
    assert idle.total_rate == 0


def test_tpch_estimates_rank_lineitem_hottest():
    """Without any trace, the estimator should still identify LINEITEM

    as the hottest object and give it a sequential workload — enough
    signal for the advisor to reproduce the Figure 1 separation."""
    database = tpch_database(1 / 64)
    specs = estimate_workloads(database, OLAP1_63.profiles())
    ranked = sorted(specs, key=lambda s: -s.total_rate)
    assert ranked[0].name == "LINEITEM"
    assert ranked[0].run_count > 4
    assert ranked[0].overlap_with("ORDERS") > 0.1


def test_estimator_is_concurrency_aware_unlike_autoadmin():
    database = tpch_database(1 / 64)
    c1 = estimate_workloads(database, OLAP1_63.profiles(), concurrency=1)
    c8 = estimate_workloads(database, OLAP8_63.profiles(), concurrency=8)
    lineitem1 = next(s for s in c1 if s.name == "LINEITEM")
    lineitem8 = next(s for s in c8 if s.name == "LINEITEM")
    assert lineitem8.run_count < lineitem1.run_count