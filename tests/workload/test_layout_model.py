"""Tests for the Figure-7 LVM striping layout model."""

import numpy as np
import pytest
from hypothesis import example, given, settings, strategies as st

from repro import units
from repro.workload.layout_model import (
    overlap_matrix,
    per_target_overlap,
    per_target_rates,
    per_target_run_counts,
    per_target_workload,
)
from repro.workload.spec import ObjectWorkload

STRIPE = units.DEFAULT_STRIPE_SIZE


def _run_counts(q, b, row):
    return per_target_run_counts([q], [b], np.array([row]), STRIPE)[0]


def test_rates_scale_with_fraction():
    rates = per_target_rates([100.0], np.array([[0.25, 0.75]]))
    assert rates.tolist() == [[25.0, 75.0]]


def test_short_runs_pass_through_striping():
    """Case 1: Q·B < StripeSize — runs fit inside a stripe."""
    q = 4
    b = units.kib(8)  # 32 KiB runs << 1 MiB stripe
    result = _run_counts(q, b, [0.5, 0.5])
    assert result[0] == pytest.approx(q)
    assert result[1] == pytest.approx(q)


def test_long_runs_split_proportionally():
    """Case 2: Q·B > StripeSize / L — the target keeps its share."""
    q = 1024
    b = units.kib(8)  # 8 MiB runs >> stripe/fraction
    result = _run_counts(q, b, [0.5, 0.5])
    assert result[0] == pytest.approx(q * 0.5)


def test_medium_runs_broken_at_stripe_granularity():
    """Case 3: between the two bounds — runs become stripe-sized."""
    q = 256
    b = units.kib(8)  # 2 MiB runs, stripe/L = 4 MiB at L=0.25
    result = _run_counts(q, b, [0.25, 0.75])
    assert result[0] == pytest.approx(STRIPE / b)


def test_zero_fraction_entries_get_neutral_run_count():
    result = _run_counts(64, units.kib(8), [1.0, 0.0])
    assert result[1] == 1.0


def test_run_count_never_below_one():
    result = _run_counts(2, units.kib(8), [0.001, 0.999])
    assert np.all(result >= 1.0)


@settings(max_examples=100, deadline=None)
@given(
    q=st.floats(1.0, 4096.0),
    fraction=st.floats(0.01, 1.0),
)
def test_run_count_formula_is_continuous(q, fraction):
    """Property: the three-case formula has no jumps (the solver

    differentiates through it numerically)."""
    b = units.kib(8)
    epsilon = 1e-6
    low = _run_counts(q, b, [fraction, 1 - fraction])[0]
    nearby = _run_counts(q * (1 + epsilon), b, [fraction, 1 - fraction])[0]
    assert abs(low - nearby) < max(0.01 * low, 0.5)


def test_per_target_overlap_requires_shared_target():
    layout = np.array([[1.0, 0.0], [0.0, 1.0]])
    overlaps = np.array([[0.0, 0.9], [0.9, 0.0]])
    result = per_target_overlap(overlaps, layout)
    # The two objects share no target: all per-target overlaps are zero.
    assert np.all(result == 0.0)


def test_per_target_overlap_on_shared_target():
    layout = np.array([[0.5, 0.5], [0.5, 0.5]])
    overlaps = np.array([[0.0, 0.9], [0.9, 0.0]])
    result = per_target_overlap(overlaps, layout)
    assert result[0, 1, 0] == pytest.approx(0.9)
    assert result[0, 1, 1] == pytest.approx(0.9)


def test_scalar_transform_matches_vectorized():
    spec = ObjectWorkload("o", read_rate=100, write_rate=20, run_count=64)
    row = [0.25, 0.75]
    scalar = per_target_workload(spec, row, 0)
    vectorized = per_target_run_counts(
        [spec.run_count], [spec.mean_size], np.array([row]), STRIPE
    )
    assert scalar.run_count == pytest.approx(vectorized[0, 0])
    assert scalar.read_rate == pytest.approx(25.0)
    assert scalar.write_rate == pytest.approx(5.0)


def test_scalar_transform_drops_unshared_overlaps():
    a = ObjectWorkload("a", read_rate=10, overlap={"b": 0.8})
    b = ObjectWorkload("b", read_rate=10, overlap={"a": 0.8})
    layout = [[1.0, 0.0], [0.0, 1.0]]
    result = per_target_workload(a, layout[0], 0, all_workloads=[a, b],
                                 layout=layout)
    assert result.overlap == {}


def test_overlap_matrix_zero_diagonal():
    workloads = [
        ObjectWorkload("a", overlap={"b": 0.5}),
        ObjectWorkload("b", overlap={"a": 0.7}),
    ]
    matrix = overlap_matrix(workloads)
    assert matrix[0, 0] == 0.0
    assert matrix[1, 1] == 0.0
    assert matrix[0, 1] == 0.5
    assert matrix[1, 0] == 0.7


@settings(max_examples=150, deadline=None)
@given(
    q=st.floats(1.0, 5000.0),
    read_size=st.sampled_from([512, 4096, 8192, 65536]),
    read_rate=st.floats(1.0, 1000.0),
    write_rate=st.floats(0.0, 500.0),
    row=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=4),
    stripe=st.sampled_from([units.kib(64), units.mib(1), units.mib(4)]),
)
@example(q=128.0, read_size=8192, read_rate=10.0, write_rate=0.0,
         row=[1.0, 0.0], stripe=units.mib(1))     # boundary: Q·B == Stripe
@example(q=256.0, read_size=8192, read_rate=10.0, write_rate=0.0,
         row=[0.5, 0.5], stripe=units.mib(1))     # boundary: Q·B == Stripe/L
def test_scalar_reference_matches_vectorized_everywhere(
        q, read_size, read_rate, write_rate, row, stripe):
    """Property: the readable scalar reference (per_target_workload) and
    the solver's vectorized transforms agree on every target, for every
    stripe size, including both Figure-7 case boundaries."""
    spec = ObjectWorkload(
        "o", read_size=read_size, write_size=read_size,
        read_rate=read_rate, write_rate=write_rate, run_count=q,
    )
    layout = np.array([row])
    run_counts = per_target_run_counts(
        [spec.run_count], [spec.mean_size], layout, stripe
    )
    read_rates = per_target_rates([spec.read_rate], layout)
    write_rates = per_target_rates([spec.write_rate], layout)
    for j in range(len(row)):
        scalar = per_target_workload(spec, row, j, stripe_size=stripe)
        vec_q = max(run_counts[0, j], 1.0)
        scalar_q = max(scalar.run_count, 1.0)
        assert scalar_q == pytest.approx(vec_q, rel=1e-12, abs=1e-12)
        assert scalar.read_rate == pytest.approx(read_rates[0, j],
                                                 rel=1e-12, abs=1e-12)
        assert scalar.write_rate == pytest.approx(write_rates[0, j],
                                                  rel=1e-12, abs=1e-12)
