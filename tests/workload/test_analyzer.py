"""Tests for the trace analyzer (the Rubicon substitute)."""

import pytest

from repro import units
from repro.errors import WorkloadError
from repro.storage.request import CompletionRecord
from repro.workload.analyzer import TraceAnalyzer, fit_workloads, summarize_trace


def _record(obj, time, offset, kind="read", size=8192, stream=1):
    return CompletionRecord(
        submit_time=time, finish_time=time, target="t", obj=obj,
        stream_id=stream, kind=kind, lba=0, logical_offset=offset, size=size,
        service_time=0.001,
    )


def _sequential_trace(obj, n, start_time=0.0, stream=1, kind="read"):
    return [
        _record(obj, start_time + i * 0.01, i * 8192, kind=kind,
                stream=stream)
        for i in range(n)
    ]


def test_rates_from_counts_and_duration():
    trace = _sequential_trace("a", 100)
    analyzer = TraceAnalyzer(trace, duration=10.0)
    spec = analyzer.fit("a")
    assert spec.read_rate == pytest.approx(10.0)
    assert spec.write_rate == 0.0


def test_sizes_are_averaged():
    trace = [
        _record("a", 0.0, 0, size=8192),
        _record("a", 0.1, 8192, size=16384),
    ]
    spec = TraceAnalyzer(trace, duration=1.0).fit("a")
    assert spec.read_size == pytest.approx(12288)


def test_sequential_trace_has_high_run_count():
    spec = TraceAnalyzer(_sequential_trace("a", 100), duration=1.0).fit("a")
    assert spec.run_count == pytest.approx(100)


def test_random_trace_has_run_count_one():
    trace = [
        _record("a", i * 0.01, ((i * 37) % 100) * units.mib(1))
        for i in range(100)
    ]
    spec = TraceAnalyzer(trace, duration=1.0).fit("a")
    assert spec.run_count < 2.0


def test_interleaved_scans_reduce_run_count():
    """Two concurrent scans of one object interleave in the block trace,

    so the fitted workload is less sequential — the paper's OLAP8-63
    LINEITEM effect."""
    solo = TraceAnalyzer(_sequential_trace("a", 100), duration=1.0).fit("a")
    interleaved = []
    for i in range(50):
        interleaved.append(_record("a", i * 0.02, i * 8192, stream=1))
        interleaved.append(
            _record("a", i * 0.02 + 0.01, units.mib(32) + i * 8192, stream=2)
        )
    mixed = TraceAnalyzer(interleaved, duration=1.0).fit("a")
    assert mixed.run_count < solo.run_count / 10


def test_writes_counted_separately():
    trace = _sequential_trace("a", 10) + [
        _record("a", 1.0 + i * 0.01, i * 8192, kind="write") for i in range(5)
    ]
    spec = TraceAnalyzer(trace, duration=1.0).fit("a")
    assert spec.read_rate == pytest.approx(10.0)
    assert spec.write_rate == pytest.approx(5.0)


def test_overlap_of_concurrent_objects():
    trace = (
        _sequential_trace("a", 50, start_time=0.0)
        + _sequential_trace("b", 50, start_time=0.0, stream=2)
    )
    analyzer = TraceAnalyzer(trace, duration=1.0, window_s=0.1)
    assert analyzer.overlap("a", "b") == pytest.approx(1.0)
    assert analyzer.fit("a").overlap["b"] == pytest.approx(1.0)


def test_overlap_of_disjoint_objects_is_zero():
    trace = (
        _sequential_trace("a", 50, start_time=0.0)
        + _sequential_trace("b", 50, start_time=100.0, stream=2)
    )
    analyzer = TraceAnalyzer(trace, window_s=1.0)
    assert analyzer.overlap("a", "b") == 0.0


def test_partial_overlap_is_fractional():
    trace = (
        _sequential_trace("a", 100, start_time=0.0)          # active 0..1s
        + _sequential_trace("b", 50, start_time=0.5, stream=2)  # 0.5..1s
    )
    analyzer = TraceAnalyzer(trace, duration=1.0, window_s=0.1)
    assert 0.3 < analyzer.overlap("a", "b") < 0.7
    assert analyzer.overlap("b", "a") == pytest.approx(1.0)


def test_unknown_object_raises():
    analyzer = TraceAnalyzer(_sequential_trace("a", 10))
    with pytest.raises(WorkloadError):
        analyzer.fit("nope")


def test_fit_all_includes_idle_objects():
    workloads = fit_workloads(
        _sequential_trace("a", 10), duration=1.0, include_idle=["a", "zzz"]
    )
    names = {w.name for w in workloads}
    assert names == {"a", "zzz"}
    idle = next(w for w in workloads if w.name == "zzz")
    assert idle.total_rate == 0.0


def test_untagged_records_ignored():
    trace = _sequential_trace("a", 10)
    trace.append(CompletionRecord(
        submit_time=0, finish_time=0, target="t", obj=None, stream_id=9,
        kind="read", lba=0, logical_offset=None, size=8192, service_time=0,
    ))
    analyzer = TraceAnalyzer(trace)
    assert analyzer.objects == ["a"]


def test_duration_inferred_from_trace_extent():
    trace = _sequential_trace("a", 11)  # finish times 0.0 .. 0.1
    analyzer = TraceAnalyzer(trace)
    assert analyzer.duration == pytest.approx(0.1)


def test_summarize_trace_mentions_objects():
    text = summarize_trace(_sequential_trace("a", 10))
    assert "a" in text
    assert "runcount" in text
