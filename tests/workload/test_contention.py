"""Tests for the Eq. 2 contention factor."""

import numpy as np
import pytest

from repro.workload.contention import contention_factors


def test_lone_object_has_zero_contention():
    chi = contention_factors([100.0], np.zeros((1, 1)), np.array([[1.0]]))
    assert chi[0, 0] == 0.0


def test_two_objects_full_overlap_same_target():
    """chi_ij = competing rate / own rate on the shared target."""
    rates = [100.0, 50.0]
    overlaps = np.array([[0.0, 1.0], [1.0, 0.0]])
    layout = np.array([[1.0], [1.0]])
    chi = contention_factors(rates, overlaps, layout)
    assert chi[0, 0] == pytest.approx(0.5)   # 50 competing per 100 own
    assert chi[1, 0] == pytest.approx(2.0)   # 100 competing per 50 own


def test_partial_overlap_scales_contention():
    rates = [100.0, 100.0]
    overlaps = np.array([[0.0, 0.25], [0.25, 0.0]])
    layout = np.array([[1.0], [1.0]])
    chi = contention_factors(rates, overlaps, layout)
    assert chi[0, 0] == pytest.approx(0.25)


def test_separated_objects_do_not_contend():
    rates = [100.0, 100.0]
    overlaps = np.array([[0.0, 1.0], [1.0, 0.0]])
    layout = np.array([[1.0, 0.0], [0.0, 1.0]])
    chi = contention_factors(rates, overlaps, layout)
    assert np.all(chi == 0.0)


def test_fractional_layout_scales_competing_rate():
    rates = [100.0, 100.0]
    overlaps = np.array([[0.0, 1.0], [1.0, 0.0]])
    # Object 1 places half its load on the shared target.
    layout = np.array([[1.0, 0.0], [0.5, 0.5]])
    chi = contention_factors(rates, overlaps, layout)
    assert chi[0, 0] == pytest.approx(0.5)


def test_own_fraction_in_denominator():
    """Eq. 2 divides by the object's own per-target rate."""
    rates = [100.0, 100.0]
    overlaps = np.array([[0.0, 1.0], [1.0, 0.0]])
    layout = np.array([[0.5, 0.5], [1.0, 0.0]])
    chi = contention_factors(rates, overlaps, layout)
    # On target 0: competing 100, own 50 -> chi = 2.
    assert chi[0, 0] == pytest.approx(2.0)
    # On target 1 the competitor is absent.
    assert chi[0, 1] == 0.0


def test_zero_rate_object_contributes_nothing():
    rates = [100.0, 0.0]
    overlaps = np.array([[0.0, 1.0], [1.0, 0.0]])
    layout = np.array([[1.0], [1.0]])
    chi = contention_factors(rates, overlaps, layout)
    assert chi[0, 0] == 0.0
    assert chi[1, 0] == 0.0  # zero own rate: defined as zero


def test_three_way_contention_sums():
    rates = [10.0, 20.0, 30.0]
    overlaps = np.ones((3, 3)) - np.eye(3)
    layout = np.ones((3, 1))
    chi = contention_factors(rates, overlaps, layout)
    assert chi[0, 0] == pytest.approx(5.0)   # (20 + 30) / 10
    assert chi[2, 0] == pytest.approx(1.0)   # (10 + 20) / 30


def test_result_shape_matches_layout():
    chi = contention_factors(
        [1.0, 2.0, 3.0], np.zeros((3, 3)), np.ones((3, 4)) / 4
    )
    assert chi.shape == (3, 4)
