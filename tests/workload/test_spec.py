"""Tests for workload descriptions."""

import pytest

from repro.errors import WorkloadError
from repro.workload.spec import ObjectWorkload


def test_defaults_are_an_idle_workload():
    spec = ObjectWorkload("idle")
    assert spec.total_rate == 0.0
    assert spec.run_count == 1.0
    assert spec.overlap == {}


def test_total_rate_sums_reads_and_writes():
    spec = ObjectWorkload("o", read_rate=10, write_rate=5)
    assert spec.total_rate == 15


def test_mean_size_weights_by_rate():
    spec = ObjectWorkload("o", read_rate=30, write_rate=10,
                          read_size=8192, write_size=4096)
    assert spec.mean_size == pytest.approx((30 * 8192 + 10 * 4096) / 40)


def test_mean_size_of_idle_workload_is_read_size():
    spec = ObjectWorkload("o", read_size=16384)
    assert spec.mean_size == 16384


def test_negative_rate_rejected():
    with pytest.raises(WorkloadError):
        ObjectWorkload("o", read_rate=-1)


def test_zero_size_rejected():
    with pytest.raises(WorkloadError):
        ObjectWorkload("o", read_size=0)


def test_run_count_below_one_rejected():
    with pytest.raises(WorkloadError):
        ObjectWorkload("o", run_count=0.5)


def test_overlap_out_of_range_rejected():
    with pytest.raises(WorkloadError):
        ObjectWorkload("o", overlap={"x": 1.5})
    with pytest.raises(WorkloadError):
        ObjectWorkload("o", overlap={"x": -0.1})


def test_overlap_with_unknown_object_is_zero():
    spec = ObjectWorkload("o", overlap={"x": 0.4})
    assert spec.overlap_with("x") == 0.4
    assert spec.overlap_with("y") == 0.0


def test_scaled_multiplies_rates_only():
    spec = ObjectWorkload("o", read_rate=10, write_rate=4, run_count=8,
                          overlap={"x": 0.5})
    doubled = spec.scaled(2.0)
    assert doubled.read_rate == 20
    assert doubled.write_rate == 8
    assert doubled.run_count == 8
    assert doubled.overlap == {"x": 0.5}
    assert spec.read_rate == 10  # original untouched


def test_renamed_remaps_overlaps():
    spec = ObjectWorkload("o", overlap={"x": 0.5, "y": 0.2})
    renamed = spec.renamed("o2", overlap_rename={"x": "x2"})
    assert renamed.name == "o2"
    assert renamed.overlap == {"x2": 0.5, "y": 0.2}
