"""Tests for synthetic stream generation and the analyzer round trip."""

import numpy as np
import pytest

from repro import units
from repro.workload.analyzer import fit_workloads
from repro.workload.spec import ObjectWorkload
from repro.workload.synth import OpenLoopRunStream, spawn_spec_streams


def test_open_loop_rate_is_approximate(single_disk_ctx, disk_target, rng):
    stream = OpenLoopRunStream(single_disk_ctx, "obj", rate=200.0,
                               duration=5.0, rng=rng)
    stream.start()
    single_disk_ctx.engine.run()
    realised = stream.completions / 5.0
    assert realised == pytest.approx(200.0, rel=0.2)


def test_open_loop_respects_duration(single_disk_ctx, rng):
    stream = OpenLoopRunStream(single_disk_ctx, "obj", rate=100.0,
                               duration=2.0, rng=rng)
    stream.start()
    end = single_disk_ctx.engine.run()
    assert end < 2.5


def test_overload_drops_rather_than_queues(single_disk_ctx, rng):
    """A random workload at far beyond disk capability caps outstanding."""
    stream = OpenLoopRunStream(single_disk_ctx, "obj", rate=100000.0,
                               duration=0.5, rng=rng, max_outstanding=8)
    stream.start()
    single_disk_ctx.engine.run()
    assert stream.dropped > 0
    assert stream.completions > 0


def test_spawn_creates_streams_for_nonzero_rates(single_disk_ctx, rng):
    spec = ObjectWorkload("obj", read_rate=50.0, write_rate=10.0)
    streams = spawn_spec_streams(single_disk_ctx, spec, duration=1.0, rng=rng)
    assert len(streams) == 2


def test_spawn_skips_idle_spec(single_disk_ctx, rng):
    spec = ObjectWorkload("obj")
    assert spawn_spec_streams(single_disk_ctx, spec, duration=1.0, rng=rng) == []


def test_round_trip_spec_to_trace_to_spec(single_disk_ctx, disk_target, rng):
    """Synthesize from a spec, re-fit from the trace, compare."""
    spec = ObjectWorkload("obj", read_rate=150.0, run_count=16.0)
    spawn_spec_streams(single_disk_ctx, spec, duration=4.0, rng=rng)
    single_disk_ctx.engine.run()
    fitted = fit_workloads(disk_target.trace, duration=4.0)[0]
    assert fitted.read_rate == pytest.approx(spec.read_rate, rel=0.25)
    assert fitted.run_count == pytest.approx(spec.run_count, rel=0.4)
    assert fitted.read_size == spec.read_size
