"""Tests for trace persistence and summary statistics."""

import pytest

from repro.storage.request import CompletionRecord
from repro.workload.trace_io import (
    load_trace,
    object_totals,
    rate_series,
    save_trace,
    target_busy_series,
)


def _record(obj="a", t=0.0, kind="read", size=8192, target="t0",
            service=0.001):
    return CompletionRecord(
        submit_time=t, finish_time=t, target=target, obj=obj, stream_id=1,
        kind=kind, lba=0, logical_offset=0, size=size, service_time=service,
    )


def test_save_load_round_trip(tmp_path):
    trace = [_record(t=0.1), _record(obj="b", t=0.2, kind="write")]
    path = str(tmp_path / "trace.jsonl")
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded == trace


def test_load_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    save_trace([_record()], str(path))
    path.write_text(path.read_text() + "\n\n")
    assert len(load_trace(str(path))) == 1


def test_rate_series_counts_per_window():
    trace = [_record(t=0.1), _record(t=0.4), _record(t=1.2)]
    series = rate_series(trace, window_s=1.0)
    assert series == [(0.0, 2.0), (1.0, 1.0)]


def test_rate_series_filters():
    trace = [
        _record(obj="a", t=0.1, kind="read"),
        _record(obj="b", t=0.2, kind="write"),
    ]
    assert rate_series(trace, obj="a")[0][1] == 1.0
    assert rate_series(trace, kind="write")[0][1] == 1.0
    assert rate_series(trace, obj="zzz") == []


def test_object_totals():
    trace = [
        _record(obj="a", kind="read", size=8192, service=0.002),
        _record(obj="a", kind="write", size=4096, service=0.004),
        _record(obj="b", kind="read", size=8192, service=0.001),
    ]
    totals = object_totals(trace)
    assert totals["a"]["reads"] == 1
    assert totals["a"]["writes"] == 1
    assert totals["a"]["read_bytes"] == 8192
    assert totals["a"]["write_bytes"] == 4096
    assert totals["a"]["mean_service_s"] == pytest.approx(0.003)
    assert totals["b"]["reads"] == 1


def test_untagged_records_skipped_in_totals():
    trace = [_record(obj=None)]
    assert object_totals(trace) == {}


def test_target_busy_series_bounded_by_one():
    trace = [
        _record(target="t0", t=0.1, service=0.4),
        _record(target="t0", t=0.2, service=0.9),
        _record(target="t1", t=1.5, service=0.2),
    ]
    series = target_busy_series(trace, window_s=1.0)
    assert series["t0"][0][1] == 1.0  # clamped: 1.3 s busy in a 1 s window
    assert series["t1"][1][1] == pytest.approx(0.2)

# ----------------------------------------------------------------------
# Round-trip property: save_trace / load_trace preserve every field
# ----------------------------------------------------------------------

from hypothesis import given, settings, strategies as st

_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=12,
)
_times = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)

_records_strategy = st.builds(
    CompletionRecord,
    submit_time=_times,
    finish_time=_times,
    target=_names,
    obj=st.one_of(st.none(), _names),
    stream_id=st.integers(min_value=0, max_value=1 << 31),
    kind=st.sampled_from(["read", "write"]),
    lba=st.integers(min_value=0, max_value=1 << 48),
    logical_offset=st.one_of(
        st.none(), st.integers(min_value=0, max_value=1 << 48)
    ),
    size=st.integers(min_value=1, max_value=1 << 24),
    service_time=_times,
)


@settings(max_examples=50, deadline=None)
@given(trace=st.lists(_records_strategy, max_size=25))
def test_round_trip_preserves_all_fields(tmp_path_factory, trace):
    path = str(tmp_path_factory.mktemp("trace") / "trace.jsonl")
    save_trace(trace, path)
    assert load_trace(path) == trace


def test_round_trip_empty_trace(tmp_path):
    path = str(tmp_path / "empty.jsonl")
    save_trace([], path)
    assert load_trace(path) == []


def test_round_trip_preserves_out_of_order_timestamps(tmp_path):
    # Persistence is not allowed to reorder: analyzers decide for
    # themselves whether to sort.
    trace = [_record(t=5.0), _record(t=1.0), _record(t=3.0)]
    path = str(tmp_path / "ooo.jsonl")
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded == trace
    assert [r.finish_time for r in loaded] == [5.0, 1.0, 3.0]
