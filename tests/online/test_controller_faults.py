"""Tests for the online controller's degraded-mode operation: fault
wiring, emergency evacuation, crash recovery, and chaos determinism."""

import glob
import os

import numpy as np
import pytest

from repro import units
from repro.core.layout import Layout
from repro.core.problem import TargetSpec
from repro.faults.injector import FaultInjector
from repro.faults.journal import MigrationJournal
from repro.faults.plan import FaultEvent, FaultPlan
from repro.models.analytic import analytic_disk_target_model
from repro.online.controller import ControllerConfig, OnlineController
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.request import CompletionRecord
from repro.storage.streams import SimContext, SteadyStream
from repro.storage.target import StorageTarget
from repro.workload.spec import ObjectWorkload

pytestmark = pytest.mark.chaos

SIZES = {"a": units.mib(64), "b": units.mib(64)}
CAPACITY = units.mib(256)


def _targets(n=2):
    return [
        TargetSpec("t%d" % j, CAPACITY, analytic_disk_target_model("t%d" % j))
        for j in range(n)
    ]


def _layout(rows):
    return Layout(np.array(rows, dtype=float), ["a", "b"], ["t0", "t1"])


def _records(obj, rate, t0, t1):
    n = int(round((t1 - t0) * rate))
    return [
        CompletionRecord(
            submit_time=t0 + (i + 0.5) / rate - 0.001,
            finish_time=t0 + (i + 0.5) / rate,
            target="t0", obj=obj, stream_id=1, kind="read", lba=0,
            logical_offset=None, size=8192, service_time=0.001,
        )
        for i in range(n)
    ]


def _config(**kwargs):
    defaults = dict(
        check_interval_s=5.0, monitor_window_s=1.0, monitor_halflife_s=10.0,
        patience=2, cooldown_s=20.0, min_gain=0.05, amortization_s=300.0,
    )
    defaults.update(kwargs)
    return ControllerConfig(**defaults)


def _controller(initial, solved, ctx=None, config=None):
    return OnlineController(
        targets=_targets(), object_sizes=SIZES, initial_layout=initial,
        solved_workloads=solved, ctx=ctx, config=config or _config(),
    )


def _live(initial, solved, config=None):
    engine = SimulationEngine()
    targets = [StorageTarget(DiskDrive("t%d" % j, CAPACITY), engine)
               for j in range(2)]
    placement = PlacementMap(SIZES, initial.fractions_by_name(),
                             [CAPACITY] * 2)
    ctx = SimContext(engine, placement, targets)
    controller = OnlineController(
        targets=_targets(), object_sizes=SIZES, initial_layout=initial,
        solved_workloads=solved, ctx=ctx, config=config or _config(),
    )
    return engine, ctx, controller


def _injector(*events, names=("t0", "t1"), live_targets=()):
    return FaultInjector(FaultPlan(list(events)),
                         targets=live_targets, target_names=list(names))


# ----------------------------------------------------------------------
# Degraded-mode planning: effective targets
# ----------------------------------------------------------------------

def test_effective_targets_shrink_dead_and_scale_degraded():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    injector = _injector(
        FaultEvent(time=1.0, kind="fail-stop", target="t0"),
        FaultEvent(time=2.0, kind="degrade", target="t1",
                   service_scale=3.0),
        FaultEvent(time=3.0, kind="capacity-loss", target="t1",
                   capacity_factor=0.5),
    )
    controller.faults = injector
    injector.pop_due(10.0)

    dead_spec, degraded_spec = controller._effective_targets()
    assert dead_spec.capacity == 1  # husk: must be evacuated
    assert degraded_spec.capacity == int(CAPACITY * 0.5)
    # The degraded target's model quotes 3x the nominal cost.
    nominal = _targets()[1].model
    sizes = np.array([8192.0])
    scaled = degraded_spec.model.read_model.lookup(
        sizes, np.array([1.0]), np.array([1.0]))
    base = nominal.read_model.lookup(
        sizes, np.array([1.0]), np.array([1.0]))
    assert np.allclose(scaled, base * 3.0)
    assert controller._dead_targets() == ["t0"]


# ----------------------------------------------------------------------
# Replay-mode emergencies
# ----------------------------------------------------------------------

def test_replay_fail_stop_evacuates_the_dead_target():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    faults = _injector(FaultEvent(time=15.0, kind="fail-stop", target="t0"))
    trace = _records("a", 50.0, 0.0, 60.0) + _records("b", 50.0, 0.0, 60.0)
    log = controller.replay(trace, faults=faults)

    assert log.of_kind("fault")
    assert [e["reason"] for e in log.of_kind("emergency")] == ["fail-stop"]
    evacuate = log.of_kind("evacuate")[0]
    assert evacuate["time"] == pytest.approx(15.0, abs=1.0)
    assert controller.emergency_resolves == 1
    # Everything moved off the dead target, nothing else was touched.
    assert controller.layout.fraction("a", "t0") <= 1e-9
    assert controller.layout.fraction("b", "t1") == pytest.approx(1.0)


def test_evacuation_bypasses_patience_and_cooldown():
    """A fresh trigger would need ``patience`` consecutive drifted
    checks plus an expired cooldown; the emergency path must ignore
    both."""
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
        config=_config(patience=100, cooldown_s=10_000.0),
    )
    faults = _injector(FaultEvent(time=15.0, kind="fail-stop", target="t0"))
    trace = _records("a", 50.0, 0.0, 40.0) + _records("b", 50.0, 0.0, 40.0)
    log = controller.replay(trace, faults=faults)
    assert log.of_kind("evacuate")
    assert controller.layout.fraction("a", "t0") <= 1e-9


def test_repair_rebalances_through_the_economic_gate():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    faults = _injector(
        FaultEvent(time=15.0, kind="fail-stop", target="t0"),
        FaultEvent(time=40.0, kind="repair", target="t0"),
    )
    trace = _records("a", 50.0, 0.0, 90.0) + _records("b", 50.0, 0.0, 90.0)
    log = controller.replay(trace, faults=faults)
    assert log.of_kind("recovered")
    # The post-repair decision is a normal accept/reject, not a second
    # emergency.
    assert controller.emergency_resolves == 1
    decisions = log.of_kind("accept") + log.of_kind("reject")
    assert any(e["time"] >= 40.0 for e in decisions)


def test_all_targets_dead_is_reported_not_crashed():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    faults = _injector(
        FaultEvent(time=10.0, kind="fail-stop", target="t0"),
        FaultEvent(time=12.0, kind="fail-stop", target="t1"),
    )
    trace = _records("a", 50.0, 0.0, 30.0)
    log = controller.replay(trace, faults=faults)
    unsolvable = log.of_kind("emergency-unsolvable")
    assert unsolvable and unsolvable[0]["reason"] == "no-targets-alive"


def test_chaos_replay_is_deterministic():
    """Same seed ⇒ identical fault schedule and identical post-recovery
    layout, event for event."""
    def run():
        controller = _controller(
            initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
            solved=[ObjectWorkload("a", read_rate=50),
                    ObjectWorkload("b", read_rate=50)],
        )
        plan = FaultPlan.random(21, ["t0", "t1"], horizon_s=90.0,
                                n_faults=4)
        faults = FaultInjector(plan, target_names=["t0", "t1"])
        trace = _records("a", 50.0, 0.0, 90.0) + _records("b", 50.0, 0.0, 90.0)
        log = controller.replay(trace, faults=faults)
        return plan, log, controller

    plan_a, log_a, ctrl_a = run()
    plan_b, log_b, ctrl_b = run()
    assert plan_a.signature() == plan_b.signature()
    assert [e["kind"] for e in log_a] == [e["kind"] for e in log_b]
    assert np.allclose(ctrl_a.layout.matrix, ctrl_b.layout.matrix)


# ----------------------------------------------------------------------
# Live-mode emergencies
# ----------------------------------------------------------------------

def test_live_fail_stop_triggers_emergency_migration():
    initial = _layout([[1.0, 0.0], [0.0, 1.0]])
    engine, ctx, controller = _live(
        initial,
        solved=[ObjectWorkload("a", read_rate=30),
                ObjectWorkload("b", read_rate=30)],
        config=_config(check_interval_s=2.0, migration_chunk=units.mib(4)),
    )
    controller.start()
    injector = FaultInjector(
        FaultPlan([FaultEvent(time=15.0, kind="fail-stop", target="t0")]),
        targets=ctx.targets,
    )
    controller.attach_faults(injector)
    rng = np.random.default_rng(5)
    SteadyStream(ctx, "a", rng=rng, think_s=0.03).start()
    SteadyStream(ctx, "b", rng=np.random.default_rng(6), think_s=0.03).start()
    engine.run(until=40.0)
    controller.stop()

    log = controller.log
    assert controller.emergency_resolves == 1
    assert log.of_kind("evacuate")
    migrated = [e for e in log.of_kind("migrated") if not e["virtual"]]
    assert migrated and migrated[0]["bytes_moved"] > 0
    assert controller.layout.fraction("a", "t0") <= 1e-9
    # The dead device served errors while the evacuation ran, and the
    # placement map no longer routes anything to it.
    assert ctx.targets[0].failed
    assert 0 not in ctx.placement.targets_of("a")


def test_live_emergency_cancels_in_flight_migration(tmp_path):
    """A fault mid-copy supersedes the running migration: the old copy
    is cancelled, the evacuation starts fresh."""
    initial = _layout([[1.0, 0.0], [1.0, 0.0]])
    engine, ctx, controller = _live(
        initial,
        solved=[ObjectWorkload("a", read_rate=30), ObjectWorkload("b")],
        config=_config(check_interval_s=2.0, monitor_halflife_s=4.0,
                       cooldown_s=10.0, migration_chunk=units.mib(1),
                       migration_pace_s=0.2,
                       journal_dir=str(tmp_path)),
    )
    controller.start()
    rng = np.random.default_rng(7)
    SteadyStream(ctx, "a", rng=rng, think_s=0.03).start()

    def wake_b():
        for seed in range(3):
            SteadyStream(ctx, "b", rng=np.random.default_rng(seed),
                         think_s=0.002).start()

    engine.schedule(10.0, wake_b)

    def fail_when_migrating():
        if controller.migrating:
            ctx.targets[1].fail()
            injector = FaultInjector(
                FaultPlan([]), targets=ctx.targets)
            controller.attach_faults(injector)
            injector.health["t1"].state = "failed"
            controller.failure_detector.observe(
                FaultEvent(time=engine.now, kind="fail-stop", target="t1"),
                injector.health,
            )
        else:
            engine.schedule(1.0, fail_when_migrating)

    engine.schedule(12.0, fail_when_migrating)
    engine.run(until=80.0)
    controller.stop()

    log = controller.log
    assert log.of_kind("migration-cancelled")
    assert log.of_kind("evacuate")
    assert controller.layout.fraction("a", "t1") <= 1e-9
    assert controller.layout.fraction("b", "t1") <= 1e-9


# ----------------------------------------------------------------------
# Crash recovery through the journal
# ----------------------------------------------------------------------

def _force_accept(controller, now=30.0):
    """Drive one accepted re-solve without replaying a long trace."""
    fitted = [ObjectWorkload("a", read_rate=50),
              ObjectWorkload("b", read_rate=150)]
    predicted = controller._predicted_util(fitted, controller.layout)
    controller._resolve(now, fitted, predicted)


def test_journal_dir_writes_commit_on_completion(tmp_path):
    engine, ctx, controller = _live(
        _layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
        config=_config(journal_dir=str(tmp_path),
                       migration_chunk=units.mib(4)),
    )
    _force_accept(controller)
    assert controller.migrating
    engine.run()
    paths = glob.glob(os.path.join(str(tmp_path), "migration-*.jsonl"))
    assert len(paths) == 1
    journal = MigrationJournal.load(paths[0])
    assert journal.committed
    assert journal.remaining() == []
    assert journal.meta["objects"] == ["a", "b"]


def test_crashed_migration_resumes_to_the_same_placement(tmp_path):
    """Kill the first controller mid-copy; a fresh controller resuming
    from the journal must land exactly the accepted layout."""
    engine, ctx, controller = _live(
        _layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
        config=_config(journal_dir=str(tmp_path),
                       migration_chunk=units.mib(1),
                       migration_pace_s=0.05),
    )
    _force_accept(controller)
    assert controller.migrating
    accepted_layout = controller._pending.layout
    engine.run(until=engine.now + 0.3)  # die mid-copy
    paths = glob.glob(os.path.join(str(tmp_path), "migration-*.jsonl"))
    assert len(paths) == 1
    probe = MigrationJournal.load(paths[0])
    assert not probe.committed
    first_done = len(probe.done)
    assert 0 < first_done < probe.total_chunks

    # Uninterrupted reference run for the same accepted migration.
    engine_r, ctx_r, reference = _live(
        _layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
        config=_config(migration_chunk=units.mib(1)),
    )
    _force_accept(reference)
    engine_r.run()

    # Second life: fresh engine/controller, resume from the journal.
    engine2, ctx2, resumed = _live(
        _layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
        config=_config(journal_dir=str(tmp_path),
                       migration_chunk=units.mib(1)),
    )
    journal = resumed.resume_migration(paths[0])
    assert resumed.migrating
    engine2.run()
    assert not resumed.migrating
    assert journal.committed
    # Resume = uninterrupted: identical final layout and placement.
    assert np.allclose(resumed.layout.matrix, accepted_layout.matrix)
    assert np.allclose(resumed.layout.matrix, reference.layout.matrix)
    assert (ctx2.placement.targets_of("b")
            == ctx_r.placement.targets_of("b"))
    # Only the tail was re-copied.
    skipped = resumed.log.of_kind("resume")[0]
    assert skipped["chunks_done"] == first_done
    migrated = [e for e in resumed.log.of_kind("migrated")
                if not e["virtual"]][0]
    assert migrated["bytes_moved"] == units.mib(1) * (
        journal.total_chunks - first_done
    )


def test_resume_of_committed_journal_is_a_noop(tmp_path):
    engine, ctx, controller = _live(
        _layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
        config=_config(journal_dir=str(tmp_path),
                       migration_chunk=units.mib(4)),
    )
    _force_accept(controller)
    engine.run()
    path = glob.glob(os.path.join(str(tmp_path), "migration-*.jsonl"))[0]

    engine2, ctx2, fresh = _live(
        _layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
    )
    journal = fresh.resume_migration(path)
    assert journal.committed
    assert not fresh.migrating
    assert not fresh.log.of_kind("resume")


# ----------------------------------------------------------------------
# Watchdog wiring
# ----------------------------------------------------------------------

def test_solver_budget_records_the_answering_rung():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
        config=_config(solve_budget_s=30.0),
    )
    trace = _records("a", 50.0, 0.0, 120.0) + _records("b", 150.0, 20.0, 120.0)
    log = controller.replay(trace)
    decisions = log.of_kind("accept") + log.of_kind("reject")
    assert decisions
    assert all(e["watchdog_rung"] == "portfolio" for e in decisions)


def test_injected_solver_stall_degrades_the_emergency_solve():
    """A solver-stall fault makes the emergency watchdog time its first
    rung out; the evacuation must still complete, flagged degraded."""
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
        config=_config(emergency_budget_s=0.2),
    )
    faults = _injector(
        FaultEvent(time=1.0, kind="solver-stall", duration_s=1.0),
        FaultEvent(time=15.0, kind="fail-stop", target="t0"),
    )
    trace = _records("a", 50.0, 0.0, 40.0) + _records("b", 50.0, 0.0, 40.0)
    log = controller.replay(trace, faults=faults)
    evacuate = log.of_kind("evacuate")[0]
    assert evacuate["degraded"] is True
    assert evacuate["watchdog_rung"] in ("serial", "greedy")
    assert controller.layout.fraction("a", "t0") <= 1e-9
