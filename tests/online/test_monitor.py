"""Tests for the sliding-window workload monitor."""

import pytest

from repro.online.monitor import WorkloadMonitor, replay_into
from repro.storage.request import CompletionRecord


def _rec(t, obj="a", kind="read", size=8192, offset=None, stream=1):
    return CompletionRecord(
        submit_time=t - 0.001, finish_time=t, target="t0", obj=obj,
        stream_id=stream, kind=kind, lba=0, logical_offset=offset,
        size=size, service_time=0.001,
    )


def _feed(monitor, obj, rate, t0, t1, kind="read", size=8192):
    n = int(round((t1 - t0) * rate))
    for i in range(n):
        monitor.observe(_rec(t0 + (i + 0.5) / rate, obj=obj, kind=kind,
                             size=size))


def test_steady_rate_is_unbiased():
    monitor = WorkloadMonitor(window_s=1.0, halflife_s=10.0)
    _feed(monitor, "a", rate=100.0, t0=0.0, t1=60.0)
    monitor.advance(60.0)
    spec = monitor.fit("a")
    assert spec.read_rate == pytest.approx(100.0, rel=1e-6)
    assert spec.write_rate == 0.0
    assert spec.read_size == pytest.approx(8192)


def test_mixed_kinds_and_sizes():
    monitor = WorkloadMonitor(window_s=1.0, halflife_s=10.0)
    records = (
        [_rec((i + 0.5) / 40.0, kind="read", size=8192)
         for i in range(40 * 30)]
        + [_rec((i + 0.5) / 10.0, kind="write", size=4096)
           for i in range(10 * 30)]
    )
    replay_into(monitor, records)
    monitor.advance(30.0)
    spec = monitor.fit("a")
    assert spec.read_rate == pytest.approx(40.0, rel=1e-6)
    assert spec.write_rate == pytest.approx(10.0, rel=1e-6)
    assert spec.write_size == pytest.approx(4096)


def test_old_phase_decays_away():
    monitor = WorkloadMonitor(window_s=1.0, halflife_s=10.0)
    _feed(monitor, "a", rate=50.0, t0=0.0, t1=10.0)
    monitor.advance(110.0)   # ten half-lives of silence
    assert monitor.decayed_rate("a") < 0.5
    assert monitor.fit("a").read_rate < 0.5


def test_drift_is_tracked():
    monitor = WorkloadMonitor(window_s=1.0, halflife_s=5.0)
    _feed(monitor, "a", rate=200.0, t0=0.0, t1=30.0)
    _feed(monitor, "a", rate=20.0, t0=30.0, t1=90.0)
    monitor.advance(90.0)
    # Several half-lives after the switch the estimate follows the new
    # phase, not the average of both.
    assert monitor.fit("a").read_rate == pytest.approx(20.0, rel=0.05)


def test_untagged_records_ignored():
    monitor = WorkloadMonitor()
    monitor.observe(_rec(1.0, obj=None))
    assert monitor.observed == 0
    assert monitor.objects == []


def test_run_detection_sequential_vs_random():
    monitor = WorkloadMonitor(window_s=1.0, halflife_s=10.0)
    # Four runs of eight contiguous pages.
    t = 0.0
    for run in range(4):
        base = run * 100 * 8192
        for i in range(8):
            t += 0.01
            monitor.observe(_rec(t, obj="seq", offset=base + i * 8192))
    # Pure random: every offset discontiguous.
    for i in range(32):
        monitor.observe(_rec(i * 0.01, obj="rnd", offset=i * 3 * 8192))
    monitor.advance(10.0)
    assert monitor.fit("seq").run_count == pytest.approx(8.0)
    assert monitor.fit("rnd").run_count == pytest.approx(1.0)


def test_fit_unobserved_object_is_zero_rate():
    monitor = WorkloadMonitor()
    spec = monitor.fit("ghost")
    assert spec.name == "ghost"
    assert spec.total_rate == 0.0


def test_workloads_cover_requested_catalog():
    monitor = WorkloadMonitor(window_s=1.0, halflife_s=10.0)
    _feed(monitor, "a", rate=10.0, t0=0.0, t1=5.0)
    monitor.advance(5.0)
    specs = monitor.workloads(["a", "never"])
    assert [s.name for s in specs] == ["a", "never"]
    assert specs[0].read_rate > 0
    assert specs[1].total_rate == 0.0


def test_overlap_of_concurrent_objects():
    monitor = WorkloadMonitor(window_s=1.0, halflife_s=10.0)
    records = (
        [_rec((i + 0.5) / 10.0, obj="a") for i in range(100)]
        + [_rec((i + 0.5) / 10.0, obj="b") for i in range(100)]
        + [_rec(20.0 + (i + 0.5) / 10.0, obj="c") for i in range(100)]
    )
    replay_into(monitor, records)
    monitor.advance(30.0)
    assert monitor.overlap("a", "b") == pytest.approx(1.0)
    assert monitor.overlap("a", "c") == 0.0
    fitted = monitor.fit("a")
    assert fitted.overlap.get("b", 0.0) == pytest.approx(1.0)
    assert "c" not in fitted.overlap


def test_replay_into_sorts_out_of_order_records():
    records = [_rec(t) for t in (5.0, 1.0, 3.0, 2.0, 4.0)]
    sorted_monitor = replay_into(WorkloadMonitor(window_s=1.0), sorted(
        records, key=lambda r: r.finish_time))
    shuffled_monitor = replay_into(WorkloadMonitor(window_s=1.0), records)
    sorted_monitor.advance(6.0)
    shuffled_monitor.advance(6.0)
    assert (shuffled_monitor.fit("a").read_rate
            == pytest.approx(sorted_monitor.fit("a").read_rate))


def test_horizon_is_bounded_by_decay_sum():
    monitor = WorkloadMonitor(window_s=1.0, halflife_s=10.0)
    _feed(monitor, "a", rate=10.0, t0=0.0, t1=500.0)
    monitor.advance(500.0)
    limit = monitor.window_s / (1.0 - monitor.window_decay)
    assert monitor.horizon_s <= limit + 1e-9
    assert monitor.horizon_s == pytest.approx(limit, rel=0.01)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        WorkloadMonitor(window_s=0.0)
    with pytest.raises(ValueError):
        WorkloadMonitor(halflife_s=0.0)


def test_snapshot_shape():
    monitor = WorkloadMonitor(window_s=1.0, halflife_s=10.0)
    _feed(monitor, "a", rate=10.0, t0=0.0, t1=5.0)
    monitor.advance(5.0)
    snap = monitor.snapshot()
    assert set(snap) == {"a"}
    assert set(snap["a"]) == {"read_rate", "write_rate", "run_count"}
