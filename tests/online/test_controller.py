"""Tests for the online layout controller."""

import numpy as np
import pytest

from repro import units
from repro.core.layout import Layout
from repro.core.problem import TargetSpec
from repro.errors import SimulationError
from repro.models.analytic import analytic_disk_target_model
from repro.online.controller import ControllerConfig, OnlineController
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.request import CompletionRecord
from repro.storage.streams import SimContext, SteadyStream
from repro.storage.target import StorageTarget
from repro.workload.spec import ObjectWorkload

SIZES = {"a": units.mib(64), "b": units.mib(64)}


def _targets(n=2, capacity=units.mib(256)):
    return [
        TargetSpec("t%d" % j, capacity, analytic_disk_target_model("t%d" % j))
        for j in range(n)
    ]


def _layout(rows):
    return Layout(np.array(rows, dtype=float), ["a", "b"], ["t0", "t1"])


def _records(obj, rate, t0, t1, kind="read"):
    n = int(round((t1 - t0) * rate))
    return [
        CompletionRecord(
            submit_time=t0 + (i + 0.5) / rate - 0.001,
            finish_time=t0 + (i + 0.5) / rate,
            target="t0", obj=obj, stream_id=1, kind=kind, lba=0,
            logical_offset=None, size=8192, service_time=0.001,
        )
        for i in range(n)
    ]


def _config(**kwargs):
    defaults = dict(
        check_interval_s=5.0, monitor_window_s=1.0, monitor_halflife_s=10.0,
        util_degradation=0.25, divergence_threshold=0.5, patience=2,
        cooldown_s=20.0, min_gain=0.05, amortization_s=300.0,
    )
    defaults.update(kwargs)
    return ControllerConfig(**defaults)


def _controller(initial, solved, ctx=None, config=None):
    return OnlineController(
        targets=_targets(), object_sizes=SIZES, initial_layout=initial,
        solved_workloads=solved, ctx=ctx, config=config or _config(),
    )


# ----------------------------------------------------------------------
# Replay mode
# ----------------------------------------------------------------------

def test_replay_drift_triggers_accepted_resolve():
    # Layout solved when only "a" was active, everything on t0; then
    # "b" wakes up and hammers t0.
    controller = _controller(
        initial=_layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
    )
    trace = _records("a", 50.0, 0.0, 120.0) + _records("b", 150.0, 20.0, 120.0)
    log = controller.replay(trace)

    assert log.of_kind("trigger")
    accepts = log.of_kind("accept")
    # At least one re-solve was accepted; the hysteresis/cooldown keeps
    # the count bounded even while the monitor is still converging.
    assert 1 <= len(accepts) <= 3
    assert controller.resolves == len(accepts)
    migrated = log.of_kind("migrated")
    assert len(migrated) == len(accepts)
    assert all(e["virtual"] is True for e in migrated)
    assert all(e["bytes_moved"] > 0 for e in migrated)
    # Every accepted layout strictly improved the prediction, and the
    # final one actually separated the interfering objects.
    assert all(e["util_after"] < e["util_before"] for e in accepts)
    assert controller.layout.fraction("b", "t0") < 0.6


def test_replay_stable_workload_never_triggers():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    trace = _records("a", 50.0, 0.0, 60.0) + _records("b", 50.0, 0.0, 60.0)
    log = controller.replay(trace)
    assert log.of_kind("check")
    assert not log.of_kind("trigger")
    assert controller.resolves == 0


def test_replay_uniform_surge_rejected_below_min_gain():
    # Rates double everywhere: hugely diverged, but the separated
    # layout is still near-optimal — the re-solve's small predicted
    # gain falls under min_gain and must be rejected.
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
        config=_config(divergence_threshold=0.2, min_gain=0.15),
    )
    trace = _records("a", 100.0, 0.0, 60.0) + _records("b", 100.0, 0.0, 60.0)
    log = controller.replay(trace)
    assert log.of_kind("trigger")
    rejects = log.of_kind("reject")
    assert rejects
    assert all(e["reason"] in ("no-change", "gain-below-threshold")
               for e in rejects)
    assert controller.resolves == 0
    assert controller.layout.fraction("a", "t0") == 1.0


def test_replay_cooldown_limits_decision_rate():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
        config=_config(divergence_threshold=0.2, cooldown_s=30.0,
                       min_gain=0.5),
    )
    trace = _records("a", 100.0, 0.0, 120.0) + _records("b", 100.0, 0.0, 120.0)
    log = controller.replay(trace)
    decisions = log.of_kind("reject") + log.of_kind("accept")
    times = sorted(e["time"] for e in decisions)
    assert times, "drift never even triggered"
    for earlier, later in zip(times, times[1:]):
        assert later - earlier >= 30.0 - 1e-6


def test_max_resolves_limit_holds_instead_of_solving():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
        config=_config(max_resolves=0),
    )
    trace = _records("a", 50.0, 0.0, 60.0) + _records("b", 150.0, 10.0, 60.0)
    log = controller.replay(trace)
    assert log.of_kind("limit")
    assert not log.of_kind("accept")
    assert controller.resolves == 0


def test_stable_objects_are_pinned_in_the_resolve():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [1.0, 0.0]]),
        solved=[ObjectWorkload("a", read_rate=50), ObjectWorkload("b")],
    )
    trace = _records("a", 50.0, 0.0, 120.0) + _records("b", 150.0, 20.0, 120.0)
    log = controller.replay(trace)
    accept = log.of_kind("accept")[0]
    # "a" kept its rate, so it was pinned and kept its row.
    assert accept["pinned"] == 1
    assert controller.layout.fraction("a", "t0") == pytest.approx(1.0)


def test_pinning_dropped_when_everything_drifts():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
        config=_config(divergence_threshold=0.2),
    )
    fitted = [ObjectWorkload("a", read_rate=100),
              ObjectWorkload("b", read_rate=100)]
    pinning, pinned = controller._stable_pinning(fitted)
    assert pinning is None
    assert pinned == []
    # And dropped too when everything is stable: a uniform no-op.
    pinning, pinned = controller._stable_pinning(controller.solved_workloads)
    assert pinning is None


def test_baseline_event_emitted_at_construction():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    baseline = controller.log.of_kind("baseline")
    assert len(baseline) == 1
    assert baseline[0]["solved_util"] > 0


def test_layout_alignment_by_name():
    scrambled = Layout(
        np.array([[0.0, 1.0], [1.0, 0.0]]), ["b", "a"], ["t1", "t0"]
    )
    controller = _controller(
        initial=scrambled,
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    assert controller.layout.object_names == ["a", "b"]
    assert controller.layout.fraction("a", "t0") == 0.0
    assert controller.layout.fraction("b", "t0") == 1.0


def test_start_without_context_rejected():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    with pytest.raises(SimulationError):
        controller.start()


def test_empty_replay_is_a_noop():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    log = controller.replay([])
    assert not log.of_kind("check")


# ----------------------------------------------------------------------
# Live mode
# ----------------------------------------------------------------------

def test_live_drift_migrates_through_the_simulator():
    engine = SimulationEngine()
    capacity = units.mib(256)
    targets = [
        StorageTarget(DiskDrive("t%d" % j, capacity), engine)
        for j in range(2)
    ]
    initial = _layout([[1.0, 0.0], [1.0, 0.0]])
    placement = PlacementMap(SIZES, initial.fractions_by_name(),
                             [capacity] * 2)
    ctx = SimContext(engine, placement, targets)
    controller = OnlineController(
        targets=_targets(), object_sizes=SIZES, initial_layout=initial,
        solved_workloads=[ObjectWorkload("a", read_rate=30),
                          ObjectWorkload("b")],
        ctx=ctx,
        config=_config(
            check_interval_s=2.0, monitor_halflife_s=4.0, patience=2,
            cooldown_s=10.0, migration_chunk=units.mib(1),
            migration_pace_s=0.1,
        ),
    ).start()

    rng = np.random.default_rng(7)
    SteadyStream(ctx, "a", rng=rng, think_s=0.03).start()

    def wake_b():
        for seed in range(3):
            SteadyStream(ctx, "b", rng=np.random.default_rng(seed),
                         think_s=0.002).start()

    engine.schedule(10.0, wake_b)
    engine.run(until=60.0)
    controller.stop()

    log = controller.log
    migrated = [e for e in log.of_kind("migrated") if not e["virtual"]]
    assert controller.resolves >= 1
    assert migrated, "no real migration happened"
    assert migrated[0]["bytes_moved"] > 0
    assert migrated[0]["elapsed_s"] > 0
    # The placement map now routes "b" to the second disk too.
    assert 1 in ctx.placement.targets_of("b")
    # While the copy was in flight, checks stood aside.
    assert any(e.get("migrating") for e in log.of_kind("check"))


def test_stop_detaches_the_monitor():
    engine = SimulationEngine()
    capacity = units.mib(256)
    targets = [StorageTarget(DiskDrive("t%d" % j, capacity), engine)
               for j in range(2)]
    initial = _layout([[1.0, 0.0], [0.0, 1.0]])
    placement = PlacementMap(SIZES, initial.fractions_by_name(),
                             [capacity] * 2)
    ctx = SimContext(engine, placement, targets)
    controller = OnlineController(
        targets=_targets(), object_sizes=SIZES, initial_layout=initial,
        solved_workloads=[ObjectWorkload("a", read_rate=30),
                          ObjectWorkload("b")],
        ctx=ctx, config=_config(check_interval_s=2.0),
    ).start()
    controller.stop()
    assert not engine.has_completion_observers
    # Idempotent.
    controller.stop()


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------

def test_instrumented_replay_records_resolve_spans_and_counters():
    from repro.obs import Instrumentation

    obs = Instrumentation.on()
    controller = OnlineController(
        targets=_targets(), object_sizes=SIZES,
        initial_layout=_layout([[1.0, 0.0], [1.0, 0.0]]),
        solved_workloads=[ObjectWorkload("a", read_rate=50),
                          ObjectWorkload("b")],
        config=_config(), obs=obs,
    )
    trace = _records("a", 50.0, 0.0, 120.0) + _records("b", 150.0, 20.0, 120.0)
    log = controller.replay(trace)

    accepts = log.of_kind("accept")
    rejects = log.of_kind("reject")
    resolve_spans = obs.tracer.find("online.resolve")
    assert len(resolve_spans) == len(accepts) + len(rejects) >= 1
    decisions = [s.tags["decision"] for s in resolve_spans]
    assert decisions.count("accept") == len(accepts)
    accepted_span = next(s for s in resolve_spans
                         if s.tags["decision"] == "accept")
    assert accepted_span.duration_s is not None
    assert accepted_span.tags["gain"] > 0

    counters = {
        labels["decision"]: counter.value
        for labels, counter in
        obs.metrics.find("repro_online_resolves_total")
    }
    assert counters.get("accept", 0) == len(accepts)
    assert counters.get("reject", 0) == len(rejects)

    # Every accepted re-solve produced a finished migration span.
    migration_spans = obs.tracer.find("online.migration")
    assert len(migration_spans) == len(accepts)
    for span in migration_spans:
        assert span.duration_s is not None
        assert span.tags["bytes_moved"] > 0
        assert span.tags["virtual"] is True

    # The event log fed the same registry.
    checks = obs.metrics.get("repro_online_events_total", kind="check")
    assert checks.value == len(log.of_kind("check"))


def test_uninstrumented_controller_records_nothing():
    controller = _controller(
        initial=_layout([[1.0, 0.0], [0.0, 1.0]]),
        solved=[ObjectWorkload("a", read_rate=50),
                ObjectWorkload("b", read_rate=50)],
    )
    controller.replay(_records("a", 50.0, 0.0, 30.0))
    assert controller.obs.enabled is False
    assert list(controller.obs.tracer.spans) == []
