"""Tests for the workload-drift detector."""

import pytest

from repro.online.drift import DriftDetector, rate_divergence
from repro.workload.spec import ObjectWorkload


def _w(name, rate):
    return ObjectWorkload(name, read_rate=rate)


def _detector(**kwargs):
    defaults = dict(util_degradation=0.25, divergence_threshold=0.5,
                    util_ceiling=0.95, patience=2, cooldown_s=0.0)
    defaults.update(kwargs)
    return DriftDetector(**defaults)


# ----------------------------------------------------------------------
# rate_divergence
# ----------------------------------------------------------------------

def test_divergence_zero_for_identical_rates():
    specs = [_w("a", 100), _w("b", 50)]
    assert rate_divergence(specs, specs) == 0.0


def test_divergence_one_for_disjoint_sets():
    assert rate_divergence([_w("a", 100)], [_w("b", 100)]) == 1.0


def test_divergence_partial_and_bounded():
    value = rate_divergence([_w("a", 100), _w("b", 100)],
                            [_w("a", 100), _w("b", 300)])
    assert value == pytest.approx(200 / 400)
    assert 0.0 <= value <= 1.0


def test_divergence_empty_is_zero():
    assert rate_divergence([], []) == 0.0
    assert rate_divergence([_w("a", 0.0)], []) == 0.0


# ----------------------------------------------------------------------
# Triggers and hysteresis
# ----------------------------------------------------------------------

def test_utilization_degradation_needs_patience():
    det = _detector(divergence_threshold=0.99)
    det.rebase([_w("a", 100)], solved_util=0.4, now=0.0)
    fitted = [_w("a", 100)]
    first = det.check(1.0, fitted, predicted_util=0.6)
    assert not first.fired
    assert first.reason == "utilization"
    assert first.streak == 1
    second = det.check(2.0, fitted, predicted_util=0.6)
    assert second.fired
    assert second.reason == "utilization"
    assert second.streak == 2


def test_no_fire_when_within_thresholds():
    det = _detector()
    det.rebase([_w("a", 100)], solved_util=0.4, now=0.0)
    for t in (1.0, 2.0, 3.0):
        signal = det.check(t, [_w("a", 100)], predicted_util=0.45)
        assert not signal.fired
        assert signal.streak == 0


def test_ceiling_fires_even_without_relative_degradation():
    # Solved near saturation already: +25% will never happen, but a
    # predicted-saturated target is a problem in absolute terms.
    det = _detector()
    det.rebase([_w("a", 100)], solved_util=0.90, now=0.0)
    fitted = [_w("a", 100)]
    det.check(1.0, fitted, predicted_util=0.96)
    signal = det.check(2.0, fitted, predicted_util=0.96)
    assert signal.fired
    assert signal.reason == "utilization"


def test_divergence_fires_without_utilization_change():
    det = _detector()
    det.rebase([_w("a", 100), _w("b", 0)], solved_util=0.4, now=0.0)
    fitted = [_w("a", 0), _w("b", 100)]
    det.check(1.0, fitted, predicted_util=0.4)
    signal = det.check(2.0, fitted, predicted_util=0.4)
    assert signal.fired
    assert signal.reason == "divergence"
    assert signal.divergence == pytest.approx(1.0)


def test_streak_resets_on_clean_check():
    det = _detector()
    det.rebase([_w("a", 100)], solved_util=0.4, now=0.0)
    det.check(1.0, [_w("a", 100)], predicted_util=0.9)
    det.check(2.0, [_w("a", 100)], predicted_util=0.41)   # back to normal
    signal = det.check(3.0, [_w("a", 100)], predicted_util=0.9)
    assert not signal.fired
    assert signal.streak == 1


def test_cooldown_suppresses_streak_building():
    det = _detector(cooldown_s=100.0)
    det.rebase([_w("a", 100)], solved_util=0.4, now=0.0)
    for t in (10.0, 20.0, 30.0):
        signal = det.check(t, [_w("a", 100)], predicted_util=0.9)
        assert not signal.fired
        assert signal.streak == 0
    det.check(150.0, [_w("a", 100)], predicted_util=0.9)
    assert det.check(160.0, [_w("a", 100)], predicted_util=0.9).fired


def test_hold_restarts_cooldown_without_rebase():
    det = _detector(cooldown_s=50.0)
    det.rebase([_w("a", 100)], solved_util=0.4, now=0.0)
    assert det.in_cooldown(10.0)
    assert not det.in_cooldown(60.0)
    det.hold(60.0)
    assert det.in_cooldown(100.0)
    assert det.solved_util == 0.4   # baseline untouched


def test_rebase_installs_new_baseline():
    det = _detector()
    det.rebase([_w("a", 100)], solved_util=0.4, now=0.0)
    det.rebase([_w("b", 300)], solved_util=0.7, now=5.0)
    assert det.solved_util == 0.7
    signal = det.check(6.0, [_w("b", 300)], predicted_util=0.7)
    assert signal.divergence == 0.0
    assert not signal.fired


def test_signal_payload_is_json_friendly():
    det = _detector()
    det.rebase([_w("a", 100)], solved_util=0.4, now=0.0)
    payload = det.check(1.0, [_w("a", 100)], 0.45).as_payload()
    assert set(payload) == {"fired", "reason", "predicted_util",
                            "solved_util", "divergence", "streak"}
    assert payload["fired"] is False
