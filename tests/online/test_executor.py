"""Tests for the throttled migration executor."""

import numpy as np
import pytest

from repro import units
from repro.core.layout import Layout
from repro.core.migration import MigrationPlan, plan_migration
from repro.errors import SimulationError
from repro.online.executor import ThrottledMigrator
from repro.online.monitor import WorkloadMonitor
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.streams import SimContext
from repro.storage.target import StorageTarget

SIZE = units.mib(32)


def _ctx():
    engine = SimulationEngine()
    targets = [
        StorageTarget(DiskDrive("t%d" % j, units.mib(256)), engine, trace=[])
        for j in range(2)
    ]
    placement = PlacementMap(
        {"a": SIZE}, {"a": [1.0, 0.0]}, [units.mib(256)] * 2
    )
    return SimContext(engine, placement, targets)


def _relocation_plan():
    current = Layout(np.array([[1.0, 0.0]]), ["a"], ["t0", "t1"])
    target = Layout(np.array([[0.0, 1.0]]), ["a"], ["t0", "t1"])
    return plan_migration(current, target, {"a": SIZE})


def test_copies_every_byte():
    ctx = _ctx()
    done = []
    migrator = ThrottledMigrator(
        ctx, _relocation_plan(), chunk=units.mib(1), window=2,
        on_done=done.append,
    ).start()
    ctx.engine.run()
    assert migrator.finished
    assert done == [migrator]
    assert migrator.bytes_moved == SIZE
    assert migrator.chunks_done == migrator.total_chunks == 32
    assert migrator.elapsed_s > 0


def test_migration_traffic_is_untagged():
    ctx = _ctx()
    ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1)).start()
    ctx.engine.run()
    records = ctx.targets[0].trace + ctx.targets[1].trace
    assert records
    assert all(r.obj is None for r in records)
    # ... so the workload monitor never sees rebalancing I/O.
    monitor = WorkloadMonitor()
    for record in records:
        monitor.observe(record)
    assert monitor.observed == 0


def test_reads_at_source_writes_at_destination():
    ctx = _ctx()
    ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1)).start()
    ctx.engine.run()
    assert all(r.kind == "read" for r in ctx.targets[0].trace)
    assert all(r.kind == "write" for r in ctx.targets[1].trace)
    assert sum(r.size for r in ctx.targets[1].trace) == SIZE


def test_pace_throttles_the_copy():
    fast_ctx = _ctx()
    fast = ThrottledMigrator(fast_ctx, _relocation_plan(),
                             chunk=units.mib(1)).start()
    fast_ctx.engine.run()

    slow_ctx = _ctx()
    slow = ThrottledMigrator(slow_ctx, _relocation_plan(),
                             chunk=units.mib(1), pace_s=0.05).start()
    slow_ctx.engine.run()

    assert slow.elapsed_s > fast.elapsed_s
    assert slow.elapsed_s >= (slow.total_chunks - 1) * 0.05


def test_chunk_larger_than_move_is_one_chunk():
    ctx = _ctx()
    migrator = ThrottledMigrator(ctx, _relocation_plan(),
                                 chunk=units.mib(256)).start()
    ctx.engine.run()
    assert migrator.total_chunks == 1
    assert migrator.bytes_moved == SIZE


def test_empty_plan_finishes_immediately():
    ctx = _ctx()
    done = []
    migrator = ThrottledMigrator(ctx, MigrationPlan(),
                                 on_done=done.append).start()
    assert migrator.finished
    assert done == [migrator]
    assert migrator.elapsed_s == 0.0
    assert migrator.bytes_moved == 0


def test_invalid_parameters_rejected():
    ctx = _ctx()
    with pytest.raises(SimulationError):
        ThrottledMigrator(ctx, MigrationPlan(), window=0)
    with pytest.raises(SimulationError):
        ThrottledMigrator(ctx, MigrationPlan(), chunk=0)


def test_double_start_rejected():
    ctx = _ctx()
    migrator = ThrottledMigrator(ctx, MigrationPlan()).start()
    with pytest.raises(SimulationError):
        migrator.start()
