"""Tests for the throttled migration executor."""

import numpy as np
import pytest

from repro import units
from repro.core.layout import Layout
from repro.core.migration import MigrationPlan, plan_migration
from repro.errors import SimulationError
from repro.online.executor import ThrottledMigrator
from repro.online.monitor import WorkloadMonitor
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.streams import SimContext
from repro.storage.target import StorageTarget

SIZE = units.mib(32)


def _ctx():
    engine = SimulationEngine()
    targets = [
        StorageTarget(DiskDrive("t%d" % j, units.mib(256)), engine, trace=[])
        for j in range(2)
    ]
    placement = PlacementMap(
        {"a": SIZE}, {"a": [1.0, 0.0]}, [units.mib(256)] * 2
    )
    return SimContext(engine, placement, targets)


def _relocation_plan():
    current = Layout(np.array([[1.0, 0.0]]), ["a"], ["t0", "t1"])
    target = Layout(np.array([[0.0, 1.0]]), ["a"], ["t0", "t1"])
    return plan_migration(current, target, {"a": SIZE})


def test_copies_every_byte():
    ctx = _ctx()
    done = []
    migrator = ThrottledMigrator(
        ctx, _relocation_plan(), chunk=units.mib(1), window=2,
        on_done=done.append,
    ).start()
    ctx.engine.run()
    assert migrator.finished
    assert done == [migrator]
    assert migrator.bytes_moved == SIZE
    assert migrator.chunks_done == migrator.total_chunks == 32
    assert migrator.elapsed_s > 0


def test_migration_traffic_is_untagged():
    ctx = _ctx()
    ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1)).start()
    ctx.engine.run()
    records = ctx.targets[0].trace + ctx.targets[1].trace
    assert records
    assert all(r.obj is None for r in records)
    # ... so the workload monitor never sees rebalancing I/O.
    monitor = WorkloadMonitor()
    for record in records:
        monitor.observe(record)
    assert monitor.observed == 0


def test_reads_at_source_writes_at_destination():
    ctx = _ctx()
    ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1)).start()
    ctx.engine.run()
    assert all(r.kind == "read" for r in ctx.targets[0].trace)
    assert all(r.kind == "write" for r in ctx.targets[1].trace)
    assert sum(r.size for r in ctx.targets[1].trace) == SIZE


def test_pace_throttles_the_copy():
    fast_ctx = _ctx()
    fast = ThrottledMigrator(fast_ctx, _relocation_plan(),
                             chunk=units.mib(1)).start()
    fast_ctx.engine.run()

    slow_ctx = _ctx()
    slow = ThrottledMigrator(slow_ctx, _relocation_plan(),
                             chunk=units.mib(1), pace_s=0.05).start()
    slow_ctx.engine.run()

    assert slow.elapsed_s > fast.elapsed_s
    assert slow.elapsed_s >= (slow.total_chunks - 1) * 0.05


def test_chunk_larger_than_move_is_one_chunk():
    ctx = _ctx()
    migrator = ThrottledMigrator(ctx, _relocation_plan(),
                                 chunk=units.mib(256)).start()
    ctx.engine.run()
    assert migrator.total_chunks == 1
    assert migrator.bytes_moved == SIZE


def test_empty_plan_finishes_immediately():
    ctx = _ctx()
    done = []
    migrator = ThrottledMigrator(ctx, MigrationPlan(),
                                 on_done=done.append).start()
    assert migrator.finished
    assert done == [migrator]
    assert migrator.elapsed_s == 0.0
    assert migrator.bytes_moved == 0


def test_invalid_parameters_rejected():
    ctx = _ctx()
    with pytest.raises(SimulationError):
        ThrottledMigrator(ctx, MigrationPlan(), window=0)
    with pytest.raises(SimulationError):
        ThrottledMigrator(ctx, MigrationPlan(), chunk=0)


def test_double_start_rejected():
    ctx = _ctx()
    migrator = ThrottledMigrator(ctx, MigrationPlan()).start()
    with pytest.raises(SimulationError):
        migrator.start()


# ----------------------------------------------------------------------
# Crash-safe journaling and degraded-mode copying
# ----------------------------------------------------------------------

def _journal(tmp_path, plan, chunk=units.mib(1)):
    from repro.faults.journal import MigrationJournal

    return MigrationJournal.create(str(tmp_path / "migration.jsonl"),
                                   plan, chunk=chunk)


def test_journal_records_every_landed_chunk(tmp_path):
    from repro.faults.journal import MigrationJournal

    ctx = _ctx()
    journal = _journal(tmp_path, _relocation_plan())
    migrator = ThrottledMigrator(ctx, _relocation_plan(),
                                 chunk=units.mib(1), journal=journal).start()
    ctx.engine.run()
    journal.close()
    assert migrator.finished
    loaded = MigrationJournal.load(str(tmp_path / "migration.jsonl"))
    assert loaded.done == set(range(migrator.total_chunks))
    assert loaded.remaining() == []


def test_journal_mismatch_rejected(tmp_path):
    from repro.errors import FaultError

    ctx = _ctx()
    journal = _journal(tmp_path, _relocation_plan(), chunk=units.mib(2))
    with pytest.raises(FaultError):
        ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1),
                          journal=journal)


@pytest.mark.parametrize("kill_after", [0, 1, 7, 31, 32])
def test_resume_after_crash_at_any_kill_point(tmp_path, kill_after):
    """The crash-safety property: no matter how many chunks the dead
    process had journaled, a resumed migrator copies exactly the rest —
    every chunk lands exactly once across both lives."""
    from repro.faults.journal import MigrationJournal

    # First life: journal ``kill_after`` landed chunks, then die.
    journal = _journal(tmp_path, _relocation_plan())
    for index in range(kill_after):
        journal.record_chunk(index)
    del journal  # a crash never calls close()

    # Second life: reload and resume.
    resumed = MigrationJournal.load(str(tmp_path / "migration.jsonl"))
    ctx = _ctx()
    migrator = ThrottledMigrator(ctx, _relocation_plan(),
                                 chunk=units.mib(1), window=2,
                                 journal=resumed).start()
    ctx.engine.run()
    assert migrator.finished
    assert migrator.chunks_skipped == kill_after
    assert migrator.chunks_done == 32 - kill_after
    assert migrator.bytes_moved == SIZE - kill_after * units.mib(1)
    # The journal now covers the whole plan, exactly once per chunk.
    assert resumed.done == set(range(32))
    lines = open(str(tmp_path / "migration.jsonl")).read().splitlines()
    import json as _json

    recorded = [_json.loads(l)["index"] for l in lines
                if _json.loads(l).get("kind") == "chunk"]
    assert sorted(recorded) == list(range(32))
    assert len(recorded) == len(set(recorded))


def test_mid_run_interrupt_then_resume_covers_every_chunk(tmp_path):
    """Kill the engine mid-copy (in-flight chunks unjournaled), then
    resume in a fresh simulation: the resumed copy skips exactly the
    journaled chunks and the union is the full plan."""
    from repro.faults.journal import MigrationJournal

    ctx = _ctx()
    journal = _journal(tmp_path, _relocation_plan())
    first = ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1),
                              window=2, journal=journal).start()
    ctx.engine.run(until=first.start_time + 0.2)
    assert not first.finished
    assert 0 < first.chunks_done < 32

    resumed = MigrationJournal.load(str(tmp_path / "migration.jsonl"))
    assert resumed.done == set(range(first.chunks_done))
    ctx2 = _ctx()
    second = ThrottledMigrator(ctx2, _relocation_plan(), chunk=units.mib(1),
                               window=2, journal=resumed).start()
    ctx2.engine.run()
    assert second.finished
    assert second.chunks_skipped == first.chunks_done
    assert first.chunks_done + second.chunks_done == 32
    assert resumed.done == set(range(32))


def test_fully_journaled_plan_finishes_without_io(tmp_path):
    ctx = _ctx()
    journal = _journal(tmp_path, _relocation_plan())
    for index in range(32):
        journal.record_chunk(index)
    done = []
    migrator = ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1),
                                 journal=journal, on_done=done.append).start()
    assert migrator.finished
    assert done == [migrator]
    assert migrator.chunks_skipped == 32
    assert migrator.bytes_moved == 0
    assert not ctx.targets[0].trace and not ctx.targets[1].trace


def test_cancel_stops_issuing_and_suppresses_on_done():
    ctx = _ctx()
    done = []
    migrator = ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1),
                                 window=2, pace_s=0.05,
                                 on_done=done.append).start()
    ctx.engine.run(until=0.2)
    migrator.cancel()
    ctx.engine.run()
    assert migrator.finished
    assert migrator.cancelled
    assert done == []
    assert migrator.chunks_done < 32


def test_cancel_before_any_chunk_finishes_cleanly():
    ctx = _ctx()
    done = []
    migrator = ThrottledMigrator(ctx, MigrationPlan(),
                                 on_done=done.append)
    migrator.cancel()
    assert not migrator.finished  # never started; nothing to finish
    migrator2 = ThrottledMigrator(ctx, _relocation_plan(),
                                  chunk=units.mib(1)).start()
    ctx.engine.run()
    assert migrator2.finished


def test_failed_source_uses_the_restore_path():
    """A chunk whose source target is dead is written from redundancy:
    no read is issued, the destination still receives every byte."""
    ctx = _ctx()
    ctx.targets[0].fail()
    migrator = ThrottledMigrator(ctx, _relocation_plan(),
                                 chunk=units.mib(1)).start()
    ctx.engine.run()
    assert migrator.finished
    assert migrator.chunks_restored == 32
    assert migrator.bytes_moved == SIZE
    assert ctx.targets[0].trace == []  # no doomed reads
    assert sum(r.size for r in ctx.targets[1].trace) == SIZE


def test_source_dying_mid_copy_restores_the_rest(tmp_path):
    ctx = _ctx()
    journal = _journal(tmp_path, _relocation_plan())
    migrator = ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1),
                                 journal=journal).start()
    ctx.engine.schedule(0.2, ctx.targets[0].fail)
    ctx.engine.run()
    assert migrator.finished
    assert migrator.chunks_restored > 0
    assert migrator.chunks_done + migrator.chunks_failed == 32
    # Only durably landed chunks are journaled.
    assert len(journal.done) == migrator.chunks_done


def test_failed_destination_chunk_not_journaled(tmp_path):
    """A write that errors is not durable, so it must not be recorded —
    a resume re-copies it."""
    ctx = _ctx()
    ctx.targets[1].fail()
    journal = _journal(tmp_path, _relocation_plan())
    migrator = ThrottledMigrator(ctx, _relocation_plan(), chunk=units.mib(1),
                                 journal=journal).start()
    ctx.engine.run()
    assert migrator.finished
    assert migrator.chunks_failed == 32
    assert migrator.chunks_done == 0
    assert journal.done == set()
