"""Tests for the controller event log: sequence numbers, round-trips,
and instrumentation forwarding."""

import json

import pytest

from repro.obs import Instrumentation
from repro.online.events import EventLog


def test_emit_assigns_monotonic_seq():
    log = EventLog()
    for i in range(5):
        log.emit(1.0, "check")
    assert [e["seq"] for e in log] == list(range(5))


def test_equal_time_events_keep_order_through_jsonl(tmp_path):
    """Regression: ``time`` is rounded to 6 decimals on emit, so the
    several events of one control-loop tick share a timestamp.  Before
    the ``seq`` field existed, nothing in the serialized form recorded
    their relative order."""
    log = EventLog()
    # One tick: check → trigger → reject all land at the same instant,
    # plus sub-microsecond spacing that rounding collapses.
    log.emit(2.0000001, "check")
    log.emit(2.0000002, "trigger", reason="utilization")
    log.emit(2.0000004, "reject", reason="gain")
    assert [e["time"] for e in log] == [2.0, 2.0, 2.0]

    path = tmp_path / "events.jsonl"
    log.to_jsonl(str(path))
    loaded = EventLog.from_jsonl(str(path))
    assert [e["kind"] for e in loaded] == ["check", "trigger", "reject"]
    assert [e["seq"] for e in loaded] == [0, 1, 2]


def test_from_jsonl_restores_seq_order_not_file_order(tmp_path):
    path = tmp_path / "shuffled.jsonl"
    events = [
        {"seq": 2, "time": 1.0, "kind": "late"},
        {"seq": 0, "time": 1.0, "kind": "first"},
        {"seq": 1, "time": 1.0, "kind": "middle"},
    ]
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
    loaded = EventLog.from_jsonl(str(path))
    assert [e["kind"] for e in loaded] == ["first", "middle", "late"]


def test_from_jsonl_backfills_seq_for_legacy_logs(tmp_path):
    path = tmp_path / "legacy.jsonl"
    path.write_text("\n".join(json.dumps(e) for e in [
        {"time": 1.0, "kind": "baseline"},
        {"time": 2.0, "kind": "check"},
    ]) + "\n")
    loaded = EventLog.from_jsonl(str(path))
    assert [e["seq"] for e in loaded] == [0, 1]
    assert [e["kind"] for e in loaded] == ["baseline", "check"]


def test_emit_payload_and_round_trip(tmp_path):
    log = EventLog()
    log.emit(3.25, "accept", gain=0.12, plan_bytes=1 << 20)
    path = tmp_path / "events.jsonl"
    log.to_jsonl(str(path))
    event = EventLog.from_jsonl(str(path)).last("accept")
    assert event["gain"] == 0.12
    assert event["plan_bytes"] == 1 << 20
    assert event["seq"] == 0
    assert event["time"] == 3.25


def test_from_jsonl_skips_malformed_lines(tmp_path):
    """Regression: a crashed writer leaves a torn final line (and a
    flaky filesystem can garble any line); one bad line must not make
    the whole run's history unreadable."""
    path = tmp_path / "events.jsonl"
    path.write_text("\n".join([
        json.dumps({"seq": 0, "time": 1.0, "kind": "baseline"}),
        "{this is not json",
        json.dumps({"seq": 1, "time": 2.0, "kind": "check"}),
        '"a string, not an object"',
        '{"seq": 2, "time": 3.0, "kind": "che',  # torn final write
    ]) + "\n")
    with pytest.warns(RuntimeWarning, match="malformed"):
        loaded = EventLog.from_jsonl(str(path))
    assert [e["kind"] for e in loaded] == ["baseline", "check"]
    assert loaded.skipped == 3


def test_from_jsonl_clean_file_warns_nothing(tmp_path):
    import warnings

    path = tmp_path / "events.jsonl"
    log = EventLog()
    log.emit(1.0, "check")
    log.to_jsonl(str(path))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        loaded = EventLog.from_jsonl(str(path))
    assert loaded.skipped == 0
    assert len(loaded) == 1


def test_emit_forwards_to_instrumentation():
    obs = Instrumentation.on()
    log = EventLog(obs=obs)
    log.emit(1.0, "check")
    log.emit(2.0, "check")
    log.emit(2.5, "trigger", reason="divergence")
    assert obs.metrics.get("repro_online_events_total",
                           kind="check").value == 2
    assert obs.metrics.get("repro_online_events_total",
                           kind="trigger").value == 1
    names = [s.name for s in obs.tracer.spans]
    assert names == ["online.check", "online.check", "online.trigger"]
    trigger = obs.tracer.find("online.trigger")[0]
    assert trigger.duration_s == 0.0
    assert trigger.tags["reason"] == "divergence"
    assert trigger.tags["seq"] == 2


def test_uninstrumented_log_pays_nothing():
    log = EventLog()
    assert log._obs.enabled is False
    log.emit(1.0, "check")
    assert len(log) == 1


def test_of_kind_and_last():
    log = EventLog()
    log.emit(1.0, "check")
    log.emit(2.0, "trigger")
    log.emit(3.0, "check")
    assert len(log.of_kind("check")) == 2
    assert log.last()["time"] == 3.0
    assert log.last("trigger")["time"] == 2.0
    assert log.last("missing") is None


def test_summary_counts_by_kind():
    log = EventLog()
    log.emit(0.0, "baseline")
    log.emit(1.0, "check")
    log.emit(2.0, "trigger", reason="utilization")
    log.emit(2.0, "reject", reason="gain", decision_latency_s=0.01)
    text = log.summary()
    assert "checks" in text
    assert "utilization: 1" in text
    assert "rejected 1" in text


def test_summary_surfaces_skipped_line_count(tmp_path):
    """Data loss on load is reported in the summary itself, not only
    as a Python warning an operator never sees."""
    path = tmp_path / "events.jsonl"
    path.write_text("\n".join([
        json.dumps({"seq": 0, "time": 1.0, "kind": "baseline"}),
        "{torn line",
        json.dumps({"seq": 1, "time": 2.0, "kind": "check"}),
    ]) + "\n")
    with pytest.warns(RuntimeWarning):
        loaded = EventLog.from_jsonl(str(path))
    text = loaded.summary()
    assert "SKIPPED" in text
    assert "1  malformed line dropped on load" in text
    # A log without losses stays quiet about them.
    assert "SKIPPED" not in EventLog().summary()
