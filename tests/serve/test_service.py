"""Service-level tests: concurrent admission, fairness under
contention, and tenant crash/delete isolation on the shared pool."""

import asyncio
import multiprocessing
import os
import time

import pytest

from repro.errors import ReproError
from repro.serve.scheduler import AdmissionError, TenantGoneError
from repro.serve.service import ServiceDrainingError, UnknownTenantError

from tests.serve.conftest import (CONTROLLER, LAYOUT, PROBLEM, hot_chunk,
                                  make_service)


def _payload(tenant_id, layout=LAYOUT, **extra):
    body = {"tenant_id": tenant_id, "problem": PROBLEM,
            "controller": CONTROLLER}
    if layout is not None:
        body["layout"] = layout
    body.update(extra)
    return body


def _crash_job():
    # Simulates a solver worker dying hard (OOM kill, segfault): the
    # process exits without raising, which breaks the executor.
    os._exit(13)


def test_concurrent_tenant_creation_and_advise():
    async def scenario():
        service = make_service(max_pending=32)
        await service.start()
        try:
            # All creates solve their initial layout on the shared pool.
            made = await asyncio.gather(*(
                service.create_tenant(_payload("t%d" % i, layout=None))
                for i in range(6)
            ))
            assert sorted(m["tenant"] for m in made) \
                == ["t%d" % i for i in range(6)]
            for m in made:
                row = m["layout"]["a"]
                assert sum(row) == pytest.approx(1.0, abs=1e-6)
            answers = await asyncio.gather(*(
                service.advise("t%d" % i) for i in range(6)
            ))
            assert all("layout" in a and a["solver_time_s"] >= 0
                       for a in answers)
            status = service.status()
            assert status["tenants"] == 6
            assert status["queue"]["completed"] >= 12
            assert status["pool"]["generation"] == 0
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_admission_bound_rejects_over_limit_requests():
    async def scenario():
        service = make_service(workers=1, max_pending=1)
        await service.start()
        try:
            await service.create_tenant(_payload("t1"))
            # Occupy the only pool slot so advises pile up behind it.
            blocker = asyncio.ensure_future(service.scheduler.submit(
                "t1", time.sleep, 0.4, preadmitted=True
            ))
            await asyncio.sleep(0.05)
            outcomes = await asyncio.gather(
                *(service.advise("t1") for _ in range(6)),
                return_exceptions=True,
            )
            rejected = [o for o in outcomes
                        if isinstance(o, AdmissionError)]
            served = [o for o in outcomes if isinstance(o, dict)]
            assert rejected and served
            assert len(rejected) >= 4  # bound is 1: most must shed
            assert service.status()["queue"]["rejected"] == len(rejected)
            await blocker
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_no_tenant_starved_under_contention():
    async def scenario():
        service = make_service(workers=1, max_pending=64)
        await service.start()
        try:
            ids = ["t%d" % i for i in range(4)]
            for tenant_id in ids:
                await service.create_tenant(_payload(tenant_id))
            await asyncio.gather(*(
                service.advise(tenant_id)
                for tenant_id in ids for _ in range(3)
            ))
            for tenant_id in ids:
                status = service.tenant_status(tenant_id)
                assert status["jobs_done"] == 3
                assert status["served_solver_s"] > 0
            assert service.fairness_spread(ids) is not None
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_delete_mid_advise_does_not_poison_the_pool():
    async def scenario():
        service = make_service(workers=1, max_pending=16)
        await service.start()
        try:
            await service.create_tenant(_payload("victim"))
            await service.create_tenant(_payload("bystander"))
            # Hold the only slot so the victim's advise sits queued.
            blocker = asyncio.ensure_future(service.scheduler.submit(
                "victim", time.sleep, 0.3, preadmitted=True
            ))
            doomed = asyncio.ensure_future(service.advise("victim"))
            await asyncio.sleep(0.05)
            await service.delete_tenant("victim")
            with pytest.raises(TenantGoneError):
                await doomed
            await blocker  # the in-flight job still finishes quietly
            # The shared pool is unharmed: others keep being served.
            answer = await service.advise("bystander")
            assert answer["tenant"] == "bystander"
            assert service.status()["pool"]["generation"] == 0
            with pytest.raises(UnknownTenantError):
                service.tenant_status("victim")
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_worker_crash_rebuilds_process_pool():
    if multiprocessing.get_start_method() != "fork":
        pytest.skip("process-pool crash test needs fork workers")

    async def scenario():
        service = make_service(workers=1, use_processes=True,
                               max_pending=8)
        await service.start()
        try:
            if not service.pool.use_processes:
                pytest.skip("process pool unavailable; demoted to threads")
            await service.create_tenant(_payload("t1"))
            from repro.serve.pool import PoolCrashError

            with pytest.raises(PoolCrashError):
                await service.scheduler.submit("t1", _crash_job,
                                               preadmitted=True)
            # The crash cost one generation, not the service.
            assert service.status()["pool"]["generation"] == 1
            answer = await service.advise("t1")
            assert "layout" in answer
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_draining_service_refuses_new_work():
    async def scenario():
        service = make_service()
        await service.start()
        await service.create_tenant(_payload("t1"))
        await service.drain()
        with pytest.raises(ServiceDrainingError):
            await service.create_tenant(_payload("t2"))
        with pytest.raises(ServiceDrainingError):
            await service.advise("t1")
        with pytest.raises(ServiceDrainingError):
            await service.feed_trace_chunk("t1", hot_chunk(0.0, 1.0))
        assert service.status()["draining"]

    asyncio.run(scenario())


def test_drain_completes_inflight_advise():
    async def scenario():
        service = make_service(workers=1)
        await service.start()
        await service.create_tenant(_payload("t1"))
        inflight = asyncio.ensure_future(service.advise("t1"))
        await asyncio.sleep(0.02)
        await service.drain()
        answer = await inflight
        assert answer["tenant"] == "t1" and "layout" in answer

    asyncio.run(scenario())


def test_feed_routes_resolves_through_the_shared_pool():
    async def scenario():
        service = make_service(max_pending=16)
        await service.start()
        try:
            await service.create_tenant(_payload("t1"))
            before = service.scheduler.jobs_done("t1")
            status = await service.feed_trace_chunk("t1",
                                                    hot_chunk(0.0, 16.0))
            assert status["resolves"] >= 1
            # The re-solve ran as a pool job charged to this tenant.
            assert service.scheduler.jobs_done("t1") > before
            assert service.tenant_status("t1")["records_fed"] \
                == status["records_fed"]
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_create_tenant_validation_errors():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            with pytest.raises(ReproError, match="'problem'"):
                await service.create_tenant({"tenant_id": "x"})
            with pytest.raises(ReproError, match="invalid tenant id"):
                await service.create_tenant(_payload("bad id!"))
            await service.create_tenant(_payload("t1"))
            with pytest.raises(ReproError, match="already exists"):
                await service.create_tenant(_payload("t1"))
            with pytest.raises(ReproError, match="misses objects"):
                await service.create_tenant(
                    _payload("t2", layout={"a": [1.0, 0.0]})
                )
            with pytest.raises(ReproError, match="unknown controller"):
                await service.create_tenant(_payload(
                    "t3", controller={"bogus_knob": 1}
                ))
            # Failed creates must not leak scheduler registrations.
            assert "t2" not in service.scheduler._queues
            assert "t3" not in service.scheduler._queues
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_metrics_text_labels_each_tenant_once():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            await service.create_tenant(_payload("alpha"))
            await service.create_tenant(_payload("beta"))
            await service.advise("alpha")
            text = service.metrics_text()
            assert 'tenant="alpha"' in text and 'tenant="beta"' in text
            # Merged exposition: one TYPE header per metric name even
            # though several registries carry it.
            assert text.count("# TYPE repro_serve_tenants gauge") == 1
            assert "repro_serve_jobs_total" in text
        finally:
            await service.drain()

    asyncio.run(scenario())
