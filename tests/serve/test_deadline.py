"""Request-deadline tests: admission shedding, queue shedding before
dispatch, watchdog-budget clamping, and the 503 + Retry-After surface.

The regression this file pins: a request whose deadline expires while
queued must be shed *before* a worker picks it up (no solver time spent
on a dead request), and a job that does run never gets a watchdog
budget larger than its remaining deadline.
"""

import asyncio
import time

import pytest

from repro.errors import ReproError
from repro.serve.http import HttpFrontend
from repro.serve.pool import DeadlineError, _deadline_guard
from repro.serve.service import retry_after_for

from tests.serve.conftest import (CONTROLLER, LAYOUT, PROBLEM,
                                  make_service)


def _payload(tenant_id="t1"):
    return {"tenant_id": tenant_id, "problem": PROBLEM, "layout": LAYOUT,
            "controller": CONTROLLER}


def _echo_options(options):
    return options


def test_expired_deadline_is_shed_at_submit():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            await service.create_tenant(_payload())
            with pytest.raises(DeadlineError):
                await service.scheduler.submit(
                    "t1", _echo_options, {},
                    deadline=time.perf_counter() - 0.001,
                )
            assert service.scheduler.deadline_shed == 1
            assert service.status()["queue"]["deadline_shed"] == 1
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_queued_job_expiring_is_shed_before_dispatch():
    async def scenario():
        service = make_service(workers=1)
        await service.start()
        try:
            await service.create_tenant(_payload())
            completed_before = service.status()["queue"]["completed"]
            # The only worker is busy for longer than the deadline.
            blocker = asyncio.ensure_future(service.scheduler.submit(
                "t1", time.sleep, 0.4, preadmitted=True
            ))
            await asyncio.sleep(0.05)
            doomed = asyncio.ensure_future(service.scheduler.submit(
                "t1", _echo_options, {},
                deadline=time.perf_counter() + 0.1,
            ))
            with pytest.raises(DeadlineError):
                await doomed
            await blocker
            # Only the blocker completed: the doomed job never reached
            # a worker.
            status = service.status()
            assert status["queue"]["completed"] == completed_before + 1
            assert status["queue"]["deadline_shed"] == 1
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_watchdog_budget_is_clamped_to_remaining_deadline():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            await service.create_tenant(_payload())
            before = time.perf_counter()
            options = await service.scheduler.submit(
                "t1", _echo_options, {"solve_budget_s": 99.0},
                deadline=before + 0.5,
            )
            # The worker-side options carry a budget no larger than the
            # deadline's remainder, and the wall-clock deadline for the
            # in-worker guard.
            assert options["solve_budget_s"] <= 0.5
            assert options["solve_budget_s"] > 0.0
            assert options["deadline_unix"] >= time.time() - 1.0

            # Without an explicit budget the remaining deadline IS the
            # budget.
            options = await service.scheduler.submit(
                "t1", _echo_options, {},
                deadline=time.perf_counter() + 0.5,
            )
            assert 0.0 < options["solve_budget_s"] <= 0.5
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_deadline_guard_sheds_expired_jobs_in_the_worker():
    with pytest.raises(DeadlineError):
        _deadline_guard({"deadline_unix": time.time() - 1.0}, "advise")
    remaining = _deadline_guard({"deadline_unix": time.time() + 5.0},
                                "advise")
    assert 4.0 < remaining <= 5.0
    assert _deadline_guard({}, "advise") is None


def test_deadline_from_header_and_default():
    service = make_service()
    deadline = service.deadline_from(headers={"x-deadline-ms": "250"})
    assert 0.0 < deadline - time.perf_counter() <= 0.25
    assert service.deadline_from(headers={}) is None
    with pytest.raises(ReproError):
        service.deadline_from(headers={"x-deadline-ms": "soon"})
    with pytest.raises(ReproError):
        service.deadline_from(headers={"x-deadline-ms": "-5"})

    service = make_service(default_deadline_s=1.5)
    deadline = service.deadline_from(headers={})
    assert 0.0 < deadline - time.perf_counter() <= 1.5


def test_http_deadline_shed_maps_to_503_with_retry_after():
    async def scenario():
        frontend = HttpFrontend(make_service(workers=1))
        await frontend.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", frontend.port)
            body = __import__("json").dumps(_payload()).encode()
            writer.write(
                b"POST /tenants HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n" % len(body) + body)
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b" 200 " in head.split(b"\r\n", 1)[0]
            length = int([h.split(b":")[1] for h in head.split(b"\r\n")
                          if h.lower().startswith(b"content-length")][0])
            await reader.readexactly(length)

            # Saturate the only worker, then advise with a deadline the
            # queue wait is guaranteed to eat.
            blocker = asyncio.ensure_future(
                frontend.service.scheduler.submit(
                    "t1", time.sleep, 0.6, preadmitted=True))
            await asyncio.sleep(0.05)
            writer.write(
                b"POST /tenants/t1/advise HTTP/1.1\r\nHost: x\r\n"
                b"X-Deadline-Ms: 100\r\n"
                b"Content-Length: 2\r\n\r\n{}")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status_line, _, rest = head.partition(b"\r\n")
            assert b" 503 " in status_line, head
            headers = {line.split(b":", 1)[0].strip().lower():
                       line.split(b":", 1)[1].strip()
                       for line in rest.split(b"\r\n") if b":" in line}
            assert headers[b"retry-after"] == b"1"
            writer.close()
            await blocker
        finally:
            await frontend.stop()

    asyncio.run(scenario())


def test_retry_after_mapping():
    from repro.serve.scheduler import AdmissionError
    from repro.serve.service import ServiceDrainingError

    assert retry_after_for(DeadlineError("x")) == 1
    assert retry_after_for(AdmissionError("x")) == 1
    assert retry_after_for(ServiceDrainingError("x")) == 5
    assert retry_after_for(ReproError("x")) is None
