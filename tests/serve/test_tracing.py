"""Distributed request tracing and SLO serving tests.

The core claim under test: one external request = one stitched trace.
A traced advise must show admission wait, scheduler queue wait, pool
dispatch, and the worker-side solve as one tree under one trace id —
across OS process boundaries when the pool forks — and land in the
debug ring, the access log, and the tenant's SLO window exactly once.
"""

import asyncio
import json
import multiprocessing
import os

import pytest

from repro.serve.client import ServeClient, ServeHttpError
from repro.serve.http import HttpFrontend
from repro.serve.service import UnknownTenantError, UnknownTraceError
from repro.serve.tracing import RequestTrace, TraceRing

from tests.serve.conftest import (CONTROLLER, LAYOUT, PROBLEM, hot_chunk,
                                  make_service)


def _payload(tenant_id, layout=LAYOUT, **extra):
    body = {"tenant_id": tenant_id, "problem": PROBLEM,
            "controller": CONTROLLER}
    if layout is not None:
        body["layout"] = layout
    body.update(extra)
    return body


def _crash_job():
    os._exit(13)


def _span_names(rtrace):
    return [span.name for span in rtrace.tracer.spans]


# -- the stitched advise trace ------------------------------------------

def test_advise_produces_one_stitched_trace():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            await service.create_tenant(_payload("t1"))
            answer = await service.advise("t1")
            trace_id = answer["trace_id"]
            rtrace = service.traces.get(trace_id)
            assert rtrace is not None and rtrace.closed
            names = _span_names(rtrace)
            for required in ("request", "admission.wait",
                             "scheduler.queue", "pool.dispatch",
                             "worker.advise", "advise"):
                assert required in names, required
            # One tree: every span reaches the request root.
            roots, children = rtrace.tracer.tree()
            assert [s.name for s in roots] == ["request"]
            reached = set()

            def walk(span):
                reached.add(span.span_id)
                for child in children.get(span.span_id, ()):
                    walk(child)

            walk(roots[0])
            assert len(reached) == len(rtrace.tracer.spans)
            # The worker subtree hangs under the dispatch span.
            dispatch = rtrace.tracer.find("pool.dispatch")[0]
            worker = rtrace.tracer.find("worker.advise")[0]
            assert worker.parent_id == dispatch.span_id
            assert worker.tags["trace_id"] == trace_id
            # Breakdown fields for the access log / bench.
            meta = rtrace.meta()
            assert meta["status"] == 200
            assert meta["queue_wait_s"] >= 0.0
            assert meta["solve_s"] > 0.0
            assert meta["duration_s"] >= meta["solve_s"]
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_advise_trace_spans_two_os_processes():
    if multiprocessing.get_start_method() != "fork":
        pytest.skip("cross-process trace test needs fork workers")

    async def scenario():
        service = make_service(workers=1, use_processes=True)
        await service.start()
        try:
            if not service.pool.use_processes:
                pytest.skip("process pool unavailable; demoted to threads")
            await service.create_tenant(_payload("t1"))
            answer = await service.advise("t1")
            rtrace = service.traces.get(answer["trace_id"])
            # The solve happened in a different OS process, and its
            # spans were stitched back under this process's tree.
            assert rtrace.worker_pids
            assert os.getpid() not in rtrace.worker_pids
            worker = rtrace.tracer.find("worker.advise")[0]
            assert worker.tags["pid"] in rtrace.worker_pids
            assert worker.tags["trace_id"] == rtrace.trace_id
            # Skew anchoring: remote spans sit inside the local
            # dispatch window, not at their worker-clock epochs.
            dispatch = rtrace.tracer.find("pool.dispatch")[0]
            assert worker.end_s <= dispatch.end_s + 1e-6
            assert worker.end_s >= dispatch.start_s - 1e-6
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_trace_survives_pool_rebuild_after_worker_crash():
    if multiprocessing.get_start_method() != "fork":
        pytest.skip("process-pool crash test needs fork workers")

    async def scenario():
        service = make_service(workers=1, use_processes=True,
                               max_pending=8)
        await service.start()
        try:
            if not service.pool.use_processes:
                pytest.skip("process pool unavailable; demoted to threads")
            await service.create_tenant(_payload("t1"))
            from repro.serve.pool import PoolCrashError

            with pytest.raises(PoolCrashError):
                await service.scheduler.submit("t1", _crash_job,
                                               preadmitted=True)
            assert service.status()["pool"]["generation"] == 1
            # Tracing keeps working across the rebuilt executor: the
            # next advise stitches spans from the *new* worker.
            answer = await service.advise("t1")
            rtrace = service.traces.get(answer["trace_id"])
            assert rtrace.worker_pids
            assert os.getpid() not in rtrace.worker_pids
            dispatch = rtrace.tracer.find("pool.dispatch")[0]
            assert dispatch.tags["generation"] == 1
            assert "worker.advise" in _span_names(rtrace)
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_watchdog_rung_lands_in_trace_and_access_log(tmp_path):
    async def scenario():
        log_path = str(tmp_path / "access.jsonl")
        service = make_service(access_log=log_path)
        await service.start()
        try:
            await service.create_tenant(_payload("t1"))
            # A budget below the watchdog's per-rung floor skips every
            # bounded rung: the chain answers from its greedy bottom.
            answer = await service.advise(
                "t1", options={"solve_budget_s": 0.01}
            )
            rtrace = service.traces.get(answer["trace_id"])
            assert rtrace.rung == "greedy"
            assert rtrace.meta()["rung"] == "greedy"
        finally:
            await service.drain()
        lines = [json.loads(line)
                 for line in open(log_path).read().splitlines()]
        advise = [l for l in lines if l["route"] == "advise"]
        assert advise and advise[-1]["rung"] == "greedy"

    asyncio.run(scenario())


def test_feed_resolve_joins_the_feed_trace():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            await service.create_tenant(_payload("t1"))
            fed = await service.feed_trace_chunk("t1", hot_chunk(0.0, 8.0))
            assert fed["resolves"] >= 1
            rtrace = service.traces.get(fed["trace_id"])
            names = _span_names(rtrace)
            assert "tenant.feed" in names
            # The re-solve the chunk triggered ran on the shared pool
            # inside the same request trace.
            assert "worker.resolve" in names
            feed_span = rtrace.tracer.find("tenant.feed")[0]
            assert feed_span.tags["resolves"] >= 1
            queue = rtrace.tracer.find("scheduler.queue")[0]
            assert queue.tags["tenant"] == "t1"
        finally:
            await service.drain()

    asyncio.run(scenario())


# -- ring, access log, SLO feed -----------------------------------------

def test_debug_ring_serves_and_evicts_traces():
    async def scenario():
        service = make_service(trace_ring=2)
        await service.start()
        try:
            await service.create_tenant(_payload("t1"))
            ids = [
                (await service.advise("t1"))["trace_id"] for _ in range(3)
            ]
            listing = service.debug_traces()
            assert listing["capacity"] == 2
            # Newest first; the oldest trace aged out.
            assert [t["trace_id"] for t in listing["traces"]] \
                == [ids[2], ids[1]]
            payload = service.debug_trace(ids[2])
            assert payload["trace_id"] == ids[2]
            assert any(s["name"] == "worker.advise"
                       for s in payload["spans"])
            with pytest.raises(UnknownTraceError):
                service.debug_trace(ids[0])
            with pytest.raises(UnknownTraceError):
                service.debug_trace("never-existed")
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_failed_requests_are_traced_but_spare_the_error_budget():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            await service.create_tenant(_payload("t1"))
            await service.advise("t1")
            with pytest.raises(UnknownTenantError):
                await service.advise("ghost")
            failed = [t for t in service.traces.traces()
                      if t.status == 404]
            assert failed and failed[0].error
            # The 404 belongs to no registered tenant and is a client
            # error besides: no SLO window may have counted it.
            report = service.slo_report()
            assert "ghost" not in report["tenants"]
            assert report["tenants"]["t1"]["window_requests"] == 1
            assert report["tenants"]["t1"]["attainment"] == 1.0
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_slo_observes_advises_and_exports_gauges():
    async def scenario():
        service = make_service(
            slo={"p50_s": 0.5, "p99_s": 2.0, "slo_target": 0.9},
        )
        await service.start()
        try:
            await service.create_tenant(
                _payload("t1", slo={"p99_s": 60.0})
            )
            for _ in range(3):
                await service.advise("t1")
            report = service.slo_report()
            assert report["default_objective"]["p99_s"] == 2.0
            snap = report["tenants"]["t1"]
            assert snap["objective"]["p99_s"] == 60.0     # tenant override
            assert snap["objective"]["p50_s"] == 0.5      # default filled
            assert snap["window_requests"] == 3
            assert snap["attainment"] == 1.0
            assert snap["burn_rate"] == 0.0
            text = service.metrics_text()
            assert 'repro_slo_attainment_ratio{tenant="t1"} 1.0' in text
            assert service.status()["slo"]["t1"]["attained"] is True
        finally:
            await service.drain()

    asyncio.run(scenario())


def test_access_log_is_complete_json_per_request(tmp_path):
    async def scenario():
        log_path = str(tmp_path / "logs" / "access.jsonl")
        service = make_service(access_log=log_path)
        await service.start()
        try:
            await service.create_tenant(_payload("t1"))
            await service.advise("t1")
            await service.feed_trace_chunk("t1", hot_chunk(0.0, 3.0))
            with pytest.raises(UnknownTenantError):
                await service.advise("ghost")
        finally:
            await service.drain()
        lines = [json.loads(line)
                 for line in open(log_path).read().splitlines()]
        assert [l["route"] for l in lines] \
            == ["create_tenant", "advise", "feed", "advise"]
        assert [l["status"] for l in lines] == [200, 200, 200, 404]
        for line in lines:
            assert line["trace_id"]
            assert line["duration_s"] >= 0.0
            assert "type" not in line         # meta marker stays internal
        advise = lines[1]
        assert advise["tenant"] == "t1"
        assert advise["queue_wait_s"] is not None
        assert advise["solve_s"] is not None

    asyncio.run(scenario())


def test_tracing_disabled_serves_untraced():
    async def scenario():
        service = make_service(trace_requests=False)
        await service.start()
        try:
            await service.create_tenant(_payload("t1"))
            answer = await service.advise("t1")
            assert "trace_id" not in answer
            assert len(service.traces) == 0
            assert service.begin_trace("advise") is None
            status = service.status()
            assert status["tracing"]["enabled"] is False
            # SLO reporting still answers (empty windows, no latencies).
            assert service.slo_report()["tenants"]["t1"]\
                ["window_requests"] == 0
        finally:
            await service.drain()

    asyncio.run(scenario())


# -- HTTP surface -------------------------------------------------------

def test_http_trace_and_slo_endpoints():
    async def scenario():
        frontend = HttpFrontend(make_service())
        await frontend.start()
        client = ServeClient("127.0.0.1", frontend.port)
        try:
            await client.create_tenant(
                {"tenant_id": "t1", "problem": PROBLEM, "layout": LAYOUT,
                 "controller": CONTROLLER}
            )
            _, answer = await client.advise("t1")
            trace_id = answer["trace_id"]

            status, payload = await client.debug_trace(trace_id)
            assert status == 200
            assert payload["trace_id"] == trace_id
            names = {span["name"] for span in payload["spans"]}
            for required in ("request", "scheduler.queue",
                             "pool.dispatch", "worker.advise"):
                assert required in names
            # Every worker-side span rode in under the same trace id.
            worker = next(s for s in payload["spans"]
                          if s["name"] == "worker.advise")
            assert worker["tags"]["trace_id"] == trace_id

            listing = await client.debug_traces()
            assert trace_id in [t["trace_id"] for t in listing["traces"]]

            slo = await client.slo()
            assert slo["tenants"]["t1"]["window_requests"] == 1

            with pytest.raises(ServeHttpError) as error:
                await client.debug_trace("missing-trace")
            assert error.value.status == 404
        finally:
            await client.close()
            await frontend.stop()

    asyncio.run(scenario())


# -- unit coverage for the building blocks ------------------------------

def test_request_trace_close_is_idempotent():
    rtrace = RequestTrace("advise", tenant="t1")
    span = rtrace.start("admission.wait")
    rtrace.finish(span)
    rtrace.close(200)
    first_end = rtrace.root.end_s
    rtrace.close(500, error="too late")       # loses: first close wins
    assert rtrace.status == 200
    assert rtrace.error is None
    assert rtrace.root.end_s == first_end


def test_request_trace_records_round_trip_through_reader(tmp_path):
    rtrace = RequestTrace("advise", tenant="t1")
    rtrace.graft({"trace_id": rtrace.trace_id, "pid": 4242,
                  "spans": [{"type": "span", "id": 1,
                             "name": "worker.advise", "start_s": 0.0,
                             "end_s": 1.0}],
                  "metrics": []})
    rtrace.close(200)
    path = tmp_path / "trace.jsonl"
    with open(path, "w") as handle:
        for record in rtrace.to_records():
            handle.write(json.dumps(record) + "\n")
    from repro.obs.export import read_request_trace

    trace = read_request_trace(str(path))
    assert trace.meta["trace_id"] == rtrace.trace_id
    assert trace.meta["worker_pids"] == [4242]
    roots, children = trace.tracer.tree()
    assert [s.name for s in roots] == ["request"]
    assert [s.name for s in children[roots[0].span_id]] \
        == ["worker.advise"]


def test_trace_ring_is_bounded_and_scans_newest_first():
    ring = TraceRing(capacity=2)
    traces = [RequestTrace("advise") for _ in range(3)]
    for rtrace in traces:
        ring.add(rtrace)
    assert len(ring) == 2
    assert ring.get(traces[0].trace_id) is None
    assert ring.get(traces[2].trace_id) is traces[2]
    assert [t.trace_id for t in ring.traces()] \
        == [traces[2].trace_id, traces[1].trace_id]
