"""Crash-recovery tests: the service's startup ``recover()`` path.

The in-process tests restart a service over the same state directory
(drain → new incarnation) and pin the recovery semantics: tenants come
back with their counters, layouts, SLO standing, and idempotency cache;
suspended migrations finish exactly once.  The chaos-marked test does
it the honest way — SIGKILL of a real server subprocess mid-work, no
drain, and the next incarnation must still recover everything.
"""

import asyncio
import glob
import json
import os
import select
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.http import HttpFrontend

from tests.serve.conftest import (CONTROLLER, LAYOUT, PROBLEM, hot_chunk,
                                  make_service)

#: Copy estimate slow enough that a migration accepted mid-trace is
#: still in flight when the incarnation dies.
SLOW_COPY = {**CONTROLLER, "transfer_bps": 256 * 1024}


def _payload(tenant_id="t1", controller=CONTROLLER, **extra):
    body = {"tenant_id": tenant_id, "problem": PROBLEM, "layout": LAYOUT,
            "controller": controller}
    body.update(extra)
    return body


def test_restart_recovers_counters_layout_and_slo(tmp_path):
    state = str(tmp_path / "state")

    async def first():
        service = make_service(state_dir=state)
        await service.start()
        try:
            await service.create_tenant(_payload())
            await service.advise("t1")
            fed = await service.feed_trace_chunk("t1", hot_chunk(0.0, 10.0))
            return fed, service.tenant_status("t1")
        finally:
            await service.drain()

    fed, before = asyncio.run(first())
    assert fed["records_fed"] > 0

    async def second():
        service = make_service(state_dir=state)
        await service.start()
        try:
            recovery = service.recovery
            after = service.tenant_status("t1")
            slo = service.slo.snapshot("t1")
            return recovery, after, slo
        finally:
            await service.drain()

    recovery, after, slo = asyncio.run(second())
    assert recovery["recovered_tenants"] == 1
    assert recovery["errors"] == []
    assert after["records_fed"] == before["records_fed"]
    assert after["chunks_fed"] == before["chunks_fed"]
    assert after["resolves"] == before["resolves"]
    assert after["layout"] == before["layout"]
    assert after["wal_seq"] > 0
    # The SLO window's lifetime high-water marks survived the restart.
    assert slo["total_requests"] > 0


def test_suspended_migration_resumes_exactly_once(tmp_path):
    state = str(tmp_path / "state")

    async def first():
        service = make_service(state_dir=state)
        await service.start()
        try:
            await service.create_tenant(_payload(controller=SLOW_COPY))
            fed = await service.feed_trace_chunk("t1", hot_chunk(0.0, 10.0))
            assert fed["migrating"], "expected an in-flight migration"
        finally:
            await service.drain()

    asyncio.run(first())

    async def incarnation():
        service = make_service(state_dir=state)
        await service.start()
        try:
            return service.recovery
        finally:
            await service.drain()

    second = asyncio.run(incarnation())
    assert second["recovered_tenants"] == 1
    assert second["resumed_migrations"] == 1
    # The post-recovery snapshot folds the swap in: a third incarnation
    # has nothing left to resume — the migration ran exactly once.
    third = asyncio.run(incarnation())
    assert third["recovered_tenants"] == 1
    assert third["resumed_migrations"] == 0
    assert third["adopted_swaps"] == 0
    journal, = glob.glob(os.path.join(state, "t1", "migration-*.jsonl"))
    commits = sum(1 for line in open(journal)
                  if json.loads(line)["kind"] == "commit")
    assert commits == 1


def test_committed_swap_missing_from_wal_is_adopted(tmp_path):
    """Crash in the journal-commit → WAL-swap gap: recovery adopts the
    committed layout without re-copying and backfills the swap record."""
    state = str(tmp_path / "state")

    async def first():
        service = make_service(state_dir=state)
        await service.start()
        try:
            await service.create_tenant(_payload())
            fed = await service.feed_trace_chunk("t1", hot_chunk(0.0, 12.0))
            assert fed["resolves"] >= 1 and not fed["migrating"]
            return service.tenant_status("t1")["layout"]
        finally:
            await service.drain()

    swapped_layout = asyncio.run(first())

    # Rewind durable state to just before the swap reached the WAL:
    # keep the committed journal but replace snapshots + WAL with what
    # existed right after the create — exactly what a crash inside the
    # journal-commit → WAL-swap gap leaves behind.
    tenant_dir = os.path.join(state, "t1")
    for snapshot in glob.glob(os.path.join(tenant_dir, "snapshot-*.json")):
        os.remove(snapshot)
    with open(os.path.join(tenant_dir, "wal.jsonl"), "w") as handle:
        handle.write(json.dumps({
            "seq": 1, "kind": "create", "v": 1, "tenant_id": "t1",
            "problem": PROBLEM, "controller": CONTROLLER, "weight": 1.0,
            "slo": None, "layout": LAYOUT, "journal_seq": 0,
        }) + "\n")

    async def second():
        service = make_service(state_dir=state)
        await service.start()
        try:
            return service.recovery, service.tenant_status("t1")["layout"]
        finally:
            await service.drain()

    recovery, layout = asyncio.run(second())
    assert recovery["recovered_tenants"] == 1
    assert recovery["resumed_migrations"] == 0
    assert recovery["adopted_swaps"] == 1
    assert layout == swapped_layout
    journal, = glob.glob(os.path.join(tenant_dir, "migration-*.jsonl"))
    commits = sum(1 for line in open(journal)
                  if json.loads(line)["kind"] == "commit")
    assert commits == 1, "adoption must not re-run the migration"


def test_idempotency_cache_survives_restart(tmp_path):
    state = str(tmp_path / "state")

    async def first():
        service = make_service(state_dir=state)
        await service.start()
        try:
            made = await service.create_tenant(
                _payload(), idempotency_key="create-t1")
            again = await service.create_tenant(
                _payload(), idempotency_key="create-t1")
            assert again["replayed"] and again["tenant"] == made["tenant"]
            fed = await service.feed_trace_chunk(
                "t1", hot_chunk(0.0, 4.0), idempotency_key="chunk-0")
            replay = await service.feed_trace_chunk(
                "t1", hot_chunk(0.0, 4.0), idempotency_key="chunk-0")
            assert replay["replayed"]
            assert replay["records_fed"] == fed["records_fed"]
        finally:
            await service.drain()

    asyncio.run(first())

    async def second():
        service = make_service(state_dir=state)
        await service.start()
        try:
            made = await service.create_tenant(
                _payload(), idempotency_key="create-t1")
            assert made["replayed"], "key must survive the restart"
            replay = await service.feed_trace_chunk(
                "t1", hot_chunk(0.0, 4.0), idempotency_key="chunk-0")
            assert replay["replayed"]
            status = service.tenant_status("t1")
            assert status["chunks_fed"] == 1, "the chunk applied once"
        finally:
            await service.drain()

    asyncio.run(second())


def test_deleted_tenant_stays_deleted_after_restart(tmp_path):
    state = str(tmp_path / "state")

    async def first():
        service = make_service(state_dir=state)
        await service.start()
        try:
            await service.create_tenant(_payload())
            await service.delete_tenant("t1")
        finally:
            await service.drain()

    asyncio.run(first())

    async def second():
        service = make_service(state_dir=state)
        await service.start()
        try:
            return service.recovery, dict(service.tenants)
        finally:
            await service.drain()

    recovery, tenants = asyncio.run(second())
    assert recovery["recovered_tenants"] == 0
    assert tenants == {}


def test_wal_skipped_lines_surface_in_status(tmp_path):
    state = str(tmp_path / "state")

    async def first():
        service = make_service(state_dir=state)
        await service.start()
        try:
            await service.create_tenant(_payload())
            await service.feed_trace_chunk("t1", hot_chunk(0.0, 4.0))
        finally:
            await service.drain()

    asyncio.run(first())

    # Simulate a disk fault corrupting a *middle* WAL line: a garbage
    # line followed by a valid post-snapshot record.  (A garbage final
    # line would be the torn-write case, which is silently dropped.)
    tenant_dir = os.path.join(state, "t1")
    snapshot = json.load(open(sorted(glob.glob(
        os.path.join(tenant_dir, "snapshot-*.json")))[-1]))
    with open(os.path.join(tenant_dir, "wal.jsonl"), "w") as handle:
        handle.write("corrupted-by-a-disk-fault\n")
        handle.write(json.dumps({
            "seq": snapshot["wal_seq"] + 1, "kind": "feed", "v": 1,
            "clock_s": snapshot["clock_s"],
            "records_fed": snapshot["records_fed"],
            "chunks_fed": snapshot["chunks_fed"],
            "resolves": snapshot["resolves"],
        }) + "\n")

    async def second():
        service = make_service(state_dir=state)
        await service.start()
        try:
            return service.status()
        finally:
            await service.drain()

    status = asyncio.run(second())
    durability = status["durability"]
    assert durability["recovery"]["wal_skipped_lines"] == 1
    assert durability["wal_skipped_lines"] == {"t1": 1}


# ----------------------------------------------------------------------
# The honest version: SIGKILL a real server, no drain
# ----------------------------------------------------------------------

def _read_lines_until(stream, predicate, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        ready, _, _ = select.select([stream], [], [], 0.25)
        if not ready:
            continue
        line = stream.readline()
        if not line:
            break
        if predicate(line):
            return line
    raise AssertionError("server never printed the expected line")


def _spawn_serve(state_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        ["src"] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "2", "--threads", "--feed-threads", "2",
         "--snapshot-every", "4", "--state-dir", state_dir],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env, cwd="/root/repo",
    )
    banner = _read_lines_until(
        proc.stdout, lambda line: "serving on http://" in line, 30.0
    )
    port = int(banner.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, port


@pytest.mark.chaos
def test_sigkill_mid_migration_recovers_exactly_once(tmp_path):
    state = str(tmp_path / "state")
    proc, port = _spawn_serve(state)
    try:
        async def populate():
            client = ServeClient("127.0.0.1", port)
            try:
                for tenant_id in ("t1", "t2"):
                    await client.create_tenant(
                        _payload(tenant_id, controller=SLOW_COPY))
                migrating = 0
                for tenant_id in ("t1", "t2"):
                    _, fed = await client.feed(tenant_id,
                                               hot_chunk(0.0, 10.0))
                    migrating += 1 if fed["migrating"] else 0
                return migrating
            finally:
                await client.close()

        migrating = asyncio.run(populate())
        assert migrating == 2
        proc.kill()  # SIGKILL: no drain, no atexit
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()

    proc, port = _spawn_serve(state)
    try:
        async def inspect():
            client = ServeClient("127.0.0.1", port)
            try:
                status = await client.status()
                _, answer = await client.advise("t1")
                return status["durability"]["recovery"], answer
            finally:
                await client.close()

        recovery, answer = asyncio.run(inspect())
        assert recovery["recovered_tenants"] == 2
        assert recovery["resumed_migrations"] + \
            recovery["adopted_swaps"] >= 2
        assert recovery["errors"] == []
        assert answer["tenant"] == "t1" and "layout" in answer
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()

    # Exactly once: every journal carries a single commit record, and a
    # third incarnation finds nothing left to resume.
    for journal in glob.glob(os.path.join(state, "*",
                                          "migration-*.jsonl")):
        commits = sum(1 for line in open(journal)
                      if json.loads(line).get("kind") == "commit")
        assert commits <= 1, journal

    async def third():
        frontend = HttpFrontend(make_service(state_dir=state))
        await frontend.start()
        client = ServeClient("127.0.0.1", frontend.port)
        try:
            return (await client.status())["durability"]["recovery"]
        finally:
            await client.close()
            await frontend.stop()

    recovery = asyncio.run(third())
    assert recovery["recovered_tenants"] == 2
    assert recovery["resumed_migrations"] == 0
