"""Tenant-level tests: record parsing, incremental feeding, and
journaled trace-paced migrations."""

import glob
import json

import numpy as np
import pytest

from repro.cli import load_problem
from repro.errors import ReproError
from repro.faults.journal import MigrationJournal
from repro.online.controller import ControllerConfig
from repro.serve.tenant import Tenant, records_from_payload

from tests.serve.conftest import CONTROLLER, PROBLEM, hot_chunk


def _make_tenant(journal_dir=None, **overrides):
    problem = load_problem(PROBLEM)
    config = ControllerConfig(journal_dir=journal_dir,
                              **{**CONTROLLER, **overrides})
    layout = problem.make_layout(np.array([[1.0, 0.0], [1.0, 0.0]]))
    return Tenant("t1", problem, layout, config=config)


# ----------------------------------------------------------------------
# Record parsing
# ----------------------------------------------------------------------

def test_records_from_payload_fills_defaults():
    records = records_from_payload([{"obj": "a", "finish_time": 1.5}])
    record = records[0]
    assert record.obj == "a"
    assert record.finish_time == 1.5
    assert record.submit_time == 1.5  # defaults to finish_time
    assert record.kind == "read"
    assert record.size == 8192


def test_records_from_payload_rejects_non_objects():
    with pytest.raises(ReproError, match="record 1 is not an object"):
        records_from_payload([{"obj": "a", "finish_time": 0.0}, "nope"])


def test_records_from_payload_requires_obj_and_finish_time():
    with pytest.raises(ReproError, match="needs 'obj' and 'finish_time'"):
        records_from_payload([{"obj": "a"}])


# ----------------------------------------------------------------------
# Incremental feeding
# ----------------------------------------------------------------------

def test_chunked_feed_matches_one_shot_feed():
    """Streaming a trace in many small chunks makes the same decisions
    as feeding it in one call — the check clock persists."""
    entries = hot_chunk(0.0, 16.0)
    whole, chunked = _make_tenant(), _make_tenant()
    whole.feed(records_from_payload(entries))
    for start in range(0, 16, 4):
        part = [e for e in entries
                if start <= e["finish_time"] < start + 4]
        chunked.feed(records_from_payload(part))

    assert chunked.records_fed == whole.records_fed
    assert chunked.chunks_fed == 4 and whole.chunks_fed == 1
    assert chunked.controller.resolves == whole.controller.resolves
    assert [e["kind"] for e in chunked.controller.log] \
        == [e["kind"] for e in whole.controller.log]
    assert np.allclose(chunked.controller.layout.matrix,
                       whole.controller.layout.matrix)
    # The synthetic drift actually drove a decision; the test is not
    # vacuously comparing two idle controllers.
    assert whole.controller.resolves >= 1


def test_feed_rejects_chunks_that_go_back_in_time():
    tenant = _make_tenant()
    tenant.feed(records_from_payload(hot_chunk(0.0, 4.0)))
    with pytest.raises(ReproError, match="goes back in time"):
        tenant.feed(records_from_payload(hot_chunk(1.0, 2.0)))
    # The clock is untouched by the rejected chunk.
    tenant.feed(records_from_payload(hot_chunk(4.0, 6.0)))


# ----------------------------------------------------------------------
# Journaled, trace-paced migration
# ----------------------------------------------------------------------

def test_accept_journals_then_trace_time_completes_migration(tmp_path):
    state = str(tmp_path / "t1")
    # A slow copy estimate keeps the migration in flight for several
    # seconds of trace time after the accept.
    tenant = _make_tenant(journal_dir=state, transfer_bps=256 * 1024)
    tenant.feed(records_from_payload(hot_chunk(0.0, 10.0)))
    assert tenant.controller.migrating
    kinds = [e["kind"] for e in tenant.controller.log]
    assert "migration-journaled" in kinds

    journals = glob.glob(state + "/migration-*.jsonl")
    assert len(journals) == 1
    assert not MigrationJournal.load(journals[0]).committed

    # Keep the trace clock moving until the copy bill is paid.
    clock = 10.0
    while tenant.controller.migrating and clock < 400.0:
        tenant.feed(records_from_payload(hot_chunk(clock, clock + 10.0)))
        clock += 10.0
    assert not tenant.controller.migrating
    assert MigrationJournal.load(journals[0]).committed
    fractions = tenant.controller.layout.fractions_by_name()
    assert fractions["b"][1] > 0.1  # the hot object moved to the SSD


def test_suspend_leaves_resumable_journal(tmp_path):
    state = str(tmp_path / "t1")
    tenant = _make_tenant(journal_dir=state, transfer_bps=256 * 1024)
    tenant.feed(records_from_payload(hot_chunk(0.0, 10.0)))
    assert tenant.controller.migrating
    target = tenant.controller._pending.layout.fractions_by_name()

    path = tenant.suspend()
    assert path is not None
    lines = [json.loads(line) for line in open(path)]
    assert lines[0]["kind"] == "begin"
    assert not any(line["kind"] == "commit" for line in lines)

    # A fresh incarnation of the tenant finishes the journal.
    fresh = _make_tenant(journal_dir=state, transfer_bps=256 * 1024)
    journal = fresh.controller.resume_migration(path)
    assert journal.committed
    assert not journal.remaining()
    fractions = fresh.controller.layout.fractions_by_name()
    assert fractions == {name: [pytest.approx(f, abs=1e-9) for f in row]
                         for name, row in target.items()}


def test_suspend_without_inflight_migration_is_a_noop():
    tenant = _make_tenant()
    assert tenant.suspend() is None
