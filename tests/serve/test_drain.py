"""Graceful-drain tests: SIGTERM semantics end to end.

Acceptance for the serving layer: on drain, in-flight advises complete,
in-flight migrations are journaled and resumable through the existing
``resume_migration()`` path, and the listener stops accepting new work.
"""

import asyncio
import glob
import json
import os
import select
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.http import HttpFrontend

from tests.serve.conftest import (CONTROLLER, LAYOUT, PROBLEM, hot_chunk,
                                  make_service)

#: Controller overrides whose copy estimate is slow enough that a
#: migration accepted mid-trace is still in flight when we drain.
SLOW_COPY = {**CONTROLLER, "transfer_bps": 256 * 1024}


def _create_body(tenant_id="t1"):
    return {"tenant_id": tenant_id, "problem": PROBLEM, "layout": LAYOUT,
            "controller": SLOW_COPY}


def test_drain_journals_migration_and_next_incarnation_resumes(tmp_path):
    state = str(tmp_path / "state")

    async def first_incarnation():
        frontend = HttpFrontend(make_service(state_dir=state))
        await frontend.start()
        client = ServeClient("127.0.0.1", frontend.port)
        await client.create_tenant(_create_body())
        _, fed = await client.feed("t1", hot_chunk(0.0, 10.0))
        assert fed["migrating"], "expected an in-flight migration"
        await client.close()
        await frontend.stop()  # SIGTERM path: drain

    asyncio.run(first_incarnation())

    journals = glob.glob(os.path.join(state, "t1", "migration-*.jsonl"))
    assert len(journals) == 1
    lines = [json.loads(line) for line in open(journals[0])]
    assert lines[0]["kind"] == "begin"
    assert not any(line["kind"] == "commit" for line in lines), \
        "drain must leave the in-flight migration uncommitted"

    async def second_incarnation():
        frontend = HttpFrontend(make_service(state_dir=state))
        await frontend.start()  # startup recovery rebuilds t1 from its WAL
        client = ServeClient("127.0.0.1", frontend.port)
        status = await client.status()
        recovery = status["durability"]["recovery"]
        assert recovery["recovered_tenants"] == 1
        assert recovery["resumed_migrations"] == 1
        assert recovery["errors"] == []
        # The resumed migration installed the journaled target layout:
        # the hot object is no longer pinned to d0.
        tenant = await client.tenant_status("t1")
        assert tenant["layout"]["b"][1] > 0.1
        await client.close()
        await frontend.stop()

    asyncio.run(second_incarnation())

    lines = [json.loads(line) for line in open(journals[0])]
    assert any(line["kind"] == "commit" for line in lines)


def test_drain_finishes_inflight_but_listener_stops_accepting():
    async def scenario():
        frontend = HttpFrontend(make_service(workers=1))
        await frontend.start()
        port = frontend.port
        client = ServeClient("127.0.0.1", port)
        await client.create_tenant(_create_body())
        # Hold the only pool slot so the advise is still in flight when
        # the drain begins.
        blocker = asyncio.ensure_future(frontend.service.scheduler.submit(
            "t1", time.sleep, 0.4, preadmitted=True
        ))
        inflight = asyncio.ensure_future(client.advise("t1"))
        await asyncio.sleep(0.05)

        stopping = asyncio.ensure_future(frontend.stop())
        await asyncio.sleep(0.05)
        # The listener is already closed while the drain waits ...
        with pytest.raises(OSError):
            await asyncio.open_connection("127.0.0.1", port)
        # ... yet admitted work still completes over its open socket.
        _, answer = await inflight
        assert answer["tenant"] == "t1" and "layout" in answer
        await blocker
        await stopping
        await client.close()

    asyncio.run(scenario())


def _read_lines_until(stream, predicate, timeout_s):
    """Read stream lines until one satisfies ``predicate``; returns it."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        ready, _, _ = select.select([stream], [], [], 0.25)
        if not ready:
            continue
        line = stream.readline()
        if not line:
            break
        if predicate(line):
            return line
    raise AssertionError("server never printed the expected line")


def test_cli_serve_sigterm_drains_and_exits_cleanly(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        ["src"] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--threads", "--feed-threads", "1",
         "--state-dir", str(tmp_path / "state")],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd="/root/repo",
    )
    try:
        banner = _read_lines_until(
            proc.stdout, lambda line: "serving on http://" in line, 30.0
        )
        port = int(banner.split("http://", 1)[1].split()[0]
                   .rsplit(":", 1)[1])

        async def poke():
            client = ServeClient("127.0.0.1", port)
            made = await client.create_tenant(_create_body())
            assert made["tenant"] == "t1"
            await client.close()

        asyncio.run(poke())
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        rest = proc.stdout.read()
        assert proc.returncode == 0
        assert "draining" in rest and "drained" in rest
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.stderr.close()
