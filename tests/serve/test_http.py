"""HTTP front-end tests: routing, status-code mapping, keep-alive,
and malformed-request handling."""

import asyncio
import json

import pytest

from repro.serve.client import ServeClient, ServeHttpError
from repro.serve.http import HttpFrontend

from tests.serve.conftest import (CONTROLLER, LAYOUT, PROBLEM, hot_chunk,
                                  make_service)


async def _frontend(**overrides):
    frontend = HttpFrontend(make_service(**overrides))
    await frontend.start()
    return frontend


def _create_body(tenant_id="t1"):
    return {"tenant_id": tenant_id, "problem": PROBLEM, "layout": LAYOUT,
            "controller": CONTROLLER}


def test_http_end_to_end_tenant_lifecycle():
    async def scenario():
        frontend = await _frontend()
        client = ServeClient("127.0.0.1", frontend.port)
        try:
            made = await client.create_tenant(_create_body())
            assert made["tenant"] == "t1"
            assert made["layout"]["a"] == [1.0, 0.0]

            status = await client.status()
            assert status["tenants"] == 1 and not status["draining"]

            _, answer = await client.advise("t1")
            assert answer["tenant"] == "t1" and "layout" in answer

            _, fed = await client.feed("t1", hot_chunk(0.0, 6.0))
            assert fed["records_fed"] > 0 and fed["chunks_fed"] == 1

            tenant = await client.tenant_status("t1")
            assert tenant["advises"] == 1

            _, events = await client.request("GET", "/tenants/t1/events")
            assert events["tenant"] == "t1"
            assert any(e["kind"] == "check" for e in events["events"])

            text = await client.metrics()
            assert text.startswith("# ")
            assert 'tenant="t1"' in text

            _, gone = await client.delete_tenant("t1")
            assert gone["deleted"]
            with pytest.raises(ServeHttpError) as error:
                await client.tenant_status("t1")
            assert error.value.status == 404
        finally:
            await client.close()
            await frontend.stop()

    asyncio.run(scenario())


def test_http_error_code_mapping():
    async def scenario():
        frontend = await _frontend()
        client = ServeClient("127.0.0.1", frontend.port)

        async def code(method, path, body=None):
            status, _ = await client.request(method, path, body,
                                             raise_for_status=False)
            return status

        try:
            assert await code("GET", "/nope") == 404
            assert await code("GET", "/tenants") == 405
            assert await code("PUT", "/tenants/t1") == 405
            assert await code("POST", "/tenants/ghost/advise") == 404
            assert await code("POST", "/tenants", {"tenant_id": "x"}) \
                == 400  # missing problem
            assert await code("POST", "/tenants",
                              {"tenant_id": "bad id!",
                               "problem": PROBLEM}) == 400
            await client.create_tenant(_create_body())
            assert await code("POST", "/tenants/t1/trace",
                              {"records": "not-a-list"}) == 400
            assert await code("POST", "/tenants/t1/trace",
                              {"records": ["garbage"]}) == 400
        finally:
            await client.close()
            await frontend.stop()

    asyncio.run(scenario())


def test_http_draining_maps_to_503():
    async def scenario():
        frontend = await _frontend()
        client = ServeClient("127.0.0.1", frontend.port)
        try:
            await client.create_tenant(_create_body())
            # Flag only — the full drain would also close the listener.
            frontend.service.draining = True
            status, payload = await client.advise("t1",
                                                  raise_for_status=False)
            assert status == 503
            assert payload["kind"] == "ServiceDrainingError"
            status, _ = await client.request(
                "POST", "/tenants", _create_body("t2"),
                raise_for_status=False,
            )
            assert status == 503
        finally:
            frontend.service.draining = False
            await client.close()
            await frontend.stop()

    asyncio.run(scenario())


def test_http_rejects_malformed_requests():
    async def scenario():
        frontend = await _frontend()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", frontend.port
            )
            writer.write(b"THIS IS NOT HTTP\r\n\r\n")
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()

            # Non-JSON body on a JSON route.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", frontend.port
            )
            writer.write(b"POST /tenants HTTP/1.1\r\n"
                         b"Content-Length: 9\r\n\r\nnot json!")
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()
        finally:
            await frontend.stop()

    asyncio.run(scenario())


def test_http_keep_alive_reuses_the_connection():
    async def scenario():
        frontend = await _frontend()
        client = ServeClient("127.0.0.1", frontend.port)
        try:
            await client.status()
            socket_before = client._writer
            await client.status()
            await client.status()
            assert client._writer is socket_before  # never reconnected
        finally:
            await client.close()
            await frontend.stop()

    asyncio.run(scenario())


def test_http_honors_connection_close():
    async def scenario():
        frontend = await _frontend()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", frontend.port
            )
            writer.write(b"GET /status HTTP/1.1\r\n"
                         b"Connection: close\r\n\r\n")
            await writer.drain()
            raw = await reader.read()  # server closes after responding
            head, _, body = raw.partition(b"\r\n\r\n")
            assert b"200" in head.split(b"\r\n")[0]
            assert b"Connection: close" in head
            assert json.loads(body)["tenants"] == 0
            writer.close()
        finally:
            await frontend.stop()

    asyncio.run(scenario())
