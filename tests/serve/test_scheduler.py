"""Unit tests for weighted-fair scheduling and bounded admission."""

import asyncio

import pytest

from repro.errors import ReproError
from repro.serve.scheduler import (AdmissionError, FairScheduler,
                                   TenantGoneError)


class FakePool:
    """In-loop stand-in for the solver pool: runs jobs inline, and can
    hold them on a gate so queues build up deterministically."""

    def __init__(self, max_workers=1, gate=None):
        self.max_workers = max_workers
        self.gate = gate

    async def run(self, fn, *args):
        if self.gate is not None:
            await self.gate.wait()
        return fn(*args)


def _charging_job(order):
    def job(key, charge=1.0):
        order.append(key)
        return {"solver_time_s": charge}
    return job


def test_equal_weights_interleave_under_backlog():
    async def scenario():
        sched = FairScheduler(FakePool(max_workers=1), max_pending=100)
        sched.register("a")
        sched.register("b")
        order = []
        job = _charging_job(order)
        tasks = [asyncio.ensure_future(sched.submit(key, job, key))
                 for key in ["a"] * 4 + ["b"] * 4]
        await asyncio.sleep(0)  # enqueue everything before dispatch starts
        sched.start()
        await asyncio.gather(*tasks)
        await sched.stop()
        return order, sched

    order, sched = asyncio.run(scenario())
    assert len(order) == 8
    # Virtual-time dispatch never lets either tenant run more than one
    # job ahead, even though all of a's jobs were enqueued first.
    for i in range(1, len(order) + 1):
        prefix = order[:i]
        assert abs(prefix.count("a") - prefix.count("b")) <= 1
    assert sched.fairness_spread(["a", "b"]) == pytest.approx(1.0)


def test_weights_bias_the_allocation():
    async def scenario():
        sched = FairScheduler(FakePool(max_workers=1), max_pending=100)
        sched.register("a", weight=1.0)
        sched.register("b", weight=3.0)
        order = []
        job = _charging_job(order)
        tasks = [asyncio.ensure_future(sched.submit(key, job, key))
                 for key in ["a"] * 6 + ["b"] * 6]
        await asyncio.sleep(0)
        sched.start()
        await asyncio.gather(*tasks)
        await sched.stop()
        return order

    order = asyncio.run(scenario())
    # Weight 3 earns roughly 3 of every 4 early slots.
    assert order[:8].count("b") >= 5


def test_admission_bound_rejects_and_preadmission_bypasses():
    async def scenario():
        gate = asyncio.Event()
        sched = FairScheduler(FakePool(max_workers=1, gate=gate),
                              max_pending=2).start()
        sched.register("a")

        def job():
            return {"solver_time_s": 0.0}

        tasks = [asyncio.ensure_future(sched.submit("a", job))]
        await asyncio.sleep(0.02)  # first dispatched, held on the gate
        tasks += [asyncio.ensure_future(sched.submit("a", job))
                  for _ in range(2)]
        await asyncio.sleep(0.02)  # the pool slot is busy: both queue
        assert sched.inflight == 1 and sched.pending == 2
        with pytest.raises(AdmissionError):
            await sched.submit("a", job)
        assert sched.rejected == 1
        # Internal follow-up work ignores the bound.
        tasks.append(asyncio.ensure_future(
            sched.submit("a", job, preadmitted=True)
        ))
        await asyncio.sleep(0.02)
        assert sched.pending == 3
        gate.set()
        await asyncio.gather(*tasks)
        await sched.stop()
        assert sched.completed == 4

    asyncio.run(scenario())


def test_submit_for_unknown_tenant_fails():
    async def scenario():
        sched = FairScheduler(FakePool(), max_pending=4)
        with pytest.raises(TenantGoneError):
            await sched.submit("ghost", lambda: None)

    asyncio.run(scenario())


def test_forget_fails_queued_jobs_only():
    async def scenario():
        gate = asyncio.Event()
        sched = FairScheduler(FakePool(max_workers=1, gate=gate),
                              max_pending=10).start()
        sched.register("a")
        sched.register("b")

        def job(key):
            return {"solver_time_s": 1.0, "key": key}

        keeper = asyncio.ensure_future(sched.submit("a", job, "a"))
        doomed = [asyncio.ensure_future(sched.submit("b", job, "b"))
                  for _ in range(2)]
        await asyncio.sleep(0.02)
        sched.forget("b")
        gate.set()
        result = await keeper
        assert result["key"] == "a"
        for task in doomed:
            with pytest.raises(TenantGoneError):
                await task
        # The forgotten tenant no longer submits.
        with pytest.raises(TenantGoneError):
            await sched.submit("b", job, "b")
        await sched.stop()

    asyncio.run(scenario())


def test_charges_use_worker_reported_solver_time():
    async def scenario():
        sched = FairScheduler(FakePool(max_workers=1),
                              max_pending=10).start()
        sched.register("a")
        sched.register("b")
        await sched.submit("a", lambda: {"solver_time_s": 2.5})
        await sched.submit("b", lambda: {"solver_time_s": 5.0})
        assert sched.served_seconds("a") == pytest.approx(2.5)
        assert sched.jobs_done("a") == 1
        assert sched.fairness_spread(["a", "b"]) == pytest.approx(2.0)
        await sched.stop()

    asyncio.run(scenario())


def test_job_errors_propagate_to_the_caller():
    async def scenario():
        sched = FairScheduler(FakePool(max_workers=1),
                              max_pending=10).start()
        sched.register("a")

        def boom():
            raise ValueError("solver exploded")

        with pytest.raises(ValueError, match="solver exploded"):
            await sched.submit("a", boom)
        ok = await sched.submit("a", lambda: {"solver_time_s": 0.1})
        assert ok["solver_time_s"] == 0.1
        await sched.stop()

    asyncio.run(scenario())


def test_stop_fails_jobs_still_queued():
    async def scenario():
        sched = FairScheduler(FakePool(max_workers=1), max_pending=10)
        sched.register("a")
        task = asyncio.ensure_future(sched.submit("a", lambda: None))
        await asyncio.sleep(0)  # queued; dispatcher never started
        await sched.stop()
        with pytest.raises(ReproError, match="scheduler stopped"):
            await task

    asyncio.run(scenario())


def test_late_tenant_enters_at_current_virtual_time():
    async def scenario():
        sched = FairScheduler(FakePool(max_workers=1),
                              max_pending=10).start()
        sched.register("a")
        for _ in range(4):
            await sched.submit("a", lambda: {"solver_time_s": 1.0})
        await asyncio.sleep(0.02)
        sched.register("late")
        # No credit for time spent idle/unregistered: the newcomer
        # starts at the service's virtual clock, not at zero.
        assert sched._vtimes["late"] == pytest.approx(sched._vclock)
        assert sched._vclock > 0
        await sched.stop()

    asyncio.run(scenario())
