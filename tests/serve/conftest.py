"""Shared helpers for the serving-layer tests.

Most tests run the real :class:`~repro.serve.service.AdvisorService`
on an in-process thread pool (``use_processes=False``) — fast,
deterministic, and exactly the code path the HTTP layer serves.  Tests
that target process-pool crash recovery build their own service.
"""

from repro.serve.service import AdvisorService, ServeConfig

#: Small but heterogeneous: the disk/SSD asymmetry makes re-solves move
#: data when request rates flip, so migration paths get exercised.
PROBLEM = {
    "stripe_size": 1 << 20,
    "targets": [
        {"name": "d0", "capacity": 64 << 20, "kind": "disk15k"},
        {"name": "d1", "capacity": 64 << 20, "kind": "ssd"},
    ],
    "objects": [
        {"name": "a", "size": 24 << 20, "read_rate": 120.0, "run_count": 4},
        {"name": "b", "size": 24 << 20, "read_rate": 20.0, "run_count": 4},
    ],
}

#: Everything parked on the slow disk — re-solves have room to improve.
LAYOUT = {"a": [1.0, 0.0], "b": [1.0, 0.0]}

#: Trigger-happy controller so short synthetic traces cause decisions.
CONTROLLER = {
    "check_interval_s": 2.0,
    "patience": 1,
    "cooldown_s": 0.0,
    "min_gain": 0.001,
    "amortization_s": 10000.0,
    "monitor_halflife_s": 4.0,
}


def make_service(**overrides):
    values = dict(port=0, workers=2, use_processes=False, feed_threads=2)
    values.update(overrides)
    return AdvisorService(ServeConfig(**values))


def trace_records(obj, start, end, rate, target="d0", size=8192):
    """Synthetic completion records for one object at a fixed rate."""
    out, t, step = [], float(start), 1.0 / float(rate)
    while t < end:
        out.append({"obj": obj, "finish_time": round(t, 6), "kind": "read",
                    "size": size, "target": target, "service_time": 0.004})
        t += step
    return out


def hot_chunk(start, end):
    """A chunk where the cold object turns hot — drives a re-solve."""
    return sorted(
        trace_records("a", start, end, rate=20.0)
        + trace_records("b", start, end, rate=200.0),
        key=lambda r: r["finish_time"],
    )
