"""Connection-robustness tests: the client's retry policy against a
scripted flaky server, and the frontend's slow-request (slowloris)
guard.

The retry-policy contract under test:

* send-phase connection death (the server closed a stale keep-alive
  before the request went out) → one free resend, any method;
* receive-phase death — including mid-body — retries only *safe*
  requests: GETs and mutations carrying an ``Idempotency-Key``;
* ``retry_statuses`` retries those codes for safe requests, honoring
  the server's ``Retry-After``.
"""

import asyncio
import json
import time

import pytest

from repro.serve.client import ServeClient, ServeHttpError
from repro.serve.http import HttpFrontend

from tests.serve.conftest import (CONTROLLER, LAYOUT, PROBLEM,
                                  make_service)


class FlakyServer:
    """An HTTP/1.1 stub that misbehaves on cue.

    ``behaviors`` is consumed one entry per request received:
    ``"ok"`` (full 200), ``"mid-body"`` (headers + half the body, then
    connection abort), or ``("status", code, retry_after)``.
    """

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.requests = 0
        self.server = None
        self.port = None

    async def start(self):
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()

    async def _handle(self, reader, writer):
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError,
                        ConnectionResetError):
                    return
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                if length:
                    await reader.readexactly(length)
                self.requests += 1
                behavior = (self.behaviors.pop(0)
                            if self.behaviors else "ok")
                body = json.dumps({"ok": True,
                                   "served": self.requests}).encode()
                if behavior == "ok":
                    writer.write(self._head(200, len(body)) + body)
                    await writer.drain()
                elif behavior == "mid-body":
                    writer.write(self._head(200, len(body))
                                 + body[: len(body) // 2])
                    await writer.drain()
                    writer.transport.abort()  # mid-body connection death
                    return
                else:
                    _, code, retry_after = behavior
                    extra = (b"Retry-After: %d\r\n" % retry_after
                             if retry_after is not None else b"")
                    writer.write(self._head(code, len(body), extra)
                                 + body)
                    await writer.drain()
        finally:
            writer.close()

    @staticmethod
    def _head(code, length, extra=b""):
        return (b"HTTP/1.1 %d X\r\nContent-Type: application/json\r\n"
                b"Content-Length: %d\r\n" % (code, length)
                + extra + b"Connection: keep-alive\r\n\r\n")


def test_mid_body_death_is_not_retried_without_a_key():
    async def scenario():
        server = await FlakyServer(["mid-body", "ok"]).start()
        client = ServeClient("127.0.0.1", server.port, retries=2,
                             backoff_s=0.01)
        try:
            with pytest.raises((ConnectionError,
                                asyncio.IncompleteReadError)):
                await client.request("POST", "/x", {"n": 1})
            # The server may have executed the request: exactly one
            # attempt reached it.
            assert server.requests == 1
        finally:
            await client.close()
            await server.stop()

    asyncio.run(scenario())


def test_mid_body_death_retries_keyed_mutations():
    async def scenario():
        server = await FlakyServer(["mid-body", "ok"]).start()
        client = ServeClient("127.0.0.1", server.port, retries=2,
                             backoff_s=0.01)
        try:
            status, payload = await client.request(
                "POST", "/x", {"n": 1}, idempotency_key="k1")
            assert status == 200 and payload["ok"]
            assert server.requests == 2
        finally:
            await client.close()
            await server.stop()

    asyncio.run(scenario())


def test_mid_body_death_retries_gets():
    async def scenario():
        server = await FlakyServer(["mid-body", "ok"]).start()
        client = ServeClient("127.0.0.1", server.port, retries=2,
                             backoff_s=0.01)
        try:
            status, payload = await client.request("GET", "/x")
            assert status == 200 and payload["ok"]
            assert server.requests == 2
        finally:
            await client.close()
            await server.stop()

    asyncio.run(scenario())


def test_stale_keepalive_close_gets_one_free_resend():
    async def scenario():
        server = await FlakyServer(["ok", "ok"]).start()
        client = ServeClient("127.0.0.1", server.port, retries=0)
        try:
            await client.request("POST", "/x", {"n": 1})
            # The server silently dropped the idle connection; the next
            # write fails in the send phase, which is safe to resend
            # for any method — the server never saw the request.
            client._writer.transport.abort()
            await asyncio.sleep(0.01)
            status, payload = await client.request("POST", "/x", {"n": 2})
            assert status == 200 and payload["ok"]
            assert server.requests == 2
        finally:
            await client.close()
            await server.stop()

    asyncio.run(scenario())


def test_retry_statuses_honor_retry_after_for_safe_requests():
    async def scenario():
        server = await FlakyServer([("status", 503, 0), "ok"]).start()
        client = ServeClient("127.0.0.1", server.port, retries=2,
                             backoff_s=0.01)
        try:
            status, payload = await client.request(
                "POST", "/x", {"n": 1}, idempotency_key="k1",
                retry_statuses=(503,))
            assert status == 200 and payload["ok"]
            assert server.requests == 2
        finally:
            await client.close()
            await server.stop()

    asyncio.run(scenario())


def test_retry_statuses_refuse_unkeyed_mutations():
    async def scenario():
        server = await FlakyServer([("status", 503, 0), "ok"]).start()
        client = ServeClient("127.0.0.1", server.port, retries=2,
                             backoff_s=0.01)
        try:
            with pytest.raises(ServeHttpError) as error:
                await client.request("POST", "/x", {"n": 1},
                                     retry_statuses=(503,))
            assert error.value.status == 503
            assert server.requests == 1
        finally:
            await client.close()
            await server.stop()

    asyncio.run(scenario())


def test_backoff_grows_exponentially_and_caps():
    client = ServeClient("127.0.0.1", 1, backoff_s=0.1, backoff_cap_s=0.5,
                         jitter=0.0)
    assert client._backoff(1) == pytest.approx(0.1)
    assert client._backoff(2) == pytest.approx(0.2)
    assert client._backoff(3) == pytest.approx(0.4)
    assert client._backoff(4) == pytest.approx(0.5), "capped"
    assert client._backoff(1, retry_after="2") == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Slow-request guard (the slowloris defense)
# ----------------------------------------------------------------------

def _create_body(tenant_id="t1"):
    return {"tenant_id": tenant_id, "problem": PROBLEM, "layout": LAYOUT,
            "controller": CONTROLLER}


def test_slow_request_times_out_with_408():
    async def scenario():
        frontend = HttpFrontend(make_service(request_timeout_s=0.2))
        await frontend.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", frontend.port)
            # First byte arrives, then the request trickles... and stops.
            writer.write(b"POST /tenants HT")
            await writer.drain()
            head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"),
                                          timeout=5.0)
            assert b" 408 " in head.split(b"\r\n", 1)[0]
            writer.close()
        finally:
            await frontend.stop()

    asyncio.run(scenario())


def test_idle_keepalive_is_not_timed_out():
    async def scenario():
        frontend = HttpFrontend(make_service(request_timeout_s=0.2))
        await frontend.start()
        client = ServeClient("127.0.0.1", frontend.port)
        try:
            await client.create_tenant(_create_body())
            # Idle far longer than the request timeout: the guard only
            # clocks requests that have *started* (first byte seen), so
            # the connection must still be usable.
            await asyncio.sleep(0.5)
            status = await client.status()
            assert status["tenants"] == 1
        finally:
            await client.close()
            await frontend.stop()

    asyncio.run(scenario())


def test_http_idempotency_key_replays_mutations():
    async def scenario():
        frontend = HttpFrontend(make_service())
        await frontend.start()
        client = ServeClient("127.0.0.1", frontend.port)
        try:
            made = await client.create_tenant(_create_body(),
                                              idempotency_key="c1")
            assert "replayed" not in made
            again = await client.create_tenant(_create_body(),
                                               idempotency_key="c1")
            assert again["replayed"] and again["tenant"] == made["tenant"]
            status = await client.status()
            assert status["tenants"] == 1
            assert status["durability"]["idempotency_keys"] == 1
        finally:
            await client.close()
            await frontend.stop()

    asyncio.run(scenario())
