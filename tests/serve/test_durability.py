"""Durability primitives: WAL append/replay, snapshots, and the
crash-truncation property.

These tests exercise :mod:`repro.serve.durability` directly — no
service, no sockets — so the replay semantics (torn final line,
authoritative create, exactly-once swap accounting) are pinned down
independently of the recovery plumbing above them.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.durability import (DurabilityError, TenantWAL,
                                    load_snapshot, load_tenant_state,
                                    read_wal, recover_state_dir,
                                    write_snapshot)


def _create(wal, layout=None):
    return wal.append(
        "create", tenant_id="t1", problem={"objects": []}, controller={},
        weight=1.0, slo=None, layout=layout or {"a": [1.0]},
        journal_seq=0,
    )


def test_wal_appends_are_replayable_in_order(tmp_path):
    wal = TenantWAL(str(tmp_path / "t1"))
    _create(wal)
    wal.append("feed", clock_s=2.0, records_fed=10, chunks_fed=1,
               resolves=0)
    wal.append("swap", journal="migration-000001.jsonl", journal_seq=1,
               resolves=1, layout={"a": [0.5]})
    wal.close()
    records, skipped = read_wal(wal.path)
    assert skipped == 0
    assert [r["seq"] for r in records] == [1, 2, 3]
    assert [r["kind"] for r in records] == ["create", "feed", "swap"]


def test_wal_rejects_unknown_kind(tmp_path):
    wal = TenantWAL(str(tmp_path / "t1"))
    with pytest.raises(DurabilityError):
        wal.append("truncate-table")


def test_torn_final_line_is_dropped_mid_line_is_counted(tmp_path):
    wal = TenantWAL(str(tmp_path / "t1"))
    _create(wal)
    wal.append("feed", clock_s=1.0, records_fed=5, chunks_fed=1,
               resolves=0)
    wal.close()
    with open(wal.path) as handle:
        create_line, feed_line = handle.read().splitlines()
    # Corrupt the middle, tear the end: only the middle counts.
    with open(wal.path, "w") as handle:
        handle.write(create_line + "\n")
        handle.write("{不json\n")
        handle.write(feed_line + "\n")
        handle.write(feed_line[: len(feed_line) // 2])  # torn by a crash
    records, skipped = read_wal(wal.path)
    assert [r["kind"] for r in records] == ["create", "feed"]
    assert skipped == 1
    state = load_tenant_state(str(tmp_path / "t1"))
    assert state["records_fed"] == 5
    assert state["wal_skipped"] == 1


def test_compaction_preserves_the_sequence_counter(tmp_path):
    wal = TenantWAL(str(tmp_path / "t1"))
    _create(wal)
    wal.append("feed", clock_s=1.0, records_fed=5, chunks_fed=1,
               resolves=0)
    folded = wal.seq
    wal.compact(folded)
    assert read_wal(wal.path)[0] == []
    assert wal.append("feed", clock_s=2.0, records_fed=9, chunks_fed=2,
                      resolves=0) == folded + 1
    wal.close()
    resumed = TenantWAL.resume(str(tmp_path / "t1"))
    assert resumed.seq == folded + 1


def test_snapshot_write_is_atomic_and_pruned(tmp_path):
    directory = str(tmp_path / "t1")
    for index in range(3):
        write_snapshot(directory, {
            "tenant_id": "t1", "problem": {}, "layout": {"a": [1.0]},
            "marker": index, "wal_seq": index + 1,
        })
    names = sorted(n for n in os.listdir(directory)
                   if n.startswith("snapshot-"))
    assert len(names) == 2, "keep=2 prunes older snapshots"
    assert load_snapshot(directory)["marker"] == 2
    assert not any(n.endswith(".tmp") for n in os.listdir(directory))


def test_corrupt_newest_snapshot_falls_back_to_older(tmp_path):
    directory = str(tmp_path / "t1")
    write_snapshot(directory, {"tenant_id": "t1", "problem": {},
                               "layout": {"a": [1.0]}, "marker": "old",
                               "wal_seq": 1})
    newest = write_snapshot(directory, {"tenant_id": "t1", "problem": {},
                                        "layout": {"a": [1.0]},
                                        "marker": "new", "wal_seq": 2})
    with open(newest, "w") as handle:
        handle.write("not json at all")
    assert load_snapshot(directory)["marker"] == "old"


def test_snapshot_requires_wal_seq(tmp_path):
    with pytest.raises(DurabilityError):
        write_snapshot(str(tmp_path / "t1"), {"tenant_id": "t1"})


def test_delete_makes_the_tenant_unrecoverable(tmp_path):
    wal = TenantWAL(str(tmp_path / "t1"))
    _create(wal)
    wal.append("delete", tenant_id="t1")
    wal.close()
    assert load_tenant_state(str(tmp_path / "t1")) is None
    states, errors = recover_state_dir(str(tmp_path))
    assert states == [] and errors == []


def test_recreate_after_delete_is_an_authoritative_rebirth(tmp_path):
    wal = TenantWAL(str(tmp_path / "t1"))
    _create(wal)
    wal.append("feed", clock_s=9.0, records_fed=99, chunks_fed=9,
               resolves=3)
    wal.append("delete", tenant_id="t1")
    _create(wal, layout={"a": [0.0, 1.0]})
    wal.close()
    state = load_tenant_state(str(tmp_path / "t1"))
    assert state["layout"] == {"a": [0.0, 1.0]}
    assert state["records_fed"] == 0, "no leakage from the first life"
    assert state["clock_s"] is None


def test_swap_records_accumulate_exactly_once(tmp_path):
    wal = TenantWAL(str(tmp_path / "t1"))
    _create(wal)
    for seq in (1, 2):
        wal.append("swap", journal="migration-%06d.jsonl" % seq,
                   journal_seq=seq, resolves=seq,
                   layout={"a": [1.0 - 0.25 * seq]})
    # A replayed swap line (crash between append and ack) must not
    # produce a duplicate entry.
    wal.append("swap", journal="migration-000002.jsonl", journal_seq=2,
               resolves=2, layout={"a": [0.5]})
    wal.close()
    state = load_tenant_state(str(tmp_path / "t1"))
    assert state["swapped_journals"] == ["migration-000001.jsonl",
                                         "migration-000002.jsonl"]
    assert state["journal_seq"] == 2


def test_orphan_records_without_create_are_not_a_tenant(tmp_path):
    wal = TenantWAL(str(tmp_path / "t1"))
    wal.append("feed", clock_s=1.0, records_fed=5, chunks_fed=1,
               resolves=0)
    wal.close()
    assert load_tenant_state(str(tmp_path / "t1")) is None


def test_recover_state_dir_isolates_a_corrupt_tenant(tmp_path):
    good = TenantWAL(str(tmp_path / "good"))
    _create(good)
    good.close()
    bad = str(tmp_path / "bad")
    os.makedirs(bad)
    # A create whose identity fields are gone: replay must error this
    # tenant but still return the healthy one.
    with open(os.path.join(bad, "wal.jsonl"), "w") as handle:
        handle.write(json.dumps({"seq": 1, "kind": "create", "v": 1}))
        handle.write("\n")
        handle.write(json.dumps({"seq": 2, "kind": "feed", "clock_s": 1.0}))
        handle.write("\n")
    states, errors = recover_state_dir(str(tmp_path))
    assert [s["tenant_id"] for s in states] == ["t1"]
    assert len(errors) == 1 and errors[0][0].endswith("bad")


# ----------------------------------------------------------------------
# The crash-truncation property
# ----------------------------------------------------------------------

def _build_walled_tenant(base, tail_kinds):
    """A tenant directory: snapshot + a WAL tail of feeds and swaps.

    Returns ``(directory, tail_records)`` where ``tail_records`` are
    the post-snapshot WAL records in append order.
    """
    directory = os.path.join(base, "t1")
    wal = TenantWAL(directory)
    _create(wal)
    wal.append("feed", clock_s=1.0, records_fed=10, chunks_fed=1,
               resolves=0)
    write_snapshot(directory, {
        "tenant_id": "t1", "problem": {"objects": []},
        "layout": {"a": [1.0]}, "clock_s": 1.0, "records_fed": 10,
        "chunks_fed": 1, "resolves": 0, "journal_seq": 0,
        "swapped_journals": [], "wal_seq": wal.seq,
    })
    wal.compact(wal.seq)
    feeds, swaps = 1, 0
    for kind in tail_kinds:
        if kind == "feed":
            feeds += 1
            wal.append("feed", clock_s=float(feeds),
                       records_fed=10 * feeds, chunks_fed=feeds,
                       resolves=swaps)
        else:
            swaps += 1
            wal.append("swap", journal="migration-%06d.jsonl" % swaps,
                       journal_seq=swaps, resolves=swaps,
                       layout={"a": [float(swaps)]})
    wal.close()
    return directory, read_wal(wal.path)[0]


@settings(max_examples=60, deadline=None)
@given(
    tail_kinds=st.lists(st.sampled_from(["feed", "swap"]), max_size=8),
    cut=st.floats(0.0, 1.0),
)
def test_wal_truncated_at_any_byte_recovers_consistently(tail_kinds, cut):
    """SIGKILL can cut the WAL at any byte past the last snapshot; the
    replayed state must be the longest record prefix, with no duplicate
    placement swaps and no regression below the snapshot."""
    with tempfile.TemporaryDirectory() as base:
        directory, full = _build_walled_tenant(base, tail_kinds)
        path = os.path.join(directory, "wal.jsonl")
        size = os.path.getsize(path)
        offset = int(cut * size)
        with open(path, "r+b") as handle:
            handle.truncate(offset)

        records, skipped = read_wal(path)
        assert skipped == 0, "a clean truncation only tears the tail"
        # Replay sees exactly the longest surviving record prefix.
        assert records == full[: len(records)]

        state = load_tenant_state(directory)
        assert state is not None, "the snapshot floor always recovers"
        assert state["tenant_id"] == "t1"
        swaps = [r for r in records if r["kind"] == "swap"]
        feeds = [r for r in records if r["kind"] == "feed"]
        assert state["swapped_journals"] == [r["journal"] for r in swaps]
        assert len(set(state["swapped_journals"])) \
            == len(state["swapped_journals"])
        assert state["journal_seq"] == (swaps[-1]["journal_seq"]
                                        if swaps else 0)
        assert state["layout"] == (swaps[-1]["layout"] if swaps
                                   else {"a": [1.0]})
        assert state["records_fed"] == (feeds[-1]["records_fed"]
                                        if feeds else 10)
        assert state["wal_seq"] == (records[-1]["seq"] if records
                                    else 2), "seq floor is the snapshot"
