"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro import units
from repro.core.problem import LayoutProblem, TargetSpec
from repro.models.analytic import (
    analytic_disk_target_model,
    analytic_ssd_target_model,
)
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.streams import SimContext
from repro.storage.target import StorageTarget
from repro.workload.spec import ObjectWorkload


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def disk_target(engine):
    """A single bound disk target with a trace."""
    trace = []
    disk = DiskDrive("d0", units.gib(0.25))
    target = StorageTarget(disk, engine=engine, trace=trace)
    return target


@pytest.fixture
def single_disk_ctx(engine, disk_target):
    """One object spanning most of one disk, ready for streams."""
    placement = PlacementMap(
        {"obj": units.mib(64)}, {"obj": [1.0]}, [disk_target.capacity]
    )
    return SimContext(engine, placement, [disk_target])


def make_workloads():
    """Three-object workload set exercising every spec feature."""
    return [
        ObjectWorkload("big", read_rate=800.0, run_count=64.0,
                       overlap={"medium": 0.9, "small": 0.2}),
        ObjectWorkload("medium", read_rate=300.0, write_rate=40.0,
                       run_count=32.0, overlap={"big": 0.9}),
        ObjectWorkload("small", read_rate=60.0, write_rate=60.0,
                       run_count=1.0, overlap={"big": 0.2}),
    ]


def make_problem(n_targets=4, capacity=units.gib(2), pinning=None):
    """A small analytic-model layout problem (fast: no calibration)."""
    targets = [
        TargetSpec("t%d" % j, capacity, analytic_disk_target_model("t%d" % j))
        for j in range(n_targets)
    ]
    sizes = {
        "big": units.gib(1),
        "medium": units.mib(300),
        "small": units.mib(100),
    }
    return LayoutProblem(sizes, targets, make_workloads(), pinning=pinning)


@pytest.fixture
def small_problem():
    return make_problem()


@pytest.fixture
def ssd_problem():
    """Heterogeneous problem: three disks plus one SSD target."""
    targets = [
        TargetSpec("d%d" % j, units.gib(2), analytic_disk_target_model("d%d" % j))
        for j in range(3)
    ]
    targets.append(
        TargetSpec("ssd", units.gib(1), analytic_ssd_target_model("ssd"))
    )
    sizes = {
        "big": units.gib(1),
        "medium": units.mib(300),
        "small": units.mib(100),
    }
    return LayoutProblem(sizes, targets, make_workloads())
