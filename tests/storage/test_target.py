"""Tests for storage target queueing, dispatch, and accounting."""

import pytest

from repro import units
from repro.errors import SimulationError
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.raid import Raid0Group
from repro.storage.request import IORequest
from repro.storage.ssd import SolidStateDrive
from repro.storage.target import StorageTarget


def _request(lba, size=8192, stream=1, kind="read", on_complete=None):
    return IORequest(stream_id=stream, kind=kind, lba=lba, size=size,
                     on_complete=on_complete)


@pytest.fixture
def target(engine):
    return StorageTarget(DiskDrive("d", units.gib(1)), engine=engine,
                         trace=[])


def test_unbound_target_rejects_requests():
    target = StorageTarget(DiskDrive("d", units.gib(1)))
    with pytest.raises(SimulationError):
        target.submit(_request(0))


def test_out_of_range_request_rejected(engine, target):
    with pytest.raises(SimulationError):
        target.submit(_request(target.capacity))


def test_request_completes_with_timestamps(engine, target):
    done = []
    target.submit(_request(0, on_complete=done.append))
    engine.run()
    assert len(done) == 1
    request = done[0]
    assert request.finish_time > request.submit_time
    assert request.service_time > 0
    assert target.completed == 1


def test_queueing_serializes_disk_requests(engine, target):
    finished = []
    for i in range(3):
        target.submit(_request(units.mib(100 * i), stream=i + 1,
                               on_complete=lambda r: finished.append(r)))
    engine.run()
    assert len(finished) == 3
    # A single-spindle disk serves one at a time: finish times differ.
    times = sorted(r.finish_time for r in finished)
    assert times[0] < times[1] < times[2]


def test_no_starvation_under_synchronous_reissue(engine, target):
    """A stream that reissues from its completion callback must not

    starve other queued streams (regression for the dispatch bug)."""
    counts = {"greedy": 0, "victim": 0}

    def greedy_done(request):
        counts["greedy"] += 1
        if counts["greedy"] < 50:
            target.submit(_request(request.lba + 8192, stream=1,
                                   on_complete=greedy_done))

    def victim_done(request):
        counts["victim"] += 1
        if counts["victim"] < 5:
            target.submit(_request(units.mib(700), stream=2,
                                   on_complete=victim_done))

    target.submit(_request(0, stream=1, on_complete=greedy_done))
    target.submit(_request(units.mib(700), stream=2, on_complete=victim_done))
    engine.run()
    assert counts["victim"] == 5
    assert counts["greedy"] == 50


def test_trace_records_completions(engine, target):
    target.submit(_request(0, stream=7))
    engine.run()
    assert len(target.trace) == 1
    record = target.trace[0]
    assert record.stream_id == 7
    assert record.target == "d"
    assert record.service_time > 0


def test_bytes_accounted_by_kind(engine, target):
    target.submit(_request(0, kind="read"))
    target.submit(_request(units.mib(1), kind="write"))
    engine.run()
    assert target.bytes_read == 8192
    assert target.bytes_written == 8192


def test_utilization_between_zero_and_one(engine, target):
    for i in range(5):
        target.submit(_request(units.mib(i * 50), stream=i))
    engine.run()
    utilization = target.utilization(engine.now)
    assert 0.0 < utilization <= 1.0


def test_utilization_zero_elapsed(target):
    assert target.utilization(0.0) == 0.0


def test_ssd_parallelism_overlaps_service(engine):
    ssd = SolidStateDrive("s", units.gib(1))
    target = StorageTarget(ssd, engine=engine)
    finishes = []
    for i in range(4):
        target.submit(_request(units.mib(i), stream=i,
                               on_complete=lambda r: finishes.append(r.finish_time)))
    engine.run()
    # All four fit in the channels: they finish at the same time.
    assert len(set(round(t, 9) for t in finishes)) == 1


def test_raid_split_request_completes_once(engine):
    raid = Raid0Group("r", units.mib(256) * 2, 2, stripe_unit=units.kib(64))
    target = StorageTarget(raid, engine=engine, trace=[])
    done = []
    # 128 KiB spanning two stripe units on different members.
    target.submit(_request(0, size=units.kib(128), on_complete=done.append))
    engine.run()
    assert len(done) == 1
    # The fragments each completed on their member.
    assert len(target.trace) == 2


def test_raid_members_work_in_parallel(engine):
    raid = Raid0Group("r", units.mib(256) * 2, 2, stripe_unit=units.kib(64))
    target = StorageTarget(raid, engine=engine)
    finishes = []
    su = units.kib(64)
    target.submit(_request(0, stream=1,
                           on_complete=lambda r: finishes.append(r.finish_time)))
    target.submit(_request(su, stream=2,
                           on_complete=lambda r: finishes.append(r.finish_time)))
    engine.run()
    assert finishes[0] == pytest.approx(finishes[1], rel=0.2)


def test_reset_clears_accounting(engine, target):
    target.submit(_request(0))
    engine.run()
    target.reset()
    assert target.completed == 0
    assert target.busy_time() == 0.0


def test_bind_attaches_engine_and_trace():
    target = StorageTarget(DiskDrive("d", units.gib(1)))
    engine = SimulationEngine()
    trace = []
    target.bind(engine, trace)
    target.submit(_request(0))
    engine.run()
    assert len(trace) == 1
