"""Tests for RAID0 group composition."""

import pytest

from repro import units
from repro.storage.raid import Raid0Group


@pytest.fixture
def raid():
    return Raid0Group("r", units.mib(512) * 3, 3, stripe_unit=units.kib(64))


def test_unit_per_member(raid):
    assert len(raid.units) == 3
    assert raid.n_members == 3


def test_round_robin_routing(raid):
    su = raid.stripe_unit
    assert raid.route(0)[0] == 0
    assert raid.route(su)[0] == 1
    assert raid.route(2 * su)[0] == 2
    assert raid.route(3 * su)[0] == 0


def test_member_addresses_are_compacted(raid):
    su = raid.stripe_unit
    # Stripe 0 and stripe 3 both live on member 0, back to back.
    assert raid.route(0) == (0, 0)
    assert raid.route(3 * su) == (0, su)
    assert raid.route(6 * su) == (0, 2 * su)


def test_offsets_within_stripe_preserved(raid):
    su = raid.stripe_unit
    unit, lba = raid.route(su + 4096)
    assert unit == 1
    assert lba % su == 4096


def test_boundary_limits_to_stripe_unit(raid):
    su = raid.stripe_unit
    assert raid.boundary(0) == su
    assert raid.boundary(su - 100) == 100


def test_member_capacity_split(raid):
    assert raid.units[0].capacity == raid.capacity // 3


def test_single_member_raid_is_valid():
    raid = Raid0Group("r1", units.mib(128), 1)
    assert raid.route(12345) == (0, 12345)


def test_zero_members_rejected():
    with pytest.raises(ValueError):
        Raid0Group("bad", units.mib(128), 0)


def test_routing_covers_all_members_evenly(raid):
    su = raid.stripe_unit
    counts = [0, 0, 0]
    for stripe in range(300):
        unit, _ = raid.route(stripe * su)
        counts[unit] += 1
    assert counts == [100, 100, 100]
