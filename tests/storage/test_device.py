"""Tests for device abstractions and the readahead tracker."""

import pytest

from repro import units
from repro.storage.device import ReadAheadTracker
from repro.storage.disk import DiskDrive


def test_first_access_is_a_miss():
    tracker = ReadAheadTracker(depth=2)
    assert tracker.access(1, 0, 8192) is False


def test_sequential_continuation_hits():
    tracker = ReadAheadTracker(depth=2)
    tracker.access(1, 0, 8192)
    assert tracker.access(1, 8192, 8192) is True
    assert tracker.access(1, 16384, 8192) is True


def test_non_sequential_jump_misses():
    tracker = ReadAheadTracker(depth=2)
    tracker.access(1, 0, 8192)
    assert tracker.access(1, 32768, 8192) is False
    # The jump re-primes the tracker at the new position.
    assert tracker.access(1, 40960, 8192) is True


def test_intervening_requests_within_depth_keep_the_hit():
    tracker = ReadAheadTracker(depth=2)
    tracker.access(1, 0, 8192)
    tracker.access(2, 500000, 8192)
    tracker.access(3, 900000, 8192)
    assert tracker.access(1, 8192, 8192) is True


def test_eviction_past_depth():
    tracker = ReadAheadTracker(depth=2)
    tracker.access(1, 0, 8192)
    for foreign in range(3):
        tracker.access(10 + foreign, 500000 + foreign * 8192, 8192)
    # Three intervening foreign requests exceed depth=2: prefetch lost.
    assert tracker.access(1, 8192, 8192) is False


def test_depth_one_collapses_at_two_competitors():
    """The paper's Figure 8: survival at chi=1, collapse at chi=2."""
    tracker = ReadAheadTracker(depth=1)
    tracker.access(1, 0, 8192)
    tracker.access(2, 500000, 8192)
    assert tracker.access(1, 8192, 8192) is True
    tracker.access(2, 600000, 8192)
    tracker.access(3, 700000, 8192)
    assert tracker.access(1, 16384, 8192) is False


def test_two_interleaved_streams_both_hit():
    tracker = ReadAheadTracker(depth=1)
    tracker.access(1, 0, 8192)
    tracker.access(2, 1 << 20, 8192)
    assert tracker.access(1, 8192, 8192) is True
    assert tracker.access(2, (1 << 20) + 8192, 8192) is True


def test_invalid_depth_rejected():
    with pytest.raises(ValueError):
        ReadAheadTracker(depth=0)


def test_prune_keeps_live_streams():
    tracker = ReadAheadTracker(depth=1)
    # Flood with dead streams to trigger pruning...
    for sid in range(200):
        tracker.access(sid, sid * 100000, 8192)
    # ...the most recent stream is still tracked.
    assert tracker.access(199, 199 * 100000 + 8192, 8192) is True
    assert len(tracker._slots) <= tracker.PRUNE_LIMIT + 1


def test_reset_clears_state():
    tracker = ReadAheadTracker(depth=2)
    tracker.access(1, 0, 8192)
    tracker.reset()
    assert tracker.access(1, 8192, 8192) is False


def test_single_unit_device_routes_identity():
    disk = DiskDrive("d", units.gib(1))
    assert disk.route(12345) == (0, 12345)
    assert disk.boundary(units.mib(1)) == disk.capacity - units.mib(1)


def test_device_repr_mentions_name():
    disk = DiskDrive("mydisk", units.gib(1))
    assert "mydisk" in repr(disk)
