"""Tests for the mechanical disk model."""

import dataclasses

import pytest

from repro import units
from repro.storage.disk import (
    DiskDrive,
    DiskParameters,
    ENTERPRISE_15K,
    NEARLINE_7200,
)
from repro.storage.request import IORequest


def _request(stream_id, lba, size=8192, kind="read"):
    return IORequest(stream_id=stream_id, kind=kind, lba=lba, size=size)


@pytest.fixture
def unit():
    return DiskDrive("d", units.gib(1)).units[0]


def test_rotation_is_half_a_revolution():
    params = DiskParameters(rpm=15000)
    assert params.rotation_s == pytest.approx(0.002)


def test_seek_time_zero_for_no_move(unit):
    assert unit.seek_time(0) == 0.0


def test_seek_time_monotone_in_distance(unit):
    short = unit.seek_time(units.mib(1))
    longer = unit.seek_time(units.mib(100))
    assert 0 < short < longer <= ENTERPRISE_15K.max_seek_s


def test_seek_time_clamped_at_full_stroke(unit):
    assert unit.seek_time(units.gib(10)) == pytest.approx(
        ENTERPRISE_15K.max_seek_s
    )


def test_sequential_requests_much_cheaper_than_random(unit):
    random_cost = unit.service_time(_request(1, units.mib(500)))
    sequential_cost = unit.service_time(_request(1, units.mib(500) + 8192))
    assert sequential_cost < random_cost / 5


def test_first_request_pays_positioning(unit):
    cost = unit.service_time(_request(1, units.mib(100)))
    assert cost > ENTERPRISE_15K.rotation_s


def test_readahead_interleaving_amortized_by_prefetch_chunk(unit):
    """With one foreign stream interleaving, the sequential stream is

    served from the drive's bounded prefetch buffer: one repositioning
    per chunk, cheap requests in between."""
    unit.service_time(_request(1, 0))
    foreign = units.mib(700)
    lba = 8192
    costs = []
    for _ in range(16):
        unit.service_time(_request(2, foreign))
        costs.append(unit.service_time(_request(1, lba)))
        lba += 8192
    # The first interleaved request pays the repositioning that fills
    # the prefetch chunk; most of the rest ride the buffer.
    assert costs[0] > 1e-3
    cheap = sum(1 for cost in costs if cost < 1e-3)
    assert cheap >= 12


def test_readahead_collapse_with_contention(unit):
    """Interleave foreign requests past the readahead depth: the

    sequential stream loses its discount entirely (Figure 8 collapse)."""
    unit.service_time(_request(1, 0))
    lba = 8192
    foreign = units.mib(700)
    for _ in range(6):
        for k in range(3):
            unit.service_time(_request(2 + k, foreign + k * units.mib(10)))
        cost = unit.service_time(_request(1, lba))
        lba += 8192
        # Three intervening requests (chi=3) exceed the tracking depth:
        # every sequential request pays full positioning.
        assert cost > 1e-3


def test_elevator_shortens_random_seeks(unit):
    solo = unit.service_time(_request(1, units.mib(600)), active_streams=1)
    unit.reset()
    busy = unit.service_time(_request(1, units.mib(600)), active_streams=9)
    assert busy < solo


def test_write_penalty_applies_to_positioning(unit):
    read_cost = unit.service_time(_request(1, units.mib(300), kind="read"))
    unit.reset()
    write_cost = unit.service_time(_request(1, units.mib(300), kind="write"))
    assert write_cost > read_cost


def test_transfer_time_scales_with_size(unit):
    small = unit.transfer_time(units.kib(8))
    large = unit.transfer_time(units.kib(64))
    assert large == pytest.approx(8 * small)


def test_nearline_slower_positioning_than_enterprise():
    assert NEARLINE_7200.rotation_s > ENTERPRISE_15K.rotation_s
    assert NEARLINE_7200.max_seek_s > ENTERPRISE_15K.max_seek_s


def test_reset_restores_head_and_tracker(unit):
    unit.service_time(_request(1, units.mib(100)))
    unit.reset()
    assert unit.head == 0
    # After reset the continuation is no longer a hit.
    cost = unit.service_time(_request(1, units.mib(100) + 8192))
    assert cost > 1e-3


def test_custom_parameters_respected():
    params = dataclasses.replace(ENTERPRISE_15K, transfer_bps=10 * units.MIB)
    disk = DiskDrive("slow", units.gib(1), params)
    assert disk.units[0].transfer_time(10 * units.MIB) == pytest.approx(1.0)
