"""Tests for request streams."""

import numpy as np
import pytest

from repro import units
from repro.errors import SimulationError
from repro.storage.streams import (
    RandomStream,
    RunStream,
    ScanStream,
    SteadyStream,
    next_stream_id,
)


def test_stream_ids_are_unique():
    assert next_stream_id() != next_stream_id()


def test_scan_covers_range_exactly_once(single_disk_ctx, disk_target):
    done = []
    ScanStream(single_disk_ctx, "obj", length=units.mib(1), window=4,
               on_done=done.append).start()
    single_disk_ctx.engine.run()
    assert len(done) == 1
    assert disk_target.completed == units.mib(1) // units.kib(8)
    offsets = sorted(r.logical_offset for r in disk_target.trace)
    assert offsets == list(range(0, units.mib(1), units.kib(8)))


def test_scan_respects_start_offset(single_disk_ctx, disk_target):
    ScanStream(single_disk_ctx, "obj", start=units.mib(2),
               length=units.mib(1), window=2).start()
    single_disk_ctx.engine.run()
    assert min(r.logical_offset for r in disk_target.trace) == units.mib(2)


def test_scan_beyond_object_rejected(single_disk_ctx):
    with pytest.raises(SimulationError):
        ScanStream(single_disk_ctx, "obj", start=units.mib(63),
                   length=units.mib(2))


def test_scan_window_bounds_outstanding(single_disk_ctx, disk_target):
    stream = ScanStream(single_disk_ctx, "obj", length=units.mib(1), window=3)
    stream.start()
    assert stream.outstanding <= 3
    single_disk_ctx.engine.run()
    assert stream.finished


def test_zero_window_rejected(single_disk_ctx):
    with pytest.raises(SimulationError):
        ScanStream(single_disk_ctx, "obj", window=0)


def test_double_start_rejected(single_disk_ctx):
    stream = ScanStream(single_disk_ctx, "obj", length=units.mib(1))
    stream.start()
    with pytest.raises(SimulationError):
        stream.start()


def test_run_stream_issues_exact_request_count(single_disk_ctx, disk_target, rng):
    done = []
    RunStream(single_disk_ctx, "obj", n_requests=50, run_count=8, rng=rng,
              on_done=done.append).start()
    single_disk_ctx.engine.run()
    assert disk_target.completed == 50
    assert done[0].completions == 50


def test_run_stream_produces_sequential_runs(single_disk_ctx, disk_target, rng):
    RunStream(single_disk_ctx, "obj", n_requests=64, run_count=16,
              rng=rng).start()
    single_disk_ctx.engine.run()
    offsets = [r.logical_offset for r in disk_target.trace]
    sequential = sum(
        1 for a, b in zip(offsets, offsets[1:]) if b == a + units.kib(8)
    )
    # 16-long runs: ~15/16 of transitions are sequential.
    assert sequential >= 0.8 * (len(offsets) - 1)


def test_random_stream_is_not_sequential(single_disk_ctx, disk_target, rng):
    RandomStream(single_disk_ctx, "obj", n_requests=100, rng=rng).start()
    single_disk_ctx.engine.run()
    offsets = [r.logical_offset for r in disk_target.trace]
    sequential = sum(
        1 for a, b in zip(offsets, offsets[1:]) if b == a + units.kib(8)
    )
    assert sequential < 10


def test_invalid_run_count_rejected(single_disk_ctx, rng):
    with pytest.raises(SimulationError):
        RunStream(single_disk_ctx, "obj", n_requests=10, run_count=0, rng=rng)


def test_steady_stream_runs_until_stopped(single_disk_ctx, disk_target, rng):
    stream = SteadyStream(single_disk_ctx, "obj", rng=rng)
    stream.start()
    engine = single_disk_ctx.engine
    for _ in range(200):
        if not engine.step():
            break
    assert disk_target.completed > 50
    stream.stop()
    engine.run()
    assert stream.finished


def test_think_time_spaces_requests(single_disk_ctx, disk_target, rng):
    RunStream(single_disk_ctx, "obj", n_requests=10, rng=rng,
              think_s=0.5).start()
    single_disk_ctx.engine.run()
    # 9 think gaps of 0.5s dominate the elapsed time.
    assert single_disk_ctx.engine.now >= 4.5


def test_write_streams_mark_requests(single_disk_ctx, disk_target, rng):
    RandomStream(single_disk_ctx, "obj", n_requests=5, rng=rng,
                 kind="write").start()
    single_disk_ctx.engine.run()
    assert all(r.kind == "write" for r in disk_target.trace)
    assert disk_target.bytes_written == 5 * units.kib(8)
