"""Tests for PlacementMap allocation policies and prefetch credits."""

import pytest

from repro import units
from repro.errors import LayoutError
from repro.storage.mapping import PlacementMap
from repro.storage.disk import DiskDrive
from repro.storage.request import IORequest

MIB = units.MIB


def _small_objects(n=12):
    return {"obj%02d" % i: MIB for i in range(n)}


def _see(objects, m=4):
    return {name: [1.0 / m] * m for name in objects}


def test_first_fit_concentrates_small_objects():
    """One-stripe objects under nominal SEE all land on target 0 with

    the first-fit allocator — the naive-volume-manager behaviour."""
    sizes = _small_objects()
    pmap = PlacementMap(sizes, _see(sizes), [units.gib(1)] * 4,
                        stripe_size=MIB, allocation="first-fit")
    for name in sizes:
        assert pmap.targets_of(name) == [0]


def test_rotate_spreads_small_objects():
    sizes = _small_objects()
    pmap = PlacementMap(sizes, _see(sizes), [units.gib(1)] * 4,
                        stripe_size=MIB, allocation="rotate")
    used = set()
    for name in sizes:
        used.update(pmap.targets_of(name))
    assert len(used) >= 3


def test_rotate_is_deterministic():
    sizes = _small_objects()
    a = PlacementMap(sizes, _see(sizes), [units.gib(1)] * 4,
                     stripe_size=MIB, allocation="rotate")
    b = PlacementMap(sizes, _see(sizes), [units.gib(1)] * 4,
                     stripe_size=MIB, allocation="rotate")
    for name in sizes:
        assert a.targets_of(name) == b.targets_of(name)


def test_policies_agree_for_large_objects():
    """Multi-stripe objects get their exact shares either way."""
    sizes = {"big": 64 * MIB}
    fractions = {"big": [0.25] * 4}
    for allocation in ("first-fit", "rotate"):
        pmap = PlacementMap(sizes, fractions, [units.gib(1)] * 4,
                            stripe_size=MIB, allocation=allocation)
        for j in range(4):
            assert pmap.bytes_on_target("big", j) == 16 * MIB


def test_unknown_policy_rejected():
    with pytest.raises(LayoutError):
        PlacementMap({"a": MIB}, {"a": [1.0]}, [units.gib(1)],
                     allocation="fifo")


class TestPrefetchCredits:
    def _request(self, stream, lba, kind="read"):
        return IORequest(stream_id=stream, kind=kind, lba=lba, size=8192)

    def test_isolated_stream_never_pays_repositioning(self):
        unit = DiskDrive("d", units.gib(1)).units[0]
        unit.service_time(self._request(1, 0))
        for page in range(1, 64):
            cost = unit.service_time(self._request(1, page * 8192))
            assert cost < 1e-3

    def test_interleaved_stream_pays_once_per_chunk(self):
        unit = DiskDrive("d", units.gib(1)).units[0]
        params = unit.params
        unit.service_time(self._request(1, 0))
        expensive = 0
        n = 64
        for page in range(1, n + 1):
            unit.service_time(self._request(2, units.mib(600) + page * 8192))
            if unit.service_time(self._request(1, page * 8192)) > 1e-3:
                expensive += 1
        # ~one repositioning per prefetch chunk's worth of pages.
        pages_per_chunk = params.prefetch_chunk // 8192
        assert expensive == pytest.approx(n / pages_per_chunk, abs=2)

    def test_credit_table_bounded(self):
        unit = DiskDrive("d", units.gib(1)).units[0]
        for stream in range(200):
            base = stream * units.mib(4)
            unit.service_time(self._request(stream, base))
            unit.service_time(self._request(stream + 1000, base + units.mib(2)))
            unit.service_time(self._request(stream, base + 8192))
        assert len(unit._credits) <= 65

    def test_reset_clears_credits(self):
        unit = DiskDrive("d", units.gib(1)).units[0]
        unit.service_time(self._request(1, 0))
        unit.service_time(self._request(2, units.mib(500)))
        unit.service_time(self._request(1, 8192))
        unit.reset()
        assert unit._credits == {}


def test_scaled_stripe_is_scale_independent():
    from repro.experiments.scenarios import scaled_stripe

    assert scaled_stripe(1.0) == units.DEFAULT_STRIPE_SIZE
    assert scaled_stripe(1 / 256) == units.DEFAULT_STRIPE_SIZE