"""Tests for the layout-to-physical placement mapper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.errors import CapacityError, LayoutError
from repro.storage.mapping import PlacementMap

MIB = units.MIB


def _pmap(fractions, size_mib=64, n_targets=None, capacity_mib=512):
    if n_targets is None:
        n_targets = len(fractions)
    return PlacementMap(
        {"obj": size_mib * MIB},
        {"obj": fractions},
        [capacity_mib * MIB] * n_targets,
        stripe_size=1 * MIB,
    )


def test_single_target_layout():
    pmap = _pmap([1.0, 0.0])
    assert pmap.targets_of("obj") == [0]
    assert pmap.bytes_on_target("obj", 0) == 64 * MIB
    assert pmap.bytes_on_target("obj", 1) == 0


def test_even_split_is_even():
    pmap = _pmap([0.5, 0.5])
    assert pmap.bytes_on_target("obj", 0) == 32 * MIB
    assert pmap.bytes_on_target("obj", 1) == 32 * MIB


def test_uneven_split_respects_fractions():
    pmap = _pmap([0.25, 0.75])
    assert pmap.bytes_on_target("obj", 0) == 16 * MIB
    assert pmap.bytes_on_target("obj", 1) == 48 * MIB


def test_locate_round_trips_every_stripe():
    pmap = _pmap([0.5, 0.5])
    seen = set()
    for stripe in range(64):
        target, lba = pmap.locate("obj", stripe * MIB, 8192)
        seen.add((target, lba))
    assert len(seen) == 64  # no two stripes share an address


def test_per_target_addresses_are_contiguous():
    """An LVM allocates each target's share as one physical region, so

    consecutive stripes on the same target must be physically adjacent —
    the property that keeps striped scans sequential per disk."""
    pmap = _pmap([0.5, 0.5])
    per_target = {0: [], 1: []}
    for stripe in range(64):
        target, lba = pmap.locate("obj", stripe * MIB, 0o10000)
        per_target[target].append(lba)
    for addresses in per_target.values():
        deltas = {b - a for a, b in zip(addresses, addresses[1:])}
        assert deltas == {MIB}


def test_stripe_crossing_request_rejected():
    pmap = _pmap([1.0])
    with pytest.raises(LayoutError):
        pmap.locate("obj", MIB - 4096, 8192)


def test_offset_beyond_object_rejected():
    pmap = _pmap([1.0])
    with pytest.raises(LayoutError):
        pmap.locate("obj", 65 * MIB, 8192)


def test_fractions_must_sum_to_one():
    with pytest.raises(LayoutError):
        _pmap([0.5, 0.4])


def test_negative_fraction_rejected():
    with pytest.raises(LayoutError):
        _pmap([1.5, -0.5])


def test_wrong_fraction_count_rejected():
    with pytest.raises(LayoutError):
        PlacementMap({"obj": MIB}, {"obj": [1.0]}, [MIB, MIB])


def test_capacity_overflow_rejected():
    with pytest.raises(CapacityError):
        _pmap([1.0], size_mib=600, capacity_mib=512)


def test_multiple_objects_do_not_overlap():
    pmap = PlacementMap(
        {"a": 8 * MIB, "b": 8 * MIB},
        {"a": [0.5, 0.5], "b": [0.5, 0.5]},
        [512 * MIB] * 2,
        stripe_size=MIB,
    )
    addresses = set()
    for obj in ("a", "b"):
        for stripe in range(8):
            addresses.add(pmap.locate(obj, stripe * MIB, 0))
    assert len(addresses) == 16


def test_small_object_occupies_one_stripe():
    pmap = PlacementMap(
        {"tiny": 100}, {"tiny": [1.0, 0.0]}, [512 * MIB] * 2, stripe_size=MIB
    )
    assert pmap.bytes_on_target("tiny", 0) == MIB


@settings(max_examples=60, deadline=None)
@given(
    weights=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=5).filter(
        lambda w: sum(w) > 0.1
    ),
    n_stripes=st.integers(4, 200),
)
def test_weighted_round_robin_matches_fractions(weights, n_stripes):
    """Property: each target receives within one stripe of its share."""
    total = sum(weights)
    fractions = [w / total for w in weights]
    pmap = PlacementMap(
        {"obj": n_stripes * MIB},
        {"obj": fractions},
        [n_stripes * MIB * 2] * len(fractions),
        stripe_size=MIB,
    )
    for j, fraction in enumerate(fractions):
        expected = fraction * n_stripes
        actual = pmap.bytes_on_target("obj", j) / MIB
        assert abs(actual - expected) <= 1.0


def test_skewed_weights_stay_within_one_stripe():
    """Regression: a smooth round-robin deal without quotas drifts more
    than one stripe below a target's share for skewed weight vectors."""
    weights = [0.875, 0.875, 0.25, 0.0078125, 0.0078125]
    total = sum(weights)
    fractions = [w / total for w in weights]
    n_stripes = 120
    pmap = PlacementMap(
        {"obj": n_stripes * MIB},
        {"obj": fractions},
        [n_stripes * MIB * 2] * len(fractions),
        stripe_size=MIB,
    )
    for j, fraction in enumerate(fractions):
        expected = fraction * n_stripes
        actual = pmap.bytes_on_target("obj", j) / MIB
        assert abs(actual - expected) <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    n_stripes=st.integers(1, 100),
    fractions_seed=st.integers(0, 5),
    offset_page=st.integers(0, 127),
)
def test_locate_always_within_target(n_stripes, fractions_seed, offset_page):
    """Property: every located address falls inside its target."""
    patterns = [
        [1.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [1 / 3, 1 / 3, 1 / 3],
        [0.2, 0.3, 0.5],
        [0.0, 1.0, 0.0],
        [0.9, 0.05, 0.05],
    ]
    fractions = patterns[fractions_seed]
    capacity = (n_stripes + 2) * MIB
    pmap = PlacementMap(
        {"obj": n_stripes * MIB}, {"obj": fractions}, [capacity] * 3,
        stripe_size=MIB,
    )
    offset = min(offset_page * 8192, (n_stripes * MIB) - 8192)
    target, lba = pmap.locate("obj", offset, 8192)
    assert 0 <= target < 3
    assert 0 <= lba < capacity
