"""Tests for the discrete-event simulation core."""

import pytest

from repro.errors import SimulationError
from repro.storage.engine import SimulationEngine


def test_engine_starts_at_time_zero(engine):
    assert engine.now == 0.0
    assert engine.pending == 0


def test_events_run_in_time_order(engine):
    seen = []
    engine.schedule(3.0, seen.append, "c")
    engine.schedule(1.0, seen.append, "a")
    engine.schedule(2.0, seen.append, "b")
    engine.run()
    assert seen == ["a", "b", "c"]


def test_ties_run_in_schedule_order(engine):
    seen = []
    engine.schedule(1.0, seen.append, "first")
    engine.schedule(1.0, seen.append, "second")
    engine.run()
    assert seen == ["first", "second"]


def test_clock_advances_to_event_time(engine):
    times = []
    engine.schedule(2.5, lambda: times.append(engine.now))
    engine.run()
    assert times == [2.5]
    assert engine.now == 2.5


def test_events_can_schedule_more_events(engine):
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            engine.schedule(1.0, chain, n + 1)

    engine.schedule(1.0, chain, 1)
    final = engine.run()
    assert seen == [1, 2, 3]
    assert final == 3.0


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected(engine):
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(1.0, lambda: None)


def test_run_until_stops_early(engine):
    seen = []
    engine.schedule(1.0, seen.append, "early")
    engine.schedule(10.0, seen.append, "late")
    engine.run(until=5.0)
    assert seen == ["early"]
    assert engine.now == 5.0
    assert engine.pending == 1
    engine.run()
    assert seen == ["early", "late"]


def test_step_returns_false_when_empty(engine):
    assert engine.step() is False
    engine.schedule(1.0, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_run_returns_final_time(engine):
    engine.schedule(4.5, lambda: None)
    assert engine.run() == 4.5


def test_zero_delay_event_runs_now(engine):
    engine.schedule(1.0, lambda: engine.schedule(0.0, lambda: None))
    engine.run()
    assert engine.now == 1.0
