"""Tests for the discrete-event simulation core."""

import pytest

from repro.errors import SimulationError
from repro.storage.engine import SimulationEngine


def test_engine_starts_at_time_zero(engine):
    assert engine.now == 0.0
    assert engine.pending == 0


def test_events_run_in_time_order(engine):
    seen = []
    engine.schedule(3.0, seen.append, "c")
    engine.schedule(1.0, seen.append, "a")
    engine.schedule(2.0, seen.append, "b")
    engine.run()
    assert seen == ["a", "b", "c"]


def test_ties_run_in_schedule_order(engine):
    seen = []
    engine.schedule(1.0, seen.append, "first")
    engine.schedule(1.0, seen.append, "second")
    engine.run()
    assert seen == ["first", "second"]


def test_clock_advances_to_event_time(engine):
    times = []
    engine.schedule(2.5, lambda: times.append(engine.now))
    engine.run()
    assert times == [2.5]
    assert engine.now == 2.5


def test_events_can_schedule_more_events(engine):
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            engine.schedule(1.0, chain, n + 1)

    engine.schedule(1.0, chain, 1)
    final = engine.run()
    assert seen == [1, 2, 3]
    assert final == 3.0


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected(engine):
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(1.0, lambda: None)


def test_run_until_stops_early(engine):
    seen = []
    engine.schedule(1.0, seen.append, "early")
    engine.schedule(10.0, seen.append, "late")
    engine.run(until=5.0)
    assert seen == ["early"]
    assert engine.now == 5.0
    assert engine.pending == 1
    engine.run()
    assert seen == ["early", "late"]


def test_step_returns_false_when_empty(engine):
    assert engine.step() is False
    engine.schedule(1.0, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_run_returns_final_time(engine):
    engine.schedule(4.5, lambda: None)
    assert engine.run() == 4.5


def test_zero_delay_event_runs_now(engine):
    engine.schedule(1.0, lambda: engine.schedule(0.0, lambda: None))
    engine.run()
    assert engine.now == 1.0


# ----------------------------------------------------------------------
# Completion observers (the online monitor's attachment point)
# ----------------------------------------------------------------------

def _request(obj="x", on_complete=None):
    from repro.storage.request import IORequest

    return IORequest(stream_id=1, kind="read", lba=0, size=8192, obj=obj,
                     logical_offset=0, on_complete=on_complete)


def _target(engine, trace=None):
    from repro import units
    from repro.storage.disk import DiskDrive
    from repro.storage.target import StorageTarget

    return StorageTarget(DiskDrive("d0", units.mib(64)), engine, trace=trace)


def test_no_observers_by_default(engine):
    assert not engine.has_completion_observers


def test_observer_sees_completions_without_a_trace(engine):
    target = _target(engine)        # no trace configured
    seen = []
    engine.add_completion_observer(seen.append)
    target.submit(_request())
    engine.run()
    assert len(seen) == 1
    assert seen[0].obj == "x"
    assert seen[0].target == "d0"


def test_observers_and_trace_see_the_same_record(engine):
    trace = []
    target = _target(engine, trace=trace)
    seen = []
    engine.add_completion_observer(seen.append)
    target.submit(_request())
    engine.run()
    assert seen == trace


def test_multiple_observers_all_notified(engine):
    target = _target(engine)
    first, second = [], []
    engine.add_completion_observer(first.append)
    engine.add_completion_observer(second.append)
    target.submit(_request())
    engine.run()
    assert len(first) == len(second) == 1


def test_removed_observer_stops_seeing(engine):
    target = _target(engine)
    seen = []
    engine.add_completion_observer(seen.append)
    engine.remove_completion_observer(seen.append)
    assert not engine.has_completion_observers
    target.submit(_request())
    engine.run()
    assert seen == []


def test_remove_unknown_observer_is_a_noop(engine):
    engine.remove_completion_observer(lambda record: None)
    assert not engine.has_completion_observers
