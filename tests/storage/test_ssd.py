"""Tests for the SSD model."""

import pytest

from repro import units
from repro.storage.request import IORequest
from repro.storage.ssd import SolidStateDrive, SsdParameters


def _request(lba, kind="read", size=8192, stream=1):
    return IORequest(stream_id=stream, kind=kind, lba=lba, size=size)


@pytest.fixture
def unit():
    return SolidStateDrive("ssd", units.gib(8)).units[0]


def test_random_equals_sequential(unit):
    sequential = unit.service_time(_request(0))
    unit2 = SolidStateDrive("ssd2", units.gib(8)).units[0]
    random = unit2.service_time(_request(units.gib(4)))
    assert sequential == pytest.approx(random)


def test_reads_cheaper_than_writes(unit):
    read = unit.service_time(_request(0, "read"))
    write = unit.service_time(_request(0, "write"))
    assert read < write


def test_cost_flat_in_active_streams(unit):
    solo = unit.service_time(_request(0), active_streams=1)
    busy = unit.service_time(_request(8192), active_streams=20)
    assert solo == pytest.approx(busy)


def test_channel_parallelism_exposed():
    params = SsdParameters(channels=6)
    ssd = SolidStateDrive("ssd", units.gib(8), params)
    assert ssd.units[0].parallelism == 6


def test_service_time_includes_transfer(unit):
    small = unit.service_time(_request(0, size=units.kib(8)))
    large = unit.service_time(_request(8192, size=units.kib(256)))
    assert large > small


def test_ssd_is_much_faster_than_disk_for_random():
    from repro.storage.disk import DiskDrive

    ssd_cost = SolidStateDrive("s", units.gib(8)).units[0].service_time(
        _request(units.gib(4))
    )
    disk_cost = DiskDrive("d", units.gib(8)).units[0].service_time(
        _request(units.gib(4))
    )
    assert ssd_cost < disk_cost / 10
