"""Tests for the RAID1 and RAID5 device models."""

import pytest

from repro import units
from repro.storage.raid import Raid1Mirror, Raid5Group
from repro.storage.request import IORequest


def _request(lba, kind="read", size=8192, stream=1):
    return IORequest(stream_id=stream, kind=kind, lba=lba, size=size)


class TestRaid1:
    def test_single_unit_with_two_way_parallelism(self):
        raid = Raid1Mirror("m", units.gib(1))
        assert len(raid.units) == 1
        assert raid.units[0].parallelism == 2

    def test_reads_alternate_between_members(self):
        unit = Raid1Mirror("m", units.gib(1)).units[0]
        unit.service_time(_request(units.mib(100)))
        unit.service_time(_request(units.mib(500)))
        # Each member served one read: their heads differ.
        heads = [member.head for member in unit._members]
        assert heads[0] != heads[1]

    def test_writes_touch_both_members(self):
        unit = Raid1Mirror("m", units.gib(1)).units[0]
        unit.service_time(_request(units.mib(100), kind="write"))
        heads = {member.head for member in unit._members}
        assert heads == {units.mib(100) + 8192}

    def test_write_cost_at_least_read_cost(self):
        read_unit = Raid1Mirror("m1", units.gib(1)).units[0]
        write_unit = Raid1Mirror("m2", units.gib(1)).units[0]
        read_cost = read_unit.service_time(_request(units.mib(100)))
        write_cost = write_unit.service_time(
            _request(units.mib(100), kind="write")
        )
        assert write_cost >= read_cost

    def test_reset_clears_members(self):
        unit = Raid1Mirror("m", units.gib(1)).units[0]
        unit.service_time(_request(units.mib(100)))
        unit.reset()
        assert all(member.head == 0 for member in unit._members)


class TestRaid5:
    def test_needs_three_members(self):
        with pytest.raises(ValueError):
            Raid5Group("r", units.gib(1), 2)

    def test_member_capacity_accounts_for_parity(self):
        raid = Raid5Group("r", units.gib(2), 4)
        # Usable 2 GiB over 3 data-members' worth: each member holds
        # a third of usable capacity.
        assert raid.units[0].capacity == units.gib(2) // 3

    def test_round_robin_routing(self):
        raid = Raid5Group("r", units.gib(2), 4, stripe_unit=units.kib(64))
        su = raid.stripe_unit
        assert raid.route(0)[0] == 0
        assert raid.route(su)[0] == 1
        assert raid.route(4 * su)[0] == 0

    def test_small_write_penalty(self):
        raid = Raid5Group("r", units.gib(2), 4)
        read_cost = raid.units[0].service_time(_request(units.mib(10)))
        raid.units[0].reset()
        write_cost = raid.units[0].service_time(
            _request(units.mib(10), kind="write")
        )
        assert write_cost > 3 * read_cost

    def test_reads_cost_like_plain_disk(self):
        from repro.storage.disk import DiskUnit, ENTERPRISE_15K

        raid = Raid5Group("r", units.gib(2), 4)
        plain = DiskUnit(raid.units[0].capacity, ENTERPRISE_15K)
        assert raid.units[0].service_time(
            _request(units.mib(10))
        ) == pytest.approx(plain.service_time(_request(units.mib(10))))


def test_device_specs_build_new_raid_kinds():
    from repro.experiments.scenarios import DeviceSpec

    raid1 = DeviceSpec("m", "raid1", units.gib(1)).build()
    raid5 = DeviceSpec("r", "raid5", units.gib(2), n_members=4).build()
    assert isinstance(raid1, Raid1Mirror)
    assert isinstance(raid5, Raid5Group)