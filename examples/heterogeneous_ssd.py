"""Heterogeneous targets: four disks plus a small SSD.

Demonstrates the advisor exploiting device heterogeneity (the paper's
Figure 18): even an SSD far too small to hold the database earns a
large speedup, because the advisor steers the random-access objects to
it while the sequential giants stay on the spindles.  Compare against
SEE, which is oblivious to the disparity.

Run with::

    python examples/heterogeneous_ssd.py
"""

from repro.core import LayoutAdvisor
from repro.db import tpch_database
from repro.db.workloads import OLAP8_63
from repro.experiments.reporting import format_layout
from repro.experiments.runner import (
    build_problem,
    fit_workloads_from_run,
    measure_olap,
    see_fractions,
)
from repro.experiments.scenarios import scaled_stripe, disks_plus_ssd

SCALE = 1 / 64
SSD_GIB = 4  # far smaller than the 9.4 GB database
STRIPE = scaled_stripe(SCALE)


def main():
    database = tpch_database(SCALE)
    specs = disks_plus_ssd(SCALE, ssd_capacity_gib=SSD_GIB)
    profiles = OLAP8_63.profiles()

    print("targets: %s" % ", ".join(
        "%s (%.0f MiB)" % (s.name, s.capacity / (1 << 20)) for s in specs
    ))
    print("database: %.0f MiB in %d objects"
          % (database.total_size / (1 << 20), len(database)))
    print()

    see_run = measure_olap(
        database, profiles, see_fractions(database, len(specs)), specs,
        concurrency=OLAP8_63.concurrency, collect_trace=True,
        stripe_size=STRIPE,
    )
    print("SEE elapsed: %.0f simulated seconds" % see_run.elapsed_s)

    fitted = fit_workloads_from_run(see_run, database)
    problem = build_problem(database, specs, fitted, stripe_size=STRIPE)
    result = LayoutAdvisor(problem, regular=True).recommend()

    print()
    print("advisor layout (8 hottest objects):")
    print(format_layout(result.recommended, fitted, top=8))
    print()

    on_ssd = [
        name for name in result.recommended.object_names
        if result.recommended.fraction(name, "ssd") > 0
    ]
    print("objects using the SSD: %s" % ", ".join(sorted(on_ssd)))

    optimized = measure_olap(
        database, profiles, result.recommended.fractions_by_name(), specs,
        concurrency=OLAP8_63.concurrency, stripe_size=STRIPE,
    )
    print()
    print("optimized elapsed: %.0f simulated seconds" % optimized.elapsed_s)
    print("speedup vs SEE: %.2fx (paper, 4 GB SSD: 1.42x)"
          % (see_run.elapsed_s / optimized.elapsed_s))


if __name__ == "__main__":
    main()
