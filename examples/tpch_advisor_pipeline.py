"""Full pipeline on TPC-H: trace, fit, calibrate, advise, measure.

The complete methodology of the paper on the simulated testbed:

1. run OLAP1-63 under the stripe-everything-everywhere layout and
   record the I/O trace (the "operational system" observation),
2. fit a Rome-style workload description per object from the trace,
3. calibrate cost models for the disk targets,
4. ask the layout advisor for an optimized regular layout,
5. re-run the workload under the recommended layout and report the
   measured speedup (the paper's Figure 11 reports 1.28x for this
   scenario at full scale).

Runs in about half a minute at the default 1/128 scale.

Run with::

    python examples/tpch_advisor_pipeline.py [scale_denominator]
"""

import sys

from repro.core import LayoutAdvisor
from repro.db import tpch_database
from repro.db.workloads import OLAP1_63
from repro.experiments.reporting import format_layout
from repro.experiments.runner import (
    build_problem,
    fit_workloads_from_run,
    measure_olap,
    see_fractions,
)
from repro.experiments.scenarios import scaled_stripe, four_disks


def main(scale_denominator=128):
    scale = 1.0 / scale_denominator
    stripe = scaled_stripe(scale)
    database = tpch_database(scale)
    specs = four_disks(scale)
    profiles = OLAP1_63.profiles()

    print("1. running OLAP1-63 under SEE (tracing)...")
    see_run = measure_olap(
        database, profiles, see_fractions(database, len(specs)), specs,
        concurrency=OLAP1_63.concurrency, collect_trace=True,
        stripe_size=stripe,
    )
    print("   SEE elapsed: %.0f simulated seconds" % see_run.elapsed_s)

    print("2. fitting workload descriptions from the trace...")
    fitted = fit_workloads_from_run(see_run, database)
    hottest = sorted(fitted, key=lambda w: -w.total_rate)[:5]
    for spec in hottest:
        print("   %-18s %7.1f req/s  run count %6.1f"
              % (spec.name, spec.total_rate, spec.run_count))

    print("3. calibrating target cost models (cached after first run)...")
    problem = build_problem(database, specs, fitted, stripe_size=stripe)

    print("4. running the layout advisor...")
    result = LayoutAdvisor(problem, regular=True).recommend()
    print("   solver %.1fs, regularization %.1fs"
          % (result.solver_time_s, result.regularization_time_s))
    print()
    print(format_layout(result.recommended, fitted, top=8))
    print()

    print("5. measuring the recommended layout...")
    optimized = measure_olap(
        database, profiles, result.recommended.fractions_by_name(), specs,
        concurrency=OLAP1_63.concurrency, stripe_size=stripe,
    )
    print("   optimized elapsed: %.0f simulated seconds"
          % optimized.elapsed_s)
    print()
    print("speedup vs SEE: %.2fx (paper: 1.28x)"
          % (see_run.elapsed_s / optimized.elapsed_s))


if __name__ == "__main__":
    denominator = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    main(denominator)
