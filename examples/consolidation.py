"""Consolidation: OLAP and OLTP database instances sharing storage.

Reproduces the paper's §6.3 scenario in miniature: a TPC-H instance
running OLAP1-21 and a TPC-C instance running nine OLTP terminals share
the same four disks (40 objects total).  The advisor must improve both
the OLAP elapsed time *and* the OLTP throughput at once, chiefly by
separating the TPC-H LINEITEM scans from the TPC-C random traffic.

Run with::

    python examples/consolidation.py
"""

from repro.core import LayoutAdvisor
from repro.db import tpch_database
from repro.db.tpcc import sample_transaction, tpcc_database
from repro.db.workloads import OLAP1_21
from repro.experiments.reporting import format_layout
from repro.experiments.runner import (
    build_problem,
    fit_workloads_from_run,
    measure_consolidation,
    see_fractions,
)
from repro.experiments.scenarios import scaled_stripe, four_disks

SCALE = 1 / 128
STRIPE = scaled_stripe(SCALE)


def main():
    tpch = tpch_database(SCALE)
    tpcc = tpcc_database(SCALE)
    database = tpch.merged_with(tpcc, prefix_self="h.", prefix_other="c.")
    specs = four_disks(SCALE)

    olap_profiles = OLAP1_21.profiles(
        rename={name: "h." + name for name in tpch.object_names}
    )
    tpcc_rename = {name: "c." + name for name in tpcc.object_names}

    def sampler(rng):
        return sample_transaction(rng).renamed(tpcc_rename)

    print("consolidated catalog: %d objects, %.0f MiB"
          % (len(database), database.total_size / (1 << 20)))

    see_run = measure_consolidation(
        database, olap_profiles, sampler,
        see_fractions(database, len(specs)), specs,
        olap_concurrency=1, terminals=9, collect_trace=True,
        stripe_size=STRIPE,
    )
    print("SEE: OLAP %.0f s, OLTP %.0f tpm"
          % (see_run.elapsed_s, see_run.tpm))

    fitted = fit_workloads_from_run(see_run, database)
    problem = build_problem(database, specs, fitted, stripe_size=STRIPE)
    result = LayoutAdvisor(problem, regular=True).recommend()

    print()
    print("advisor layout (12 hottest objects, h = TPC-H, c = TPC-C):")
    print(format_layout(result.recommended, fitted, top=12))
    print()

    optimized = measure_consolidation(
        database, olap_profiles, sampler,
        result.recommended.fractions_by_name(), specs,
        olap_concurrency=1, terminals=9, stripe_size=STRIPE,
    )
    print("optimized: OLAP %.0f s, OLTP %.0f tpm"
          % (optimized.elapsed_s, optimized.tpm))
    print()
    print("OLAP improvement: %.2fx (paper: 1.43x)"
          % (see_run.elapsed_s / optimized.elapsed_s))
    print("OLTP improvement: %.2fx (paper: 1.18x)"
          % (optimized.tpm / see_run.tpm))


if __name__ == "__main__":
    main()
