"""From characterization to a migration plan.

The DBA-facing workflow around the advisor: characterize the observed
I/O (the report a Rubicon-style tool produces), get a recommendation,
and — before acting — see exactly how much data would move, where, and
roughly how long the migration would take.

Run with::

    python examples/migration_plan.py
"""

from repro.core import LayoutAdvisor, migration_cost_seconds, plan_migration
from repro.db import tpch_database
from repro.db.workloads import OLAP1_63
from repro.experiments.characterize import characterize
from repro.experiments.runner import (
    build_problem,
    fit_workloads_from_run,
    measure_olap,
    see_fractions,
)
from repro.experiments.scenarios import four_disks, scaled_stripe

SCALE = 1 / 128
STRIPE = scaled_stripe(SCALE)


def main():
    database = tpch_database(SCALE)
    specs = four_disks(SCALE)
    profiles = OLAP1_63.profiles()

    see_run = measure_olap(
        database, profiles, see_fractions(database, len(specs)), specs,
        concurrency=OLAP1_63.concurrency, collect_trace=True,
        stripe_size=STRIPE,
    )

    print(characterize(see_run.trace, duration=see_run.elapsed_s, top=6))
    print()

    fitted = fit_workloads_from_run(see_run, database)
    problem = build_problem(database, specs, fitted, stripe_size=STRIPE)
    result = LayoutAdvisor(problem, regular=True).recommend()

    sizes = database.sizes()
    plan = plan_migration(problem.see_layout(), result.recommended, sizes)
    print(plan.describe(top=8))
    print()
    print("moved fraction of database: %.0f%%"
          % (100 * plan.moved_fraction(database.total_size)))
    print("migration time lower bound: %.1f s at 80 MiB/s per target"
          % migration_cost_seconds(plan))
    print()
    print("estimated max utilization: SEE %.2f -> optimized %.2f"
          % (result.max_utilization("see"),
             result.max_utilization("regular")))


if __name__ == "__main__":
    main()
