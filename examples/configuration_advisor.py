"""Configuration advisor: choose RAID groupings *and* a layout.

The paper's §8 future work: "instead of taking a set of storage targets
as input, the advisor would take a description of the available
unconfigured storage resources ... recommend how to configure specific
storage targets, e.g. RAID groups, from the available resources, as
well as how to lay out objects onto the targets."

Given four raw disks and a workload with two interfering sequential
tables plus a random-access index, the configuration advisor evaluates
every RAID0 grouping ([4], [3,1], [2,2], [2,1,1], [1,1,1,1]) with the
layout advisor as the oracle and reports the winner.

Run with::

    python examples/configuration_advisor.py
"""

from repro.extensions.config_advisor import ConfigurationAdvisor
from repro.models.analytic import AnalyticDiskCostModel
from repro.models.target_model import TargetModel
from repro.units import gib, mib
from repro.workload.spec import ObjectWorkload


def model_factory(name, members):
    return TargetModel(
        name=name,
        read_model=AnalyticDiskCostModel(n_members=members, kind="read"),
        write_model=AnalyticDiskCostModel(n_members=members, kind="write"),
    )


def main():
    workloads = [
        ObjectWorkload("lineitem", read_rate=900, run_count=64,
                       overlap={"orders": 0.9}),
        ObjectWorkload("orders", read_rate=350, run_count=64,
                       overlap={"lineitem": 0.9}),
        ObjectWorkload("hot_index", read_rate=250, run_count=1),
        ObjectWorkload("temp", read_rate=60, write_rate=120, run_count=32),
    ]
    sizes = {
        "lineitem": gib(5),
        "orders": gib(1),
        "hot_index": mib(700),
        "temp": gib(1),
    }

    advisor = ConfigurationAdvisor(
        object_sizes=sizes,
        workloads=workloads,
        disk_capacity=gib(18),
        n_disks=4,
        target_model_factory=model_factory,
    )
    result = advisor.recommend()

    print("candidate configurations (disk counts per RAID0 group):")
    for grouping, objective in sorted(result.candidates,
                                      key=lambda c: c[1]):
        marker = "  <= chosen" if grouping == result.grouping else ""
        print("  %-12s max utilization %.4f%s"
              % (grouping, objective, marker))
    print()
    print("recommended layout on the chosen configuration:")
    print(result.advisor_result.recommended.describe())


if __name__ == "__main__":
    main()
