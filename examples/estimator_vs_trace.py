"""Trace-based vs. estimator-based workload descriptions.

The paper's §5.1 names two input paths for the advisor: fitting
workload descriptions from traces of the running system (their primary
path, via Rubicon) or deriving them directly from knowledge of the
database workload with a storage workload estimator [19], which "may be
less accurate".  This example runs both paths on the same scenario and
compares the layouts and the measured workload times they lead to.

Run with::

    python examples/estimator_vs_trace.py
"""

from repro.core import LayoutAdvisor
from repro.db import tpch_database
from repro.db.workloads import OLAP1_63
from repro.experiments.reporting import format_layout
from repro.experiments.runner import (
    build_problem,
    fit_workloads_from_run,
    measure_olap,
    see_fractions,
)
from repro.experiments.scenarios import four_disks, scaled_stripe
from repro.workload.estimator import estimate_workloads

SCALE = 1 / 128
STRIPE = scaled_stripe(SCALE)


def advise_and_measure(database, specs, profiles, workloads, label):
    problem = build_problem(database, specs, workloads, stripe_size=STRIPE)
    result = LayoutAdvisor(problem, regular=True).recommend()
    measured = measure_olap(
        database, profiles, result.recommended.fractions_by_name(), specs,
        concurrency=OLAP1_63.concurrency, stripe_size=STRIPE,
    )
    print("%s layout (6 hottest):" % label)
    print(format_layout(result.recommended, workloads, top=6))
    print("%s measured time: %.0f simulated seconds\n" % (label,
                                                          measured.elapsed_s))
    return measured.elapsed_s


def main():
    database = tpch_database(SCALE)
    specs = four_disks(SCALE)
    profiles = OLAP1_63.profiles()

    print("running SEE once (the trace-based path needs a trace)...")
    see_run = measure_olap(
        database, profiles, see_fractions(database, len(specs)), specs,
        concurrency=OLAP1_63.concurrency, collect_trace=True,
        stripe_size=STRIPE,
    )
    print("SEE: %.0f simulated seconds\n" % see_run.elapsed_s)

    fitted = fit_workloads_from_run(see_run, database)
    traced_time = advise_and_measure(database, specs, profiles, fitted,
                                     "trace-based")

    estimated = estimate_workloads(database, profiles,
                                   concurrency=OLAP1_63.concurrency)
    estimated_time = advise_and_measure(database, specs, profiles, estimated,
                                        "estimator-based")

    print("speedup vs SEE:  trace-based %.2fx,  estimator-based %.2fx"
          % (see_run.elapsed_s / traced_time,
             see_run.elapsed_s / estimated_time))
    print("(the paper expects the estimator path to be usable but "
          "somewhat less accurate)")


if __name__ == "__main__":
    main()
