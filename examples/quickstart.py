"""Quickstart: recommend a layout for a handful of database objects.

Uses the fast analytic cost models (no calibration), so it runs in a
second or two.  Three objects — a large sequential-scan table, a
medium table that is usually accessed together with it, and a small
random-access object — go onto four identical disks.

Run with::

    python examples/quickstart.py
"""

from repro import LayoutAdvisor, LayoutProblem, ObjectWorkload, TargetSpec
from repro.models.analytic import analytic_disk_target_model
from repro.units import gib, mib


def main():
    # Four identical 18 GiB disk targets with analytic cost models.
    targets = [
        TargetSpec(
            name="disk%d" % j,
            capacity=gib(18),
            model=analytic_disk_target_model("disk%d" % j),
        )
        for j in range(4)
    ]

    # Rome-style workload descriptions: request rates, sequentiality
    # (run count), and pairwise temporal overlap.
    workloads = [
        ObjectWorkload("lineitem", read_rate=800, run_count=64,
                       overlap={"orders": 0.9, "hot_index": 0.3}),
        ObjectWorkload("orders", read_rate=300, run_count=64,
                       overlap={"lineitem": 0.9}),
        ObjectWorkload("hot_index", read_rate=150, run_count=1,
                       overlap={"lineitem": 0.3}),
    ]

    problem = LayoutProblem(
        object_sizes={"lineitem": gib(5), "orders": gib(1),
                      "hot_index": mib(700)},
        targets=targets,
        workloads=workloads,
    )

    result = LayoutAdvisor(problem, regular=True).recommend()

    print("Recommended layout (regular):")
    print(result.recommended.describe())
    print()
    for stage in ("see", "initial", "solver", "regular"):
        utilization = result.utilizations[stage]
        print("max utilization after %-8s %.4f" % (stage, utilization.max()))
    print()
    print("The two sequential, co-accessed tables end up on disjoint "
          "target sets; the")
    print("random-access index is placed to balance the remaining load.")


if __name__ == "__main__":
    main()
