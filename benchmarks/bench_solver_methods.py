"""Solver portfolio comparison (paper §4.1 / §7).

The paper solves the layout NLP with MINOS and sketches randomized
search (DAD-style) as an alternative.  This bench compares our three
methods — SLSQP (the NLP path), block-coordinate descent, and simulated
annealing — on the real OLAP8-63 problem: solution quality (max
estimated utilization) and wall-clock time.
"""

import time

from benchmarks.conftest import STRIPE, report
from repro.core import initial_layout, solve
from repro.db.workloads import OLAP8_63
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_problem
from repro.experiments.scenarios import four_disks


def test_solver_method_comparison(benchmark, lab):
    def run():
        database = lab.tpch()
        specs = four_disks(lab.scale)
        fitted = lab.fitted(
            "OLAP8-63/1-1-1-1", database, lab.olap_profiles(OLAP8_63),
            specs, concurrency=OLAP8_63.concurrency,
        )
        problem = build_problem(database, specs, fitted,
                                stripe_size=STRIPE)
        rows = []
        see_value = problem.evaluator().objective(
            problem.see_layout().matrix
        )
        for method in ("slsqp", "coordinate", "anneal"):
            started = time.perf_counter()
            result = solve(problem, initial=initial_layout(problem),
                           method=method, seed=4)
            rows.append({
                "method": method,
                "objective": result.objective,
                "seconds": time.perf_counter() - started,
            })
        return rows, see_value

    rows, see_value = benchmark.pedantic(run, rounds=1, iterations=1)

    report("solver_methods", format_table(
        ["Method", "max utilization", "solve time (s)"],
        [[r["method"], "%.4f" % r["objective"], "%.2f" % r["seconds"]]
         for r in rows] + [["(SEE reference)", "%.4f" % see_value, ""]],
        title="Solver comparison — OLAP8-63 problem (N=20, M=4)",
    ))

    # Every method must at least match SEE.
    for row in rows:
        assert row["objective"] <= see_value * 1.001, row["method"]
    # The portfolio keeps methods within a reasonable band of each other.
    objectives = [r["objective"] for r in rows]
    assert max(objectives) <= min(objectives) * 2.0
