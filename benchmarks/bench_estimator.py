"""Estimator-based vs. trace-based advising (paper §5.1, ref [19]).

The paper's alternative input path: derive workload descriptions
directly from workload knowledge instead of traces; "the resulting
descriptions may be less accurate than those obtained using the
trace-based method".  This bench quantifies that on OLAP1-63: both
paths must beat SEE, and the trace-based path should be at least
roughly as good as the estimator-based one.
"""

from benchmarks.conftest import STRIPE, report
from repro.core import LayoutAdvisor
from repro.db.workloads import OLAP1_63
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_problem
from repro.experiments.scenarios import four_disks
from repro.workload.estimator import estimate_workloads


def test_estimator_vs_trace_advising(benchmark, lab):
    def run():
        database = lab.tpch()
        specs = four_disks(lab.scale)
        profiles = lab.olap_profiles(OLAP1_63)
        key = "OLAP1-63/1-1-1-1"

        see = lab.traced_see(key, database, profiles, specs,
                             concurrency=OLAP1_63.concurrency)
        traced_advice = lab.advised(key, database, profiles, specs,
                                    concurrency=OLAP1_63.concurrency)
        traced_time = lab.measure(
            database, profiles,
            traced_advice.recommended.fractions_by_name(), specs,
            concurrency=OLAP1_63.concurrency, name="trace-based",
        ).elapsed_s

        estimated = estimate_workloads(
            database, profiles, concurrency=OLAP1_63.concurrency
        )
        problem = build_problem(database, specs, estimated,
                                stripe_size=STRIPE)
        estimator_advice = LayoutAdvisor(problem, regular=True).recommend()
        estimator_time = lab.measure(
            database, profiles,
            estimator_advice.recommended.fractions_by_name(), specs,
            concurrency=OLAP1_63.concurrency, name="estimator-based",
        ).elapsed_s

        return see.elapsed_s, traced_time, estimator_time

    see_time, traced_time, estimator_time = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    report("estimator_vs_trace", format_table(
        ["Input path", "Elapsed (sim s)", "Speedup vs SEE"],
        [
            ["SEE baseline", "%.0f" % see_time, "1.00x"],
            ["trace-based (Rubicon path)", "%.0f" % traced_time,
             "%.2fx" % (see_time / traced_time)],
            ["estimator-based (ref [19] path)", "%.0f" % estimator_time,
             "%.2fx" % (see_time / estimator_time)],
        ],
        title="Workload input paths — OLAP1-63, four disks",
    ))

    # Both input paths beat SEE...
    assert traced_time < see_time
    assert estimator_time < see_time
    # ...and the estimator path is not wildly worse than the traced one
    # (the paper: "may be less accurate", not unusable).
    assert estimator_time <= traced_time * 1.4
