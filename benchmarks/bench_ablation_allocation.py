"""Ablation: SEE's sensitivity to the volume allocator's tie-breaking.

"Stripe everything everywhere" sounds allocator-independent, but
objects smaller than a stripe land whole on *some* target, and which
one depends on the allocator.  ``first-fit`` (how naive volume managers
allocate, and this library's default) piles the many small catalog
objects onto the low-numbered targets; ``rotate`` emulates an idealized
allocator that spreads them.  The workload-aware advisor places small
objects deliberately, so its recommendation is insensitive to the
allocator — one more robustness argument for optimization over the SEE
rule of thumb.
"""

from benchmarks.conftest import report
from repro import units
from repro.db.engine import _build_run, OlapDriver
from repro.db.workloads import OLAP1_63
from repro.experiments.reporting import format_table
from repro.experiments.runner import see_fractions
from repro.experiments.scenarios import four_disks
from repro.storage.mapping import PlacementMap
from repro.storage.streams import SimContext
from repro.storage.target import StorageTarget
from repro.storage.engine import SimulationEngine


def _run_with_allocation(lab, fractions, allocation):
    database = lab.tpch()
    specs = four_disks(lab.scale)
    engine = SimulationEngine()
    targets = [StorageTarget(spec.build(), engine=engine)
               for spec in specs]
    placement = PlacementMap(
        database.sizes(), fractions, [t.capacity for t in targets],
        allocation=allocation,
    )
    ctx = SimContext(engine, placement, targets)
    driver = OlapDriver(ctx, database, lab.olap_profiles(OLAP1_63),
                        concurrency=1, seed=1)
    driver.start()
    engine.run()
    utilizations = sorted(
        (t.utilization(engine.now) for t in targets), reverse=True
    )
    return engine.now, utilizations


def test_ablation_allocation_policy(benchmark, lab):
    def run():
        database = lab.tpch()
        see = see_fractions(database, 4)
        out = {}
        for allocation in ("first-fit", "rotate"):
            elapsed, utilizations = _run_with_allocation(lab, see,
                                                         allocation)
            out[allocation] = (elapsed, utilizations)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    report("ablation_allocation", format_table(
        ["Allocator", "SEE elapsed (s)", "busiest disk", "idlest disk"],
        [
            [name, "%.0f" % elapsed, "%.2f" % utilizations[0],
             "%.2f" % utilizations[-1]]
            for name, (elapsed, utilizations) in results.items()
        ],
        title="Ablation — SEE under different allocator tie-breaking "
              "(OLAP1-63)",
    ))

    first_fit_elapsed, first_fit_util = results["first-fit"]
    rotate_elapsed, rotate_util = results["rotate"]
    # First-fit SEE is more imbalanced than rotated SEE...
    assert (first_fit_util[0] - first_fit_util[-1]) >= \
        (rotate_util[0] - rotate_util[-1]) - 0.02
    # ...and at least as slow.
    assert first_fit_elapsed >= rotate_elapsed * 0.98