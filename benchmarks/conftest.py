"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper's
evaluation (Section 6).  The session-scoped :class:`Lab` fixture caches
the expensive shared artifacts — traced SEE runs, fitted workload
descriptions, calibrated cost models, and advisor recommendations — so
figures that share a workload do not recompute them.

Every benchmark writes its reproduced table to
``benchmarks/results/<name>.txt`` and the terminal summary hook prints
all of them at the end of the run, so the paper-shaped output lands in
the captured benchmark log.
"""

import os

import pytest

from repro.core import LayoutAdvisor
from repro.db import tpch_database
from repro.db.tpcc import sample_transaction, tpcc_database
from repro.db.workloads import OLAP1_21, OLAP1_63, OLAP8_63
from repro.experiments.scenarios import scaled_stripe
from repro.experiments.runner import (
    build_problem,
    fit_workloads_from_run,
    measure_consolidation,
    measure_olap,
    see_fractions,
)

#: All experiments run the paper's 9.4 GB / 9.1 GB databases scaled by
#: this factor so a full figure reproduces in seconds to minutes.
SCALE = 1 / 64

#: LVM stripe size matched to the scale (see scenarios.scaled_stripe).
STRIPE = scaled_stripe(SCALE)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_REPORTS = []


def pytest_addoption(parser):
    parser.addoption(
        "--scenario", default="default", metavar="NAME_OR_FILE",
        help="scenario for bench_online_drift (library name or YAML "
             "path; 'default' aliases the classic OLTP -> scan drift)",
    )


def report(name, text):
    """Persist one figure's reproduction and queue it for the summary."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    _REPORTS.append((name, text))


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction output")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line("=== %s ===" % name)
        for line in text.splitlines():
            terminalreporter.write_line(line)


class Lab:
    """Cached pipeline pieces shared by all benchmarks."""

    scale = SCALE

    def __init__(self):
        self._cache = {}

    # ------------------------------------------------------------------
    # Catalogs and workloads
    # ------------------------------------------------------------------

    def tpch(self):
        return self._memo("tpch", lambda: tpch_database(self.scale))

    def consolidated(self):
        """TPC-H + TPC-C merged, objects tagged (h)/(c) as in Fig. 16."""
        def build():
            return tpch_database(self.scale).merged_with(
                tpcc_database(self.scale), prefix_self="h.", prefix_other="c."
            )
        return self._memo("consolidated", build)

    def olap_profiles(self, workload, rename=None):
        return workload.profiles(rename=rename)

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def traced_see(self, key, database, profiles, specs, concurrency=1):
        """SEE run with tracing (the 'operational system' observation)."""
        def run():
            return measure_olap(
                database, profiles, see_fractions(database, len(specs)),
                specs, concurrency=concurrency, seed=1, collect_trace=True,
                name="see", stripe_size=STRIPE,
            )
        return self._memo(("traced_see", key), run)

    def fitted(self, key, database, profiles, specs, concurrency=1):
        def run():
            traced = self.traced_see(key, database, profiles, specs,
                                     concurrency)
            return fit_workloads_from_run(traced, database)
        return self._memo(("fitted", key), run)

    def advised(self, key, database, profiles, specs, concurrency=1,
                restarts=1):
        """Fit + calibrate + advise; returns the AdvisorResult."""
        def run():
            workloads = self.fitted(key, database, profiles, specs,
                                    concurrency)
            problem = build_problem(database, specs, workloads,
                                    stripe_size=STRIPE)
            return LayoutAdvisor(problem, regular=True,
                                 restarts=restarts).recommend()
        return self._memo(("advised", key), run)

    def measure(self, database, profiles, fractions, specs, concurrency=1,
                name="run"):
        return measure_olap(database, profiles, fractions, specs,
                            concurrency=concurrency, seed=1, name=name,
                            stripe_size=STRIPE)

    def traced_consolidation_see(self, specs):
        def run():
            database = self.consolidated()
            profiles = self.olap_profiles(
                OLAP1_21, rename={o: "h." + o
                                  for o in tpch_database().object_names}
            )
            return measure_consolidation(
                database, profiles, self._tpcc_sampler(),
                see_fractions(database, len(specs)), specs,
                olap_concurrency=1, terminals=9, seed=1, collect_trace=True,
                name="see", stripe_size=STRIPE,
            )
        return self._memo("traced_consolidation_see", run)

    def _tpcc_sampler(self):
        def sampler(rng):
            return sample_transaction(rng).renamed(self._tpcc_rename())
        return sampler

    def _tpcc_rename(self):
        return {o: "c." + o for o in tpcc_database().object_names}

    def fitted_consolidation(self, specs):
        def run():
            traced = self.traced_consolidation_see(specs)
            return fit_workloads_from_run(traced, self.consolidated())
        return self._memo("fitted_consolidation", run)

    def advised_consolidation(self, specs):
        def run():
            workloads = self.fitted_consolidation(specs)
            problem = build_problem(self.consolidated(), specs, workloads,
                                    stripe_size=STRIPE)
            return LayoutAdvisor(problem, regular=True).recommend()
        return self._memo("advised_consolidation", run)

    def measure_consolidated(self, fractions, specs, name="run"):
        database = self.consolidated()
        profiles = self.olap_profiles(
            OLAP1_21, rename={o: "h." + o
                              for o in tpch_database().object_names}
        )
        return measure_consolidation(
            database, profiles, self._tpcc_sampler(), fractions, specs,
            olap_concurrency=1, terminals=9, seed=1, name=name,
            stripe_size=STRIPE,
        )

    def _memo(self, key, producer):
        if key not in self._cache:
            self._cache[key] = producer()
        return self._cache[key]


@pytest.fixture(scope="session")
def lab():
    return Lab()


#: Workloads used repeatedly across figures.
WORKLOADS = {
    "OLAP1-21": OLAP1_21,
    "OLAP1-63": OLAP1_63,
    "OLAP8-63": OLAP8_63,
}
