"""Solver scaling benchmark: incremental vs full objective evaluation.

Sweeps the number of objects N (the paper's Figure 19 axis) on synthetic
ring-overlap problems and times the same multi-start coordinate solve
twice: once against the pre-incremental full-rebuild evaluation path
(``ObjectiveEvaluator(problem, incremental=False)``) and once against
the incremental µ_ij cache (plus the parallel restart portfolio when
more than one CPU is available).  Both paths run the identical search,
so the wall-clock ratio isolates the evaluation-layer speedup, and the
two objectives must agree to 1e-9 — the incremental path is a
performance layer, never a different model.

A second sweep exercises the partitioned scale-out path
(:func:`repro.core.partition.solve_partitioned`) at fleet sizes the
monolithic solve cannot reach interactively (N=1000, M=64), plus a
**parity gate**: at the largest regular swept size the problem is
re-solved with decomposition *forced* (``max_partition_size`` well
below N) and the partitioned objective must land within
``PARTITION_PARITY_RTOL`` of the monolithic coordinate objective —
decomposition is a scaling strategy, not a different optimizer.

Writes machine-readable results to ``benchmarks/results/BENCH_solver.json``:
per-N wall clock, evaluation counts, objective parity, direct probe
parity (random candidate rows evaluated through both paths), and the
partitioned sweep/parity records.

Usage::

    PYTHONPATH=src python benchmarks/bench_solver_scaling.py \
        [--sizes 10 20 40 80] [--targets 8] [--restarts 2] \
        [--partitioned-sizes 1000] [--partitioned-targets 64] \
        [--partitioned-ceiling 30] [--out FILE] [--trace FILE]

``--trace`` additionally runs one fully instrumented solve of the
largest swept size (outside the timed loop, so the recorded wall
clocks stay clean) and writes the span/metric trace to the given JSONL
path — render it with ``python -m repro.cli report FILE``.

The module is also pytest-collectable: ``test_solver_scaling_smoke``
runs a tiny sweep and asserts the parity invariant (the CI smoke job).
"""

import argparse
import json
import os
import time

import numpy as np

from repro import units
from repro.core.objective import ObjectiveEvaluator
from repro.core.partition import (
    PARTITION_PARITY_RTOL,
    overlap_partitions,
    solve_partitioned,
)
from repro.core.problem import LayoutProblem, TargetSpec
from repro.core.solver import solve
from repro.models.analytic import analytic_disk_target_model
from repro.models.target_model import workload_arrays
from repro.workload.spec import ObjectWorkload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_solver.json")

#: Parity budget between the incremental and full evaluation paths.
PARITY_TOL = 1e-9


def make_scaling_problem(n_objects, n_targets=8, seed=0):
    """Synthetic problem with ring overlaps (overlap degree 2 per object)."""
    rng = np.random.default_rng(seed)
    names = ["obj%03d" % i for i in range(n_objects)]
    sizes = {}
    workloads = []
    for i, name in enumerate(names):
        sizes[name] = units.mib(int(rng.integers(20, 120)))
        overlap = {
            names[(i - 1) % n_objects]: float(rng.uniform(0.2, 0.8)),
            names[(i + 1) % n_objects]: float(rng.uniform(0.2, 0.8)),
        }
        workloads.append(ObjectWorkload(
            name,
            read_rate=float(rng.integers(50, 500)),
            write_rate=float(rng.integers(0, 120)),
            run_count=float(rng.integers(1, 64)),
            overlap=overlap,
        ))
    per_target = sum(sizes.values()) / n_targets
    targets = [
        TargetSpec("t%d" % j, int(per_target * 2.5),
                   analytic_disk_target_model("t%d" % j))
        for j in range(n_targets)
    ]
    return LayoutProblem(sizes, targets, workloads)


def _timed_solve(problem, evaluator, restarts, workers):
    started = time.perf_counter()
    result = solve(problem, method="coordinate", restarts=restarts, seed=0,
                   evaluator=evaluator, workers=workers)
    return time.perf_counter() - started, result


def _probe_parity(problem, n_probes=32, seed=1):
    """Max |incremental - full| over random candidate-row evaluations."""
    rng = np.random.default_rng(seed)
    n, m = problem.n_objects, problem.n_targets
    matrix = rng.random((n, m)) + 1e-6
    matrix /= matrix.sum(axis=1, keepdims=True)
    fast = ObjectiveEvaluator(problem)
    full = ObjectiveEvaluator(problem, incremental=False)
    worst = 0.0
    for _ in range(n_probes):
        i = int(rng.integers(n))
        row = rng.random(m) + 1e-6
        row /= row.sum()
        a = fast.utilizations_with_row(matrix, i, row)
        b = full.utilizations_with_row(matrix, i, row)
        worst = max(worst, float(np.max(np.abs(a - b))))
    return worst


def run_sweep(sizes, n_targets=8, restarts=2, workers=None):
    """Run the sweep and return the BENCH_solver payload (not written)."""
    if workers is None:
        workers = os.cpu_count() or 1
    sweep = []
    for n in sizes:
        problem = make_scaling_problem(n, n_targets=n_targets)

        full_eval = ObjectiveEvaluator(problem, incremental=False)
        base_wall, base = _timed_solve(problem, full_eval, restarts,
                                       workers=1)

        fast_eval = ObjectiveEvaluator(problem)
        fast_wall, fast = _timed_solve(problem, fast_eval, restarts,
                                       workers=workers)

        entry = {
            "n_objects": n,
            "n_targets": n_targets,
            "variables": n * n_targets,
            "baseline": {
                "wall_s": base_wall,
                "evaluations": base.evaluations,
                "objective": base.objective,
            },
            "incremental": {
                "wall_s": fast_wall,
                "evaluations": fast.evaluations,
                "full_evaluations": fast_eval.full_evaluations,
                "incremental_evaluations": fast_eval.incremental_evaluations,
                "objective": fast.objective,
            },
            "speedup": base_wall / fast_wall if fast_wall > 0 else float("inf"),
            "objective_abs_diff": abs(base.objective - fast.objective),
            "probe_parity_max_abs": _probe_parity(problem),
        }
        sweep.append(entry)
        print("N=%-4d vars=%-5d  full %.3fs  incremental %.3fs  "
              "speedup %.2fx  parity %.2e"
              % (n, entry["variables"], base_wall, fast_wall,
                 entry["speedup"], max(entry["objective_abs_diff"],
                                       entry["probe_parity_max_abs"])))
    return {
        "benchmark": "solver_scaling",
        "config": {
            "method": "coordinate",
            "restarts": restarts,
            "workers": workers,
            "n_targets": n_targets,
            "parity_tolerance": PARITY_TOL,
        },
        "sweep": sweep,
        "largest_n": sweep[-1]["n_objects"],
        "largest_n_speedup": sweep[-1]["speedup"],
    }


def run_partition_parity(n_objects, n_targets=8, max_partition_size=None,
                         seed=0):
    """Partitioned-vs-monolithic gate record at one problem size.

    Decomposition is *forced* (``max_partition_size`` defaults to
    ``n_objects // 2 + 1``, guaranteeing at least two partitions even
    when the overlap graph is one component) so the gate actually
    exercises the split-solve-stitch-balance path rather than
    degenerating into a plain coordinate solve.
    """
    if max_partition_size is None:
        max_partition_size = n_objects // 2 + 1
    problem = make_scaling_problem(n_objects, n_targets=n_targets, seed=seed)
    partitions = overlap_partitions(
        workload_arrays(problem.workloads)["overlap"], max_partition_size
    )

    started = time.perf_counter()
    mono = solve(problem, method="coordinate", restarts=1, seed=0, workers=1)
    mono_wall = time.perf_counter() - started

    started = time.perf_counter()
    part = solve_partitioned(problem, restarts=1, seed=0,
                             max_partition_size=max_partition_size)
    part_wall = time.perf_counter() - started

    relative = (part.objective - mono.objective) / mono.objective
    print("parity N=%-4d M=%-3d partitions=%d  coordinate %.3fs obj %.6f  "
          "partitioned %.3fs obj %.6f  rel %+.4f (tol %.2f)"
          % (n_objects, n_targets, len(partitions), mono_wall,
             mono.objective, part_wall, part.objective, relative,
             PARTITION_PARITY_RTOL))
    return {
        "n_objects": n_objects,
        "n_targets": n_targets,
        "max_partition_size": max_partition_size,
        "n_partitions": len(partitions),
        "coordinate": {"wall_s": mono_wall, "objective": mono.objective},
        "partitioned": {"wall_s": part_wall, "objective": part.objective},
        "relative_diff": relative,
        "tolerance": PARTITION_PARITY_RTOL,
    }


def run_partitioned_sweep(sizes, n_targets=64, workers=None, ceiling_s=None):
    """Time the partitioned path at scale-out sizes (N=1000 class).

    These sizes are far past where the monolithic baseline is worth
    timing (it would dominate the benchmark's wall clock many times
    over), so each entry records the partitioned solve alone plus the
    optional wall-clock ceiling it must meet.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    entries = []
    for n in sizes:
        problem = make_scaling_problem(n, n_targets=n_targets)
        started = time.perf_counter()
        result = solve(problem, method="partitioned", restarts=1, seed=0,
                       workers=workers)
        wall = time.perf_counter() - started
        n_partitions = len(overlap_partitions(
            workload_arrays(problem.workloads)["overlap"]
        ))
        entry = {
            "n_objects": n,
            "n_targets": n_targets,
            "variables": n * n_targets,
            "n_partitions": n_partitions,
            "wall_s": wall,
            "objective": result.objective,
            "evaluations": result.evaluations,
            "method": result.method,
            "ceiling_s": ceiling_s,
        }
        entries.append(entry)
        print("partitioned N=%-5d M=%-3d vars=%-6d partitions=%-3d  "
              "%.2fs  obj %.6f%s"
              % (n, n_targets, entry["variables"], n_partitions, wall,
                 result.objective,
                 "  (ceiling %.0fs)" % ceiling_s if ceiling_s else ""))
    return entries


def check_parity(payload):
    """Raise AssertionError unless every swept size meets its budget.

    Regular sweep entries must meet the 1e-9 incremental/full parity
    budget.  Partitioned records must meet the decomposition parity
    gate (no more than ``tolerance`` worse than monolithic — better is
    fine) and any wall-clock ceiling they were run under.
    """
    for entry in payload["sweep"]:
        assert entry["objective_abs_diff"] <= PARITY_TOL, entry
        assert entry["probe_parity_max_abs"] <= PARITY_TOL, entry
    partitioned = payload.get("partitioned")
    if partitioned:
        parity = partitioned["parity"]
        assert parity["relative_diff"] <= parity["tolerance"], parity
        assert parity["n_partitions"] > 1, parity
        for entry in partitioned["sweep"]:
            if entry["ceiling_s"] is not None:
                assert entry["wall_s"] <= entry["ceiling_s"], entry


def write_traced_solve(path, n_objects, n_targets=8, restarts=2):
    """One instrumented solve of the benchmark problem, dumped as JSONL.

    Runs outside :func:`run_sweep` so tracing never pollutes the timed
    measurements; the trace is the artifact CI uploads for inspection
    with ``python -m repro.cli report``.
    """
    from repro.obs import Instrumentation
    from repro.obs.export import write_trace

    problem = make_scaling_problem(n_objects, n_targets=n_targets)
    obs = Instrumentation.on()
    evaluator = problem.evaluator(metrics=obs.metrics)
    result = solve(problem, method="coordinate", restarts=restarts, seed=0,
                   evaluator=evaluator, workers=1, obs=obs)
    write_trace(path, obs, meta={
        "command": "bench_solver_scaling",
        "n_objects": n_objects,
        "n_targets": n_targets,
        "restarts": restarts,
        "objective": result.objective,
    })
    return result


def test_solver_scaling_smoke(tmp_path):
    """CI smoke: a tiny sweep still upholds the parity invariants."""
    payload = run_sweep([6, 10], n_targets=4, restarts=1)
    payload["partitioned"] = {
        "parity": run_partition_parity(12, n_targets=4,
                                       max_partition_size=5),
        "sweep": run_partitioned_sweep([16], n_targets=4, workers=1,
                                       ceiling_s=60.0),
    }
    check_parity(payload)
    assert all(e["speedup"] > 0 for e in payload["sweep"])
    out = tmp_path / "BENCH_solver.json"
    out.write_text(json.dumps(payload, indent=2))
    assert json.loads(out.read_text())["benchmark"] == "solver_scaling"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[10, 20, 40, 80],
                        help="object counts N to sweep")
    parser.add_argument("--targets", type=int, default=8)
    parser.add_argument("--restarts", type=int, default=2)
    parser.add_argument("--workers", type=int, default=None,
                        help="portfolio processes (default: cpu count)")
    parser.add_argument("--partitioned-sizes", type=int, nargs="*",
                        default=[1000],
                        help="object counts for the partitioned scale-out "
                             "sweep (empty list skips it)")
    parser.add_argument("--partitioned-targets", type=int, default=64,
                        help="target count for the partitioned sweep "
                             "(default 64)")
    parser.add_argument("--partitioned-ceiling", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock ceiling each partitioned point "
                             "must meet (checked by the parity gate)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default %s)" % DEFAULT_OUT)
    parser.add_argument("--trace", default=None,
                        help="also write an instrumented-solve JSONL "
                             "trace of the largest size (untimed)")
    args = parser.parse_args(argv)

    payload = run_sweep(args.sizes, n_targets=args.targets,
                        restarts=args.restarts, workers=args.workers)
    if args.partitioned_sizes:
        payload["partitioned"] = {
            "parity": run_partition_parity(max(args.sizes),
                                           n_targets=args.targets),
            "sweep": run_partitioned_sweep(
                args.partitioned_sizes,
                n_targets=args.partitioned_targets,
                workers=args.workers,
                ceiling_s=args.partitioned_ceiling,
            ),
        }
    check_parity(payload)
    if args.trace:
        traced = write_traced_solve(args.trace, max(args.sizes),
                                    n_targets=args.targets,
                                    restarts=args.restarts)
        print("wrote %s (instrumented solve, objective %.6f)"
              % (args.trace, traced.objective))
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s (largest-N speedup %.2fx)"
          % (args.out, payload["largest_n_speedup"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
