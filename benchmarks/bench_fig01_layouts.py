"""Paper Figure 1: SEE vs. advisor-recommended layout, OLAP1-63.

Reproduces the motivating example of Section 2: the TPC-H objects laid
out on four identical disks, showing the stripe-everything-everywhere
baseline next to the workload-aware layout.  The paper's optimized
layout isolates LINEITEM (on more targets than ORDERS), separates
ORDERS and I_L_ORDERKEY from it, and co-locates TEMP SPACE with ORDERS
because the two rarely overlap.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.layout import Layout
from repro.db.workloads import OLAP1_63
from repro.experiments.reporting import format_layout
from repro.experiments.scenarios import four_disks


def test_fig01_see_vs_optimized_layout(benchmark, lab):
    def run():
        database = lab.tpch()
        specs = four_disks(lab.scale)
        profiles = lab.olap_profiles(OLAP1_63)
        result = lab.advised("OLAP1-63/1-1-1-1", database, profiles, specs,
                             concurrency=OLAP1_63.concurrency)
        fitted = lab.fitted("OLAP1-63/1-1-1-1", database, profiles, specs,
                            concurrency=OLAP1_63.concurrency)
        return result, fitted, database

    result, fitted, database = benchmark.pedantic(run, rounds=1, iterations=1)
    layout = result.recommended

    see_text = format_layout(
        Layout.see(layout.object_names, layout.target_names), fitted, top=8,
    )
    optimized_text = format_layout(layout, fitted, top=8)
    report(
        "fig01_layouts",
        "Figure 1 — layouts of the 8 hottest TPC-H objects (OLAP1-63)\n\n"
        "Baseline: Stripe-Everything-Everywhere\n%s\n\n"
        "Advisor Recommended Layout\n%s" % (see_text, optimized_text),
    )

    # Shape checks from the paper's discussion of Figure 1:
    lineitem = layout.row("LINEITEM")
    orders = layout.row("ORDERS")
    # LINEITEM and ORDERS are isolated from one another...
    assert set(np.nonzero(lineitem > 0.01)[0]).isdisjoint(
        np.nonzero(orders > 0.01)[0]
    )
    # ...and LINEITEM, with the greater load, occupies at least as many
    # targets as ORDERS.
    assert (lineitem > 0.01).sum() >= (orders > 0.01).sum()
    # I_L_ORDERKEY avoids LINEITEM's targets.
    index_row = layout.row("I_L_ORDERKEY")
    assert set(np.nonzero(index_row > 0.01)[0]).isdisjoint(
        np.nonzero(lineitem > 0.01)[0]
    )
