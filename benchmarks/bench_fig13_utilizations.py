"""Paper Figure 13: estimated target utilizations per advisor stage.

For OLAP1-63 and OLAP8-63 on four disks, the advisor's own estimated
utilizations µ_j at the four stages of Figure 4: the SEE baseline, the
greedy initial layout, the NLP solver's layout, and the regularized
layout.  The paper's shape: SEE is balanced but high, the initial layout
is unbalanced, the solver's layout is both balanced and lower, and
regularization stays close to the solver's quality.
"""

import numpy as np

from benchmarks.conftest import report
from repro.db.workloads import OLAP1_63, OLAP8_63
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import four_disks


def test_fig13_stage_utilizations(benchmark, lab):
    def run():
        database = lab.tpch()
        specs = four_disks(lab.scale)
        out = {}
        for workload in (OLAP1_63, OLAP8_63):
            key = "%s/1-1-1-1" % workload.name
            advised = lab.advised(key, database,
                                  lab.olap_profiles(workload), specs,
                                  concurrency=workload.concurrency)
            out[workload.name] = advised.utilizations
        return out

    stage_utilizations = benchmark.pedantic(run, rounds=1, iterations=1)

    for name, stages in stage_utilizations.items():
        rows = []
        for stage in ("see", "initial", "solver", "regular"):
            values = stages[stage]
            rows.append(
                [stage]
                + ["%.3f" % v for v in values]
                + ["%.3f" % values.max()]
            )
        report("fig13_utilizations_%s" % name.lower(), format_table(
            ["Stage", "disk0", "disk1", "disk2", "disk3", "max"],
            rows,
            title="Figure 13 — estimated utilizations, %s" % name,
        ))

    for name, stages in stage_utilizations.items():
        see = stages["see"]
        initial = stages["initial"]
        solver = stages["solver"]
        regular = stages["regular"]
        # SEE is perfectly balanced on identical disks.
        assert see.max() - see.min() < 0.05 * see.max()
        # The greedy initial layout is unbalanced (the paper's point).
        assert initial.max() - initial.min() > 0.2 * initial.max()
        # The solver improves on both SEE and the initial layout.
        assert solver.max() <= see.max() * 1.001
        assert solver.max() <= initial.max() * 1.001
        # Regularization stays within a reasonable factor of the solver.
        assert regular.max() <= solver.max() * 1.8
