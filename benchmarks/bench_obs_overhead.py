"""Instrumentation overhead benchmark: the disabled path must be free.

The observability layer (:mod:`repro.obs`) is opt-in: every hot path
takes an ``obs`` bundle that defaults to the shared no-op
``NULL_INSTRUMENTATION``, so a solve that never asked for tracing pays
only a handful of attribute checks and no-op method calls.  This
benchmark makes that contract measurable and regression-testable:

* **disabled** — ``solve(...)`` with no ``obs`` argument, i.e. exactly
  what every pre-existing caller runs.  Compared against the solver
  wall-clock recorded in ``benchmarks/results/BENCH_solver.json``
  (or an in-job regenerated baseline in CI) with a 2 % budget plus an
  absolute noise floor, because sub-second timings on shared runners
  jitter more than 2 % on their own.
* **enabled** — the same solve under ``Instrumentation.on()`` with
  spans, convergence series, and evaluator counters live.  Reported
  (not bounded): tracing is allowed to cost, it just has to be paid
  only by callers who asked for it.

Instrumentation must never change results: the disabled and enabled
runs share a seed and their objectives must agree bit-for-bit.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        [--n 10] [--targets 8] [--restarts 2] [--repeats 5] \
        [--baseline benchmarks/results/BENCH_solver.json] [--out FILE]

Pytest-collectable: ``test_obs_overhead_smoke`` runs a tiny config and
asserts the objective-parity invariant (the CI smoke job additionally
runs the CLI with ``--baseline`` against an in-job baseline).
"""

import argparse
import json
import os
import time

try:
    from benchmarks.bench_solver_scaling import make_scaling_problem
except ImportError:          # run directly: benchmarks/ is sys.path[0]
    from bench_solver_scaling import make_scaling_problem

from repro.core.solver import solve
from repro.obs import Instrumentation

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_obs_overhead.json")
DEFAULT_BASELINE = os.path.join(RESULTS_DIR, "BENCH_solver.json")

#: Relative overhead budget for the disabled path vs the baseline.
OVERHEAD_BUDGET = 0.02
#: Absolute wall-clock slack: two runs of a sub-second solve differ by
#: more than 2 % from scheduler noise alone, even on the same machine.
NOISE_FLOOR_S = 0.05


def _timed_solve(problem, restarts, seed=0, obs=None):
    evaluator = problem.evaluator(
        metrics=obs.metrics if obs is not None else None
    )
    started = time.perf_counter()
    result = solve(problem, method="coordinate", restarts=restarts,
                   seed=seed, evaluator=evaluator, workers=1, obs=obs)
    return time.perf_counter() - started, result


def measure(n_objects=10, n_targets=8, restarts=2, repeats=5):
    """Best-of-``repeats`` disabled and enabled solve timings.

    Runs are interleaved (disabled, enabled, disabled, ...) so slow
    drift in machine load hits both paths alike; best-of filters the
    remaining one-sided noise.
    """
    problem = make_scaling_problem(n_objects, n_targets=n_targets)
    disabled_walls, enabled_walls = [], []
    disabled_objective = enabled_objective = None
    spans = metrics = 0
    for _ in range(repeats):
        wall, result = _timed_solve(problem, restarts)
        disabled_walls.append(wall)
        disabled_objective = result.objective

        obs = Instrumentation.on()
        wall, result = _timed_solve(problem, restarts, obs=obs)
        enabled_walls.append(wall)
        enabled_objective = result.objective
        spans = len(obs.tracer.spans)
        metrics = sum(1 for _ in obs.metrics)

    disabled = min(disabled_walls)
    enabled = min(enabled_walls)
    return {
        "benchmark": "obs_overhead",
        "config": {
            "method": "coordinate",
            "n_objects": n_objects,
            "n_targets": n_targets,
            "restarts": restarts,
            "repeats": repeats,
            "workers": 1,
            "overhead_budget": OVERHEAD_BUDGET,
            "noise_floor_s": NOISE_FLOOR_S,
        },
        "disabled_wall_s": disabled,
        "enabled_wall_s": enabled,
        "enabled_overhead": (enabled - disabled) / disabled
        if disabled > 0 else float("inf"),
        "objective_disabled": disabled_objective,
        "objective_enabled": enabled_objective,
        "enabled_spans": spans,
        "enabled_metrics": metrics,
    }


def check_objective_parity(payload):
    """Instrumentation must not change what the solver computes."""
    assert payload["objective_disabled"] == payload["objective_enabled"], (
        "instrumentation changed the solve: objective %r (disabled) "
        "vs %r (enabled)"
        % (payload["objective_disabled"], payload["objective_enabled"])
    )


def check_disabled_overhead(payload, baseline_payload):
    """Assert the disabled path stays within budget of a solver baseline.

    ``baseline_payload`` is a ``BENCH_solver.json``-shaped dict; the
    sweep entry matching this measurement's ``n_objects`` supplies the
    pre-instrumentation incremental wall clock.  The budget is
    ``max(OVERHEAD_BUDGET * baseline, NOISE_FLOOR_S)``.
    """
    n = payload["config"]["n_objects"]
    entry = next(
        (e for e in baseline_payload["sweep"] if e["n_objects"] == n), None
    )
    assert entry is not None, (
        "baseline has no sweep entry for n_objects=%d" % n
    )
    base = entry["incremental"]["wall_s"]
    budget = max(OVERHEAD_BUDGET * base, NOISE_FLOOR_S)
    measured = payload["disabled_wall_s"]
    assert measured <= base + budget, (
        "disabled-path solve took %.4fs vs baseline %.4fs "
        "(budget %.4fs): instrumentation is taxing callers who "
        "never asked for it" % (measured, base, budget)
    )
    return {"baseline_wall_s": base, "budget_s": budget,
            "measured_wall_s": measured}


def test_obs_overhead_smoke():
    """CI smoke: instrumentation changes nothing and the null path runs."""
    payload = measure(n_objects=6, n_targets=4, restarts=1, repeats=2)
    check_objective_parity(payload)
    assert payload["disabled_wall_s"] > 0
    assert payload["enabled_spans"] > 0
    assert payload["enabled_metrics"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10,
                        help="object count (must exist in the baseline "
                             "sweep when --baseline is used)")
    parser.add_argument("--targets", type=int, default=8)
    parser.add_argument("--restarts", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--baseline", default=None,
                        help="BENCH_solver.json to assert the disabled "
                             "path against (default: no assertion; pass "
                             "%s for the stored one)" % DEFAULT_BASELINE)
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default %s)" % DEFAULT_OUT)
    args = parser.parse_args(argv)

    payload = measure(n_objects=args.n, n_targets=args.targets,
                      restarts=args.restarts, repeats=args.repeats)
    check_objective_parity(payload)
    print("disabled %.4fs  enabled %.4fs  (+%.1f%%, %d spans, %d metrics)"
          % (payload["disabled_wall_s"], payload["enabled_wall_s"],
             100.0 * payload["enabled_overhead"],
             payload["enabled_spans"], payload["enabled_metrics"]))

    if args.baseline:
        with open(args.baseline) as handle:
            comparison = check_disabled_overhead(payload, json.load(handle))
        payload["baseline_comparison"] = comparison
        print("disabled path within budget: %.4fs vs baseline %.4fs "
              "(+%.4fs allowed)"
              % (comparison["measured_wall_s"],
                 comparison["baseline_wall_s"], comparison["budget_s"]))

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
