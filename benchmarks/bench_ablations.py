"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but controlled experiments over the knobs
the reproduction rests on:

* readahead depth of the disk model (sets the Figure 8 collapse point),
* solver multi-start count (the paper's Figure 4 repeat loop),
* regularization candidate classes (consistent-only vs. + balancing),
* the Eq. 2 contention simplification (overlap-weighted competing rate)
  vs. ignoring overlap entirely.
"""

import dataclasses

import numpy as np

from benchmarks.conftest import report
from repro import units
from repro.core import LayoutAdvisor, initial_layout, solve
from repro.core.regularize import (
    balancing_candidates,
    consistent_candidates,
)
from repro.errors import RegularizationError
from repro.experiments.reporting import format_table
from repro.models.calibration import CalibrationConfig, calibrate_device
from repro.storage.disk import DiskDrive, ENTERPRISE_15K

from tests.conftest import make_problem

_CALIBRATION = CalibrationConfig(
    sizes=(units.kib(8),), run_counts=(1, 64), competitor_counts=(0, 1, 4),
    n_requests=300,
)


def test_ablation_readahead_depth(benchmark):
    """Deeper readahead pushes the sequential collapse point right."""

    def run():
        capacity = units.gib(0.25)
        curves = {}
        for depth in (1, 2, 4):
            params = dataclasses.replace(ENTERPRISE_15K,
                                         readahead_depth=depth)
            model = calibrate_device(
                lambda: DiskDrive("cal", capacity, params), _CALIBRATION,
                kind="read",
            )
            _, costs = model.slice_by_contention(
                units.kib(8), 64, (0.0, 1.0, 4.0)
            )
            curves[depth] = [float(c) for c in costs]
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_readahead_depth", format_table(
        ["Depth", "cost@chi=0 (ms)", "cost@chi=1 (ms)", "cost@chi=4 (ms)"],
        [[d, "%.3f" % (1e3 * c[0]), "%.3f" % (1e3 * c[1]),
          "%.3f" % (1e3 * c[2])] for d, c in curves.items()],
        title="Ablation — readahead depth vs sequential collapse",
    ))
    # chi=1: depth 1 may already degrade; depth 4 must still be fast.
    assert curves[4][1] < curves[1][2]
    # At chi=4 every depth has collapsed into positioning costs.
    assert curves[1][2] > 5 * curves[1][0]


def test_ablation_solver_restarts(benchmark):
    """More starting points never hurt and sometimes help (Figure 4)."""

    def run():
        problem = make_problem()
        values = {}
        for restarts in (1, 3, 5):
            outcome = solve(problem, restarts=restarts, seed=11)
            values[restarts] = outcome.objective
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_solver_restarts", format_table(
        ["Restarts", "max utilization"],
        [[k, "%.4f" % v] for k, v in values.items()],
        title="Ablation — solver multi-start",
    ))
    assert values[3] <= values[1] + 1e-9
    assert values[5] <= values[3] + 1e-9


def test_ablation_regularizer_candidate_classes(benchmark):
    """The balancing class rescues layouts the consistent class alone

    would leave imbalanced."""

    def run():
        problem = make_problem()
        evaluator = problem.evaluator()
        solved = solve(problem, evaluator=evaluator)

        def regularize_with(classes):
            matrix = solved.layout.matrix.copy()
            order = np.argsort(-evaluator.object_loads(matrix),
                               kind="stable")
            committed = np.zeros(problem.n_targets)
            for i in order:
                utilizations = evaluator.utilizations(matrix)
                candidates = []
                if "consistent" in classes:
                    candidates += consistent_candidates(
                        matrix[i], problem.n_targets
                    )
                if "balancing" in classes:
                    candidates += balancing_candidates(
                        utilizations, problem.n_targets
                    )
                best_row, best_value = None, np.inf
                for row in candidates:
                    if np.any(committed + problem.sizes[i] * row
                              > problem.capacities):
                        continue
                    old = matrix[i].copy()
                    matrix[i] = row
                    value = evaluator.objective(matrix)
                    matrix[i] = old
                    if value < best_value:
                        best_value, best_row = value, row
                if best_row is None:
                    raise RegularizationError("no candidate fits")
                matrix[i] = best_row
                committed += problem.sizes[i] * best_row
            return evaluator.objective(matrix)

        return {
            "consistent only": regularize_with(("consistent",)),
            "consistent + balancing": regularize_with(
                ("consistent", "balancing")
            ),
        }

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_regularizer_classes", format_table(
        ["Candidate classes", "max utilization"],
        [[k, "%.4f" % v] for k, v in values.items()],
        title="Ablation — regularization candidate classes",
    ))
    assert (values["consistent + balancing"]
            <= values["consistent only"] + 1e-9)


def test_ablation_contention_term(benchmark):
    """Dropping the Eq. 2 interference term degrades layout quality:

    an overlap-blind objective may co-locate interfering objects."""

    def run():
        problem = make_problem()
        evaluator = problem.evaluator()

        # Blind evaluator: identical problem with all overlaps erased.
        from repro.workload.spec import ObjectWorkload
        from repro.core.problem import LayoutProblem

        blind_workloads = [
            ObjectWorkload(
                name=w.name, read_size=w.read_size, write_size=w.write_size,
                read_rate=w.read_rate, write_rate=w.write_rate,
                run_count=w.run_count, overlap={},
            )
            for w in problem.workloads
        ]
        blind_problem = LayoutProblem(
            {name: size for name, size
             in zip(problem.object_names, problem.sizes)},
            problem.targets, blind_workloads,
        )
        aware = solve(problem, evaluator=evaluator)
        blind = solve(blind_problem)
        # Score BOTH layouts under the overlap-aware model (the honest
        # judge).
        return {
            "overlap-aware": evaluator.objective(aware.layout.matrix),
            "overlap-blind": evaluator.objective(blind.layout.matrix),
        }

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_contention_term", format_table(
        ["Objective variant", "true max utilization"],
        [[k, "%.4f" % v] for k, v in values.items()],
        title="Ablation — Eq. 2 interference term",
    ))
    assert values["overlap-aware"] <= values["overlap-blind"] + 1e-9
