"""Paper Figure 11: execution times on homogeneous storage targets.

OLAP1-63 and OLAP8-63 on four identical disks, SEE baseline vs. the
advisor's optimized layout.  The paper reports 40927 s → 31879 s (1.28x)
for OLAP1-63 and 16201 s → 13608 s (1.19x) for OLAP8-63; absolute
numbers differ on the simulator, but optimized must beat SEE for both,
with the larger win at concurrency one.
"""

from benchmarks.conftest import report
from repro.db.workloads import OLAP1_63, OLAP8_63
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import four_disks

PAPER = {"OLAP1-63": (40927, 31879), "OLAP8-63": (16201, 13608)}


def test_fig11_execution_times(benchmark, lab):
    def run():
        database = lab.tpch()
        specs = four_disks(lab.scale)
        outcome = {}
        for workload in (OLAP1_63, OLAP8_63):
            key = "%s/1-1-1-1" % workload.name
            profiles = lab.olap_profiles(workload)
            see = lab.traced_see(key, database, profiles, specs,
                                 concurrency=workload.concurrency)
            advised = lab.advised(key, database, profiles, specs,
                                  concurrency=workload.concurrency)
            optimized = lab.measure(
                database, profiles,
                advised.recommended.fractions_by_name(), specs,
                concurrency=workload.concurrency, name="optimized",
            )
            outcome[workload.name] = (see.elapsed_s, optimized.elapsed_s)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (see_time, optimized_time) in outcome.items():
        paper_see, paper_opt = PAPER[name]
        rows.append([
            name,
            "%.0f" % see_time,
            "%.0f" % optimized_time,
            "%.2fx" % (see_time / optimized_time),
            "%.2fx" % (paper_see / paper_opt),
        ])
    report("fig11_homogeneous", format_table(
        ["Workload", "SEE (sim s)", "Optimized (sim s)", "Speedup",
         "Paper speedup"],
        rows,
        title="Figure 11 — workload execution times, homogeneous targets",
    ))

    # Shape: optimized beats SEE on both workloads...
    for name, (see_time, optimized_time) in outcome.items():
        assert optimized_time < see_time, name
    # ...and the concurrency-1 workload gains at least as much (paper:
    # 1.28x vs 1.19x).
    s1 = outcome["OLAP1-63"][0] / outcome["OLAP1-63"][1]
    s8 = outcome["OLAP8-63"][0] / outcome["OLAP8-63"][1]
    assert s1 >= s8 * 0.9
