"""Paper Figure 19: execution time of the layout advisor itself.

Scaling of the advisor's solve and regularization times with problem
size: the OLAP8-63 problem (N=20, M=4), the consolidation problem
(N=40) on 4/10/20/40 targets, and the synthetic 2x/3x/4x-consolidation
problems (N=80/120/160, M=10) built by replicating the consolidation
workload descriptions, exactly as the paper constructs them.  Shape
checks: solver time dominates regularization time, and total time grows
with problem size; the largest problem stays in the paper's "minutes,
not hours" regime.
"""

import time

from benchmarks.conftest import STRIPE, report
from repro.core import LayoutAdvisor
from repro.db.workloads import OLAP8_63
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_problem
from repro.experiments.scenarios import disk_spec, four_disks


def _replicate(workloads, sizes, times):
    """Replicate workload descriptions K times, as the paper does for

    the 2x/3x/4x-consolidation timing runs."""
    replicated_workloads = []
    replicated_sizes = {}
    for copy in range(times):
        suffix = "" if copy == 0 else "#%d" % copy
        rename = {w.name: w.name + suffix for w in workloads}
        for spec in workloads:
            replicated_workloads.append(
                spec.renamed(spec.name + suffix, overlap_rename=rename)
            )
        for name, size in sizes.items():
            replicated_sizes[name + suffix] = size
    return replicated_workloads, replicated_sizes


def test_fig19_optimization_time(benchmark, lab):
    def run():
        database = lab.tpch()
        olap_fitted = lab.fitted(
            "OLAP8-63/1-1-1-1", database, lab.olap_profiles(OLAP8_63),
            four_disks(lab.scale), concurrency=OLAP8_63.concurrency,
        )
        consolidation_fitted = lab.fitted_consolidation(
            four_disks(lab.scale)
        )
        consolidated = lab.consolidated()

        cases = [("OLAP8-63", olap_fitted, database.sizes(), 4)]
        for m in (4, 10, 20, 40):
            cases.append(("consolidation", consolidation_fitted,
                          consolidated.sizes(), m))
        for factor in (2, 3, 4):
            workloads, sizes = _replicate(
                consolidation_fitted, consolidated.sizes(), factor
            )
            cases.append(("%dxconsolidation" % factor, workloads, sizes, 10))

        rows = []
        for name, workloads, sizes, m in cases:
            specs = [disk_spec("d%d" % j, lab.scale) for j in range(m)]

            class _Catalog:
                def __init__(self, sizes):
                    self._sizes = sizes
                    self.object_names = list(sizes)

                def sizes(self):
                    return self._sizes

            problem = build_problem(_Catalog(dict(sizes)), specs, workloads,
                                    stripe_size=STRIPE)
            started = time.perf_counter()
            outcome = LayoutAdvisor(problem, regular=True).recommend()
            total = time.perf_counter() - started
            rows.append({
                "workload": name,
                "N": len(workloads),
                "M": m,
                "solver": outcome.solver_time_s,
                "regularization": outcome.regularization_time_s,
                "total": total,
                "method": outcome.method,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report("fig19_opt_time", format_table(
        ["Workload", "N", "M", "Solver (s)", "Regularization (s)",
         "Total (s)", "Method"],
        [[r["workload"], r["N"], r["M"], "%.2f" % r["solver"],
          "%.2f" % r["regularization"], "%.2f" % r["total"], r["method"]]
         for r in rows],
        title="Figure 19 — execution time of the layout advisor",
    ))

    # Solver time dominates regularization wherever the NLP method runs
    # (paper: 200 s vs 26 s at N=40, M=40 with MINOS).  The coordinate
    # fallback used on the widest problems is itself cheap, so its rows
    # are exempt from the dominance check.
    nlp_rows = [r for r in rows if r["method"].startswith("slsqp")]
    assert nlp_rows
    for row in nlp_rows:
        assert row["solver"] > row["regularization"], row["workload"]
    # Total time grows from the smallest to the largest NLP problem.
    largest_nlp = max(nlp_rows, key=lambda r: r["N"] * r["M"])
    assert largest_nlp["total"] > rows[0]["total"] * 0.5
    # Everything completes in the paper's "about 10 minutes" regime.
    assert all(r["total"] < 600 for r in rows)
