"""Paper Figure 17: heterogeneous disk targets, OLAP8-63.

Three target configurations built from the same four disks — "3-1"
(3-disk RAID0 + one disk), "2-1-1" (2-disk RAID0 + two disks), and the
homogeneous "1-1-1-1" — compared across SEE, the administrator
isolation heuristics, and the advisor's optimized layout.  The paper's
shape: SEE degrades as target disparity grows; isolating tables helps
on 3-1 but *isolating tables and indexes hurts* on 2-1-1; the optimized
layout wins every configuration.
"""

from benchmarks.conftest import report
from repro.baselines.heuristics import (
    isolate_tables_indexes_layout,
    isolate_tables_layout,
)
from repro.db.workloads import OLAP8_63
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import config_2_1_1, config_3_1, four_disks

PAPER_SPEEDUPS = {"3-1": "1.36x", "2-1-1": "1.29x", "1-1-1-1": "1.19x"}


def test_fig17_heterogeneous_targets(benchmark, lab):
    def run():
        database = lab.tpch()
        profiles = lab.olap_profiles(OLAP8_63)
        configs = {
            "3-1": config_3_1(lab.scale),
            "2-1-1": config_2_1_1(lab.scale),
            "1-1-1-1": four_disks(lab.scale),
        }
        out = {}
        for config_name, specs in configs.items():
            key = "OLAP8-63/%s" % config_name
            see = lab.traced_see(key, database, profiles, specs,
                                 concurrency=OLAP8_63.concurrency)
            advised = lab.advised(key, database, profiles, specs,
                                  concurrency=OLAP8_63.concurrency)
            optimized = lab.measure(
                database, profiles,
                advised.recommended.fractions_by_name(), specs,
                concurrency=OLAP8_63.concurrency, name="optimized",
            )
            row = {"see": see.elapsed_s, "optimized": optimized.elapsed_s}
            target_names = [s.name for s in specs]
            if config_name == "3-1":
                isolate = isolate_tables_layout(database, target_names,
                                                table_target=0)
                row["isolate"] = lab.measure(
                    database, profiles, isolate.fractions_by_name(), specs,
                    concurrency=OLAP8_63.concurrency, name="isolate-tables",
                ).elapsed_s
            if config_name == "2-1-1":
                isolate = isolate_tables_indexes_layout(
                    database, target_names, table_target=0, index_target=1,
                    temp_target=2,
                )
                row["isolate"] = lab.measure(
                    database, profiles, isolate.fractions_by_name(), specs,
                    concurrency=OLAP8_63.concurrency,
                    name="isolate-tables-indexes",
                ).elapsed_s
            out[config_name] = row
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for config_name in ("3-1", "2-1-1", "1-1-1-1"):
        row = results[config_name]
        rows.append([
            config_name,
            "%.0f" % row["see"],
            "%.0f" % row["isolate"] if "isolate" in row else "n/a",
            "%.0f" % row["optimized"],
            "%.2fx" % (row["see"] / row["optimized"]),
            PAPER_SPEEDUPS[config_name],
        ])
    report("fig17_heterogeneous", format_table(
        ["Config", "SEE (s)", "Isolation baseline (s)", "Optimized (s)",
         "Speedup vs SEE", "Paper"],
        rows,
        title="Figure 17 — heterogeneous storage targets, OLAP8-63",
    ))

    # Shape: optimized beats SEE in every configuration...
    for config_name, row in results.items():
        assert row["optimized"] < row["see"], config_name
    # ...and beats (or at worst ties) the isolation heuristics too.
    assert results["3-1"]["optimized"] <= results["3-1"]["isolate"] * 1.05
    assert results["2-1-1"]["optimized"] <= results["2-1-1"]["isolate"] * 1.05
    # SEE's penalty grows with target disparity (paper: 18103 > 16922 >
    # 16201 in absolute terms; we check the speedup ordering instead).
    s31 = results["3-1"]["see"] / results["3-1"]["optimized"]
    s1111 = results["1-1-1-1"]["see"] / results["1-1-1-1"]["optimized"]
    assert s31 >= s1111 * 0.85
