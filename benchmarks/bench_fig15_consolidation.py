"""Paper Figure 15: the consolidation scenario, SEE vs. optimized.

Two database instances share the four disks: one runs OLAP1-21 against
TPC-H, the other runs the TPC-C OLTP terminals; 40 objects total.  The
paper reports OLAP1-21 improving 24416 s → 17005 s (1.43x) and OLTP
improving 304 → 360 tpmC (1.18x) under the optimized layout.  Shape:
*both* workloads improve at once.
"""

from benchmarks.conftest import report
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import four_disks

PAPER = {"olap_speedup": 24416 / 17005, "oltp_speedup": 360 / 304}


def test_fig15_consolidation(benchmark, lab):
    def run():
        specs = four_disks(lab.scale)
        see = lab.traced_consolidation_see(specs)
        advised = lab.advised_consolidation(specs)
        optimized = lab.measure_consolidated(
            advised.recommended.fractions_by_name(), specs, name="optimized"
        )
        return see, optimized

    see, optimized = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["OLAP1-21 (elapsed s)", "%.0f" % see.elapsed_s,
         "%.0f" % optimized.elapsed_s,
         "%.2fx" % (see.elapsed_s / optimized.elapsed_s), "1.43x"],
        ["OLTP (tpmC)", "%.0f" % see.tpm, "%.0f" % optimized.tpm,
         "%.2fx" % (optimized.tpm / see.tpm), "1.18x"],
    ]
    report("fig15_consolidation", format_table(
        ["Metric", "SEE", "Optimized", "Improvement", "Paper"],
        rows,
        title="Figure 15 — consolidation scenario (OLAP1-21 + OLTP)",
    ))

    # Shape: both sides improve under the optimized layout.
    assert optimized.elapsed_s < see.elapsed_s
    assert optimized.tpm > see.tpm * 0.95
