"""Paper Figure 12: the optimized layout for the OLAP8-63 workload.

Under concurrency eight, LINEITEM's traced workload is less sequential
(interleaved scans), so the interference penalty for sharing its targets
drops; the paper's recommended layout still separates LINEITEM and
ORDERS but no longer fully isolates LINEITEM, and spreads hot shared
objects to balance load.  The critical reproduction check is that the
advisor recommends a *different* layout for OLAP8-63 than for OLAP1-63
from the same queries — the concurrency-awareness AutoAdmin lacks.
"""

import numpy as np

from benchmarks.conftest import report
from repro.db.workloads import OLAP1_63, OLAP8_63
from repro.experiments.reporting import format_layout
from repro.experiments.scenarios import four_disks


def test_fig12_olap8_layout(benchmark, lab):
    def run():
        database = lab.tpch()
        specs = four_disks(lab.scale)
        advised8 = lab.advised(
            "OLAP8-63/1-1-1-1", database,
            lab.olap_profiles(OLAP8_63), specs,
            concurrency=OLAP8_63.concurrency,
        )
        advised1 = lab.advised(
            "OLAP1-63/1-1-1-1", database,
            lab.olap_profiles(OLAP1_63), specs,
            concurrency=OLAP1_63.concurrency,
        )
        fitted8 = lab.fitted(
            "OLAP8-63/1-1-1-1", database,
            lab.olap_profiles(OLAP8_63), specs,
            concurrency=OLAP8_63.concurrency,
        )
        fitted1 = lab.fitted(
            "OLAP1-63/1-1-1-1", database,
            lab.olap_profiles(OLAP1_63), specs,
            concurrency=OLAP1_63.concurrency,
        )
        return advised8, advised1, fitted8, fitted1

    advised8, advised1, fitted8, fitted1 = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    report("fig12_olap8_layout", (
        "Figure 12 — optimized layout for the OLAP8-63 workload\n\n%s"
        % format_layout(advised8.recommended, fitted8, top=8)
    ))

    layout8 = advised8.recommended
    layout1 = advised1.recommended

    # LINEITEM and ORDERS stay separated even at concurrency 8.
    lineitem = set(np.nonzero(layout8.row("LINEITEM") > 0.01)[0])
    orders = set(np.nonzero(layout8.row("ORDERS") > 0.01)[0])
    assert lineitem.isdisjoint(orders)

    # Concurrency awareness: the OLAP8-63 layout differs from OLAP1-63's.
    assert not np.allclose(layout8.matrix, layout1.matrix)

    # The traced LINEITEM workload is less sequential at concurrency 8
    # (the mechanism behind the layout difference).
    run8 = next(w for w in fitted8 if w.name == "LINEITEM").run_count
    run1 = next(w for w in fitted1 if w.name == "LINEITEM").run_count
    assert run8 < run1
