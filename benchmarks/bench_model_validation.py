"""Model validation: estimated vs. measured target utilizations.

The advisor's decisions are only as good as its utilization estimates
(paper §5.2's whole reason for the calibrated models).  This bench
compares the advisor's estimated µ_j against the simulator's measured
per-target busy fractions for three structurally different layouts —
SEE, the greedy initial, and the optimized layout — under OLAP1-63.

The validation criterion is *ordinal*: the model must rank the targets
consistently with reality and put the hot spot in the right place; the
absolute scale of µ may drift (the model treats queueing effects as
utilization), which does not affect a minimax optimizer.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core import initial_layout
from repro.db.workloads import OLAP1_63
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_problem
from repro.experiments.scenarios import four_disks


def _average_ranks(values):
    """Ranks with ties sharing their average rank."""
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    i = 0
    while i < len(values):
        j = i
        while (j + 1 < len(values)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0
        i = j + 1
    return ranks


def _spearman(a, b):
    """Spearman rank correlation with proper tie handling.

    A constant input carries no ranking information; that case returns
    1.0 (vacuously consistent) rather than an artefact of tie order.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if np.ptp(a) < 1e-9 * max(1e-12, abs(a).max()) or np.ptp(b) == 0:
        return 1.0
    ra = _average_ranks(a)
    rb = _average_ranks(b)
    if ra.std() == 0 or rb.std() == 0:
        return 1.0
    return float(np.corrcoef(ra, rb)[0, 1])


def test_model_predicts_measured_utilizations(benchmark, lab):
    def run():
        database = lab.tpch()
        specs = four_disks(lab.scale)
        profiles = lab.olap_profiles(OLAP1_63)
        key = "OLAP1-63/1-1-1-1"
        fitted = lab.fitted(key, database, profiles, specs,
                            concurrency=OLAP1_63.concurrency)
        advised = lab.advised(key, database, profiles, specs,
                              concurrency=OLAP1_63.concurrency)
        problem = build_problem(database, specs, fitted)
        evaluator = problem.evaluator()

        layouts = {
            "see": problem.see_layout(),
            "initial": initial_layout(problem),
            "optimized": advised.recommended,
        }
        rows = []
        for name, layout in layouts.items():
            estimated = evaluator.utilizations(layout.matrix)
            measured_run = lab.measure(
                database, profiles, layout.fractions_by_name(), specs,
                concurrency=OLAP1_63.concurrency, name="validate-%s" % name,
            )
            measured = np.array([
                measured_run.utilizations[spec.name] for spec in specs
            ])
            rows.append({
                "layout": name,
                "estimated": estimated,
                "measured": measured,
                "rank_corr": _spearman(estimated, measured),
                "pearson": float(np.corrcoef(estimated, measured)[0, 1])
                if estimated.std() > 1e-9 and measured.std() > 1e-9
                else 1.0,
                "hot_match": int(np.argmax(estimated))
                == int(np.argmax(measured)),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for row in rows:
        table.append([
            row["layout"],
            " ".join("%.2f" % v for v in row["estimated"]),
            " ".join("%.2f" % v for v in row["measured"]),
            "%.2f" % row["rank_corr"],
            "%.2f" % row["pearson"],
            "yes" if row["hot_match"] else "no",
        ])
    report("model_validation", format_table(
        ["Layout", "Estimated u_j", "Measured busy fraction",
         "Rank corr.", "Pearson", "Hottest target matches"],
        table,
        title="Model validation — estimated vs measured utilizations "
              "(OLAP1-63)",
    ))

    # The unbalanced layout must be recognised as such: the initial
    # layout's hottest target is identified and the magnitudes track
    # (Pearson is robust to rank shuffles among near-tied cold disks).
    initial_row = next(r for r in rows if r["layout"] == "initial")
    assert initial_row["hot_match"]
    assert initial_row["pearson"] > 0.9
    # The hot spot is identified in every layout; ranks stay
    # non-adversarial (near-tied values may shuffle).
    for row in rows:
        assert row["hot_match"]
        assert row["rank_corr"] >= -0.5 or row["pearson"] > 0.9