"""Paper Figure 8: cost-model slice for 8 KByte read requests.

Regenerates the calibrated read-cost curves of one disk target: request
cost as a function of the contention factor, one curve per run count.
The paper's qualitative features: sequential requests are far cheaper
than random at low contention, the advantage survives a small amount of
contention (the drive tracks and prefetches a few streams), collapses
once the contention factor reaches about two, and purely random costs
*decline* gently as deeper queues shorten seeks.
"""

from benchmarks.conftest import report
from repro import units
from repro.experiments.runner import get_target_model
from repro.experiments.scenarios import disk_spec


def test_fig08_read_cost_slice(benchmark, lab):
    spec = disk_spec("disk0", lab.scale)

    def run():
        return get_target_model(spec)

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    table = model.read_model

    chis = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0]
    lines = [
        "Figure 8 — cost model for 8 KByte read requests "
        "(per-request service cost, ms)",
        "",
        "run count " + "".join("  chi=%-5.1f" % c for c in chis),
    ]
    curves = {}
    for run_count in (1, 4, 16, 64):
        _, costs = table.slice_by_contention(units.kib(8), run_count, chis)
        curves[run_count] = [float(c) for c in costs]
        lines.append(
            "Q=%-7d " % run_count
            + "".join("  %8.3f" % (1000 * c) for c in costs)
        )
    report("fig08_costmodel", "\n".join(lines))

    random_curve = curves[1]
    sequential_curve = curves[64]
    # Sequential is much cheaper than random when uncontended.
    assert sequential_curve[0] < random_curve[0] / 5
    # The advantage survives chi=1...
    assert sequential_curve[2] < random_curve[0] / 5
    # ...and collapses by chi=2 (within 2x of the random cost).
    assert sequential_curve[3] > random_curve[3] / 2
    # Random costs decline with contention (elevator effect).
    assert random_curve[-1] < random_curve[0]
