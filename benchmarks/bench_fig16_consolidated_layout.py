"""Paper Figure 16: optimized layout of the consolidated databases.

The regular layout the advisor recommends for the 40 TPC-H (h) and
TPC-C (c) objects on four disks.  The paper's key observation: the gain
comes primarily from separating the TPC-H LINEITEM table from the
TPC-C STOCK and CUSTOMER tables, which see heavy non-sequential load.
"""

import numpy as np

from benchmarks.conftest import report
from repro.experiments.reporting import format_layout
from repro.experiments.scenarios import four_disks


def test_fig16_consolidated_layout(benchmark, lab):
    def run():
        specs = four_disks(lab.scale)
        advised = lab.advised_consolidation(specs)
        fitted = lab.fitted_consolidation(specs)
        return advised, fitted

    advised, fitted = benchmark.pedantic(run, rounds=1, iterations=1)
    layout = advised.recommended

    report("fig16_consolidated_layout", (
        "Figure 16 — optimized layout of the 12 hottest consolidated "
        "objects (h = TPC-H, c = TPC-C)\n\n%s"
        % format_layout(layout, fitted, top=12)
    ))

    assert layout.is_regular()

    # The paper's headline observation is that the TPC-H LINEITEM scans
    # are kept away from the heavy TPC-C random traffic (STOCK and
    # CUSTOMER).  Our advisor balances that against spreading the bulky
    # TPC-C tables for load, so we assert majority separation: most of
    # STOCK's and CUSTOMER's load stays off LINEITEM's targets.
    lineitem = layout.row("h.LINEITEM") > 0.01
    stock_share = float(layout.row("c.STOCK")[lineitem].sum())
    customer_share = float(layout.row("c.CUSTOMER")[lineitem].sum())
    assert stock_share <= 0.5
    assert customer_share <= 0.5

    # Estimated utilization improves on SEE for the merged problem.
    assert advised.max_utilization("solver") <= advised.max_utilization("see")
