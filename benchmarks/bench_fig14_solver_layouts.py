"""Paper Figure 14: the (non-regular) layouts produced by the NLP solver.

The solver's fractional layouts for OLAP1-63 and OLAP8-63 before
regularization.  The paper shows them to be very balanced; the
regularized OLAP8-63 layout is close to the solver's because the
solver's is almost regular.
"""

import numpy as np

from benchmarks.conftest import report
from repro.db.workloads import OLAP1_63, OLAP8_63
from repro.experiments.reporting import format_layout
from repro.experiments.scenarios import four_disks


def test_fig14_solver_layouts(benchmark, lab):
    def run():
        database = lab.tpch()
        specs = four_disks(lab.scale)
        out = {}
        for workload in (OLAP1_63, OLAP8_63):
            key = "%s/1-1-1-1" % workload.name
            advised = lab.advised(key, database,
                                  lab.olap_profiles(workload), specs,
                                  concurrency=workload.concurrency)
            fitted = lab.fitted(key, database,
                                lab.olap_profiles(workload), specs,
                                concurrency=workload.concurrency)
            out[workload.name] = (advised, fitted)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = ["Figure 14 — layouts produced by the NLP solver"]
    for name, (advised, fitted) in results.items():
        sections.append("\n(%s)\n%s" % (
            name, format_layout(advised.solver, fitted, top=8)
        ))
    report("fig14_solver_layouts", "\n".join(sections))

    for name, (advised, fitted) in results.items():
        solver_util = advised.utilizations["solver"]
        see_util = advised.utilizations["see"]
        # Balanced: max within 30% of mean.
        assert solver_util.max() <= 1.3 * solver_util.mean() + 1e-9
        # Reduced relative to SEE.
        assert solver_util.max() <= see_util.max() * 1.001
        # Every object's row still sums to one (validity).
        assert np.allclose(advised.solver.matrix.sum(axis=1), 1.0,
                           atol=1e-4)
