"""Paper Figure 20 / §6.6: comparison with the AutoAdmin layout tool.

The AutoAdmin algorithm (Agrawal et al., ICDE 2003) sees only the SQL
workload, so it recommends the same layout for OLAP1-63 and OLAP8-63.
The paper finds it roughly matches the advisor on OLAP1-63 (32634 s vs
31789 s vs 40927 s SEE) but *hurts* on OLAP8-63 (19937 s, worse than
SEE's 16201 s) because it cannot see the concurrency level.  A
PostgreSQL cardinality misestimate on Q18's temp spill is emulated so
the tool overweights separating LINEITEM and TEMP SPACE, as in the
paper's Figure 20(b).
"""

import numpy as np

from benchmarks.conftest import report
from repro.baselines.autoadmin import autoadmin_layout
from repro.db.workloads import OLAP1_63, OLAP8_63
from repro.experiments.reporting import format_layout, format_table
from repro.experiments.scenarios import four_disks

#: Emulated optimizer error: PostgreSQL misestimates Q18's intermediate
#: sizes "by multiple orders of magnitude" (paper §6.6).
MISESTIMATES = {("Q18", "TEMP SPACE"): 50.0}


def test_fig20_autoadmin_comparison(benchmark, lab):
    def run():
        database = lab.tpch()
        specs = four_disks(lab.scale)
        target_names = [s.name for s in specs]
        capacities = [s.capacity for s in specs]

        layout = autoadmin_layout(
            database, lab.olap_profiles(OLAP1_63), target_names,
            capacities=capacities, misestimates=MISESTIMATES,
        )
        layout8 = autoadmin_layout(
            database, lab.olap_profiles(OLAP8_63), target_names,
            capacities=capacities, misestimates=MISESTIMATES,
        )

        out = {"layout": layout, "same_for_both": bool(
            np.allclose(layout.matrix, layout8.matrix)
        )}
        for workload in (OLAP1_63, OLAP8_63):
            key = "%s/1-1-1-1" % workload.name
            profiles = lab.olap_profiles(workload)
            see = lab.traced_see(key, database, profiles, specs,
                                 concurrency=workload.concurrency)
            advised = lab.advised(key, database, profiles, specs,
                                  concurrency=workload.concurrency)
            ours = lab.measure(
                database, profiles,
                advised.recommended.fractions_by_name(), specs,
                concurrency=workload.concurrency, name="advisor",
            )
            autoadmin = lab.measure(
                database, profiles, layout.fractions_by_name(), specs,
                concurrency=workload.concurrency, name="autoadmin",
            )
            out[workload.name] = {
                "see": see.elapsed_s,
                "advisor": ours.elapsed_s,
                "autoadmin": autoadmin.elapsed_s,
            }
        fitted = lab.fitted("OLAP1-63/1-1-1-1", database,
                            lab.olap_profiles(OLAP1_63), specs,
                            concurrency=1)
        return out, fitted

    results, fitted = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in ("OLAP1-63", "OLAP8-63"):
        row = results[name]
        rows.append([
            name, "%.0f" % row["see"], "%.0f" % row["autoadmin"],
            "%.0f" % row["advisor"],
            "%.2fx" % (row["see"] / row["autoadmin"]),
            "%.2fx" % (row["see"] / row["advisor"]),
        ])
    report("fig20_autoadmin", (
        format_table(
            ["Workload", "SEE (s)", "AutoAdmin (s)", "Advisor (s)",
             "AutoAdmin speedup", "Advisor speedup"],
            rows,
            title="Figure 20 / §6.6 — AutoAdmin comparison",
        )
        + "\n\nAutoAdmin layout (identical for both workloads):\n"
        + format_layout(results["layout"], fitted, top=8)
    ))

    # AutoAdmin is concurrency-oblivious: one layout for both mixes.
    assert results["same_for_both"]
    # On OLAP1-63 AutoAdmin is competitive: clearly better than SEE.
    olap1 = results["OLAP1-63"]
    assert olap1["autoadmin"] < olap1["see"]
    # Our advisor is at least as good there.
    assert olap1["advisor"] <= olap1["autoadmin"] * 1.1
    # On OLAP8-63 the concurrency-oblivious layout hurts vs SEE...
    olap8 = results["OLAP8-63"]
    assert olap8["autoadmin"] > olap8["see"]
    # ...while the advisor still beats SEE.
    assert olap8["advisor"] < olap8["see"]
