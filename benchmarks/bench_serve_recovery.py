"""Chaos harness: SIGKILL the serving process, restart, prove recovery.

Boots the real CLI server (``repro serve``) as a subprocess with a
state directory, then runs K kill cycles:

1. **populate** — N tenants created over real sockets (first cycle
   only; later cycles find them already recovered), each with a
   deliberately slow copy estimate so migrations accepted mid-trace
   are still in flight when the process dies;
2. **drift** — every tenant streams a trace chunk whose hot object
   alternates between cycles, so the server-side controllers accept a
   fresh migration every time;
3. **storm + SIGKILL** — an advise storm saturates the pool and the
   process is killed hard mid-storm (no drain, no atexit: the only
   survivors are the WAL, the snapshots, and the migration journals);
4. **restart** — a new process on the same state directory; its
   startup recovery must rebuild every tenant, finish every suspended
   migration **exactly once**, and answer advises correctly.

The committed claims: 100% of tenants recover after every kill, the
duplicate-migration count is zero (each journal carries at most one
commit record across all incarnations), recovery stays under the
bound, and the post-restart advise path serves every tenant.

The harness always passes ``--threads``: a SIGKILL'd parent cannot
reap worker processes, and orphaned solvers would outlive the bench.

Results go to ``benchmarks/results/BENCH_serve_recovery.json``.
"""

import argparse
import asyncio
import glob
import json
import os
import select
import signal
import subprocess
import sys
import time

from benchmarks.conftest import RESULTS_DIR, report
from repro.experiments.reporting import format_table
from repro.serve.client import ServeClient

#: Tiny per-tenant problem (the point is many tenants, not one big
#: solve) with heterogeneous targets so a workload inversion genuinely
#: moves the optimal layout — drift then yields real migrations.
PROBLEM = {
    "stripe_size": 1 << 20,
    "targets": [
        {"name": "d0", "capacity": 8 << 20, "kind": "disk15k"},
        {"name": "ssd", "capacity": 4 << 20, "kind": "ssd"},
    ],
    "objects": [
        {"name": "a", "size": 3 << 20, "read_rate": 120.0, "run_count": 4},
        {"name": "b", "size": 3 << 20, "read_rate": 20.0, "run_count": 4},
    ],
}

#: Aggressive controller with a copy estimate slow enough that a
#: migration accepted mid-trace is still uncommitted at SIGKILL time.
CONTROLLER = {
    "check_interval_s": 2.0,
    "patience": 1,
    "cooldown_s": 0.0,
    "min_gain": 0.001,
    "amortization_s": 10000.0,
    "monitor_halflife_s": 4.0,
    "transfer_bps": 256 * 1024,
}


#: Trace-time horizon of one drift chunk; successive chunks start where
#: the previous one ended (the tenant's feed clock only moves forward,
#: and it survives recovery).
HORIZON_S = 12.0


def drift_chunk(hot, start_s):
    """A trace chunk making ``hot`` the dominant object."""
    cold = "a" if hot == "b" else "b"
    records = []
    for obj, rate in ((cold, 20.0), (hot, 200.0)):
        t, step = float(start_s), 1.0 / rate
        while t < start_s + HORIZON_S:
            records.append({"obj": obj, "finish_time": round(t, 6),
                            "kind": "read", "size": 8192,
                            "service_time": 0.002})
            t += step
    records.sort(key=lambda r: r["finish_time"])
    return records


def percentile(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


# ----------------------------------------------------------------------
# Server process management
# ----------------------------------------------------------------------

class ServerProcess:
    """One ``repro serve`` incarnation on a shared state directory."""

    def __init__(self, state_dir, workers=2, feed_threads=4,
                 snapshot_every=8, cwd=None):
        self.state_dir = state_dir
        self.workers = workers
        self.feed_threads = feed_threads
        self.snapshot_every = snapshot_every
        self.cwd = cwd or os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        self.proc = None
        self.port = None
        self.ready_wall_s = None

    def start(self, timeout_s=60.0):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ["src"] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        started = time.perf_counter()
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--workers", str(self.workers), "--threads",
             "--feed-threads", str(self.feed_threads),
             "--snapshot-every", str(self.snapshot_every),
             "--state-dir", self.state_dir],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            env=env, cwd=self.cwd,
        )
        banner = self._read_until(
            lambda line: "serving on http://" in line, timeout_s
        )
        self.ready_wall_s = time.perf_counter() - started
        self.port = int(banner.split("http://", 1)[1].split()[0]
                        .rsplit(":", 1)[1])
        return self

    def _read_until(self, predicate, timeout_s):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                break
            ready, _, _ = select.select([self.proc.stdout], [], [], 0.25)
            if not ready:
                continue
            line = self.proc.stdout.readline()
            if not line:
                break
            if predicate(line):
                return line
        raise AssertionError("server never became ready")

    def kill(self):
        """SIGKILL: no drain, no cleanup — the crash being simulated."""
        self.proc.kill()
        self.proc.wait(timeout=30)
        self.proc.stdout.close()

    def terminate(self):
        """SIGTERM: the graceful path, for the final clean shutdown."""
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=30)
        self.proc.stdout.close()
        return self.proc.returncode


# ----------------------------------------------------------------------
# Durable-state inspection (duplicate detection)
# ----------------------------------------------------------------------

def journal_stats(state_dir):
    """Scan every migration journal; a journal committed twice is a
    duplicated placement swap — the bug this bench exists to catch."""
    journals = commits = duplicates = torn = 0
    for path in sorted(glob.glob(
            os.path.join(state_dir, "*", "migration-*.jsonl"))):
        journals += 1
        seen = 0
        with open(path) as handle:
            for line in handle:
                try:
                    record = json.loads(line)
                except ValueError:
                    torn += 1  # SIGKILL mid-append: tolerated, not a dup
                    continue
                if record.get("kind") == "commit":
                    seen += 1
        commits += seen
        duplicates += max(0, seen - 1)
    return {"journals": journals, "commits": commits,
            "duplicates": duplicates, "torn_lines": torn}


def durable_artifacts(state_dir):
    return {
        "wal_files": len(glob.glob(
            os.path.join(state_dir, "*", "wal.jsonl"))),
        "snapshots": len(glob.glob(
            os.path.join(state_dir, "*", "snapshot-*.json"))),
        "journals": len(glob.glob(
            os.path.join(state_dir, "*", "migration-*.jsonl"))),
    }


# ----------------------------------------------------------------------
# Client phases
# ----------------------------------------------------------------------

def _tid(index):
    return "t%04d" % index


async def _create_all(port, tenants):
    clients = [ServeClient("127.0.0.1", port) for _ in range(tenants)]
    try:
        await asyncio.gather(*(
            clients[i].create_tenant(
                {"tenant_id": _tid(i), "problem": PROBLEM,
                 "controller": CONTROLLER},
                idempotency_key="create-%s" % _tid(i),
                retry_statuses=(429, 503),
            ) for i in range(tenants)
        ))
    finally:
        for client in clients:
            await client.close()


async def _feed_all(port, tenants, hot, round_index):
    chunk = drift_chunk(hot, round_index * HORIZON_S)
    clients = [ServeClient("127.0.0.1", port) for _ in range(tenants)]
    try:
        fed = await asyncio.gather(*(
            clients[i].feed(_tid(i), chunk,
                            idempotency_key="feed-%s-r%d"
                                            % (_tid(i), round_index),
                            retry_statuses=(429, 503))
            for i in range(tenants)
        ))
        return sum(1 for _, result in fed if result.get("migrating"))
    finally:
        for client in clients:
            await client.close()


async def _storm_and_kill(server, tenants, kill_after_s):
    """Advise storm with the rug pulled out mid-flight."""
    stop = asyncio.Event()
    completed = [0] * tenants

    async def storm(index):
        client = ServeClient("127.0.0.1", server.port, retries=0)
        try:
            while not stop.is_set():
                try:
                    await client.advise(_tid(index),
                                        raise_for_status=False)
                    completed[index] += 1
                except Exception:  # noqa: BLE001 — the server just died
                    return
        finally:
            try:
                await client.close()
            except Exception:  # noqa: BLE001
                pass

    tasks = [asyncio.ensure_future(storm(i)) for i in range(tenants)]
    await asyncio.sleep(kill_after_s)
    server.kill()  # SIGKILL while advises are in flight
    stop.set()
    await asyncio.gather(*tasks, return_exceptions=True)
    return sum(completed)


async def _recovery_status(port):
    client = ServeClient("127.0.0.1", port)
    try:
        status = await client.status()
    finally:
        await client.close()
    return status


async def _post_restart_storm(port, tenants, advises):
    """Measured advise latencies against the recovered fleet.

    Closed loop: 429 admission sheds are retried after a pause (the
    advise route is unkeyed, so the client's own status-retry policy
    rightly refuses to resend it — the loop lives here instead).
    """
    clients = [ServeClient("127.0.0.1", port) for _ in range(tenants)]
    latencies = []
    try:
        async def run(index):
            for _ in range(advises):
                while True:
                    started = time.perf_counter()
                    status, answer = await clients[index].advise(
                        _tid(index), raise_for_status=False)
                    if status == 429:
                        await asyncio.sleep(0.05)
                        continue
                    assert status == 200, (status, answer)
                    break
                latencies.append(time.perf_counter() - started)
                assert answer["tenant"] == _tid(index)
                assert "layout" in answer
        await asyncio.gather(*(run(i) for i in range(tenants)))
    finally:
        for client in clients:
            await client.close()
    return latencies


# ----------------------------------------------------------------------
# The bench
# ----------------------------------------------------------------------

def run_bench(state_dir, tenants=50, kills=3, workers=2,
              snapshot_every=8, kill_after_s=1.0, advises=1):
    payload = {
        "benchmark": "serve_recovery",
        "tenants": tenants,
        "kills": kills,
        "workers": workers,
        "snapshot_every": snapshot_every,
        "rounds": [],
    }
    hot_cycle = ("b", "a")
    server = ServerProcess(state_dir, workers=workers,
                           snapshot_every=snapshot_every).start()
    try:
        asyncio.run(_create_all(server.port, tenants))
        for round_index in range(kills):
            hot = hot_cycle[round_index % len(hot_cycle)]
            migrating = asyncio.run(
                _feed_all(server.port, tenants, hot, round_index))
            storm_advises = asyncio.run(
                _storm_and_kill(server, tenants, kill_after_s))
            stats = journal_stats(state_dir)
            server = ServerProcess(
                state_dir, workers=workers,
                snapshot_every=snapshot_every).start()
            status = asyncio.run(_recovery_status(server.port))
            recovery = status["durability"]["recovery"]
            after = journal_stats(state_dir)
            payload["rounds"].append({
                "round": round_index,
                "hot_object": hot,
                "migrating_at_kill": migrating,
                "storm_advises_completed": storm_advises,
                "journals_at_kill": stats,
                "ready_wall_s": round(server.ready_wall_s, 3),
                "recovery": recovery,
                "journals_after_recovery": after,
            })
        latencies = asyncio.run(
            _post_restart_storm(server.port, tenants, advises))
        payload["post_restart"] = {
            "advises_per_tenant": advises,
            "requests": len(latencies),
            "p50_ms": round(percentile(latencies, 0.50) * 1e3, 2),
            "p99_ms": round(percentile(latencies, 0.99) * 1e3, 2),
        }
        payload["artifacts"] = durable_artifacts(state_dir)
        exit_code = server.terminate()
        server = None
        payload["clean_exit"] = exit_code == 0
    finally:
        if server is not None and server.proc.poll() is None:
            server.proc.kill()
            server.proc.wait(timeout=30)
            server.proc.stdout.close()
    rounds = payload["rounds"]
    payload["duplicate_migrations"] = sum(
        r["journals_after_recovery"]["duplicates"] for r in rounds)
    payload["max_recovery_s"] = max(
        r["recovery"]["elapsed_s"] for r in rounds)
    payload["total_resumed_migrations"] = sum(
        r["recovery"]["resumed_migrations"] for r in rounds)
    payload["total_adopted_swaps"] = sum(
        r["recovery"]["adopted_swaps"] for r in rounds)
    return payload


def check_recovery(payload, recovery_bound_s=None):
    """The claims BENCH_serve_recovery.json is committed to prove."""
    tenants = payload["tenants"]
    assert len(payload["rounds"]) == payload["kills"], payload
    for entry in payload["rounds"]:
        recovery = entry["recovery"]
        # Every kill: 100% of tenants recovered, no tenant-level error.
        assert recovery["recovered_tenants"] == tenants, entry
        assert recovery["errors"] == [], entry
        # Every migration in flight at SIGKILL time was finished by
        # recovery (resumed or, for the commit/WAL gap, adopted) — the
        # fleet never loses an accepted placement decision.
        finished = (recovery["resumed_migrations"]
                    + recovery["adopted_swaps"])
        assert finished >= entry["migrating_at_kill"], entry
        if recovery_bound_s is not None:
            assert recovery["elapsed_s"] <= recovery_bound_s, entry
    # The headline invariant: no journal ever commits twice.
    assert payload["duplicate_migrations"] == 0, payload
    # The recovered fleet answers advises for every tenant.
    post = payload["post_restart"]
    assert post["requests"] == tenants * post["advises_per_tenant"], \
        payload
    assert post["p99_ms"] > 0, payload
    assert payload["clean_exit"], payload


def _report(payload):
    rounds = payload["rounds"]
    rows = [
        ["tenants x kill cycles", "%d x %d" % (payload["tenants"],
                                               payload["kills"])],
        ["tenants recovered (every cycle)", "%s" % " / ".join(
            str(r["recovery"]["recovered_tenants"]) for r in rounds)],
        ["migrations resumed after SIGKILL",
         "%d" % payload["total_resumed_migrations"]],
        ["committed swaps adopted (commit/WAL gap)",
         "%d" % payload["total_adopted_swaps"]],
        ["duplicate migration commits",
         "%d" % payload["duplicate_migrations"]],
        ["max recovery time (s)", "%.3f" % payload["max_recovery_s"]],
        ["post-restart advise p50 / p99 (ms)", "%.1f / %.1f" % (
            payload["post_restart"]["p50_ms"],
            payload["post_restart"]["p99_ms"])],
        ["durable artifacts (wal/snap/journal)", "%d / %d / %d" % (
            payload["artifacts"]["wal_files"],
            payload["artifacts"]["snapshots"],
            payload["artifacts"]["journals"])],
        ["clean final shutdown", "%s" % payload["clean_exit"]],
    ]
    report("serve_recovery", format_table(
        ["Metric", "Value"], rows,
        title="Kill-the-service drill: %d tenants, %d SIGKILLs"
              % (payload["tenants"], payload["kills"]),
    ))


def test_serve_recovery_bench_smoke(tmp_path):
    """CI smoke: a small fleet through two kill cycles."""
    payload = run_bench(str(tmp_path / "state"), tenants=4, kills=2,
                        workers=2, kill_after_s=0.5)
    check_recovery(payload, recovery_bound_s=30.0)
    assert payload["duplicate_migrations"] == 0
    out = tmp_path / "BENCH_serve_recovery.json"
    out.write_text(json.dumps(payload, indent=2))
    assert json.loads(out.read_text())["benchmark"] == "serve_recovery"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=50,
                        help="fleet size (default 50)")
    parser.add_argument("--kills", type=int, default=3,
                        help="SIGKILL cycles (default 3)")
    parser.add_argument("--workers", type=int, default=2,
                        help="solver threads per incarnation (default 2)")
    parser.add_argument("--snapshot-every", type=int, default=8,
                        help="snapshot cadence in chunks (default 8)")
    parser.add_argument("--kill-after", type=float, default=1.0,
                        metavar="SECONDS",
                        help="storm duration before SIGKILL (default 1)")
    parser.add_argument("--advises", type=int, default=1,
                        help="post-restart advises per tenant (default 1)")
    parser.add_argument("--recovery-bound", type=float, default=None,
                        metavar="SECONDS",
                        help="fail if any recovery exceeds this")
    parser.add_argument("--state-dir", default=None,
                        help="state directory (default: a fresh tempdir)")
    parser.add_argument(
        "--out",
        default=os.path.join(RESULTS_DIR, "BENCH_serve_recovery.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    if args.state_dir is not None:
        state_dir = args.state_dir
    else:
        import tempfile
        state_dir = tempfile.mkdtemp(prefix="serve-recovery-")
    payload = run_bench(
        state_dir, tenants=args.tenants, kills=args.kills,
        workers=args.workers, snapshot_every=args.snapshot_every,
        kill_after_s=args.kill_after, advises=args.advises,
    )
    check_recovery(payload, recovery_bound_s=args.recovery_bound)
    _report(payload)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s (%d tenants x %d kills: 100%% recovered, "
          "%d resumed + %d adopted, %d duplicates, max recovery %.3fs, "
          "post-restart p99 %.1fms)"
          % (args.out, payload["tenants"], payload["kills"],
             payload["total_resumed_migrations"],
             payload["total_adopted_swaps"],
             payload["duplicate_migrations"], payload["max_recovery_s"],
             payload["post_restart"]["p99_ms"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
