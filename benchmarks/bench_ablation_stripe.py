"""Ablation: LVM stripe size (a design knob DESIGN.md calls out).

The stripe size controls how much of a sequential run lands on one
target before moving to the next (the Figure-7 run-count cases) and the
placement granularity.  This bench sweeps the stripe size for a
two-scan workload on two disks and reports measured times: very small
stripes fragment per-target runs and hurt; around the megabyte range
the curve flattens — which is why the library (like the paper's LVM)
defaults to 1 MiB.
"""

from benchmarks.conftest import report
from repro import units
from repro.db.engine import run_olap
from repro.db.profiles import QueryProfile, phase, seq
from repro.db.schema import Database, DatabaseObject, TABLE
from repro.experiments.reporting import format_table
from repro.storage.disk import DiskDrive


def test_ablation_stripe_size(benchmark):
    def run():
        database = Database("mini", [
            DatabaseObject("A", TABLE, units.mib(48)),
            DatabaseObject("B", TABLE, units.mib(48)),
        ])
        see = {"A": [0.5, 0.5], "B": [0.5, 0.5]}
        query = QueryProfile("q", (phase(seq("A", 1.0), seq("B", 1.0)),))
        times = {}
        for stripe_kib in (16, 64, 256, 1024):
            devices = [DiskDrive("d%d" % j, units.mib(256))
                       for j in range(2)]
            result = run_olap(
                database, [query] * 4, see, devices,
                stripe_size=stripe_kib * units.KIB, seed=5,
            )
            times[stripe_kib] = result.elapsed_s
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)

    report("ablation_stripe_size", format_table(
        ["Stripe (KiB)", "Elapsed (sim s)"],
        [[k, "%.2f" % v] for k, v in times.items()],
        title="Ablation — stripe size under two concurrent striped scans",
    ))

    # Large stripes must not be worse than the smallest stripe, and the
    # curve flattens: 256 KiB is within 25% of 1 MiB.
    assert times[1024] <= times[16] * 1.05
    assert abs(times[256] - times[1024]) <= 0.35 * times[1024]