"""Online layout controller under workload drift, ON vs OFF.

The §8 scenario the online subsystem exists for: a layout solved for an
OLTP-only workload (the scan table cold, parked whole on one spindle)
meets a workload shift to heavy sequential scans.  Without the
controller the scan table's single disk saturates while the other three
idle.  With the controller the monitor's fitted workload drifts, the
detector fires, a warm-started re-solve spreads the scan table, and a
throttled background copy brings the new layout online — after which
the measured max utilization sits strictly below the frozen layout's.

The run also audits the migration mechanics: the copy is real simulator
I/O, so foreground scan throughput is observably lower while it runs
than in the controller-less run over the same interval, and recovers
once the placement map swaps.

The workload is no longer hardcoded: it lowers from a declarative
scenario (``repro.scenarios``) via open-loop live streams.  The classic
drift run ships as the ``oltp-scan-drift`` library scenario (aliased
``default``); pass ``--scenario NAME_OR_FILE`` to pytest to replay any
other drift-shaped scenario through the same ON/OFF comparison.
"""

import json
import os

import pytest

from benchmarks.conftest import RESULTS_DIR, report
from repro import units
from repro.cli import load_problem
from repro.core.advisor import LayoutAdvisor
from repro.experiments.reporting import format_table
from repro.online.controller import ControllerConfig, OnlineController
from repro.scenarios import compile_scenario, load_scenario
from repro.scenarios.live import LiveScenario
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.streams import SimContext
from repro.storage.target import StorageTarget

SAMPLE_S = 1.0

CONFIG = ControllerConfig(
    check_interval_s=4.0,
    monitor_window_s=1.0,
    monitor_halflife_s=6.0,
    util_degradation=0.30,
    divergence_threshold=0.60,
    util_ceiling=0.95,
    patience=2,
    cooldown_s=20.0,
    min_gain=0.10,
    amortization_s=300.0,
    migration_chunk=units.mib(1),
    migration_window=1,
    migration_pace_s=0.04,
    regular=False,
)


@pytest.fixture(scope="module")
def compiled(request):
    spec = load_scenario(request.config.getoption("--scenario"))
    if not spec.targets:
        pytest.skip("scenario %r has no targets section" % spec.name)
    return compile_scenario(spec)


def _initial_layout(compiled, problem):
    layout = compiled.initial_layout()
    if layout is not None:
        return layout
    return LayoutAdvisor(problem, regular=False).recommend().recommended


def _drift_object(compiled):
    """The object whose rate grows most from phase A to the end phase —
    what 'scan throughput' means for an arbitrary drift scenario."""
    t_drift = compiled.spec.schedule[0].t1
    base = {w.name: w.read_rate + w.write_rate
            for w in compiled.mean_workloads(0.0, t_drift)}
    end = {w.name: w.read_rate + w.write_rate
           for w in compiled.mean_workloads(0.75 * compiled.duration_s,
                                            compiled.duration_s)}
    return max(end, key=lambda obj: end[obj] - base.get(obj, 0.0))


class _DriftRun:
    """One phased simulation, with or without the controller."""

    def __init__(self, compiled, controlled):
        self.compiled = compiled
        self.t_end = compiled.duration_s
        self.problem = load_problem(compiled.problem_payload())
        self.initial = _initial_layout(compiled, self.problem)
        self.drift_obj = _drift_object(compiled)

        self.engine = SimulationEngine()
        capacities = [t.capacity for t in compiled.spec.targets]
        self.targets = [
            StorageTarget(DiskDrive(t.name, t.capacity), self.engine)
            for t in compiled.spec.targets
        ]
        placement = PlacementMap(
            compiled.object_sizes, self.initial.fractions_by_name(),
            capacities,
        )
        self.ctx = SimContext(self.engine, placement, self.targets)
        self.controller = None
        if controlled:
            self.controller = OnlineController(
                targets=self.problem.targets,
                object_sizes=compiled.object_sizes,
                initial_layout=self.initial,
                solved_workloads=self.problem.workloads,
                ctx=self.ctx,
                config=CONFIG,
            ).start()

        self.live = LiveScenario(self.ctx, compiled)
        self.scan_completions = 0
        self.engine.add_completion_observer(self._count)
        self.samples = []          # (time, [busy..], scan_completions)

    def _count(self, record):
        if record.obj == self.drift_obj:
            self.scan_completions += 1

    def _sample(self):
        busy = [
            sum(s.busy_time for s in t._servers) for t in self.targets
        ]
        self.samples.append((self.engine.now, busy, self.scan_completions))
        if self.engine.now < self.t_end - SAMPLE_S / 2:
            self.engine.schedule(SAMPLE_S, self._sample)

    def run(self):
        self.live.start()
        self.engine.schedule(SAMPLE_S, self._sample)
        self.engine.run(until=self.t_end)
        if self.controller is not None:
            self.controller.stop()
        return self

    # -- windowed metrics ------------------------------------------------

    def max_util_series(self):
        """(window end time, max-across-disks utilization) per sample."""
        series = []
        for prev, cur in zip(self.samples, self.samples[1:]):
            dt = cur[0] - prev[0]
            deltas = [b1 - b0 for b0, b1 in zip(prev[1], cur[1])]
            series.append((cur[0], max(deltas) / dt))
        return series

    def mean_max_util(self, t0, t1):
        values = [u for t, u in self.max_util_series() if t0 < t <= t1]
        return sum(values) / len(values)

    def scan_rate(self, t0, t1):
        """Foreground scan completions per second over [t0, t1]."""
        points = [(t, c) for t, _, c in self.samples]
        before = max((p for p in points if p[0] <= t0), default=points[0])
        after = max((p for p in points if p[0] <= t1), default=points[-1])
        if after[0] <= before[0]:
            return 0.0
        return (after[1] - before[1]) / (after[0] - before[0])


def test_online_drift_controller(benchmark, compiled):
    t_drift = compiled.spec.schedule[0].t1
    t_end = compiled.duration_s

    def run():
        return _DriftRun(compiled, controlled=False).run(), \
            _DriftRun(compiled, controlled=True).run()

    off, on = benchmark.pedantic(run, rounds=1, iterations=1)
    log = on.controller.log

    os.makedirs(RESULTS_DIR, exist_ok=True)
    events_path = os.path.join(RESULTS_DIR, "online_drift_events.jsonl")
    log.to_jsonl(events_path)

    accepts = log.of_kind("accept")
    migrations = [e for e in log.of_kind("migrated") if not e["virtual"]]
    assert accepts, "controller never accepted a re-solve"
    assert migrations, "accepted layout never migrated"
    t_accept = accepts[0]["time"]
    t_done = migrations[0]["time"]
    steady0 = max(t_done + 10.0, t_drift + 20.0)

    off_steady = off.mean_max_util(steady0, t_end)
    on_steady = on.mean_max_util(steady0, t_end)
    off_scan = off.scan_rate(steady0, t_end)
    on_scan = on.scan_rate(steady0, t_end)
    off_during = off.scan_rate(t_accept, t_done)
    on_during = on.scan_rate(t_accept, t_done)
    on_after = on.scan_rate(t_done + 2.0, min(t_done + 12.0, t_end))

    report("online_drift", format_table(
        ["Metric", "controller OFF", "controller ON"],
        [
            ["steady max utilization after drift",
             "%.3f" % off_steady, "%.3f" % on_steady],
            ["scan throughput after drift (req/s)",
             "%.0f" % off_scan, "%.0f" % on_scan],
            ["scan throughput during migration (req/s)",
             "%.0f" % off_during, "%.0f" % on_during],
            ["re-solves accepted", "0", "%d" % on.controller.resolves],
            ["data migrated (MiB)", "0",
             "%.0f" % (migrations[0]["bytes_moved"] / units.mib(1))],
            ["migration wall time (s)", "-",
             "%.1f" % migrations[0]["elapsed_s"]],
        ],
        title="Online controller under scenario %r "
              "(drift at t=%.0fs, horizon %.0fs)"
              % (compiled.name, t_drift, t_end),
    ))

    # The controller re-solved at least once, boundedly.
    assert 1 <= on.controller.resolves <= CONFIG.max_resolves

    # Decisions landed in the JSONL event log.
    with open(events_path) as handle:
        kinds = {json.loads(line)["kind"] for line in handle if line.strip()}
    assert {"baseline", "check", "trigger", "accept", "migrated"} <= kinds

    # After the drift settles, the re-solved layout's measured max
    # utilization is strictly below the frozen layout's.
    assert on_steady < off_steady * 0.9, (on_steady, off_steady)

    # Migration ran as throttled background I/O: the foreground scans
    # were observably slower than the uncontrolled run over the same
    # interval, and recovered once the placement switched.
    assert t_done - t_accept > 1.0
    assert on_during < off_during * 0.97, (on_during, off_during)
    assert on_after > on_during, (on_after, on_during)
