"""Online layout controller under workload drift, ON vs OFF.

The §8 scenario the online subsystem exists for: a layout solved for an
OLTP-only workload (the scan table cold, parked whole on one spindle)
meets a workload shift to heavy sequential scans.  Without the
controller the scan table's single disk saturates while the other three
idle.  With the controller the monitor's fitted workload drifts, the
detector fires, a warm-started re-solve spreads the scan table, and a
throttled background copy brings the new layout online — after which
the measured max utilization sits strictly below the frozen layout's.

The run also audits the migration mechanics: the copy is real simulator
I/O, so foreground scan throughput is observably lower while it runs
than in the controller-less run over the same interval, and recovers
once the placement map swaps.
"""

import json
import os

import numpy as np

from benchmarks.conftest import RESULTS_DIR, report
from repro import units
from repro.core.layout import Layout
from repro.core.problem import TargetSpec
from repro.experiments.reporting import format_table
from repro.models.analytic import analytic_disk_target_model
from repro.online.controller import ControllerConfig, OnlineController
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.streams import SimContext, SteadyStream
from repro.storage.target import StorageTarget
from repro.workload.spec import ObjectWorkload

N_DISKS = 4
CAPACITY = units.mib(400)
SIZES = {
    "orders": units.mib(96),
    "history": units.mib(64),
    "lineitem": units.mib(192),
}

#: The layout in effect when the run starts: solved long ago for the
#: OLTP phase, when lineitem was cold — OLTP tables spread over three
#: spindles, lineitem parked whole on the fourth.
INITIAL = Layout(
    [
        [1 / 3, 1 / 3, 1 / 3, 0.0],   # orders
        [1 / 3, 1 / 3, 1 / 3, 0.0],   # history
        [0.0, 0.0, 0.0, 1.0],         # lineitem
    ],
    ["orders", "history", "lineitem"],
    ["d%d" % j for j in range(N_DISKS)],
)

#: What that layout was solved for (the controller's drift baseline).
#: Rates match what the phase-A closed-loop streams actually achieve.
SOLVED_FOR = [
    ObjectWorkload("orders", read_rate=130.0, write_rate=35.0),
    ObjectWorkload("history", read_rate=55.0, write_rate=15.0),
    ObjectWorkload("lineitem"),
]

T_DRIFT = 30.0    # OLTP -> scan phase switch
T_END = 100.0
SAMPLE_S = 1.0

CONFIG = ControllerConfig(
    check_interval_s=4.0,
    monitor_window_s=1.0,
    monitor_halflife_s=6.0,
    util_degradation=0.30,
    divergence_threshold=0.60,
    util_ceiling=0.95,
    patience=2,
    cooldown_s=20.0,
    min_gain=0.10,
    amortization_s=300.0,
    migration_chunk=units.mib(1),
    migration_window=1,
    migration_pace_s=0.04,
    regular=False,
)


def _solve_targets():
    return [
        TargetSpec("d%d" % j, CAPACITY, analytic_disk_target_model("d%d" % j))
        for j in range(N_DISKS)
    ]


class _DriftRun:
    """One phased simulation, with or without the controller."""

    def __init__(self, controlled):
        self.engine = SimulationEngine()
        self.targets = [
            StorageTarget(DiskDrive("d%d" % j, CAPACITY), self.engine)
            for j in range(N_DISKS)
        ]
        placement = PlacementMap(
            SIZES, INITIAL.fractions_by_name(), [CAPACITY] * N_DISKS
        )
        self.ctx = SimContext(self.engine, placement, self.targets)
        self.controller = None
        if controlled:
            self.controller = OnlineController(
                targets=_solve_targets(),
                object_sizes=SIZES,
                initial_layout=INITIAL,
                solved_workloads=SOLVED_FOR,
                ctx=self.ctx,
                config=CONFIG,
            ).start()

        self.scan_completions = 0
        self.engine.add_completion_observer(self._count)
        self.samples = []          # (time, [busy..], scan_completions)
        self._oltp = []
        self._scans = []

    def _count(self, record):
        if record.obj == "lineitem":
            self.scan_completions += 1

    def _stream(self, obj, kind, think_s, run_count=1, window=1, seed=0):
        rng = np.random.default_rng(seed)
        return SteadyStream(
            self.ctx, obj, run_count=run_count, rng=rng, window=window,
            kind=kind, think_s=think_s,
        ).start()

    def _start_oltp(self):
        for i in range(5):
            self._oltp.append(self._stream("orders", "read", 0.03, seed=i))
        for i in range(2):
            self._oltp.append(
                self._stream("orders", "write", 0.05, seed=10 + i))
        for i in range(2):
            self._oltp.append(
                self._stream("history", "read", 0.03, seed=20 + i))
        self._oltp.append(self._stream("history", "write", 0.06, seed=30))

    def _switch_to_scans(self):
        for stream in self._oltp:
            stream.stop()
        # A residual trickle of OLTP survives the phase change.
        self._oltp = [self._stream("orders", "read", 0.06, seed=40)]
        for i in range(3):
            self._scans.append(self._stream(
                "lineitem", "read", 0.004, run_count=64, window=2,
                seed=50 + i,
            ))

    def _sample(self):
        busy = [
            sum(s.busy_time for s in t._servers) for t in self.targets
        ]
        self.samples.append((self.engine.now, busy, self.scan_completions))
        if self.engine.now < T_END - SAMPLE_S / 2:
            self.engine.schedule(SAMPLE_S, self._sample)

    def run(self):
        self._start_oltp()
        self.engine.schedule(T_DRIFT, self._switch_to_scans)
        self.engine.schedule(SAMPLE_S, self._sample)
        self.engine.run(until=T_END)
        if self.controller is not None:
            self.controller.stop()
        return self

    # -- windowed metrics ------------------------------------------------

    def max_util_series(self):
        """(window end time, max-across-disks utilization) per sample."""
        series = []
        for prev, cur in zip(self.samples, self.samples[1:]):
            dt = cur[0] - prev[0]
            deltas = [b1 - b0 for b0, b1 in zip(prev[1], cur[1])]
            series.append((cur[0], max(deltas) / dt))
        return series

    def mean_max_util(self, t0, t1):
        values = [u for t, u in self.max_util_series() if t0 < t <= t1]
        return sum(values) / len(values)

    def scan_rate(self, t0, t1):
        """Foreground scan completions per second over [t0, t1]."""
        points = [(t, c) for t, _, c in self.samples]
        before = max((p for p in points if p[0] <= t0), default=points[0])
        after = max((p for p in points if p[0] <= t1), default=points[-1])
        if after[0] <= before[0]:
            return 0.0
        return (after[1] - before[1]) / (after[0] - before[0])


def test_online_drift_controller(benchmark):
    def run():
        return _DriftRun(controlled=False).run(), \
            _DriftRun(controlled=True).run()

    off, on = benchmark.pedantic(run, rounds=1, iterations=1)
    log = on.controller.log

    os.makedirs(RESULTS_DIR, exist_ok=True)
    events_path = os.path.join(RESULTS_DIR, "online_drift_events.jsonl")
    log.to_jsonl(events_path)

    accepts = log.of_kind("accept")
    migrations = [e for e in log.of_kind("migrated") if not e["virtual"]]
    assert accepts, "controller never accepted a re-solve"
    assert migrations, "accepted layout never migrated"
    t_accept = accepts[0]["time"]
    t_done = migrations[0]["time"]
    steady0 = max(t_done + 10.0, T_DRIFT + 20.0)

    off_steady = off.mean_max_util(steady0, T_END)
    on_steady = on.mean_max_util(steady0, T_END)
    off_scan = off.scan_rate(steady0, T_END)
    on_scan = on.scan_rate(steady0, T_END)
    off_during = off.scan_rate(t_accept, t_done)
    on_during = on.scan_rate(t_accept, t_done)
    on_after = on.scan_rate(t_done + 2.0, min(t_done + 12.0, T_END))

    report("online_drift", format_table(
        ["Metric", "controller OFF", "controller ON"],
        [
            ["steady max utilization after drift",
             "%.3f" % off_steady, "%.3f" % on_steady],
            ["scan throughput after drift (req/s)",
             "%.0f" % off_scan, "%.0f" % on_scan],
            ["scan throughput during migration (req/s)",
             "%.0f" % off_during, "%.0f" % on_during],
            ["re-solves accepted", "0", "%d" % on.controller.resolves],
            ["data migrated (MiB)", "0",
             "%.0f" % (migrations[0]["bytes_moved"] / units.mib(1))],
            ["migration wall time (s)", "-",
             "%.1f" % migrations[0]["elapsed_s"]],
        ],
        title="Online controller under OLTP -> scan drift "
              "(drift at t=%.0fs, horizon %.0fs)" % (T_DRIFT, T_END),
    ))

    # The controller re-solved at least once, boundedly.
    assert 1 <= on.controller.resolves <= CONFIG.max_resolves

    # Decisions landed in the JSONL event log.
    with open(events_path) as handle:
        kinds = {json.loads(line)["kind"] for line in handle if line.strip()}
    assert {"baseline", "check", "trigger", "accept", "migrated"} <= kinds

    # After the drift settles, the re-solved layout's measured max
    # utilization is strictly below the frozen layout's.
    assert on_steady < off_steady * 0.9, (on_steady, off_steady)

    # Migration ran as throttled background I/O: the foreground scans
    # were observably slower than the uncontrolled run over the same
    # interval, and recovered once the placement switched.
    assert t_done - t_accept > 1.0
    assert on_during < off_during * 0.97, (on_during, off_during)
    assert on_after > on_during, (on_after, on_during)
