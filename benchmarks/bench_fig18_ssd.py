"""Paper Figure 18: four disks plus an SSD of varying capacity, OLAP8-63.

The advisor lays the TPC-H objects out across the disks and the SSD.
The paper's shape: SEE performs poorly because of the device disparity;
putting everything on the SSD (when it fits) is much better; the
optimized layout beats both by using the SSD for what it is good at
while still exploiting the disks — and it keeps winning when the SSD is
far too small to hold the database (down to 4 GB against 9.4 GB of
objects, where the paper still sees 1.42x over SEE).
"""

from benchmarks.conftest import report
from repro.baselines.heuristics import all_on_target_layout
from repro.db.workloads import OLAP8_63
from repro.errors import LayoutError
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import disks_plus_ssd

PAPER = {32: "1.96x", 10: "1.9x", 6: "1.94x", 4: "1.42x"}


def test_fig18_ssd_capacities(benchmark, lab):
    def run():
        database = lab.tpch()
        profiles = lab.olap_profiles(OLAP8_63)
        out = {}
        for ssd_gib in (32, 10, 6, 4):
            specs = disks_plus_ssd(lab.scale, ssd_capacity_gib=ssd_gib)
            key = "OLAP8-63/ssd-%d" % ssd_gib
            see = lab.traced_see(key, database, profiles, specs,
                                 concurrency=OLAP8_63.concurrency)
            # The capacity-squeezed SSD problems have rough landscapes;
            # give the solver an extra restart (the paper's Figure 4
            # repeat loop exists for exactly this).
            advised = lab.advised(key, database, profiles, specs,
                                  concurrency=OLAP8_63.concurrency,
                                  restarts=2)
            optimized = lab.measure(
                database, profiles,
                advised.recommended.fractions_by_name(), specs,
                concurrency=OLAP8_63.concurrency, name="optimized",
            )
            row = {"see": see.elapsed_s, "optimized": optimized.elapsed_s}
            try:
                ssd_only = all_on_target_layout(
                    database, [s.name for s in specs], len(specs) - 1,
                    capacity=specs[-1].capacity,
                )
                row["ssd_only"] = lab.measure(
                    database, profiles, ssd_only.fractions_by_name(), specs,
                    concurrency=OLAP8_63.concurrency, name="ssd-only",
                ).elapsed_s
            except LayoutError:
                row["ssd_only"] = None  # SSD too small, as in the paper
            out[ssd_gib] = row
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for ssd_gib in (32, 10, 6, 4):
        row = results[ssd_gib]
        rows.append([
            "%d GB" % ssd_gib,
            "%.0f" % row["see"],
            "%.0f" % row["ssd_only"] if row["ssd_only"] else "n/a",
            "%.0f" % row["optimized"],
            "%.2fx" % (row["see"] / row["optimized"]),
            PAPER[ssd_gib],
        ])
    report("fig18_ssd", format_table(
        ["SSD cap.", "SEE (s)", "All-on-SSD (s)", "Optimized (s)",
         "Speedup vs SEE", "Paper"],
        rows,
        title="Figure 18 — four disks + SSD, OLAP8-63",
    ))

    for ssd_gib, row in results.items():
        # Optimized beats SEE at every SSD capacity.
        assert row["optimized"] < row["see"], ssd_gib
        # And beats or matches the SSD-only layout where that exists.
        if row["ssd_only"] is not None:
            assert row["optimized"] <= row["ssd_only"] * 1.1
    # A small SSD is too small to hold everything (4 GB vs 9.4 GB data).
    assert results[4]["ssd_only"] is None
    # Yet the advisor still extracts a benefit from it relative to the
    # disk-only optimized result (paper: 13608 s -> 8529 s).
