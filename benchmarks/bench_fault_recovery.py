"""Fail-stop recovery: resilience ON vs OFF.

A layout solved for healthy hardware meets a device failure: ``orders``
lives entirely on d0, and at ``T_FAIL`` d0 fail-stops — every request
to it errors out after the host's error-return latency.  Without the
resilience layer the closed-loop readers retry against the dead device
forever: goodput for ``orders`` drops to zero and the error counter
climbs until the end of the run.  With it, the failure detector turns
the injected fault into an emergency re-solve that bypasses the drift
gates, the evacuation copy restores d0's chunks from redundancy onto
the survivors, the placement map swaps — and ``orders`` is served
again, with the error stream silenced.

The run reports time-to-recover and the before/after goodput of both
configurations, and commits the numbers to
``benchmarks/results/BENCH_fault_recovery.json``.
"""

import argparse
import json
import os

import numpy as np

from benchmarks.conftest import RESULTS_DIR, report
from repro import units
from repro.core.layout import Layout
from repro.core.problem import TargetSpec
from repro.experiments.reporting import format_table
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.models.analytic import analytic_disk_target_model
from repro.online.controller import ControllerConfig, OnlineController
from repro.storage.disk import DiskDrive
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.streams import SimContext, SteadyStream
from repro.storage.target import StorageTarget
from repro.workload.spec import ObjectWorkload

N_DISKS = 3
CAPACITY = units.mib(256)
SIZES = {"orders": units.mib(96), "lineitem": units.mib(96)}

#: The healthy-hardware layout: ``orders`` parked whole on d0,
#: ``lineitem`` striped over the other two spindles.
INITIAL = Layout(
    [
        [1.0, 0.0, 0.0],      # orders
        [0.0, 0.5, 0.5],      # lineitem
    ],
    ["orders", "lineitem"],
    ["d%d" % j for j in range(N_DISKS)],
)

#: What that layout was solved for; rates match what the closed-loop
#: streams achieve, so the drift detector stays quiet and every event
#: in the run is the fault's doing.
SOLVED_FOR = [
    ObjectWorkload("orders", read_rate=90.0),
    ObjectWorkload("lineitem", read_rate=60.0),
]

T_FAIL = 25.0
SAMPLE_S = 1.0

CONFIG = ControllerConfig(
    check_interval_s=4.0,
    monitor_window_s=1.0,
    monitor_halflife_s=8.0,
    patience=3,
    cooldown_s=30.0,
    min_gain=0.10,
    amortization_s=300.0,
    migration_chunk=units.mib(1),
    migration_window=2,
    migration_pace_s=0.02,
    regular=False,
)


def _solve_targets():
    return [
        TargetSpec("d%d" % j, CAPACITY, analytic_disk_target_model("d%d" % j))
        for j in range(N_DISKS)
    ]


class _FaultRun:
    """One fail-stop simulation, with or without the resilience layer."""

    def __init__(self, resilient, t_end):
        self.t_end = t_end
        self.engine = SimulationEngine()
        self.targets = [
            StorageTarget(DiskDrive("d%d" % j, CAPACITY), self.engine)
            for j in range(N_DISKS)
        ]
        placement = PlacementMap(
            SIZES, INITIAL.fractions_by_name(), [CAPACITY] * N_DISKS
        )
        self.ctx = SimContext(self.engine, placement, self.targets)
        self.controller = None
        if resilient:
            self.controller = OnlineController(
                targets=_solve_targets(),
                object_sizes=SIZES,
                initial_layout=INITIAL,
                solved_workloads=SOLVED_FOR,
                ctx=self.ctx,
                config=CONFIG,
            ).start()
            plan = FaultPlan(
                [FaultEvent(time=T_FAIL, kind="fail-stop", target="d0")]
            )
            self.controller.attach_faults(
                FaultInjector(plan, targets=self.targets)
            )
        else:
            # The same hardware fault, with nobody watching for it.
            self.engine.schedule(T_FAIL, self.targets[0].fail)

        self.completions = {"orders": 0, "lineitem": 0}
        self.engine.add_completion_observer(self._count)
        self.samples = []   # (time, orders done, errors total, [busy..])

    def _count(self, record):
        if record.obj in self.completions:
            self.completions[record.obj] += 1

    def _sample(self):
        self.samples.append((
            self.engine.now,
            self.completions["orders"],
            sum(t.errors for t in self.targets),
            [sum(s.busy_time for s in t._servers) for t in self.targets],
        ))
        if self.engine.now < self.t_end - SAMPLE_S / 2:
            self.engine.schedule(SAMPLE_S, self._sample)

    def run(self):
        rng = np.random.default_rng
        for i in range(3):
            SteadyStream(self.ctx, "orders", rng=rng(i), kind="read",
                         think_s=0.03).start()
        for i in range(2):
            SteadyStream(self.ctx, "lineitem", rng=rng(10 + i), kind="read",
                         think_s=0.03).start()
        self.engine.schedule(SAMPLE_S, self._sample)
        self.engine.run(until=self.t_end)
        if self.controller is not None:
            self.controller.stop()
        return self

    # -- windowed metrics ------------------------------------------------

    def _rate(self, column, t0, t1):
        points = [(t, (o, e)[column]) for t, o, e, _ in self.samples]
        before = max((p for p in points if p[0] <= t0), default=points[0])
        after = max((p for p in points if p[0] <= t1), default=points[-1])
        if after[0] <= before[0]:
            return 0.0
        return (after[1] - before[1]) / (after[0] - before[0])

    def orders_goodput(self, t0, t1):
        return self._rate(0, t0, t1)

    def error_rate(self, t0, t1):
        return self._rate(1, t0, t1)

    def max_utilization(self, t0, t1):
        """Mean over [t0, t1] of the busiest disk's utilization — the
        quantity the layout solver minimizes.  Measured over the whole
        array: a dead disk's column reads 0, so when the work it should
        absorb is lost rather than re-routed, the system's utilization
        stays depressed."""
        points = [(t, busy) for t, _, _, busy in self.samples]
        windows = [
            max(b1 - b0 for b0, b1 in zip(prev[1], cur[1]))
            / (cur[0] - prev[0])
            for prev, cur in zip(points, points[1:])
            if t0 < cur[0] <= t1
        ]
        return sum(windows) / len(windows)


def run_comparison(t_end=80.0):
    off = _FaultRun(resilient=False, t_end=t_end).run()
    on = _FaultRun(resilient=True, t_end=t_end).run()

    log = on.controller.log
    migrations = [e for e in log.of_kind("migrated") if not e["virtual"]]
    t_recovered = migrations[0]["time"] if migrations else None

    pre = (5.0, T_FAIL)
    post = (min(t_recovered + 5.0, t_end - 10.0) if t_recovered
            else t_end - 10.0, t_end)
    payload = {
        "benchmark": "fault_recovery",
        "t_fail": T_FAIL,
        "horizon_s": t_end,
        "recovery_s": (round(t_recovered - T_FAIL, 2)
                       if t_recovered is not None else None),
        "off": {
            "goodput_pre": round(off.orders_goodput(*pre), 1),
            "goodput_post": round(off.orders_goodput(*post), 1),
            "max_util_pre": round(off.max_utilization(*pre), 3),
            "max_util_post": round(off.max_utilization(*post), 3),
            "error_rate_post": round(off.error_rate(*post), 1),
            "errors_total": sum(t.errors for t in off.targets),
        },
        "on": {
            "goodput_pre": round(on.orders_goodput(*pre), 1),
            "goodput_post": round(on.orders_goodput(*post), 1),
            "max_util_pre": round(on.max_utilization(*pre), 3),
            "max_util_post": round(on.max_utilization(*post), 3),
            "error_rate_post": round(on.error_rate(*post), 1),
            "errors_total": sum(t.errors for t in on.targets),
            "emergencies": on.controller.emergency_resolves,
            "bytes_evacuated": (migrations[0]["bytes_moved"]
                                if migrations else 0),
            "fraction_on_dead": round(
                float(on.controller.layout.row("orders")[0]), 6
            ),
        },
    }
    return off, on, payload


def check_recovery(payload):
    """The resilience claims the JSON is committed to prove."""
    on, off = payload["on"], payload["off"]
    assert on["emergencies"] == 1, payload
    assert on["bytes_evacuated"] > 0, payload
    assert on["fraction_on_dead"] <= 1e-9, payload
    assert payload["recovery_s"] is not None, payload
    # OFF stays degraded: orders goodput collapses, errors never stop.
    assert off["goodput_post"] < 0.1 * off["goodput_pre"], payload
    assert off["error_rate_post"] > 0, payload
    # ON recovers: goodput returns and the error stream is silenced.
    assert on["goodput_post"] > 0.5 * on["goodput_pre"], payload
    assert on["error_rate_post"] <= 1.0, payload
    assert on["errors_total"] < off["errors_total"], payload
    # Max utilization recovers with ON (the survivors absorb the full
    # offered load again) and stays depressed with OFF (the orders
    # work is simply lost).
    assert on["max_util_post"] > 0.6 * on["max_util_pre"], payload
    assert off["max_util_post"] < 0.75 * on["max_util_post"], payload


def _report(payload):
    on, off = payload["on"], payload["off"]
    report("fault_recovery", format_table(
        ["Metric", "resilience OFF", "resilience ON"],
        [
            ["orders goodput before failure (req/s)",
             "%.0f" % off["goodput_pre"], "%.0f" % on["goodput_pre"]],
            ["orders goodput at end of run (req/s)",
             "%.0f" % off["goodput_post"], "%.0f" % on["goodput_post"]],
            ["max utilization before failure",
             "%.3f" % off["max_util_pre"], "%.3f" % on["max_util_pre"]],
            ["max utilization at end of run",
             "%.3f" % off["max_util_post"], "%.3f" % on["max_util_post"]],
            ["error rate at end of run (err/s)",
             "%.0f" % off["error_rate_post"],
             "%.0f" % on["error_rate_post"]],
            ["errors over the whole run",
             "%d" % off["errors_total"], "%d" % on["errors_total"]],
            ["emergency re-solves", "0", "%d" % on["emergencies"]],
            ["data evacuated (MiB)", "0",
             "%.0f" % (on["bytes_evacuated"] / units.mib(1))],
            ["time to recover (s)", "never",
             "%.1f" % payload["recovery_s"]],
        ],
        title="Fail-stop of d0 at t=%.0fs (horizon %.0fs)"
              % (payload["t_fail"], payload["horizon_s"]),
    ))


def test_fault_recovery_smoke(tmp_path):
    """CI smoke: the full ON/OFF comparison on a short horizon."""
    _, _, payload = run_comparison(t_end=70.0)
    check_recovery(payload)
    out = tmp_path / "BENCH_fault_recovery.json"
    out.write_text(json.dumps(payload, indent=2))
    assert json.loads(out.read_text())["benchmark"] == "fault_recovery"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon", type=float, default=80.0,
                        help="simulated seconds per run (default 80)")
    parser.add_argument(
        "--out",
        default=os.path.join(RESULTS_DIR, "BENCH_fault_recovery.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    off, on, payload = run_comparison(t_end=args.horizon)
    check_recovery(payload)
    _report(payload)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s (recovered %.1fs after the failure; OFF errored "
          "%d times, ON %d)"
          % (args.out, payload["recovery_s"],
             payload["off"]["errors_total"], payload["on"]["errors_total"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
