"""Serving-layer load test: many tenants, one solver pool.

Boots the real service — :class:`~repro.serve.http.HttpFrontend` on a
TCP port — and drives it with a closed-loop load generator over real
sockets, one keep-alive connection per tenant:

1. **create** — N tenants admitted (``max-rate``: all at once;
   ``ramp``: staggered), each one's initial advise running on the
   shared pool under the bounded admission queue (429s are retried
   closed-loop and counted);
2. **advise storm** — every tenant issues back-to-back advises, once
   with request tracing off and once with it on: the traced run is the
   headline p50/p99 (it is the production configuration) and the pair
   is the tracing-overhead gate (traced p99 within 5% of untraced, or
   within an absolute noise floor);
3. **feed** — every tenant streams a drifted trace chunk, so the
   server-side controllers run monitor → drift → re-solve on the pool;
   re-solve throughput is the pool's completed-job rate over this
   phase;
4. **fairness** — per-tenant charged solver seconds at equal weight;
   the spread (max/min) must stay ≤ 2× even under saturation.

The traced phases also feed the per-tenant SLO engine and (with
``--access-log``) the JSONL access log; the payload reports SLO
attainment across tenants and the queue-wait vs solve-time p50/p99
split recovered from the log.

Results go to ``benchmarks/results/BENCH_serve.json``.
"""

import argparse
import asyncio
import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, report
from repro.experiments.reporting import format_table
from repro.serve.client import ServeClient, ServeHttpError
from repro.serve.http import HttpFrontend
from repro.serve.service import AdvisorService, ServeConfig

#: Deliberately tiny per-tenant problem: the point is many tenants on
#: one pool, not one big solve.  The targets are heterogeneous (disk +
#: SSD) so a workload inversion genuinely changes the optimal layout —
#: the feed phase's re-solves then produce real accepted migrations.
PROBLEM = {
    "stripe_size": 1 << 20,
    "targets": [
        {"name": "d0", "capacity": 8 << 20, "kind": "disk15k"},
        {"name": "ssd", "capacity": 4 << 20, "kind": "ssd"},
    ],
    "objects": [
        {"name": "a", "size": 3 << 20, "read_rate": 120.0, "run_count": 4},
        {"name": "b", "size": 3 << 20, "read_rate": 20.0, "run_count": 4},
    ],
}

#: Aggressive controller: one drifted chunk is enough to re-solve.
CONTROLLER = {
    "check_interval_s": 2.0,
    "patience": 1,
    "cooldown_s": 0.0,
    "min_gain": 0.001,
    "amortization_s": 10000.0,
    "monitor_halflife_s": 4.0,
}

#: Retry pause after a 429 (closed loop: the tenant waits, not drops).
BACKOFF_S = 0.05

#: Tracing-overhead gate: traced advise p99 must stay within 5% of the
#: untraced p99, OR within this absolute floor — small runs (CI smoke)
#: have single-digit sample counts where a ratio alone is pure noise.
OVERHEAD_RATIO_BOUND = 1.05
OVERHEAD_NOISE_FLOOR_MS = 50.0


def drifted_chunk(horizon_s=12.0):
    """A trace whose rates invert the solved-for workload: ``b`` hot."""
    records = []
    for obj, rate in (("a", 20.0), ("b", 200.0)):
        t, step = 0.0, 1.0 / rate
        while t < horizon_s:
            records.append({"obj": obj, "finish_time": round(t, 6),
                            "kind": "read", "size": 8192,
                            "service_time": 0.002})
            t += step
    records.sort(key=lambda r: r["finish_time"])
    return records


def percentile(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


async def _with_backpressure(call, counters):
    """Closed-loop request: retry 429s after a pause, count them."""
    while True:
        started = time.perf_counter()
        try:
            result = await call()
        except ServeHttpError as error:
            if error.status == 429:
                counters["rejected"] += 1
                await asyncio.sleep(BACKOFF_S)
                continue
            raise
        return time.perf_counter() - started, result


async def run_bench(tenants=120, mode="max-rate", workers=None,
                    use_processes=True, advises=3, feed=True,
                    max_pending=48, fairness_window_s=20.0,
                    access_log=None):
    workers = workers or max(2, (os.cpu_count() or 2) - 1)
    config = ServeConfig(port=0, workers=workers,
                         use_processes=use_processes,
                         max_pending=max_pending,
                         feed_threads=max(4, workers),
                         access_log=access_log)
    frontend = HttpFrontend(AdvisorService(config))
    await frontend.start()
    clients = [ServeClient(frontend.host, frontend.port)
               for _ in range(tenants)]
    counters = {"rejected": 0}
    payload = {
        "benchmark": "serve",
        "tenants": tenants,
        "mode": mode,
        "workers": workers,
        "use_processes": frontend.service.pool.use_processes,
        "max_pending": max_pending,
        "advises_per_tenant": advises,
    }
    try:
        # -- phase 1: create ------------------------------------------
        ramp_s = tenants * 0.02 if mode == "ramp" else 0.0

        async def create(index):
            if ramp_s:
                await asyncio.sleep(ramp_s * index / tenants)
            return await _with_backpressure(
                lambda: clients[index].create_tenant({
                    "tenant_id": "t%04d" % index,
                    "problem": PROBLEM,
                    "controller": CONTROLLER,
                }),
                counters,
            )
        wall = time.perf_counter()
        created = await asyncio.gather(*(create(i) for i in range(tenants)))
        create_wall = time.perf_counter() - wall
        create_lat = [latency for latency, _ in created]
        payload["create"] = {
            "wall_s": round(create_wall, 3),
            "p50_ms": round(percentile(create_lat, 0.50) * 1e3, 2),
            "p99_ms": round(percentile(create_lat, 0.99) * 1e3, 2),
            "rate_per_s": round(tenants / create_wall, 2),
        }

        # -- phase 2: advise storm, untraced then traced --------------
        async def storm(index):
            latencies = []
            for _ in range(advises):
                latency, _ = await _with_backpressure(
                    lambda: clients[index].advise("t%04d" % index),
                    counters,
                )
                latencies.append(latency)
            return latencies

        async def run_storm():
            wall = time.perf_counter()
            latencies = [s for per in await asyncio.gather(
                *(storm(i) for i in range(tenants))) for s in per]
            return latencies, time.perf_counter() - wall

        # Identical storm twice: tracing off (baseline), then on (the
        # production configuration and the headline numbers).
        frontend.service.config.trace_requests = False
        untraced, _ = await run_storm()
        frontend.service.config.trace_requests = True
        lat, advise_wall = await run_storm()
        payload["advise"] = {
            "requests": len(lat),
            "wall_s": round(advise_wall, 3),
            "p50_ms": round(percentile(lat, 0.50) * 1e3, 2),
            "p99_ms": round(percentile(lat, 0.99) * 1e3, 2),
            "throughput_rps": round(len(lat) / advise_wall, 2),
        }
        untraced_p99 = percentile(untraced, 0.99) * 1e3
        traced_p99 = payload["advise"]["p99_ms"]
        payload["tracing_overhead"] = {
            "untraced_p50_ms": round(percentile(untraced, 0.50) * 1e3, 2),
            "untraced_p99_ms": round(untraced_p99, 2),
            "traced_p50_ms": payload["advise"]["p50_ms"],
            "traced_p99_ms": traced_p99,
            "p99_ratio": (round(traced_p99 / untraced_p99, 4)
                          if untraced_p99 > 0 else None),
            "p99_delta_ms": round(traced_p99 - untraced_p99, 2),
        }

        # -- phase 3: feed (server-side re-solves) --------------------
        if feed:
            chunk = drifted_chunk()
            before = (await clients[0].status())["queue"]["completed"]
            wall = time.perf_counter()
            feeds = await asyncio.gather(*(
                _with_backpressure(
                    lambda i=i: clients[i].feed("t%04d" % i, chunk),
                    counters,
                ) for i in range(tenants)
            ))
            feed_wall = time.perf_counter() - wall
            after = (await clients[0].status())["queue"]["completed"]
            accepted = sum(result[1]["resolves"]
                           for _, (_, result) in enumerate(feeds))
            payload["resolve"] = {
                "wall_s": round(feed_wall, 3),
                "solver_jobs": after - before,
                "throughput_per_s": round((after - before) / feed_wall, 2),
                "accepted_migrations": accepted,
            }

        # -- phase 4: fairness under saturation -----------------------
        # Count-boxed phases measure job-duration variance, not the
        # scheduler: with a fixed number of jobs per tenant, total
        # charged time is the tenant's own jobs no matter the order.
        # Here every tenant stays continuously backlogged for a fixed
        # wall-clock window; the min-virtual-time dispatcher then hands
        # out solver seconds, and the per-tenant *delta* over the
        # window is the scheduler's actual allocation.
        # Fairness is a property of the *scheduler*, so every tenant
        # must be able to hold a queued job: with an admission bound
        # below the tenant count, who gets solver time is decided by
        # 429-retry luck at the door, not by virtual time inside.  The
        # backpressure path was exercised (and counted) above; here the
        # bound is lifted so the dispatcher is what's being measured.
        frontend.service.scheduler.max_pending = tenants + workers

        async def served_s(index):
            status = await clients[index].tenant_status("t%04d" % index)
            return status["served_solver_s"]

        before = await asyncio.gather(*(served_s(i)
                                        for i in range(tenants)))
        deadline = time.perf_counter() + fairness_window_s

        async def saturate(index):
            while time.perf_counter() < deadline:
                await _with_backpressure(
                    lambda: clients[index].advise("t%04d" % index),
                    counters,
                )
        await asyncio.gather(*(saturate(i) for i in range(tenants)))
        after = await asyncio.gather(*(served_s(i)
                                       for i in range(tenants)))
        deltas = [b - a for a, b in zip(before, after)]
        spread = (max(deltas) / min(deltas)) if min(deltas) > 0 else None
        payload["fairness"] = {
            "window_s": fairness_window_s,
            "spread": round(spread, 3) if spread else spread,
            "min_solver_s": round(min(deltas), 4),
            "max_solver_s": round(max(deltas), 4),
        }

        # -- SLO attainment across every traced advise ----------------
        slo = await clients[0].slo()
        snaps = list(slo["tenants"].values())
        if snaps:
            payload["slo"] = {
                "objective": slo["default_objective"],
                "tenants": len(snaps),
                "attained_tenants": sum(1 for s in snaps if s["attained"]),
                "min_attainment": round(
                    min(s["attainment"] for s in snaps), 4),
                "mean_attainment": round(
                    sum(s["attainment"] for s in snaps) / len(snaps), 4),
                "worst_burn_rate": round(
                    max(s["worst_burn_rate"] for s in snaps), 3),
            }

        # -- queue-wait vs solve-time split from the access log -------
        if access_log is not None:
            entries = [json.loads(line)
                       for line in open(access_log).read().splitlines()]
            waits = [e["queue_wait_s"] for e in entries
                     if e["route"] == "advise"
                     and e.get("queue_wait_s") is not None]
            solves = [e["solve_s"] for e in entries
                      if e["route"] == "advise"
                      and e.get("solve_s") is not None]
            if waits and solves:
                payload["latency_breakdown"] = {
                    "advises_logged": len(waits),
                    "queue_wait_p50_ms": round(
                        percentile(waits, 0.50) * 1e3, 2),
                    "queue_wait_p99_ms": round(
                        percentile(waits, 0.99) * 1e3, 2),
                    "solve_p50_ms": round(
                        percentile(solves, 0.50) * 1e3, 2),
                    "solve_p99_ms": round(
                        percentile(solves, 0.99) * 1e3, 2),
                }

        status = await clients[0].status()
        payload["rejected_429"] = counters["rejected"]
        payload["queue"] = status["queue"]
        payload["pool_generation"] = status["pool"]["generation"]
    finally:
        for client in clients:
            await client.close()
        await frontend.stop()
    return payload


def check_serve(payload, p99_bound_s=None):
    """The serving claims BENCH_serve.json is committed to prove."""
    advise = payload["advise"]
    assert advise["requests"] == (payload["tenants"]
                                  * payload["advises_per_tenant"]), payload
    # Every tenant was served end to end despite admission pressure.
    assert payload["queue"]["pending"] == 0, payload
    assert payload["queue"]["inflight"] == 0, payload
    # No worker crash during the run.
    assert payload["pool_generation"] == 0, payload
    # Weighted-fair scheduling: equal weights → near-equal solver time.
    spread = payload["fairness"]["spread"]
    assert spread is not None and spread <= 2.0, payload
    if "resolve" in payload:
        assert payload["resolve"]["solver_jobs"] >= payload["tenants"], \
            payload
        assert payload["resolve"]["throughput_per_s"] > 0, payload
    if p99_bound_s is not None:
        assert advise["p99_ms"] <= p99_bound_s * 1e3, payload
    # Request tracing must be near-free on the advise path.
    overhead = payload["tracing_overhead"]
    assert (overhead["p99_ratio"] is None
            or overhead["p99_ratio"] <= OVERHEAD_RATIO_BOUND
            or overhead["p99_delta_ms"] <= OVERHEAD_NOISE_FLOOR_MS), payload
    # Every tenant's traced advises landed in an SLO window.
    assert payload["slo"]["tenants"] == payload["tenants"], payload


def _report(payload):
    rows = [
        ["tenants (mode)", "%d (%s)" % (payload["tenants"],
                                        payload["mode"])],
        ["pool", "%d %s workers" % (
            payload["workers"],
            "process" if payload["use_processes"] else "thread")],
        ["create p50 / p99 (ms)", "%.1f / %.1f" % (
            payload["create"]["p50_ms"], payload["create"]["p99_ms"])],
        ["advise p50 / p99 (ms)", "%.1f / %.1f" % (
            payload["advise"]["p50_ms"], payload["advise"]["p99_ms"])],
        ["advise throughput (req/s)",
         "%.1f" % payload["advise"]["throughput_rps"]],
        ["admission rejections (429)", "%d" % payload["rejected_429"]],
        ["fairness spread (max/min solver s)",
         "%.2f" % payload["fairness"]["spread"]],
        ["tracing overhead (p99 traced/untraced)",
         "%s" % (payload["tracing_overhead"]["p99_ratio"] or "n/a")],
        ["SLO attainment (tenants met / total)",
         "%d / %d" % (payload["slo"]["attained_tenants"],
                      payload["slo"]["tenants"])],
        ["worst burn rate", "%.2f" % payload["slo"]["worst_burn_rate"]],
    ]
    if "latency_breakdown" in payload:
        split = payload["latency_breakdown"]
        rows.append(["queue wait p50 / p99 (ms)", "%.1f / %.1f" % (
            split["queue_wait_p50_ms"], split["queue_wait_p99_ms"])])
        rows.append(["solve p50 / p99 (ms)", "%.1f / %.1f" % (
            split["solve_p50_ms"], split["solve_p99_ms"])])
    if "resolve" in payload:
        rows.append(["re-solve throughput (jobs/s)",
                     "%.1f" % payload["resolve"]["throughput_per_s"]])
        rows.append(["accepted migrations",
                     "%d" % payload["resolve"]["accepted_migrations"]])
    report("serve", format_table(
        ["Metric", "Value"], rows,
        title="Advisor-as-a-service under %d concurrent tenants"
              % payload["tenants"],
    ))


def test_serve_bench_smoke(tmp_path):
    """CI smoke: a small closed-loop run over real sockets."""
    payload = asyncio.run(run_bench(
        tenants=8, advises=1, workers=2, use_processes=False,
        max_pending=8, fairness_window_s=6.0,
        access_log=str(tmp_path / "access.jsonl"),
    ))
    check_serve(payload, p99_bound_s=60.0)
    assert payload["slo"]["tenants"] == 8
    assert payload["tracing_overhead"]["traced_p99_ms"] > 0
    split = payload["latency_breakdown"]
    assert split["advises_logged"] >= 8
    assert split["queue_wait_p99_ms"] >= 0.0
    assert split["solve_p99_ms"] > 0.0
    out = tmp_path / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2))
    assert json.loads(out.read_text())["benchmark"] == "serve"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=120,
                        help="concurrent tenants (default 120)")
    parser.add_argument("--mode", choices=("max-rate", "ramp"),
                        default="max-rate",
                        help="create-phase schedule (default max-rate)")
    parser.add_argument("--advises", type=int, default=3,
                        help="advise requests per tenant (default 3)")
    parser.add_argument("--workers", type=int, default=None,
                        help="solver pool size (default: cores - 1)")
    parser.add_argument("--threads", action="store_true",
                        help="thread pool instead of worker processes")
    parser.add_argument("--max-pending", type=int, default=48,
                        help="admission bound (default 48: saturates)")
    parser.add_argument("--no-feed", action="store_true",
                        help="skip the server-side re-solve phase")
    parser.add_argument("--fairness-window", type=float, default=20.0,
                        metavar="SECONDS",
                        help="saturation window for the fairness "
                             "measurement (default 20)")
    parser.add_argument("--p99-bound", type=float, default=None,
                        metavar="SECONDS",
                        help="fail if advise p99 exceeds this")
    parser.add_argument("--access-log", default=None, metavar="FILE",
                        help="JSONL access log path (also the source of "
                             "the queue-wait vs solve-time breakdown)")
    parser.add_argument(
        "--out", default=os.path.join(RESULTS_DIR, "BENCH_serve.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    payload = asyncio.run(run_bench(
        tenants=args.tenants, mode=args.mode, workers=args.workers,
        use_processes=not args.threads, advises=args.advises,
        feed=not args.no_feed, max_pending=args.max_pending,
        fairness_window_s=args.fairness_window,
        access_log=args.access_log,
    ))
    check_serve(payload, p99_bound_s=args.p99_bound)
    _report(payload)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("wrote %s (%d tenants: advise p50 %.1fms p99 %.1fms, "
          "fairness spread %.2f, %d rejections)"
          % (args.out, payload["tenants"], payload["advise"]["p50_ms"],
             payload["advise"]["p99_ms"], payload["fairness"]["spread"],
             payload["rejected_429"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
