"""Storage target configurations used in the paper's evaluation.

The paper's testbed exposes four 18.4 GB 15K RPM SCSI drives (optionally
grouped into RAID0 sets by the Perc controller) and a 32 GB SATA SSD.
A :class:`DeviceSpec` describes one storage target declaratively so that
experiments can build fresh device instances per run and the calibration
cache can key models by device type.
"""

from dataclasses import dataclass
from typing import Tuple

from repro import units
from repro.storage.disk import DiskDrive, DiskParameters, ENTERPRISE_15K, NEARLINE_7200
from repro.storage.raid import Raid0Group, Raid1Mirror, Raid5Group
from repro.storage.ssd import SolidStateDrive, SsdParameters, SATA_SSD_2010

#: Paper testbed constants (bytes, before scaling).
DISK_CAPACITY = int(18.4 * units.GIB)
SSD_CAPACITY = 32 * units.GIB


def scaled_stripe(scale):
    """LVM stripe size for a scaled-down experiment: the full 1 MiB.

    Deliberately *not* scaled with the database.  The stripe size sets
    the per-target sequential run length in pages (stripe/page), which
    is the quantity the device readahead behaviour — and hence the
    whole interference story — depends on; shrinking it with the
    database would distort request-level dynamics.  The capacity
    side-effect of coarse stripes on scaled-down targets (per-object
    rounding to whole stripes) is handled by the placement slack in
    :func:`repro.experiments.runner.build_problem` instead.
    """
    del scale
    return units.DEFAULT_STRIPE_SIZE


@dataclass(frozen=True)
class DeviceSpec:
    """Declarative description of one storage target.

    Attributes:
        name: Target name.
        kind: ``"disk15k"``, ``"disk7200"``, ``"raid0"``, or ``"ssd"``.
        capacity: Capacity in bytes.
        n_members: RAID member count (1 for plain devices).
    """

    name: str
    kind: str
    capacity: int
    n_members: int = 1

    def build(self):
        """Create a fresh device instance."""
        if self.kind == "disk15k":
            return DiskDrive(self.name, self.capacity, ENTERPRISE_15K)
        if self.kind == "disk7200":
            return DiskDrive(self.name, self.capacity, NEARLINE_7200)
        if self.kind == "raid0":
            return Raid0Group(self.name, self.capacity, self.n_members,
                              ENTERPRISE_15K)
        if self.kind == "raid1":
            return Raid1Mirror(self.name, self.capacity, ENTERPRISE_15K)
        if self.kind == "raid5":
            return Raid5Group(self.name, self.capacity, self.n_members,
                              ENTERPRISE_15K)
        if self.kind == "ssd":
            return SolidStateDrive(self.name, self.capacity, SATA_SSD_2010)
        raise ValueError("unknown device kind %r" % self.kind)

    @property
    def model_key(self):
        """Cache key: device types with equal keys share cost models."""
        return (self.kind, self.n_members, int(self.capacity))


def disk_spec(name, scale=1.0, kind="disk15k"):
    """One of the testbed's 18.4 GB drives, scaled."""
    return DeviceSpec(name, kind, int(DISK_CAPACITY * scale))


def raid0_spec(name, n_members, scale=1.0):
    """A RAID0 group over ``n_members`` of the testbed drives."""
    return DeviceSpec(name, "raid0", int(DISK_CAPACITY * scale) * n_members,
                      n_members=n_members)


def ssd_spec(name, capacity_gib=32, scale=1.0):
    """The testbed SSD with a configurable capacity (paper Figure 18)."""
    return DeviceSpec(name, "ssd", int(capacity_gib * units.GIB * scale))


def four_disks(scale=1.0):
    """The homogeneous "1-1-1-1" configuration (paper §6.2)."""
    return [disk_spec("disk%d" % j, scale) for j in range(4)]


def config_3_1(scale=1.0):
    """The heterogeneous "3-1" configuration: 3-disk RAID0 + one disk."""
    return [raid0_spec("raid3", 3, scale), disk_spec("disk3", scale)]


def config_2_1_1(scale=1.0):
    """The heterogeneous "2-1-1" configuration: 2-disk RAID0 + 2 disks."""
    return [
        raid0_spec("raid2", 2, scale),
        disk_spec("disk2", scale),
        disk_spec("disk3", scale),
    ]


def disks_plus_ssd(scale=1.0, ssd_capacity_gib=32):
    """Four disks plus the SSD (paper §6.4's second experiment)."""
    return four_disks(scale) + [ssd_spec("ssd", ssd_capacity_gib, scale)]
