"""Rubicon-style workload characterization reports.

The paper's pipeline starts by characterizing a block-I/O trace; this
module renders that characterization for humans: a per-object table of
fitted workload parameters (the exact inputs the advisor will see), the
overlap matrix of the hottest objects, and per-target busy timelines —
everything a storage administrator would want to inspect before trusting
a recommendation.
"""

from repro.experiments.reporting import format_table
from repro.workload.analyzer import TraceAnalyzer
from repro.workload.trace_io import target_busy_series


def characterize(trace, duration=None, window_s=1.0, top=10):
    """Render a full characterization report for a trace.

    Args:
        trace: Completion records (e.g. ``result.trace``).
        duration: Observation duration; inferred when omitted.
        window_s: Window used for overlap estimation and busy series.
        top: How many of the hottest objects to show in detail.

    Returns:
        The report as a string.
    """
    analyzer = TraceAnalyzer(trace, duration=duration, window_s=window_s)
    specs = sorted(
        (analyzer.fit(obj) for obj in analyzer.objects),
        key=lambda spec: -spec.total_rate,
    )
    hottest = specs[:top]

    sections = []

    rows = [
        [
            spec.name,
            "%.1f" % spec.read_rate,
            "%.1f" % spec.write_rate,
            "%.0f" % spec.read_size,
            "%.1f" % spec.run_count,
        ]
        for spec in hottest
    ]
    sections.append(format_table(
        ["Object", "reads/s", "writes/s", "req size (B)", "run count"],
        rows,
        title="Workload characterization — %d objects, %.1f s observed"
              % (len(specs), analyzer.duration),
    ))

    names = [spec.name for spec in hottest]
    overlap_rows = []
    for spec in hottest:
        overlap_rows.append(
            [spec.name]
            + ["%.2f" % spec.overlap_with(other) for other in names]
        )
    sections.append(format_table(
        ["O_i[k]"] + names, overlap_rows,
        title="Overlap matrix (hottest %d objects)" % len(hottest),
    ))

    busy = target_busy_series(trace, window_s=window_s)
    busy_rows = []
    for target in sorted(busy):
        series = [fraction for _, fraction in busy[target]]
        mean = sum(series) / len(series)
        peak = max(series)
        bar = _bar(mean)
        busy_rows.append([target, "%.2f" % mean, "%.2f" % peak, bar])
    sections.append(format_table(
        ["Target", "mean busy", "peak busy", ""],
        busy_rows,
        title="Per-target busy fraction",
    ))

    return "\n\n".join(sections)


def _bar(fraction, width=24):
    """A small ASCII intensity bar."""
    filled = int(round(min(1.0, max(0.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)
