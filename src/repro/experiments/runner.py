"""End-to-end pipeline: trace → fit → calibrate → advise → measure.

The paper's methodology, step by step:

1. Run the workload on the operational system (here: the simulator under
   a baseline SEE layout) and record an I/O trace.
2. Fit a Rome-style workload description per object from the trace
   (:mod:`repro.workload.analyzer`, standing in for Rubicon).
3. Calibrate read/write cost models per device type
   (:mod:`repro.models.calibration`); models are cached in memory and on
   disk because calibration depends only on the device type.
4. Build the layout problem and run the advisor.
5. Measure candidate layouts by replaying the workload on the simulator.
"""

import json
import os

from repro import units
from repro.core.problem import LayoutProblem, TargetSpec
from repro.db.engine import run_consolidation, run_olap
from repro.models.calibration import CalibrationConfig, calibrate_device
from repro.models.table_model import TableCostModel
from repro.models.target_model import TargetModel
from repro.workload.analyzer import fit_workloads

#: In-memory cost-model cache, keyed by (device model_key, read/write).
_MODEL_CACHE = {}

#: Bump when device or calibration behaviour changes, so stale on-disk
#: calibration caches are not reused.
MODEL_VERSION = 4

#: Default on-disk cache directory (set to None to disable).
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")

#: Calibration grid used by the experiment pipeline.  A single request
#: size is enough because the database substrate issues uniform 8 KiB
#: pages; run counts and contention levels span the Figure 8 surface.
DEFAULT_CALIBRATION = CalibrationConfig(
    sizes=(units.kib(8),),
    run_counts=(1, 4, 16, 64),
    competitor_counts=(0, 1, 2, 4, 8),
    n_requests=500,
)


def clear_model_cache():
    """Drop all cached cost models (tests use this for isolation)."""
    _MODEL_CACHE.clear()


def _cache_path(key, kind):
    safe = "v%d_" % MODEL_VERSION + "_".join(
        str(part) for part in key
    ) + "_" + kind + ".json"
    return os.path.join(CACHE_DIR, safe.replace("/", "-"))


def _load_cached(key, kind):
    if (key, kind) in _MODEL_CACHE:
        return _MODEL_CACHE[(key, kind)]
    if CACHE_DIR:
        path = _cache_path(key, kind)
        if os.path.exists(path):
            with open(path) as handle:
                model = TableCostModel.from_dict(json.load(handle))
            _MODEL_CACHE[(key, kind)] = model
            return model
    return None


def _store_cached(key, kind, model):
    _MODEL_CACHE[(key, kind)] = model
    if CACHE_DIR:
        os.makedirs(CACHE_DIR, exist_ok=True)
        with open(_cache_path(key, kind), "w") as handle:
            json.dump(model.to_dict(), handle)


def get_target_model(spec, config=None):
    """Calibrated :class:`TargetModel` for a device spec (cached)."""
    if config is None:
        config = DEFAULT_CALIBRATION
    models = {}
    for kind in ("read", "write"):
        model = _load_cached(spec.model_key, kind)
        if model is None:
            model = calibrate_device(spec.build, config=config, kind=kind)
            _store_cached(spec.model_key, kind, model)
        models[kind] = model
    return TargetModel(name=spec.name, read_model=models["read"],
                       write_model=models["write"])


def see_fractions(database, n_targets):
    """Stripe-everything-everywhere fractions for a catalog."""
    return {
        name: [1.0 / n_targets] * n_targets
        for name in database.object_names
    }


def fit_workloads_from_run(result, database, window_s=1.0):
    """Fit per-object workload specs from a traced workload run.

    Objects that saw no I/O during the run still get (zero-rate) specs so
    the advisor lays them out.
    """
    if result.trace is None:
        raise ValueError("the run was not traced; pass collect_trace=True")
    return fit_workloads(
        result.trace,
        duration=result.elapsed_s,
        window_s=window_s,
        include_idle=database.object_names,
    )


def build_problem(database, device_specs, workloads,
                  stripe_size=units.DEFAULT_STRIPE_SIZE, pinning=None,
                  calibration=None, placement_slack=True):
    """Assemble a :class:`LayoutProblem` with calibrated target models.

    Args:
        placement_slack: Reserve one stripe per object of capacity on
            every target.  A striping placement mechanism rounds each
            object's per-target share up to whole stripes, so a layout
            that fills a target to the byte may physically overflow it;
            the slack guarantees every layout the advisor emits is
            implementable.
    """
    slack = len(database.sizes()) * stripe_size if placement_slack else 0
    targets = [
        TargetSpec(
            name=spec.name,
            capacity=max(stripe_size, spec.capacity - slack),
            model=get_target_model(spec, config=calibration),
        )
        for spec in device_specs
    ]
    return LayoutProblem(
        database.sizes(), targets, workloads,
        stripe_size=stripe_size, pinning=pinning,
    )


def measure_olap(database, profiles, fractions, device_specs, concurrency=1,
                 seed=1, collect_trace=False, name="olap",
                 stripe_size=units.DEFAULT_STRIPE_SIZE):
    """Measure one OLAP workload run under a layout."""
    devices = [spec.build() for spec in device_specs]
    return run_olap(
        database, profiles, fractions, devices, concurrency=concurrency,
        seed=seed, collect_trace=collect_trace, name=name,
        stripe_size=stripe_size,
    )


def measure_consolidation(database, olap_profiles, sample_profile, fractions,
                          device_specs, olap_concurrency=1, terminals=9,
                          seed=1, collect_trace=False, name="consolidation",
                          stripe_size=units.DEFAULT_STRIPE_SIZE):
    """Measure one consolidation run (OLAP + OLTP) under a layout."""
    devices = [spec.build() for spec in device_specs]
    return run_consolidation(
        database, olap_profiles, sample_profile, fractions, devices,
        olap_concurrency=olap_concurrency, terminals=terminals, seed=seed,
        collect_trace=collect_trace, name=name, stripe_size=stripe_size,
    )
