"""End-to-end experiment harness.

Glues the substrate together the way the paper's methodology does:
run the workload once under a baseline layout collecting an I/O trace,
fit Rome-style workload descriptions from the trace, calibrate cost
models for each device type, hand everything to the layout advisor, and
measure each candidate layout by replaying the workload on the
simulator.
"""

from repro.experiments.scenarios import (
    DeviceSpec,
    disk_spec,
    raid0_spec,
    ssd_spec,
    four_disks,
    config_3_1,
    config_2_1_1,
    disks_plus_ssd,
)
from repro.experiments.runner import (
    build_problem,
    fit_workloads_from_run,
    get_target_model,
    measure_olap,
    measure_consolidation,
    clear_model_cache,
)
from repro.experiments.reporting import format_table, format_layout
from repro.experiments.characterize import characterize

__all__ = [
    "DeviceSpec",
    "disk_spec",
    "raid0_spec",
    "ssd_spec",
    "four_disks",
    "config_3_1",
    "config_2_1_1",
    "disks_plus_ssd",
    "build_problem",
    "fit_workloads_from_run",
    "get_target_model",
    "measure_olap",
    "measure_consolidation",
    "clear_model_cache",
    "format_table",
    "format_layout",
    "characterize",
]
