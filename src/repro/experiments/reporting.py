"""Fixed-width report formatting for experiment output.

The benchmark harness prints tables shaped like the paper's figures;
these helpers keep the formatting consistent.
"""


def format_table(headers, rows, title=None):
    """Render a list-of-rows table with right-aligned numeric columns."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            ("%.2f" % value) if isinstance(value, float) else str(value)
            for value in row
        ])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[c]) for c, h in enumerate(cells[0])))
    lines.append("  ".join("-" * widths[c] for c in range(columns)))
    for row in cells[1:]:
        lines.append("  ".join(
            row[c].rjust(widths[c]) if _numeric(row[c]) else row[c].ljust(widths[c])
            for c in range(columns)
        ))
    return "\n".join(lines)


def _numeric(text):
    try:
        float(text.rstrip("x%"))
        return True
    except ValueError:
        return False


def format_layout(layout, workloads=None, top=None, min_fraction=0.005):
    """Layout listing ordered by request rate, like the paper's figures."""
    order = None
    if workloads is not None:
        ranked = sorted(workloads, key=lambda w: -w.total_rate)
        order = [w.name for w in ranked]
        if top is not None:
            order = order[:top]
    return layout.describe(min_fraction=min_fraction, order=order)


def speedup(baseline, optimized):
    """Paper-style speedup factor string, e.g. ``1.28x``."""
    return "%.2fx" % (baseline / optimized)
