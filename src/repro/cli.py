"""Command-line layout advisor.

The paper envisions the technique "deployed as a standalone storage
layout advisor, whose output would guide the configuration of both the
database system and the storage system".  This CLI is that standalone
tool: it reads a JSON problem description and prints the recommended
layout (and optionally the per-stage estimated utilizations).

Problem file format::

    {
      "stripe_size": 1048576,
      "targets": [
        {"name": "disk0", "capacity": 19757048, "kind": "disk15k"},
        {"name": "ssd", "capacity": 4194304, "kind": "ssd"}
      ],
      "objects": [
        {"name": "lineitem", "size": 5242880,
         "read_rate": 800, "write_rate": 0,
         "read_size": 8192, "write_size": 8192,
         "run_count": 64, "overlap": {"orders": 0.9}}
      ]
    }

Target kinds map to analytic cost models (``disk15k``, ``disk7200``,
``ssd``, or ``raid0`` with ``"members": k``); pass ``--calibrate`` to
build measured cost models from the simulator instead.

Usage::

    python -m repro.cli advise problem.json [--non-regular] [--restarts N]
        [--method auto|slsqp|coordinate|anneal|partitioned]
        [--trace out.jsonl]
    python -m repro.cli monitor trace.jsonl [--window W] [--halflife H]
    python -m repro.cli replay-online problem.json trace.jsonl
        [--interval S] [--events out.jsonl] [--metrics out.jsonl|out.prom]
    python -m repro.cli report out.jsonl [--tree] [--request-trace]
    python -m repro.cli serve [--port P] [--workers N] [--state-dir DIR]
        [--snapshot-every N] [--request-timeout S]
        [--default-deadline-ms MS] [--access-log FILE] [--trace-ring N]
        [--no-request-traces]
    python -m repro.cli scenarios list
    python -m repro.cli scenarios validate FILE [FILE ...]
    python -m repro.cli experiments run matrix.yaml [--workers N]
        [--out BENCH.json] [--report out.txt]

``scenarios``/``experiments`` drive the declarative scenario layer
(:mod:`repro.scenarios`): list or validate YAML scenario specs and
sweep a scenario × controller matrix into a comparison report.

``advise`` is the paper's one-shot offline tool.  ``monitor`` fits
sliding-window workload estimates from an archived completion trace
(:mod:`repro.workload.trace_io` format).  ``replay-online`` closes the
§8 loop offline: it treats the problem file's workload spec as what the
current layout was solved for, replays the trace through the online
controller (monitor → drift detection → warm-started re-solve →
virtual migration), and reports every decision.

Observability: ``advise --trace PATH`` records the full pipeline —
stage/restart/round spans, evaluator cache counters, per-restart
convergence series — into one JSONL trace file;
``replay-online --metrics PATH`` does the same for the online loop plus
per-target latency/byte metrics rebuilt from the trace (a ``.prom``
extension selects Prometheus text exposition instead); ``report``
renders a saved trace as a stage-time / cache-efficiency / convergence
table.  ``report --request-trace`` instead renders one stitched
serve-layer request trace — the JSON of ``GET /debug/traces/{id}`` or
its JSONL records — as a latency breakdown plus the cross-process span
tree.
"""

import argparse
import json
import sys

from repro.core.advisor import LayoutAdvisor
from repro.core.problem import LayoutProblem, TargetSpec
from repro.errors import ReproError
from repro.models.analytic import (
    AnalyticDiskCostModel,
    analytic_disk_target_model,
    analytic_ssd_target_model,
)
from repro.models.target_model import TargetModel
from repro.serve.tracing import DEFAULT_RING as _DEFAULT_RING
from repro.storage.disk import ENTERPRISE_15K, NEARLINE_7200
from repro.units import DEFAULT_STRIPE_SIZE
from repro.workload.spec import ObjectWorkload


def _analytic_model(entry):
    kind = entry.get("kind", "disk15k")
    name = entry["name"]
    if kind == "disk15k":
        return analytic_disk_target_model(name, ENTERPRISE_15K)
    if kind == "disk7200":
        return analytic_disk_target_model(name, NEARLINE_7200)
    if kind == "ssd":
        return analytic_ssd_target_model(name)
    if kind == "raid0":
        members = int(entry.get("members", 2))
        return TargetModel(
            name=name,
            read_model=AnalyticDiskCostModel(ENTERPRISE_15K, members, "read"),
            write_model=AnalyticDiskCostModel(ENTERPRISE_15K, members,
                                              "write"),
        )
    raise ReproError("unknown target kind %r" % kind)


def _calibrated_model(entry):
    from repro.experiments.runner import get_target_model
    from repro.experiments.scenarios import DeviceSpec

    kind = entry.get("kind", "disk15k")
    members = int(entry.get("members", 1))
    spec = DeviceSpec(entry["name"], kind, int(entry["capacity"]),
                      n_members=members)
    return get_target_model(spec)


def load_problem(data, calibrate=False):
    """Build a :class:`LayoutProblem` from a parsed JSON description."""
    targets = []
    for entry in data["targets"]:
        model = _calibrated_model(entry) if calibrate \
            else _analytic_model(entry)
        targets.append(TargetSpec(
            name=entry["name"], capacity=int(entry["capacity"]), model=model,
        ))

    sizes = {}
    workloads = []
    for entry in data["objects"]:
        sizes[entry["name"]] = int(entry["size"])
        workloads.append(ObjectWorkload(
            name=entry["name"],
            read_size=entry.get("read_size", 8192),
            write_size=entry.get("write_size", 8192),
            read_rate=entry.get("read_rate", 0.0),
            write_rate=entry.get("write_rate", 0.0),
            run_count=entry.get("run_count", 1.0),
            overlap=dict(entry.get("overlap", {})),
        ))

    return LayoutProblem(
        sizes, targets, workloads,
        stripe_size=int(data.get("stripe_size", DEFAULT_STRIPE_SIZE)),
    )


def _build_obs(path):
    """Instrumentation bundle for an output path (None → disabled)."""
    if not path:
        return None
    from repro.obs import Instrumentation

    return Instrumentation.on()


def _write_obs(path, obs, meta):
    """Write an instrumentation bundle as JSONL trace or Prometheus text."""
    from repro.obs.export import write_prometheus, write_trace

    if path.endswith(".prom"):
        write_prometheus(path, obs.metrics)
    else:
        write_trace(path, obs, meta=meta)


def advise(args):
    with open(args.problem) as handle:
        data = json.load(handle)
    problem = load_problem(data, calibrate=args.calibrate)
    obs = _build_obs(args.trace)
    result = LayoutAdvisor(
        problem, regular=not args.non_regular, restarts=args.restarts,
        method=args.method, workers=args.workers,
        solve_budget_s=args.solver_budget, obs=obs,
    ).recommend()
    if obs is not None:
        _write_obs(args.trace, obs, meta={
            "command": "advise",
            "problem": args.problem,
            "restarts": args.restarts,
            "method": args.method,
            "regular": not args.non_regular,
        })

    if args.json:
        print(json.dumps(result.to_payload(), indent=2))
    else:
        print(result.recommended.describe())
        print()
        for stage, values in result.utilizations.items():
            print("max utilization after %-8s %.4f" % (stage, values.max()))
        if result.degraded:
            print()
            print("WARNING: solve budget exhausted; answered by the %r "
                  "fallback" % result.watchdog_rung)
        if obs is not None:
            print()
            print("trace written to %s (%d spans)"
                  % (args.trace, len(obs.tracer.spans)))
    return 0


def monitor(args):
    from repro.online.monitor import WorkloadMonitor, replay_into
    from repro.workload.trace_io import load_trace

    trace = load_trace(args.trace)
    mon = replay_into(
        WorkloadMonitor(window_s=args.window, halflife_s=args.halflife),
        trace,
    )
    if trace:
        mon.advance(max(r.finish_time for r in trace))
    if args.json:
        print(json.dumps({
            "horizon_s": mon.horizon_s,
            "observed": mon.observed,
            "objects": mon.snapshot(),
        }, indent=2))
    else:
        print("monitored %d records, effective horizon %.1f s"
              % (mon.observed, mon.horizon_s))
        for obj in mon.objects:
            spec = mon.fit(obj)
            print("%-22s reads/s %8.1f  writes/s %8.1f  runcount %7.1f"
                  % (obj, spec.read_rate, spec.write_rate, spec.run_count))
    return 0


def replay_online(args):
    from repro.online.controller import ControllerConfig, OnlineController
    from repro.workload.trace_io import load_trace

    with open(args.problem) as handle:
        data = json.load(handle)
    problem = load_problem(data, calibrate=args.calibrate)
    obs = _build_obs(args.metrics)
    advised = LayoutAdvisor(
        problem, regular=not args.non_regular, obs=obs,
    ).recommend()

    config = ControllerConfig(
        check_interval_s=args.interval,
        util_degradation=args.degradation,
        divergence_threshold=args.divergence,
        patience=args.patience,
        cooldown_s=args.cooldown,
        min_gain=args.min_gain,
        regular=not args.non_regular,
        solve_budget_s=args.solver_budget,
    )
    sizes = {entry["name"]: int(entry["size"]) for entry in data["objects"]}
    controller = OnlineController(
        targets=problem.targets,
        object_sizes=sizes,
        initial_layout=advised.recommended,
        solved_workloads=problem.workloads,
        stripe_size=problem.stripe_size,
        config=config,
        obs=obs,
    )
    trace = load_trace(args.trace)

    faults = None
    if args.fault_plan or args.chaos_seed is not None:
        from repro.faults import FaultInjector, FaultPlan

        target_names = [t.name for t in problem.targets]
        if args.fault_plan:
            plan = FaultPlan.load(args.fault_plan)
            plan.validate_targets(target_names)
        else:
            horizon = max((r.finish_time for r in trace), default=0.0)
            plan = FaultPlan.random(args.chaos_seed, target_names, horizon,
                                    n_faults=args.chaos_faults)
        faults = FaultInjector(plan, target_names=target_names,
                               obs=obs)
    log = controller.replay(trace, faults=faults)
    if obs is not None:
        from repro.obs.sim import SimMetricsCollector

        collector = SimMetricsCollector(obs.metrics)
        collector.consume(trace)
        elapsed = max((r.finish_time for r in trace), default=None)
        collector.finalize(elapsed=elapsed)
        _write_obs(args.metrics, obs, meta={
            "command": "replay-online",
            "problem": args.problem,
            "trace": args.trace,
            "records": len(trace),
        })
    if args.events:
        log.to_jsonl(args.events)
    if args.json:
        print(json.dumps({
            "initial": advised.to_payload(),
            "final_layout": controller.layout.fractions_by_name(),
            "resolves": controller.resolves,
            "emergencies": controller.emergency_resolves,
            "events": log.events,
        }, indent=2))
    else:
        print(log.summary())
        if faults is not None:
            counts = log.counts()
            print("  faults injected   %6d  emergencies %d, evacuations %d"
                  % (counts.get("fault", 0), counts.get("emergency", 0),
                     counts.get("evacuate", 0)))
        print()
        print("final layout:")
        print(controller.layout.describe())
        if obs is not None:
            print()
            print("metrics written to %s" % args.metrics)
    return 0


def _looks_like_event_log(path):
    """True when a JSONL file holds controller events, not a trace.

    Controller events carry ``seq``/``kind`` and no ``type`` header;
    instrumentation traces start with a ``{"type": "meta", ...}`` line.
    """
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                return (isinstance(record, dict)
                        and "kind" in record and "seq" in record
                        and "type" not in record)
    except (OSError, json.JSONDecodeError):
        pass
    return False


def report(args):
    from repro.obs.export import read_request_trace, read_trace
    from repro.obs.report import render_report, render_request_trace

    if args.request_trace:
        # Request traces render the full cross-process tree by default;
        # the solver spans grafted from workers sit 4-5 levels deep.
        trace = read_request_trace(args.trace)
        print(render_request_trace(trace, max_depth=args.max_depth))
        return 0
    if args.max_depth is None:
        args.max_depth = 3
    if _looks_like_event_log(args.trace):
        import warnings

        from repro.online.events import EventLog

        with warnings.catch_warnings():
            # summary() reports the skipped count itself; the per-line
            # warnings would just repeat it.
            warnings.simplefilter("ignore", RuntimeWarning)
            log = EventLog.from_jsonl(args.trace)
        print(log.summary())
        return 0
    trace = read_trace(args.trace)
    print(render_report(trace, tree=args.tree, max_depth=args.max_depth))
    return 0


def serve(args):
    import asyncio
    import signal

    from repro.serve.http import HttpFrontend
    from repro.serve.service import AdvisorService, ServeConfig

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        use_processes=not args.threads, max_pending=args.max_pending,
        feed_threads=args.feed_threads, state_dir=args.state_dir,
        trace_requests=not args.no_request_traces,
        trace_ring=(args.trace_ring if args.trace_ring is not None
                    else _DEFAULT_RING),
        access_log=args.access_log,
        snapshot_every=args.snapshot_every,
        request_timeout_s=args.request_timeout,
        default_deadline_s=(args.default_deadline_ms / 1000.0
                            if args.default_deadline_ms is not None
                            else None),
    )

    async def run():
        frontend = HttpFrontend(AdvisorService(config))
        await frontend.start()
        print("serving on http://%s:%d  (%d %s workers, admission bound %d)"
              % (frontend.host, frontend.port, config.workers,
                 "process" if frontend.service.pool.use_processes
                 else "thread", config.max_pending),
              flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("draining: finishing in-flight work, journaling migrations",
              flush=True)
        await frontend.stop()
        print("drained", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def scenarios_cmd(args):
    from repro.scenarios import (
        compile_scenario,
        list_scenarios,
        load_scenario,
    )

    if args.action == "list":
        entries = list_scenarios()
        if args.json:
            print(json.dumps([
                {"name": name, "path": path} for name, path in entries
            ], indent=2))
            return 0
        if not entries:
            print("no scenarios found (set REPRO_SCENARIO_DIR or run "
                  "from the repository root)")
            return 1
        for name, path in entries:
            try:
                spec = load_scenario(path)
                detail = spec.description or ""
            except ReproError as error:
                detail = "INVALID: %s" % error
            print("%-26s %s" % (name, detail))
        return 0

    # validate: exit 0 only when every named spec compiles cleanly.
    failures = 0
    for ref in args.scenario:
        try:
            spec = load_scenario(ref)
            compiled = compile_scenario(spec, seed=args.seed)
            mean_rate = (compiled.rate_integral()
                         / max(compiled.duration_s, 1e-9))
            print("%-26s ok  (%.0fs, %d segments, mean %.0f req/s)"
                  % (spec.name, compiled.duration_s,
                     len(compiled.segments), mean_rate))
        except ReproError as error:
            failures += 1
            print("%s: INVALID: %s" % (ref, error), file=sys.stderr)
    return 1 if failures else 0


def experiments_cmd(args):
    from repro.obs.report import render_matrix_report
    from repro.scenarios.matrix import (
        check_results,
        load_matrix,
        run_matrix,
        save_results,
    )

    matrix = load_matrix(args.matrix)
    results = run_matrix(matrix, workers=args.workers, seed=args.seed)
    check_results(results)
    if args.out:
        save_results(results, args.out)
    rendered = render_matrix_report(results)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(rendered + "\n")
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    else:
        print(rendered)
        if args.out:
            print()
            print("results written to %s" % args.out)
    return 1 if results["errors"] else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description="workload-aware storage layout advisor"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    advise_parser = subparsers.add_parser(
        "advise", help="recommend a layout for a JSON problem description"
    )
    advise_parser.add_argument("problem", help="path to the problem JSON")
    advise_parser.add_argument("--non-regular", action="store_true",
                               help="skip the regularization step")
    advise_parser.add_argument("--restarts", type=int, default=1,
                               help="solver starting points (default 1)")
    advise_parser.add_argument("--method", default="auto",
                               choices=["auto", "slsqp", "coordinate",
                                        "anneal", "partitioned"],
                               help="solve method; 'partitioned' "
                                    "decomposes the overlap graph for "
                                    "thousand-object fleets, 'auto' "
                                    "escalates to it on large problems "
                                    "(default auto)")
    advise_parser.add_argument("--workers", type=int, default=1,
                               help="processes for the multi-start solver "
                                    "portfolio (default 1: serial)")
    advise_parser.add_argument("--calibrate", action="store_true",
                               help="calibrate simulated device models "
                                    "instead of using analytic ones")
    advise_parser.add_argument("--solver-budget", type=float, default=None,
                               metavar="SECONDS",
                               help="wall-clock budget for the solve; on "
                                    "overrun fall back portfolio -> "
                                    "partitioned -> serial -> greedy "
                                    "instead of hanging")
    advise_parser.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON")
    advise_parser.add_argument("--trace",
                               help="record pipeline spans, solver "
                                    "convergence, and evaluator metrics "
                                    "into this JSONL trace (or .prom for "
                                    "Prometheus text)")
    advise_parser.set_defaults(func=advise)

    monitor_parser = subparsers.add_parser(
        "monitor", help="fit sliding-window workload estimates from a "
                        "completion trace (JSONL)"
    )
    monitor_parser.add_argument("trace", help="path to the trace JSONL")
    monitor_parser.add_argument("--window", type=float, default=2.0,
                                help="bucketing window seconds (default 2)")
    monitor_parser.add_argument("--halflife", type=float, default=20.0,
                                help="decay half-life seconds (default 20)")
    monitor_parser.add_argument("--json", action="store_true",
                                help="emit machine-readable JSON")
    monitor_parser.set_defaults(func=monitor)

    replay_parser = subparsers.add_parser(
        "replay-online", help="replay a trace through the online layout "
                              "controller and report its decisions"
    )
    replay_parser.add_argument("problem", help="path to the problem JSON "
                                               "(the solved-for workload)")
    replay_parser.add_argument("trace", help="path to the trace JSONL")
    replay_parser.add_argument("--interval", type=float, default=5.0,
                               help="drift-check interval seconds")
    replay_parser.add_argument("--degradation", type=float, default=0.25,
                               help="relative predicted-utilization "
                                    "degradation that counts as drift")
    replay_parser.add_argument("--divergence", type=float, default=0.5,
                               help="workload rate-divergence threshold")
    replay_parser.add_argument("--patience", type=int, default=2,
                               help="consecutive drifted checks to trigger")
    replay_parser.add_argument("--cooldown", type=float, default=30.0,
                               help="seconds between re-solve decisions")
    replay_parser.add_argument("--min-gain", type=float, default=0.05,
                               help="minimum relative gain to accept")
    replay_parser.add_argument("--events", help="write the controller "
                                                "event log to this JSONL")
    replay_parser.add_argument("--fault-plan", metavar="FILE",
                               help="inject the fault schedule from this "
                                    "JSON file during the replay")
    replay_parser.add_argument("--chaos-seed", type=int, default=None,
                               metavar="N",
                               help="generate a random (seed-deterministic) "
                                    "fault plan over the trace horizon")
    replay_parser.add_argument("--chaos-faults", type=int, default=3,
                               metavar="K",
                               help="faults in the generated chaos plan "
                                    "(default 3; with --chaos-seed)")
    replay_parser.add_argument("--solver-budget", type=float, default=None,
                               metavar="SECONDS",
                               help="wall-clock budget per re-solve; on "
                                    "timeout fall back portfolio -> "
                                    "partitioned -> serial -> greedy")
    replay_parser.add_argument("--non-regular", action="store_true",
                               help="skip the regularization step")
    replay_parser.add_argument("--calibrate", action="store_true",
                               help="calibrate simulated device models "
                                    "instead of using analytic ones")
    replay_parser.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON")
    replay_parser.add_argument("--metrics",
                               help="record controller events, re-solve "
                                    "spans, and per-target simulator "
                                    "metrics into this JSONL trace (or "
                                    ".prom for Prometheus text)")
    replay_parser.set_defaults(func=replay_online)

    report_parser = subparsers.add_parser(
        "report", help="render a saved instrumentation trace as a "
                       "stage-time / cache-efficiency / convergence report"
    )
    report_parser.add_argument("trace", help="trace JSONL written by "
                                             "advise --trace or "
                                             "replay-online --metrics (an "
                                             "event log from --events is "
                                             "summarized instead)")
    report_parser.add_argument("--tree", action="store_true",
                               help="also render the span tree")
    report_parser.add_argument("--max-depth", type=int, default=None,
                               help="span tree depth limit (default 3; "
                                    "unlimited for --request-trace)")
    report_parser.add_argument("--request-trace", action="store_true",
                               help="render a stitched serve-layer request "
                                    "trace (the JSON from GET /debug/"
                                    "traces/{id}, or its JSONL records)")
    report_parser.set_defaults(func=report)

    serve_parser = subparsers.add_parser(
        "serve", help="run the multi-tenant advisor service "
                      "(JSON over HTTP; SIGTERM drains gracefully)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="listen address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="listen port (0 picks a free port)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="shared solver pool size (default 2)")
    serve_parser.add_argument("--threads", action="store_true",
                              help="run solver jobs on threads instead of "
                                   "worker processes")
    serve_parser.add_argument("--max-pending", type=int, default=64,
                              help="admission bound on queued solver jobs "
                                   "(default 64; over it requests get 429)")
    serve_parser.add_argument("--feed-threads", type=int, default=4,
                              help="worker threads applying trace chunks")
    serve_parser.add_argument("--state-dir", default=None,
                              help="per-tenant state root (WAL, snapshots, "
                                   "migration journals; enables crash "
                                   "recovery and drain-resume)")
    serve_parser.add_argument("--snapshot-every", type=int, default=16,
                              help="compacting snapshot every N trace "
                                   "chunks per tenant (default 16; 0 "
                                   "disables periodic snapshots)")
    serve_parser.add_argument("--request-timeout", type=float, default=30.0,
                              help="seconds a started request may take to "
                                   "arrive whole before 408 (slowloris "
                                   "guard; default 30)")
    serve_parser.add_argument("--default-deadline-ms", type=float,
                              default=None,
                              help="deadline stamped on solver work when "
                                   "the request has no X-Deadline-Ms "
                                   "header (default: none)")
    serve_parser.add_argument("--access-log", default=None, metavar="FILE",
                              help="append one JSONL line per traced "
                                   "request (trace id, tenant, status, "
                                   "queue wait, solve time)")
    serve_parser.add_argument("--trace-ring", type=int, default=None,
                              help="stitched traces kept for GET /debug/"
                                   "traces (default %d)" % _DEFAULT_RING)
    serve_parser.add_argument("--no-request-traces", action="store_true",
                              help="disable per-request tracing and the "
                                   "SLO latency feed")
    serve_parser.set_defaults(func=serve)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list or validate declarative YAML scenarios"
    )
    scenarios_sub = scenarios_parser.add_subparsers(dest="action",
                                                    required=True)
    scenarios_list = scenarios_sub.add_parser(
        "list", help="list the scenario library (REPRO_SCENARIO_DIR or "
                     "./scenarios)"
    )
    scenarios_list.add_argument("--json", action="store_true",
                                help="emit machine-readable JSON")
    scenarios_list.set_defaults(func=scenarios_cmd)
    scenarios_validate = scenarios_sub.add_parser(
        "validate", help="parse, validate, and compile scenario specs; "
                         "non-zero exit when any is invalid"
    )
    scenarios_validate.add_argument("scenario", nargs="+",
                                    help="scenario file path or library "
                                         "name")
    scenarios_validate.add_argument("--seed", type=int, default=None,
                                    help="compile-seed override")
    scenarios_validate.set_defaults(func=scenarios_cmd)

    experiments_parser = subparsers.add_parser(
        "experiments", help="sweep a scenario × controller matrix"
    )
    experiments_sub = experiments_parser.add_subparsers(dest="action",
                                                        required=True)
    experiments_run = experiments_sub.add_parser(
        "run", help="run every (scenario, controller) cell and render "
                    "the comparison table"
    )
    experiments_run.add_argument("matrix", help="matrix YAML path")
    experiments_run.add_argument("--workers", type=int, default=None,
                                 help="parallel cell processes (default: "
                                      "the matrix's 'workers' field)")
    experiments_run.add_argument("--seed", type=int, default=None,
                                 help="compile-seed override for every "
                                      "cell")
    experiments_run.add_argument("--out", metavar="FILE",
                                 help="write the results dict as JSON "
                                      "(BENCH_scenarios.json format)")
    experiments_run.add_argument("--report", metavar="FILE",
                                 help="also write the rendered table here")
    experiments_run.add_argument("--json", action="store_true",
                                 help="print the results dict instead of "
                                      "the table")
    experiments_run.set_defaults(func=experiments_cmd)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, KeyError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
