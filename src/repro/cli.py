"""Command-line layout advisor.

The paper envisions the technique "deployed as a standalone storage
layout advisor, whose output would guide the configuration of both the
database system and the storage system".  This CLI is that standalone
tool: it reads a JSON problem description and prints the recommended
layout (and optionally the per-stage estimated utilizations).

Problem file format::

    {
      "stripe_size": 1048576,
      "targets": [
        {"name": "disk0", "capacity": 19757048, "kind": "disk15k"},
        {"name": "ssd", "capacity": 4194304, "kind": "ssd"}
      ],
      "objects": [
        {"name": "lineitem", "size": 5242880,
         "read_rate": 800, "write_rate": 0,
         "read_size": 8192, "write_size": 8192,
         "run_count": 64, "overlap": {"orders": 0.9}}
      ]
    }

Target kinds map to analytic cost models (``disk15k``, ``disk7200``,
``ssd``, or ``raid0`` with ``"members": k``); pass ``--calibrate`` to
build measured cost models from the simulator instead.

Usage::

    python -m repro.cli advise problem.json [--non-regular] [--restarts N]
"""

import argparse
import json
import sys

from repro.core.advisor import LayoutAdvisor
from repro.core.problem import LayoutProblem, TargetSpec
from repro.errors import ReproError
from repro.models.analytic import (
    AnalyticDiskCostModel,
    analytic_disk_target_model,
    analytic_ssd_target_model,
)
from repro.models.target_model import TargetModel
from repro.storage.disk import ENTERPRISE_15K, NEARLINE_7200
from repro.units import DEFAULT_STRIPE_SIZE
from repro.workload.spec import ObjectWorkload


def _analytic_model(entry):
    kind = entry.get("kind", "disk15k")
    name = entry["name"]
    if kind == "disk15k":
        return analytic_disk_target_model(name, ENTERPRISE_15K)
    if kind == "disk7200":
        return analytic_disk_target_model(name, NEARLINE_7200)
    if kind == "ssd":
        return analytic_ssd_target_model(name)
    if kind == "raid0":
        members = int(entry.get("members", 2))
        return TargetModel(
            name=name,
            read_model=AnalyticDiskCostModel(ENTERPRISE_15K, members, "read"),
            write_model=AnalyticDiskCostModel(ENTERPRISE_15K, members,
                                              "write"),
        )
    raise ReproError("unknown target kind %r" % kind)


def _calibrated_model(entry):
    from repro.experiments.runner import get_target_model
    from repro.experiments.scenarios import DeviceSpec

    kind = entry.get("kind", "disk15k")
    members = int(entry.get("members", 1))
    spec = DeviceSpec(entry["name"], kind, int(entry["capacity"]),
                      n_members=members)
    return get_target_model(spec)


def load_problem(data, calibrate=False):
    """Build a :class:`LayoutProblem` from a parsed JSON description."""
    targets = []
    for entry in data["targets"]:
        model = _calibrated_model(entry) if calibrate \
            else _analytic_model(entry)
        targets.append(TargetSpec(
            name=entry["name"], capacity=int(entry["capacity"]), model=model,
        ))

    sizes = {}
    workloads = []
    for entry in data["objects"]:
        sizes[entry["name"]] = int(entry["size"])
        workloads.append(ObjectWorkload(
            name=entry["name"],
            read_size=entry.get("read_size", 8192),
            write_size=entry.get("write_size", 8192),
            read_rate=entry.get("read_rate", 0.0),
            write_rate=entry.get("write_rate", 0.0),
            run_count=entry.get("run_count", 1.0),
            overlap=dict(entry.get("overlap", {})),
        ))

    return LayoutProblem(
        sizes, targets, workloads,
        stripe_size=int(data.get("stripe_size", DEFAULT_STRIPE_SIZE)),
    )


def advise(args):
    with open(args.problem) as handle:
        data = json.load(handle)
    problem = load_problem(data, calibrate=args.calibrate)
    result = LayoutAdvisor(
        problem, regular=not args.non_regular, restarts=args.restarts,
    ).recommend()

    layout = result.recommended
    if args.json:
        print(json.dumps({
            "layout": layout.fractions_by_name(),
            "targets": layout.target_names,
            "max_utilization": {
                stage: float(values.max())
                for stage, values in result.utilizations.items()
            },
            "solver_time_s": result.solver_time_s,
            "regularization_time_s": result.regularization_time_s,
        }, indent=2))
    else:
        print(layout.describe())
        print()
        for stage, values in result.utilizations.items():
            print("max utilization after %-8s %.4f" % (stage, values.max()))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description="workload-aware storage layout advisor"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    advise_parser = subparsers.add_parser(
        "advise", help="recommend a layout for a JSON problem description"
    )
    advise_parser.add_argument("problem", help="path to the problem JSON")
    advise_parser.add_argument("--non-regular", action="store_true",
                               help="skip the regularization step")
    advise_parser.add_argument("--restarts", type=int, default=1,
                               help="solver starting points (default 1)")
    advise_parser.add_argument("--calibrate", action="store_true",
                               help="calibrate simulated device models "
                                    "instead of using analytic ones")
    advise_parser.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON")
    advise_parser.set_defaults(func=advise)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, KeyError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
