"""The LVM-striping layout model (paper Figure 7).

Transforms an object workload ``W_i`` plus a candidate layout into the
per-target workloads ``W_ij``.  Request sizes are unchanged, request
rates scale with the assigned fraction ``L_ij``, overlaps survive only
between objects that share a target, and the run count follows the
three-case stripe formula:

* ``Q_ij = Q_i``                    if ``Q_i · B_i < StripeSize``
  (a whole run fits inside one stripe, so striping cannot break it),
* ``Q_ij = Q_i · L_ij``             if ``Q_i · B_i > StripeSize / L_ij``
  (runs span many stripes; target *j* sees its proportional share, and
  its stripes are physically contiguous so the share stays sequential),
* ``Q_ij = StripeSize / B_i``       otherwise
  (runs are broken at stripe granularity).

The piecewise formula is continuous at both case boundaries, which
matters because it sits inside the NLP solver's objective.
"""

import numpy as np

from repro import units
from repro.workload.spec import ObjectWorkload


def per_target_run_counts(run_counts, mean_sizes, layout,
                          stripe_size=units.DEFAULT_STRIPE_SIZE):
    """Vectorized Figure-7 run-count transformation.

    Args:
        run_counts: Array of ``Q_i``, shape (N,).
        mean_sizes: Array of ``B_i`` (rate-weighted mean sizes), shape (N,).
        layout: Layout matrix ``L``, shape (N, M).
        stripe_size: LVM stripe size.

    Returns:
        Array of ``Q_ij``, shape (N, M).  Entries where ``L_ij = 0`` are
        set to 1 (they carry no load, so the value is irrelevant but must
        stay in the cost models' valid domain).
    """
    q = np.asarray(run_counts, dtype=float)[:, None]
    b = np.asarray(mean_sizes, dtype=float)[:, None]
    layout = np.asarray(layout, dtype=float)
    run_bytes = q * b

    with np.errstate(divide="ignore"):
        threshold = np.where(layout > 0, stripe_size / np.maximum(layout, 1e-12),
                             np.inf)
    fits_in_stripe = run_bytes < stripe_size
    spans_many = run_bytes > threshold

    result = np.where(
        fits_in_stripe,
        np.broadcast_to(q, layout.shape),
        np.where(spans_many, q * layout, stripe_size / b),
    )
    result = np.where(layout > 0, result, 1.0)
    return np.maximum(result, 1.0)


def per_target_rates(rates, layout):
    """Per-target request rates: ``λ_ij = λ_i · L_ij`` (shape (N, M))."""
    return np.asarray(rates, dtype=float)[:, None] * np.asarray(layout, dtype=float)


def per_target_overlap(overlap_matrix, layout):
    """Per-target overlaps ``O_ij[k]`` as an (N, N, M) array.

    ``O_ij[k] = O_i[k]`` when both objects have a positive share on
    target *j*, else 0.
    """
    layout = np.asarray(layout, dtype=float)
    present = (layout > 0).astype(float)
    both = present[:, None, :] * present[None, :, :]
    return np.asarray(overlap_matrix, dtype=float)[:, :, None] * both


def per_target_workload(workload, layout_row, target_index, all_workloads=None,
                        layout=None, stripe_size=units.DEFAULT_STRIPE_SIZE):
    """Scalar (non-vectorized) Figure-7 transform for one object/target.

    Returns an :class:`ObjectWorkload` describing ``W_ij``.  Overlap
    remapping requires the full layout and the peer workload list; when
    they are omitted, overlaps are carried over unchanged.

    This is the readable reference implementation; the solver uses the
    vectorized functions above.
    """
    fraction = float(layout_row[target_index])
    q = workload.run_count
    b = workload.mean_size

    if fraction <= 0:
        run_count = 1.0
    elif q * b < stripe_size:
        run_count = q
    elif q * b > stripe_size / fraction:
        run_count = max(1.0, q * fraction)
    else:
        run_count = max(1.0, stripe_size / b)

    overlap = dict(workload.overlap)
    if all_workloads is not None and layout is not None:
        names = [w.name for w in all_workloads]
        overlap = {}
        for k, other in enumerate(names):
            if other == workload.name:
                continue
            value = workload.overlap_with(other)
            if value > 0 and fraction > 0 and layout[k][target_index] > 0:
                overlap[other] = value

    return ObjectWorkload(
        name="%s@%d" % (workload.name, target_index),
        read_size=workload.read_size,
        write_size=workload.write_size,
        read_rate=workload.read_rate * fraction,
        write_rate=workload.write_rate * fraction,
        run_count=run_count,
        overlap=overlap,
    )


def overlap_matrix(workloads):
    """Assemble the (N, N) overlap matrix from workload descriptions.

    The diagonal is zero: an object does not interfere with itself in
    Eq. 2 (the sum runs over ``k ≠ i``).
    """
    names = [w.name for w in workloads]
    n = len(names)
    matrix = np.zeros((n, n))
    for i, w in enumerate(workloads):
        for k, other in enumerate(names):
            if k != i:
                matrix[i, k] = w.overlap_with(other)
    return matrix
