"""Synthetic stream generation from workload descriptions.

Given an :class:`~repro.workload.spec.ObjectWorkload`, spawn open-loop
request streams against the simulator that realise (approximately) its
request rates, sizes, and run count.  Used to validate the analyzer
round-trip (spec → trace → fitted spec) and to build purely synthetic
experiments without the database substrate.
"""

import numpy as np

from repro import units
from repro.storage.streams import next_stream_id


class OpenLoopRunStream:
    """Poisson arrivals with sequential runs, independent of completions.

    Unlike the closed-loop streams in :mod:`repro.storage.streams`, this
    source issues requests at exponential inter-arrival times regardless
    of service progress, which is what a fixed request *rate* in a
    workload description means.  Outstanding requests are capped to keep
    an overloaded target from accumulating unbounded queues.
    """

    def __init__(self, ctx, obj, rate, duration, run_count=1, kind="read",
                 size=units.DEFAULT_PAGE_SIZE, rng=None, max_outstanding=64):
        if rng is None:
            rng = np.random.default_rng(0)
        self.ctx = ctx
        self.obj = obj
        self.rate = float(rate)
        self.duration = float(duration)
        self.run_count = max(1, int(round(run_count)))
        self.kind = kind
        self.size = int(size)
        self.rng = rng
        self.max_outstanding = int(max_outstanding)
        self.stream_id = next_stream_id()
        self.issued = 0
        self.completions = 0
        self.dropped = 0
        self.outstanding = 0
        self._run_left = 0
        self._cursor = 0
        object_size = ctx.placement.object_size(obj)
        self._n_pages = max(1, object_size // self.size)

    def start(self):
        if self.rate > 0:
            self.ctx.engine.schedule(self._next_gap(), self._arrival)
        return self

    def _next_gap(self):
        return float(self.rng.exponential(1.0 / self.rate))

    def _next_offset(self):
        if self._run_left <= 0 or self._cursor + self.size > self._n_pages * self.size:
            self._cursor = int(self.rng.integers(0, self._n_pages)) * self.size
            self._run_left = self.run_count
        offset = self._cursor
        self._cursor += self.size
        self._run_left -= 1
        return offset

    def _arrival(self):
        if self.ctx.engine.now >= self.duration:
            return
        if self.outstanding < self.max_outstanding:
            self.outstanding += 1
            self.issued += 1
            self.ctx.submit(
                self.obj, self._next_offset(), self.size, self.kind,
                self.stream_id, on_complete=self._completed,
            )
        else:
            self.dropped += 1
        self.ctx.engine.schedule(self._next_gap(), self._arrival)

    def _completed(self, _request):
        self.outstanding -= 1
        self.completions += 1


def spawn_spec_streams(ctx, spec, duration, rng=None):
    """Spawn read/write open-loop streams realising a workload spec.

    Returns the list of started streams (empty for zero-rate specs).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    streams = []
    if spec.read_rate > 0:
        streams.append(
            OpenLoopRunStream(
                ctx, spec.name, spec.read_rate, duration,
                run_count=spec.run_count, kind="read",
                size=int(spec.read_size), rng=rng,
            ).start()
        )
    if spec.write_rate > 0:
        streams.append(
            OpenLoopRunStream(
                ctx, spec.name, spec.write_rate, duration,
                run_count=spec.run_count, kind="write",
                size=int(spec.write_size), rng=rng,
            ).start()
        )
    return streams
