"""Trace analysis: fit Rome-style workload descriptions from I/O traces.

The paper collects kernel block-I/O traces from the operational database
and fits per-object workload parameters with HP's Rubicon tool.  Our
simulator records :class:`~repro.storage.request.CompletionRecord` traces;
this module plays Rubicon's role, estimating request sizes, request
rates, run counts, and pairwise temporal overlaps from a trace.
"""

import math
from collections import defaultdict

import numpy as np

from repro.errors import WorkloadError
from repro.workload.spec import ObjectWorkload


class _ObjectStats:
    """Accumulated per-object statistics during a trace pass."""

    def __init__(self):
        self.n_reads = 0
        self.n_writes = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.n_runs = 0
        self.times = []
        self._last_end = None

    def add(self, record):
        if record.kind == "read":
            self.n_reads += 1
            self.read_bytes += record.size
        else:
            self.n_writes += 1
            self.write_bytes += record.size
        self.times.append(record.finish_time)
        # Runs are measured over the object's time-ordered request
        # stream as a whole, the way a block-trace tool like Rubicon
        # sees it.  Interleaved concurrent scans of the same object
        # therefore fit as a less sequential workload — the effect the
        # paper highlights for LINEITEM under OLAP8-63.
        if record.logical_offset is not None:
            if self._last_end is None or record.logical_offset != self._last_end:
                self.n_runs += 1
            self._last_end = record.logical_offset + record.size
        else:
            self.n_runs += 1

    @property
    def total(self):
        return self.n_reads + self.n_writes


class TraceAnalyzer:
    """Fits per-object workload descriptions from a completion trace.

    Args:
        trace: Iterable of completion records.  Records whose ``obj`` is
            None (e.g. calibration noise) are ignored.
        duration: Observation interval in seconds; inferred from the
            trace extent when omitted.
        window_s: Width of the time windows used to estimate overlaps.
            Two objects overlap in a window when both complete at least
            one request in it; ``O_i[k]`` is the fraction of *i*'s active
            windows in which *k* is also active.
    """

    def __init__(self, trace, duration=None, window_s=1.0):
        self.window_s = float(window_s)
        records = [r for r in trace if r.obj is not None]
        if duration is None:
            if records:
                start = min(r.submit_time for r in records)
                end = max(r.finish_time for r in records)
                duration = max(end - start, 1e-9)
            else:
                duration = 1.0
        self.duration = float(duration)

        self._stats = defaultdict(_ObjectStats)
        for record in sorted(records, key=lambda r: r.finish_time):
            self._stats[record.obj].add(record)

        self._active_windows = {
            obj: frozenset(
                int(t // self.window_s) for t in stats.times
            )
            for obj, stats in self._stats.items()
        }

    @property
    def objects(self):
        """Names of objects observed in the trace."""
        return sorted(self._stats)

    def request_count(self, obj):
        return self._stats[obj].total if obj in self._stats else 0

    def overlap(self, obj, other):
        """Estimated ``O_i[k]``: fraction of i-active windows with k active."""
        mine = self._active_windows.get(obj, frozenset())
        theirs = self._active_windows.get(other, frozenset())
        if not mine:
            return 0.0
        return len(mine & theirs) / len(mine)

    def fit(self, obj):
        """Fit an :class:`ObjectWorkload` for one object."""
        if obj not in self._stats:
            raise WorkloadError("object %s does not appear in the trace" % obj)
        stats = self._stats[obj]
        read_rate = stats.n_reads / self.duration
        write_rate = stats.n_writes / self.duration
        read_size = stats.read_bytes / stats.n_reads if stats.n_reads else 8192
        write_size = stats.write_bytes / stats.n_writes if stats.n_writes else 8192
        run_count = stats.total / max(1, stats.n_runs)

        overlap = {}
        for other in self.objects:
            if other == obj:
                continue
            value = self.overlap(obj, other)
            if value > 0:
                overlap[other] = value

        return ObjectWorkload(
            name=obj,
            read_size=read_size,
            write_size=write_size,
            read_rate=read_rate,
            write_rate=write_rate,
            run_count=max(1.0, run_count),
            overlap=overlap,
        )

    def fit_all(self, include_idle=()):
        """Fit workloads for every traced object.

        Args:
            include_idle: Extra object names to emit with zero rates, so
                the advisor still lays out objects that saw no I/O during
                the observation interval.
        """
        workloads = [self.fit(obj) for obj in self.objects]
        seen = set(self.objects)
        for name in include_idle:
            if name not in seen:
                workloads.append(ObjectWorkload(name=name))
        return workloads


def fit_workloads(trace, duration=None, window_s=1.0, include_idle=()):
    """Convenience wrapper: fit all object workloads from a trace."""
    analyzer = TraceAnalyzer(trace, duration=duration, window_s=window_s)
    return analyzer.fit_all(include_idle=include_idle)


def summarize_trace(trace):
    """Small human-readable per-object trace summary (for reports/tests)."""
    analyzer = TraceAnalyzer(trace)
    lines = []
    for obj in analyzer.objects:
        spec = analyzer.fit(obj)
        lines.append(
            "%-22s reads/s %8.1f  writes/s %8.1f  runcount %7.1f"
            % (obj, spec.read_rate, spec.write_rate, spec.run_count)
        )
    return "\n".join(lines)
