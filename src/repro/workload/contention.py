"""Contention factors (paper Eq. 2).

``χ_ij`` measures the number of temporally-correlated competing requests
from other workloads per request of workload ``W_ij`` on target *j*:

    χ_ij = Σ_{k≠i} (λ^R_kj + λ^W_kj) · O_ij[k]  /  (λ^R_ij + λ^W_ij)

With the Figure-7 layout model, ``λ_kj = λ_k · L_kj`` and
``O_ij[k] = O_i[k]`` whenever both objects are present on the target, so
the numerator reduces to ``Σ_{k≠i} λ_k · L_kj · O_i[k]`` — smooth in the
layout variables, which is exactly what the NLP solver needs.
"""

import numpy as np


def contention_factors(total_rates, overlap_matrix, layout, floor=1e-9):
    """Compute the (N, M) matrix of contention factors ``χ_ij``.

    Args:
        total_rates: Array of per-object total request rates, shape (N,).
        overlap_matrix: (N, N) array of ``O_i[k]`` with a zero diagonal.
        layout: Layout matrix ``L``, shape (N, M).
        floor: Denominator floor; entries with (near-)zero own rate on a
            target get a contention of zero since they impose no load.

    Returns:
        (N, M) array of contention factors (zero where ``L_ij ≈ 0``).
    """
    rates = np.asarray(total_rates, dtype=float)
    overlaps = np.asarray(overlap_matrix, dtype=float)
    layout = np.asarray(layout, dtype=float)
    if np.any(np.diagonal(overlaps) != 0.0):
        # Enforce the k ≠ i sum of Eq. 2 even for hand-built matrices:
        # a nonzero diagonal would count an object's own requests as
        # competing with themselves.
        overlaps = overlaps.copy()
        np.fill_diagonal(overlaps, 0.0)

    per_target = rates[:, None] * layout            # λ_kj, shape (N, M)
    competing = overlaps @ per_target               # Σ_k O_i[k]·λ_k·L_kj
    own = rates[:, None] * layout                   # λ_ij
    chi = np.where(own > floor, competing / np.maximum(own, floor), 0.0)
    return chi
