"""Object workload descriptions (paper Figure 5).

Each database object's I/O activity is modelled as a stream of block
requests characterised by average read/write request sizes, average
read/write request rates, a run count describing sequentiality, and
overlap parameters giving the temporal correlation with every other
object's stream.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro import units
from repro.errors import WorkloadError


@dataclass
class ObjectWorkload:
    """Rome-style workload description for one database object.

    Attributes:
        name: Object name (matches the catalog / placement map).
        read_size: Average read request size in bytes (``B_i^R``).
        write_size: Average write request size in bytes (``B_i^W``).
        read_rate: Average read request rate, requests/s (``λ_i^R``).
        write_rate: Average write request rate, requests/s (``λ_i^W``).
        run_count: Average number of requests in a sequential run
            (``Q_i``); 1 means purely random, large values mean highly
            sequential.
        overlap: Mapping from other object names to ``O_i[k] ∈ [0, 1]``,
            the fraction of this stream's activity that temporally
            overlaps with object ``k``'s stream.  Missing keys mean no
            overlap.
    """

    name: str
    read_size: float = units.DEFAULT_PAGE_SIZE
    write_size: float = units.DEFAULT_PAGE_SIZE
    read_rate: float = 0.0
    write_rate: float = 0.0
    run_count: float = 1.0
    overlap: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        self.validate()

    def validate(self):
        """Raise :class:`WorkloadError` on malformed parameter values."""
        if self.read_rate < 0 or self.write_rate < 0:
            raise WorkloadError("%s: request rates must be non-negative" % self.name)
        if self.read_size <= 0 or self.write_size <= 0:
            raise WorkloadError("%s: request sizes must be positive" % self.name)
        if self.run_count < 1:
            raise WorkloadError("%s: run count must be at least 1" % self.name)
        for other, value in self.overlap.items():
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    "%s: overlap with %s is %.3f, outside [0, 1]"
                    % (self.name, other, value)
                )

    @property
    def total_rate(self):
        """Total request rate (reads plus writes), requests/s."""
        return self.read_rate + self.write_rate

    @property
    def mean_size(self):
        """Request-rate-weighted average request size (``B_i`` in Fig. 7)."""
        total = self.total_rate
        if total <= 0:
            return self.read_size
        return (
            self.read_rate * self.read_size + self.write_rate * self.write_size
        ) / total

    def overlap_with(self, other_name):
        """Overlap ``O_i[k]`` with another object (0 when unknown)."""
        return self.overlap.get(other_name, 0.0)

    def scaled(self, rate_factor):
        """Return a copy with request rates scaled by ``rate_factor``.

        Used to build synthetic larger problems (the paper's
        2x/3x/4x-consolidation timing workloads replicate specs).
        """
        return ObjectWorkload(
            name=self.name,
            read_size=self.read_size,
            write_size=self.write_size,
            read_rate=self.read_rate * rate_factor,
            write_rate=self.write_rate * rate_factor,
            run_count=self.run_count,
            overlap=dict(self.overlap),
        )

    def renamed(self, new_name, overlap_rename=None):
        """Return a copy under a new name, optionally remapping overlaps."""
        overlap = dict(self.overlap)
        if overlap_rename is not None:
            overlap = {
                overlap_rename.get(k, k): v for k, v in overlap.items()
            }
        return ObjectWorkload(
            name=new_name,
            read_size=self.read_size,
            write_size=self.write_size,
            read_rate=self.read_rate,
            write_rate=self.write_rate,
            run_count=self.run_count,
            overlap=overlap,
        )
