"""Rome-style workload modelling (paper Section 5).

An :class:`ObjectWorkload` describes one database object's I/O stream by
its request sizes, request rates, sequential run count, and temporal
overlap with other objects' streams.  The layout model (Figure 7)
transforms an object workload plus a candidate layout into per-target
workloads; the contention module computes the Eq. 2 interference factor;
and the analyzer fits workload descriptions from simulator traces the way
the paper's Rubicon tool fits them from kernel block traces.
"""

from repro.workload.spec import ObjectWorkload
from repro.workload.layout_model import (
    per_target_rates,
    per_target_run_counts,
    per_target_workload,
)
from repro.workload.contention import contention_factors
from repro.workload.analyzer import TraceAnalyzer, fit_workloads
from repro.workload.estimator import WorkloadEstimator, estimate_workloads
from repro.workload.trace_io import (
    load_trace,
    object_totals,
    rate_series,
    save_trace,
    target_busy_series,
)

__all__ = [
    "ObjectWorkload",
    "per_target_rates",
    "per_target_run_counts",
    "per_target_workload",
    "contention_factors",
    "TraceAnalyzer",
    "fit_workloads",
    "WorkloadEstimator",
    "estimate_workloads",
    "save_trace",
    "load_trace",
    "rate_series",
    "object_totals",
    "target_busy_series",
]
