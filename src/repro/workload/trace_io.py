"""Trace persistence and summary statistics.

The paper's methodology starts from kernel block-I/O traces collected
on the operational system; in practice those traces are archived and
re-analyzed.  This module gives the simulator's traces the same
lifecycle: save/load completion records as JSON-lines files, and
compute the windowed statistics (request-rate time series, per-object
totals) that a Rubicon-style characterization report shows.
"""

import json
from collections import defaultdict

from repro.storage.request import CompletionRecord

_FIELDS = (
    "submit_time",
    "finish_time",
    "target",
    "obj",
    "stream_id",
    "kind",
    "lba",
    "logical_offset",
    "size",
    "service_time",
)


def save_trace(trace, path):
    """Write completion records to a JSON-lines file."""
    with open(path, "w") as handle:
        for record in trace:
            handle.write(json.dumps({
                field: getattr(record, field) for field in _FIELDS
            }))
            handle.write("\n")


def load_trace(path):
    """Read completion records from a JSON-lines file."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            records.append(CompletionRecord(**{
                field: data[field] for field in _FIELDS
            }))
    return records


def rate_series(trace, window_s=1.0, obj=None, kind=None):
    """Request-rate time series: list of (window_start, requests/s).

    Args:
        trace: Completion records.
        window_s: Window width in seconds.
        obj: Restrict to one object (None = all).
        kind: Restrict to ``"read"`` or ``"write"`` (None = both).
    """
    counts = defaultdict(int)
    for record in trace:
        if obj is not None and record.obj != obj:
            continue
        if kind is not None and record.kind != kind:
            continue
        counts[int(record.finish_time // window_s)] += 1
    if not counts:
        return []
    last = max(counts)
    return [
        (w * window_s, counts.get(w, 0) / window_s)
        for w in range(0, last + 1)
    ]


def object_totals(trace):
    """Per-object request/byte totals split by kind.

    Returns a mapping ``obj -> {"reads", "writes", "read_bytes",
    "write_bytes", "mean_service_s"}``.
    """
    totals = {}
    service = defaultdict(list)
    for record in trace:
        if record.obj is None:
            continue
        entry = totals.setdefault(record.obj, {
            "reads": 0, "writes": 0, "read_bytes": 0, "write_bytes": 0,
            "mean_service_s": 0.0,
        })
        if record.kind == "read":
            entry["reads"] += 1
            entry["read_bytes"] += record.size
        else:
            entry["writes"] += 1
            entry["write_bytes"] += record.size
        service[record.obj].append(record.service_time)
    for obj, samples in service.items():
        totals[obj]["mean_service_s"] = sum(samples) / len(samples)
    return totals


def target_busy_series(trace, window_s=1.0):
    """Per-target busy-fraction time series from service times.

    Returns ``target -> list of (window_start, busy_fraction)`` — the
    measured counterpart of the advisor's estimated utilizations.
    """
    busy = defaultdict(lambda: defaultdict(float))
    for record in trace:
        window = int(record.finish_time // window_s)
        busy[record.target][window] += record.service_time
    series = {}
    for target, windows in busy.items():
        last = max(windows)
        series[target] = [
            (w * window_s, min(1.0, windows.get(w, 0.0) / window_s))
            for w in range(0, last + 1)
        ]
    return series
