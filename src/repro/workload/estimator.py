"""Storage workload estimation without traces (paper §5.1, ref [19]).

The paper's primary input path fits workload descriptions from traces
of the running system; its stated alternative is a *storage workload
estimator* that derives the descriptions "using knowledge of the
database system and its workload ... without actually running the
workload and collecting traces", at some accuracy cost.

This module is that estimator for our substrate: given the query I/O
profiles, the catalog, and the workload mix (query sequence and
concurrency), it predicts per-object request rates, run counts, and
pairwise overlaps analytically:

* per-query object volumes come from the profiles (how many pages each
  access touches);
* a rough per-query duration estimate (sequential pages at streaming
  cost, random pages at positioning cost) converts volumes into rates
  and gives each object an *active time* per query;
* run counts start from the access patterns (sequential accesses are
  long runs, probes are runs of one) and are discounted for expected
  same-object interleaving at the workload's concurrency level;
* overlap between two objects accumulates from phases that touch both
  concurrently, plus cross-query co-activity scaled by the concurrency
  level.
"""

from collections import defaultdict

from repro import units
from repro.db.profiles import SEQ
from repro.workload.spec import ObjectWorkload

#: Crude per-page cost assumptions used only to apportion time; the
#: absolute rate scale cancels in the advisor's minimax objective.
_SEQ_PAGE_COST = 0.2 * units.MS
_RAND_PAGE_COST = 5.0 * units.MS


def _access_pages(access, database, page):
    size = database[access.obj].size
    pages_in_object = max(1, size // page)
    if access.pages > 0:
        return access.pages
    fraction = min(access.fraction, 1.0) if access.mode == SEQ \
        else access.fraction
    return max(1, int(round(fraction * pages_in_object)))


def _phase_duration(phase, database, page):
    """Estimated wall time of a phase: its slowest concurrent access."""
    longest = 0.0
    for access in phase.accesses:
        pages = _access_pages(access, database, page)
        cost = _SEQ_PAGE_COST if access.mode == SEQ else _RAND_PAGE_COST
        longest = max(longest, pages * cost)
    return max(longest, 1e-6)


class WorkloadEstimator:
    """Derives Rome-style workload descriptions from query profiles.

    Args:
        database: The object catalog.
        profiles: Query profiles in execution order (repeats weight the
            mix, exactly like the trace-based path sees them).
        concurrency: Workload concurrency level; unlike AutoAdmin, the
            estimator uses it — same-object run counts shrink and
            cross-query overlaps grow with concurrency.
        page: Page size for volume computations.
    """

    def __init__(self, database, profiles, concurrency=1,
                 page=units.DEFAULT_PAGE_SIZE):
        self.database = database
        self.profiles = list(profiles)
        self.concurrency = max(1, int(concurrency))
        self.page = int(page)
        self._analyze()

    def _analyze(self):
        page = self.page
        db = self.database

        reads = defaultdict(float)          # object -> pages
        writes = defaultdict(float)
        run_pages = defaultdict(float)      # object -> sum of run lengths
        run_count = defaultdict(float)      # object -> number of runs
        active_time = defaultdict(float)    # object -> est. busy seconds
        pair_time = defaultdict(float)      # (a, b) -> est. co-active s
        total_time = 0.0

        for profile in self.profiles:
            query_objects = {}
            for phase in profile.phases:
                duration = _phase_duration(phase, db, page)
                total_time += duration
                touched = []
                for access in phase.accesses:
                    pages = _access_pages(access, db, page)
                    if access.kind == "read":
                        reads[access.obj] += pages
                    else:
                        writes[access.obj] += pages
                    if access.mode == SEQ:
                        run_pages[access.obj] += pages
                        run_count[access.obj] += max(
                            1, pages * page // units.DEFAULT_STRIPE_SIZE
                        )
                    else:
                        run_pages[access.obj] += pages
                        run_count[access.obj] += pages
                    touched.append(access.obj)
                    active_time[access.obj] += duration
                    query_objects[access.obj] = (
                        query_objects.get(access.obj, 0.0) + duration
                    )
                for a in range(len(touched)):
                    for b in range(len(touched)):
                        if touched[a] != touched[b]:
                            pair_time[(touched[a], touched[b])] += duration

        # Cross-query co-activity: at concurrency c, while one query
        # runs, (c - 1) random other queries are active; an object pair
        # co-occurs in proportion to their overall active fractions.
        if self.concurrency > 1 and total_time > 0:
            boost = min(1.0, (self.concurrency - 1) / self.concurrency)
            names = list(active_time)
            for a in names:
                for b in names:
                    if a != b:
                        expected = (
                            active_time[a] * active_time[b] / total_time
                        )
                        pair_time[(a, b)] += boost * expected

        self._reads = reads
        self._writes = writes
        self._run_pages = run_pages
        self._run_count = run_count
        self._active_time = active_time
        self._pair_time = pair_time
        #: Estimated workload makespan: serial time over concurrency.
        self.estimated_duration = max(total_time / self.concurrency, 1e-6)

    def estimate(self, obj):
        """Estimated :class:`ObjectWorkload` for one object."""
        duration = self.estimated_duration
        read_rate = self._reads.get(obj, 0.0) / duration
        write_rate = self._writes.get(obj, 0.0) / duration

        runs = self._run_count.get(obj, 1.0)
        pages = self._run_pages.get(obj, 0.0)
        run_length = pages / runs if runs else 1.0
        # Same-object interleaving at higher concurrency breaks runs —
        # the effect the trace-based path observes directly on LINEITEM
        # under OLAP8-63.
        run_length = max(1.0, run_length / self.concurrency)

        overlap = {}
        mine = self._active_time.get(obj, 0.0)
        if mine > 0:
            for other in self._active_time:
                if other == obj:
                    continue
                together = self._pair_time.get((obj, other), 0.0)
                value = min(1.0, together / mine)
                if value > 0.01:
                    overlap[other] = value

        return ObjectWorkload(
            name=obj,
            read_size=self.page,
            write_size=self.page,
            read_rate=read_rate,
            write_rate=write_rate,
            run_count=run_length,
            overlap=overlap,
        )

    def estimate_all(self, include_idle=True):
        """Workload descriptions for every object in the catalog."""
        active = set(self._active_time)
        names = (
            self.database.object_names if include_idle else sorted(active)
        )
        return [
            self.estimate(name) if name in active else ObjectWorkload(name)
            for name in names
        ]


def estimate_workloads(database, profiles, concurrency=1,
                       page=units.DEFAULT_PAGE_SIZE):
    """Convenience wrapper mirroring :func:`fit_workloads`' shape."""
    estimator = WorkloadEstimator(database, profiles,
                                  concurrency=concurrency, page=page)
    return estimator.estimate_all()
