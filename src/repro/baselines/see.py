"""Stripe-everything-everywhere (SEE).

The default practice the paper measures against: every object is
distributed evenly across all available storage targets [18, 22].  Good
load balance on homogeneous targets, but oblivious to interference and
to target heterogeneity.
"""

from repro.core.layout import Layout


def see_layout(object_names, target_names):
    """The SEE layout over the given objects and targets."""
    return Layout.see(list(object_names), list(target_names))
