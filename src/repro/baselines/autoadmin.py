"""The AutoAdmin relational layout algorithm (Agrawal et al., ICDE 2003).

Reimplemented as the paper's §6.6 describes it:

* Input is the *SQL workload* — the set of statements with, per
  statement, the objects it accesses and the optimizer-estimated I/O
  volume on each.  (Our substitute for optimizer estimates is the
  per-query I/O profile volume, optionally perturbed by a misestimate
  map to reproduce the paper's PostgreSQL-Q18 cardinality-error
  discussion.)
* The tool builds a graph whose nodes are objects and whose weighted
  edges capture concurrent access by workload queries.
* Step one partitions the graph, separating heavily co-accessed objects
  onto different targets to minimise interference.
* Step two further distributes objects across targets to increase I/O
  parallelism.  The resulting layout is regular.

Crucially — and this is the paper's main criticism — the algorithm never
sees request rates, sequentiality, concurrency levels, or target
performance models, so it recommends the same layout for OLAP1-63 and
OLAP8-63.
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro import units
from repro.core.layout import Layout
from repro.db.profiles import SEQ


def estimated_volumes(profile, database, page=units.DEFAULT_PAGE_SIZE,
                      misestimates=None):
    """Optimizer-style per-object I/O volume estimates for one query.

    Args:
        profile: The query's I/O profile.
        database: The catalog (for object sizes).
        misestimates: Optional ``{(query_name, object_name): factor}``
            multipliers emulating cardinality estimation errors, e.g.
            the order-of-magnitude PostgreSQL error on Q18's temp usage
            that the paper discusses.

    Returns:
        Mapping object name → estimated pages accessed.
    """
    volumes = {}
    for phase in profile.phases:
        for access in phase.accesses:
            size = database[access.obj].size
            pages_in_object = max(1, size // page)
            if access.pages > 0:
                pages = access.pages
            else:
                fraction = min(access.fraction, 1.0) if access.mode == SEQ \
                    else access.fraction
                pages = max(1, int(round(fraction * pages_in_object)))
            volumes[access.obj] = volumes.get(access.obj, 0) + pages
    if misestimates:
        for (query, obj), factor in misestimates.items():
            if query == profile.name and obj in volumes:
                volumes[obj] = int(volumes[obj] * factor)
    return volumes


@dataclass
class AutoAdminAdvisor:
    """Graph-based two-step layout advisor.

    Args:
        database: The object catalog.
        profiles: The SQL workload: query profiles (duplicates are fine
            and weigh queries by frequency).
        misestimates: Optional cardinality-error emulation, as above.
    """

    database: object
    profiles: list
    misestimates: Dict[Tuple[str, str], float] = field(default_factory=dict)
    page: int = units.DEFAULT_PAGE_SIZE

    def __post_init__(self):
        self.object_names = self.database.object_names
        self._index = {name: i for i, name in enumerate(self.object_names)}
        n = len(self.object_names)
        self.node_weight = np.zeros(n)
        self.edge_weight = np.zeros((n, n))
        for profile in self.profiles:
            volumes = estimated_volumes(profile, self.database,
                                        page=self.page,
                                        misestimates=self.misestimates)
            names = list(volumes)
            for name in names:
                self.node_weight[self._index[name]] += volumes[name]
            # Concurrent access within one statement: co-access weight is
            # the smaller of the two volumes (the amount of interleaving
            # the pair can actually generate).
            for a in range(len(names)):
                for b in range(a + 1, len(names)):
                    i, j = self._index[names[a]], self._index[names[b]]
                    weight = min(volumes[names[a]], volumes[names[b]])
                    self.edge_weight[i, j] += weight
                    self.edge_weight[j, i] += weight

    def recommend(self, target_names, capacities=None):
        """Run both steps and return a regular :class:`Layout`."""
        placement = self._partition(target_names, capacities)
        matrix = self._parallelize(placement, target_names, capacities)
        return Layout(matrix, self.object_names, list(target_names))

    # ------------------------------------------------------------------
    # Step 1: graph partitioning — separate co-accessed objects.
    # ------------------------------------------------------------------

    def _partition(self, target_names, capacities):
        n, m = len(self.object_names), len(target_names)
        sizes = np.array([self.database[o].size for o in self.object_names],
                         dtype=float)
        if capacities is None:
            capacities = np.full(m, sizes.sum())
        else:
            capacities = np.asarray(capacities, dtype=float)

        placement = np.full(n, -1, dtype=int)
        used = np.zeros(m)
        load = np.zeros(m)
        order = np.argsort(-self.node_weight, kind="stable")
        for i in order:
            best_j, best_score = None, None
            for j in range(m):
                if used[j] + sizes[i] > capacities[j]:
                    continue
                # Interference: co-access weight with objects already on
                # this target, tie-broken by assigned load.
                co_access = sum(
                    self.edge_weight[i, k]
                    for k in range(n)
                    if placement[k] == j
                )
                score = (co_access, load[j], j)
                if best_score is None or score < best_score:
                    best_score = score
                    best_j = j
            if best_j is None:
                # Capacity-squeezed: fall back to the emptiest target.
                best_j = int(np.argmin(used))
            placement[i] = best_j
            used[best_j] += sizes[i]
            load[best_j] += self.node_weight[i]
        return placement

    # ------------------------------------------------------------------
    # Step 2: spread objects for I/O parallelism.
    # ------------------------------------------------------------------

    def _parallelize(self, placement, target_names, capacities):
        n, m = len(self.object_names), len(target_names)
        sizes = np.array([self.database[o].size for o in self.object_names],
                         dtype=float)
        if capacities is None:
            capacities = np.full(m, sizes.sum())
        else:
            capacities = np.asarray(capacities, dtype=float)

        matrix = np.zeros((n, m))
        for i in range(n):
            matrix[i, placement[i]] = 1.0
        used = sizes @ matrix

        # Objects in decreasing volume order try to widen onto targets
        # that hold none of their co-accessed partners; widening stops as
        # soon as it would create interference or exceed capacity.
        order = np.argsort(-self.node_weight, kind="stable")
        for i in order:
            if self.node_weight[i] <= 0:
                continue
            current = [j for j in range(m) if matrix[i, j] > 0]
            for j in range(m):
                if matrix[i, j] > 0:
                    continue
                conflict = any(
                    matrix[k, j] > 0 and self.edge_weight[i, k] > 0
                    for k in range(n)
                    if k != i
                )
                if conflict:
                    continue
                share = sizes[i] / (len(current) + 1)
                if used[j] + share > capacities[j]:
                    continue
                current.append(j)
            if len(current) > 1:
                used -= sizes[i] * matrix[i]
                matrix[i] = Layout.regular_row(current, m)
                used += sizes[i] * matrix[i]
        return matrix


def autoadmin_layout(database, profiles, target_names, capacities=None,
                     misestimates=None):
    """Convenience wrapper: build the advisor and recommend a layout."""
    advisor = AutoAdminAdvisor(
        database=database, profiles=list(profiles),
        misestimates=dict(misestimates or {}),
    )
    return advisor.recommend(target_names, capacities=capacities)
