"""Baseline layout strategies the paper compares against.

* stripe-everything-everywhere (SEE),
* isolate-tables / isolate-tables-and-indexes heuristics (paper §6.4),
* everything-on-the-SSD (paper §6.4's second experiment),
* the AutoAdmin relational layout algorithm of Agrawal et al.
  (ICDE 2003), reimplemented as described in the paper's §6.6.
"""

from repro.baselines.see import see_layout
from repro.baselines.heuristics import (
    isolate_tables_layout,
    isolate_tables_indexes_layout,
    all_on_target_layout,
)
from repro.baselines.autoadmin import AutoAdminAdvisor, autoadmin_layout
from repro.baselines.file_assignment import (
    greedy_rate_layout,
    round_robin_layout,
)

__all__ = [
    "see_layout",
    "isolate_tables_layout",
    "isolate_tables_indexes_layout",
    "all_on_target_layout",
    "AutoAdminAdvisor",
    "autoadmin_layout",
    "greedy_rate_layout",
    "round_robin_layout",
]
