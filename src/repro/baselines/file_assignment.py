"""Classic file-assignment baselines (paper §7 related work).

"File assignment problems involve assigning each of N files to one of M
identical storage devices, usually with the objective of balancing the
load across the devices ... each file might be associated with a
numeric request rate.  Issues like interference between co-located
objects are not considered."

Two representative strategies:

* :func:`greedy_rate_layout` — files in decreasing request-rate order,
  each placed whole on the device with the lowest assigned rate (the
  longest-processing-time rule for makespan balancing);
* :func:`round_robin_layout` — files dealt to devices in catalog order,
  the naive default.

Both are rate-only and interference-blind, which is exactly what the
workload-aware advisor improves on.
"""

import numpy as np

from repro.core.layout import Layout
from repro.errors import CapacityError


def greedy_rate_layout(database, workloads, target_names, capacities=None):
    """Rate-balancing greedy assignment (one target per object)."""
    by_name = {w.name: w for w in workloads}
    names = database.object_names
    m = len(target_names)
    sizes = np.array([database[n].size for n in names], dtype=float)
    if capacities is None:
        capacities = np.full(m, sizes.sum())
    capacities = np.asarray(capacities, dtype=float)

    order = sorted(
        range(len(names)),
        key=lambda i: -(by_name[names[i]].total_rate if names[i] in by_name
                        else 0.0),
    )
    matrix = np.zeros((len(names), m))
    load = np.zeros(m)
    used = np.zeros(m)
    for i in order:
        rate = by_name[names[i]].total_rate if names[i] in by_name else 0.0
        candidates = [j for j in range(m) if used[j] + sizes[i] <= capacities[j]]
        if not candidates:
            raise CapacityError(
                "no device has room for %s in the file-assignment baseline"
                % names[i]
            )
        j = min(candidates, key=lambda j: (load[j], j))
        matrix[i, j] = 1.0
        load[j] += rate
        used[j] += sizes[i]
    return Layout(matrix, names, list(target_names))


def round_robin_layout(database, target_names):
    """Deal objects to devices in catalog order (naive default)."""
    names = database.object_names
    m = len(target_names)
    matrix = np.zeros((len(names), m))
    for i in range(len(names)):
        matrix[i, i % m] = 1.0
    return Layout(matrix, names, list(target_names))
