"""Rule-of-thumb layout heuristics (paper §6.4's baselines).

For the heterogeneous "3-1" configuration the paper considers isolating
all tables on the large target with everything else on the small one;
for "2-1-1" it isolates tables on the large target, indexes on one small
target, and the temporary tablespace (plus logs) on the other.  For the
SSD experiments it considers placing every object on the SSD when
capacity allows.
"""

from repro.core.layout import Layout
from repro.db.schema import INDEX, LOG, TABLE, TEMP
from repro.errors import LayoutError


def _assignment_layout(database, target_names, group_of):
    """Build a layout from a function mapping object kind to a target."""
    assignment = {}
    for obj in database.objects:
        assignment[obj.name] = group_of(obj)
    return Layout.from_assignment(assignment, database.object_names,
                                  list(target_names))


def isolate_tables_layout(database, target_names, table_target=0):
    """Tables on one target, everything else striped over the rest.

    The paper's second baseline for the "3-1" configuration places the
    tables on the 3-disk RAID0 target and the remaining objects on the
    standalone disk.
    """
    others = [j for j in range(len(target_names)) if j != table_target]
    if not others:
        raise LayoutError("need at least two targets to isolate tables")

    def group_of(obj):
        if obj.kind == TABLE:
            return [table_target]
        return others

    return _assignment_layout(database, target_names, group_of)


def isolate_tables_indexes_layout(database, target_names, table_target=0,
                                  index_target=1, temp_target=2):
    """Tables / indexes / temp+log each isolated (paper's 2-1-1 baseline)."""
    if len(target_names) < 3:
        raise LayoutError(
            "isolating tables, indexes, and temp needs at least 3 targets"
        )

    def group_of(obj):
        if obj.kind == TABLE:
            return [table_target]
        if obj.kind == INDEX:
            return [index_target]
        if obj.kind in (TEMP, LOG):
            return [temp_target]
        return [temp_target]

    return _assignment_layout(database, target_names, group_of)


def all_on_target_layout(database, target_names, target_index,
                         capacity=None):
    """Every object on a single target (the paper's SSD-only baseline).

    Raises:
        LayoutError: If ``capacity`` is given and the database does not
            fit — the paper only reports the SSD-only baseline "in those
            scenarios for which the SSD capacity was sufficient".
    """
    if capacity is not None and database.total_size > capacity:
        raise LayoutError(
            "database (%d bytes) does not fit on target %s (%d bytes)"
            % (database.total_size, target_names[target_index], capacity)
        )

    def group_of(_obj):
        return [target_index]

    return _assignment_layout(database, target_names, group_of)
