"""Seed-deterministic scenario compilation.

Compilation lowers a validated :class:`~repro.scenarios.schema.ScenarioSpec`
onto the machinery the rest of the library already speaks:

* a piecewise-constant **rate table** — the schedule's shapes are
  integrated analytically over small segments, so ramp / diurnal /
  step / drift all reduce to ``(object, kind, size, run_count) → req/s``
  per segment;
* :class:`~repro.workload.spec.ObjectWorkload` descriptions at any
  point or interval in scenario time (rates, rate-weighted sizes and
  run counts, co-activity overlaps);
* a synthetic **completion trace** (:mod:`repro.workload.trace_io`
  records) for `replay-online`, the workload monitor, and the matrix
  runner;
* the embedded :class:`~repro.faults.plan.FaultPlan`; and
* a **tenant arrival/churn schedule** for serve-mode runs.

Everything derives from ``(spec, seed)`` alone — no wall clock, no
global RNG — so :meth:`CompiledScenario.signature` is a determinism
contract mirroring :meth:`repro.faults.plan.FaultPlan.signature`:
compile the same spec with the same seed anywhere and the signatures
compare equal and the synthesized traces match byte for byte.
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import units
from repro.errors import ScenarioError
from repro.storage.request import CompletionRecord
from repro.workload.spec import ObjectWorkload

#: Default subdivision width for time-varying shapes (ramp / diurnal /
#: drift); constant and step shapes segment exactly at their breakpoints.
DEFAULT_RESOLUTION_S = 1.0

#: Rates below this are treated as inactive for overlap purposes.
_ACTIVE_EPS = 1e-12

#: Synthetic service-time model: a seek/setup cost amortized over the
#: run, plus transfer at a nominal device bandwidth.
_SEEK_S = {"read": 0.005, "write": 0.006}
_TRANSFER_BPS = 150e6


@dataclass(frozen=True)
class StreamKey:
    """Identity of one synthetic request stream."""

    obj: str
    kind: str
    size: int
    run_count: float

    def sort_key(self):
        return (self.obj, self.kind, self.size, self.run_count)


@dataclass(frozen=True)
class Segment:
    """One piecewise-constant slice of the compiled rate table."""

    t0: float
    t1: float
    rates: Dict[StreamKey, float]

    @property
    def duration(self):
        return self.t1 - self.t0

    def object_rate(self, obj):
        return sum(rate for key, rate in self.rates.items()
                   if key.obj == obj)


@dataclass(frozen=True)
class TenantEvent:
    """One tenant lifecycle in the compiled arrival/churn schedule."""

    tenant: str
    arrive_s: float
    depart_s: float


def _entry_multiplier_mean(entry, a, b):
    """Exact mean of a schedule entry's multiplier over [a, b]."""
    if entry.shape == "constant":
        return entry.level
    if entry.shape == "ramp":
        span = entry.t1 - entry.t0
        mid = (a + b) / 2.0
        return entry.ramp_from + (entry.ramp_to - entry.ramp_from) \
            * (mid - entry.t0) / span
    if entry.shape == "diurnal":
        omega = 2.0 * math.pi / entry.period_s
        pa = omega * (a - entry.t0) + entry.phase
        pb = omega * (b - entry.t0) + entry.phase
        mean_sin = (math.cos(pa) - math.cos(pb)) / (omega * (b - a))
        return entry.mean * (1.0 + entry.amplitude * mean_sin)
    if entry.shape == "step":
        # Segments are split at `at` / `until`, so [a, b] is uniform.
        mid = (a + b) / 2.0
        return entry.peak if entry.at <= mid < entry.until else entry.base
    raise ScenarioError("no multiplier for shape %r" % entry.shape)


def _drift_weights(entry, a, b):
    """(from_mix weight, to_mix weight) for a drift entry over [a, b]."""
    mid = (a + b) / 2.0
    u = (mid - entry.t0) / (entry.t1 - entry.t0)
    return entry.level * (1.0 - u), entry.level * u


def _breakpoints(spec, resolution_s):
    points = {0.0, spec.duration_s}
    for entry in spec.schedule:
        points.add(entry.t0)
        points.add(entry.t1)
        if entry.shape == "step":
            points.add(entry.at)
            points.add(entry.until)
        elif entry.shape in ("ramp", "diurnal", "drift"):
            steps = max(1, int(math.ceil(
                (entry.t1 - entry.t0) / resolution_s
            )))
            for k in range(1, steps):
                points.add(entry.t0 + (entry.t1 - entry.t0) * k / steps)
    return sorted(p for p in points if 0.0 <= p <= spec.duration_s + 1e-9)


def _mix_contributions(entry, spec, a, b):
    """Yield (mix, rate multiplier) pairs for an entry over [a, b]."""
    if entry.shape == "drift":
        w_from, w_to = _drift_weights(entry, a, b)
        yield spec.mixes[entry.from_mix], w_from
        yield spec.mixes[entry.to_mix], w_to
    else:
        yield spec.mixes[entry.mix], _entry_multiplier_mean(entry, a, b)


def compile_scenario(spec, seed=None, resolution_s=DEFAULT_RESOLUTION_S):
    """Compile a spec into a :class:`CompiledScenario`.

    Args:
        spec: A validated :class:`~repro.scenarios.schema.ScenarioSpec`.
        seed: Compile seed; defaults to the spec's ``seed`` field.
        resolution_s: Subdivision width for time-varying shapes.
    """
    if seed is None:
        seed = spec.seed
    seed = int(seed)
    if seed < 0:
        raise ScenarioError("compile seed must be non-negative")
    points = _breakpoints(spec, float(resolution_s))
    segments = []
    for a, b in zip(points, points[1:]):
        if b - a <= 1e-12:
            continue
        rates = {}
        for entry in spec.schedule:
            if entry.t0 >= b - 1e-12 or entry.t1 <= a + 1e-12:
                continue
            for mix, multiplier in _mix_contributions(entry, spec, a, b):
                if multiplier <= 0:
                    continue
                for task, task_rate in mix.task_rates():
                    share = task_rate * multiplier / len(task.objects)
                    for obj in task.objects:
                        key = StreamKey(obj, task.kind, task.size,
                                        task.run_count)
                        rates[key] = rates.get(key, 0.0) + share
        segments.append(Segment(a, b, rates))
    return CompiledScenario(spec, seed, tuple(segments))


class CompiledScenario:
    """A scenario lowered to segments, traces, faults, and tenants."""

    def __init__(self, spec, seed, segments):
        self.spec = spec
        self.seed = seed
        self.segments = segments
        self.fault_plan = spec.fault_plan
        self._tenant_schedule = None
        #: Stable stream numbering across the whole scenario.
        keys = set()
        for segment in segments:
            keys.update(segment.rates)
        self._stream_ids = {
            key: index
            for index, key in enumerate(sorted(keys,
                                               key=StreamKey.sort_key))
        }

    @property
    def name(self):
        return self.spec.name

    @property
    def duration_s(self):
        return self.spec.duration_s

    @property
    def object_sizes(self):
        return dict(self.spec.object_sizes)

    # ------------------------------------------------------------------
    # Rate table queries
    # ------------------------------------------------------------------

    def segment_at(self, t):
        for segment in self.segments:
            if segment.t0 <= t < segment.t1:
                return segment
        return self.segments[-1] if self.segments else None

    def rate_integral(self, obj=None, kind=None):
        """Expected request count over the whole scenario.

        The schedule-shape contract: this equals the analytic integral
        of the shaped rates (ramps average their endpoints, diurnal
        sine cancels over whole periods, steps add ``peak × width``).
        """
        total = 0.0
        for segment in self.segments:
            for key, rate in segment.rates.items():
                if obj is not None and key.obj != obj:
                    continue
                if kind is not None and key.kind != kind:
                    continue
                total += rate * segment.duration
        return total

    def _window_rates(self, t0, t1):
        """Aggregated per-stream rates over [t0, t1]."""
        acc = {}
        span = 0.0
        for segment in self.segments:
            a, b = max(segment.t0, t0), min(segment.t1, t1)
            if b - a <= 0:
                continue
            span += b - a
            for key, rate in segment.rates.items():
                acc[key] = acc.get(key, 0.0) + rate * (b - a)
        if span <= 0:
            return {}
        return {key: value / span for key, value in acc.items()}

    def _overlaps(self):
        """Pairwise co-activity fractions from the segment table."""
        active = {obj: 0.0 for obj in self.spec.object_sizes}
        shared = {}
        for segment in self.segments:
            live = [obj for obj in active
                    if segment.object_rate(obj) > _ACTIVE_EPS]
            for obj in live:
                active[obj] += segment.duration
            for i, obj in enumerate(live):
                for other in live[i + 1:]:
                    pair = (obj, other)
                    shared[pair] = shared.get(pair, 0.0) + segment.duration
        overlaps = {obj: {} for obj in active}
        for (obj, other), value in shared.items():
            if active[obj] > 0:
                overlaps[obj][other] = min(1.0, value / active[obj])
            if active[other] > 0:
                overlaps[other][obj] = min(1.0, value / active[other])
        return overlaps

    def mean_workloads(self, t0=None, t1=None):
        """Fitted-style :class:`ObjectWorkload` list over a window.

        Rates are time averages over ``[t0, t1]`` (default: the whole
        scenario); request sizes and run counts are rate-weighted
        means; overlaps come from whole-run co-activity.  Objects with
        no traffic in the window get zero-rate specs, so the list
        always covers the full catalog.
        """
        if t0 is None:
            t0 = 0.0
        if t1 is None:
            t1 = self.duration_s
        rates = self._window_rates(t0, t1)
        overlaps = self._overlaps()
        workloads = []
        for obj in self.spec.object_sizes:
            by_kind = {"read": [], "write": []}
            for key, rate in rates.items():
                if key.obj == obj and rate > 0:
                    by_kind[key.kind].append((key, rate))
            read_rate = sum(rate for _, rate in by_kind["read"])
            write_rate = sum(rate for _, rate in by_kind["write"])
            total = read_rate + write_rate

            def weighted(entries, attr, default):
                mass = sum(rate for _, rate in entries)
                if mass <= 0:
                    return default
                return sum(getattr(key, attr) * rate
                           for key, rate in entries) / mass

            run_entries = by_kind["read"] + by_kind["write"]
            workloads.append(ObjectWorkload(
                name=obj,
                read_size=weighted(by_kind["read"], "size",
                                   units.DEFAULT_PAGE_SIZE),
                write_size=weighted(by_kind["write"], "size",
                                    units.DEFAULT_PAGE_SIZE),
                read_rate=read_rate,
                write_rate=write_rate,
                run_count=max(1.0, weighted(run_entries, "run_count", 1.0)),
                overlap=dict(overlaps.get(obj, {})) if total > 0 else {},
            ))
        return workloads

    def workloads_at(self, t):
        """Instantaneous workload descriptions at scenario time ``t``."""
        segment = self.segment_at(t)
        if segment is None:
            return self.mean_workloads(0.0, self.duration_s)
        return self.mean_workloads(segment.t0, segment.t1)

    def baseline_workloads(self):
        """What the initial layout should be solved for: the first
        authored schedule entry's interval (phase A of a drift run)."""
        entry = self.spec.schedule[0]
        return self.mean_workloads(entry.t0, entry.t1)

    # ------------------------------------------------------------------
    # Problem lowering
    # ------------------------------------------------------------------

    def problem_payload(self, workloads=None):
        """CLI problem-JSON-shaped dict (needs a ``targets`` section)."""
        if not self.spec.targets:
            raise ScenarioError(
                "scenario %r has no targets section; it cannot stand "
                "alone as a layout problem" % self.name
            )
        if workloads is None:
            workloads = self.baseline_workloads()
        objects = []
        for workload in workloads:
            objects.append({
                "name": workload.name,
                "size": self.spec.object_sizes[workload.name],
                "read_rate": workload.read_rate,
                "write_rate": workload.write_rate,
                "read_size": workload.read_size,
                "write_size": workload.write_size,
                "run_count": workload.run_count,
                "overlap": dict(workload.overlap),
            })
        return {
            "targets": [t.as_payload() for t in self.spec.targets],
            "objects": objects,
        }

    def initial_layout(self):
        """The spec's declared starting layout, or ``None``.

        Benchmarks and replays use this as the "solved long ago"
        layout a drift scenario opens with; absent a declaration,
        callers run the advisor on :meth:`baseline_workloads`.
        """
        if self.spec.initial_layout is None:
            return None
        from repro.core.layout import Layout

        objects = list(self.spec.object_sizes)
        return Layout(
            [list(self.spec.initial_layout[obj]) for obj in objects],
            objects, list(self.spec.target_names),
        )

    # ------------------------------------------------------------------
    # Trace synthesis
    # ------------------------------------------------------------------

    def synthesize_trace(self, targets=None):
        """Deterministic synthetic completion trace for the scenario.

        Per segment and per stream, arrivals are Poisson at the
        compiled rate, offsets follow the stream's run structure, and
        service times draw from a seek-plus-transfer model — all from
        RNGs keyed by ``(seed, segment, stream)``, so the same spec and
        seed reproduce the identical record list.  ``targets`` names
        the targets records are attributed to (default: the spec's
        targets, else a single synthetic ``t0``).
        """
        if targets is None:
            targets = self.spec.target_names or ["t0"]
        targets = list(targets)
        records = []
        cursors = {}
        for seg_index, segment in enumerate(self.segments):
            dt = segment.duration
            for key in sorted(segment.rates, key=StreamKey.sort_key):
                rate = segment.rates[key]
                if rate <= 0:
                    continue
                stream_id = self._stream_ids[key]
                rng = np.random.default_rng(
                    [self.seed, seg_index, stream_id]
                )
                count = int(rng.poisson(rate * dt))
                if count == 0:
                    continue
                times = np.sort(rng.random(count)) * dt + segment.t0
                mean_service = (_SEEK_S[key.kind] / key.run_count
                                + key.size / _TRANSFER_BPS)
                services = rng.exponential(mean_service, count)
                target_picks = rng.integers(0, len(targets), count)
                records.extend(self._stream_records(
                    key, stream_id, times, services, target_picks,
                    targets, cursors, rng,
                ))
        records.sort(key=lambda r: (r.finish_time, r.stream_id,
                                    r.logical_offset))
        return records

    def _stream_records(self, key, stream_id, times, services,
                        target_picks, targets, cursors, rng):
        object_size = self.spec.object_sizes[key.obj]
        n_pages = max(1, object_size // key.size)
        run_length = max(1, int(round(key.run_count)))
        cursor, run_left = cursors.get(key, (0, 0))
        out = []
        for submit, service, pick in zip(times, services, target_picks):
            if run_left <= 0 or cursor + key.size > n_pages * key.size:
                cursor = int(rng.integers(0, n_pages)) * key.size
                run_left = run_length
            offset = cursor
            cursor += key.size
            run_left -= 1
            submit = float(submit)
            service = float(service)
            out.append(CompletionRecord(
                submit_time=round(submit, 9),
                finish_time=round(submit + service, 9),
                target=targets[int(pick)],
                obj=key.obj,
                stream_id=stream_id,
                kind=key.kind,
                lba=offset,
                logical_offset=offset,
                size=key.size,
                service_time=round(service, 9),
            ))
        cursors[key] = (cursor, run_left)
        return out

    def chunks(self, chunk_s, trace=None):
        """Split a (synthesized) trace into streamable time chunks.

        Returns a list of record lists, one per ``chunk_s`` window —
        the shape :meth:`repro.online.monitor.WorkloadMonitor.observe`
        and the serving layer's trace-chunk feed expect.
        """
        if trace is None:
            trace = self.synthesize_trace()
        if chunk_s <= 0:
            raise ScenarioError("chunk_s must be positive")
        n_chunks = max(1, int(math.ceil(self.duration_s / chunk_s)))
        out = [[] for _ in range(n_chunks)]
        for record in trace:
            index = min(n_chunks - 1, int(record.finish_time // chunk_s))
            out[index].append(record)
        return out

    # ------------------------------------------------------------------
    # Tenant lifecycles
    # ------------------------------------------------------------------

    def tenant_schedule(self):
        """Compiled tenant arrival/churn events (empty without a
        ``tenants:`` section)."""
        if self._tenant_schedule is not None:
            return self._tenant_schedule
        spec = self.spec.tenants
        events = []
        if spec is not None:
            rng = np.random.default_rng([self.seed, 0x7E7A])
            departures = []
            now = 0.0
            index = 0
            while True:
                now += float(rng.exponential(1.0 / spec.arrival_rate_per_s))
                lifetime = float(rng.exponential(spec.mean_lifetime_s))
                if now >= self.duration_s:
                    break
                departures = [d for d in departures if d > now]
                if len(departures) >= spec.max_active:
                    continue
                depart = min(self.duration_s, now + lifetime)
                departures.append(depart)
                events.append(TenantEvent(
                    tenant="%s-%03d" % (self.name, index),
                    arrive_s=round(now, 6),
                    depart_s=round(depart, 6),
                ))
                index += 1
        self._tenant_schedule = tuple(events)
        return self._tenant_schedule

    # ------------------------------------------------------------------
    # Determinism contract
    # ------------------------------------------------------------------

    def signature(self):
        """Canonical tuple of the compiled scenario.

        Equal iff the compiled schedules are equal — the same contract
        as :meth:`repro.faults.plan.FaultPlan.signature`, extended with
        the rate table and tenant schedule.  Same spec + same seed ⇒
        equal signatures, on any host.
        """
        segment_rows = tuple(
            (round(segment.t0, 9), round(segment.t1, 9), tuple(
                (key.obj, key.kind, key.size, round(key.run_count, 9),
                 round(rate, 9))
                for key, rate in sorted(segment.rates.items(),
                                        key=lambda kv: kv[0].sort_key())
            ))
            for segment in self.segments
        )
        tenant_rows = tuple(
            (event.tenant, round(event.arrive_s, 9),
             round(event.depart_s, 9))
            for event in self.tenant_schedule()
        )
        layout_rows = ()
        if self.spec.initial_layout is not None:
            layout_rows = tuple(
                (obj, tuple(round(f, 9) for f in row))
                for obj, row in sorted(self.spec.initial_layout.items())
            )
        return (
            ("scenario", self.name, round(self.duration_s, 9), self.seed),
            tuple(sorted(self.spec.object_sizes.items())),
            segment_rows,
            self.fault_plan.signature(),
            tenant_rows,
            layout_rows,
        )

    def describe(self):
        """One-paragraph summary for the CLI."""
        lines = [
            "%s: %s" % (self.name, self.spec.description or "(no "
                                                            "description)"),
            "  duration %.0fs, %d objects, %d mixes, %d schedule "
            "entries, %d segments" % (
                self.duration_s, len(self.spec.object_sizes),
                len(self.spec.mixes), len(self.spec.schedule),
                len(self.segments),
            ),
            "  expected requests %.0f (reads %.0f, writes %.0f)" % (
                self.rate_integral(),
                self.rate_integral(kind="read"),
                self.rate_integral(kind="write"),
            ),
        ]
        if len(self.fault_plan):
            lines.append("  faults: %d events" % len(self.fault_plan))
        if self.spec.tenants is not None:
            lines.append("  tenants: %d lifecycles"
                         % len(self.tenant_schedule()))
        return "\n".join(lines)
