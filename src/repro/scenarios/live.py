"""Live lowering: drive a simulation directly from a compiled scenario.

Where :meth:`~repro.scenarios.compiler.CompiledScenario.synthesize_trace`
fabricates completion records for replay, this module realises the
compiled rate table as *real* simulator traffic: one open-loop stream
(:class:`~repro.workload.synth.OpenLoopRunStream`) per segment and
stream key, started and retired at the segment boundaries.  Constant
phases compile to single long segments, so steady mixes cost one
stream; shaped phases (ramp / diurnal / drift) become their
piecewise-constant approximation at the compiler's resolution.

Stream RNGs are keyed by ``(seed, segment, stream)``, the same scheme
trace synthesis uses, so live runs are reproducible per seed too.
"""

import numpy as np

from repro.scenarios.compiler import StreamKey
from repro.workload.synth import OpenLoopRunStream


class LiveScenario:
    """Attach a compiled scenario to a live :class:`SimContext`.

    Args:
        ctx: The simulation context whose engine/placement the streams
            submit against.  Every object in the scenario must exist in
            the context's placement map.
        compiled: A :class:`~repro.scenarios.compiler.CompiledScenario`.
        max_outstanding: Per-stream cap on in-flight requests (open-loop
            streams drop arrivals beyond it instead of queueing without
            bound).
    """

    def __init__(self, ctx, compiled, max_outstanding=64):
        self.ctx = ctx
        self.compiled = compiled
        self.max_outstanding = int(max_outstanding)
        self.streams = []
        self._started = False

    def start(self):
        """Schedule every segment's streams; returns self."""
        if self._started:
            return self
        self._started = True
        for index, segment in enumerate(self.compiled.segments):
            if not segment.rates:
                continue
            delay = segment.t0 - self.ctx.engine.now
            if delay <= 0:
                self._start_segment(index, segment)
            else:
                self.ctx.engine.schedule(
                    delay,
                    lambda i=index, s=segment: self._start_segment(i, s),
                )
        return self

    def _start_segment(self, seg_index, segment):
        for key in sorted(segment.rates, key=StreamKey.sort_key):
            rate = segment.rates[key]
            if rate <= 0:
                continue
            stream_id = self.compiled._stream_ids[key]
            rng = np.random.default_rng(
                [self.compiled.seed, seg_index, stream_id]
            )
            self.streams.append(OpenLoopRunStream(
                self.ctx, key.obj, rate, segment.t1,
                run_count=key.run_count, kind=key.kind, size=key.size,
                rng=rng, max_outstanding=self.max_outstanding,
            ).start())

    @property
    def issued(self):
        return sum(stream.issued for stream in self.streams)

    @property
    def completions(self):
        return sum(stream.completions for stream in self.streams)

    @property
    def dropped(self):
        return sum(stream.dropped for stream in self.streams)
