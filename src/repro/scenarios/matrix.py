"""Scenario × controller-config matrix runner.

A matrix file names library scenarios and controller configurations::

    name: quick
    seed: 1                      # optional compile-seed override
    workers: 4                   # parallel cells (process pool)
    scenarios: [oltp-steady, ecommerce-diurnal]
    controllers:
      - {name: frozen, enabled: false}
      - {name: default}
      - {name: eager, check_interval_s: 2.0, patience: 1}

Every cell compiles its scenario, synthesizes the deterministic trace,
solves the initial layout for the scenario's baseline phase, then (for
enabled controllers) replays the trace through an
:class:`~repro.online.controller.OnlineController` — embedded fault
sections ride along through a
:class:`~repro.faults.injector.FaultInjector`.  Cells run in parallel
over a process pool and are isolated: one failing cell records an
``error`` status instead of killing the sweep.

The result dict feeds :func:`repro.obs.report.render_matrix_report`
and serializes as ``BENCH_scenarios.json``.
"""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import fields as dataclass_fields

import numpy as np

from repro.core.problem import LayoutProblem
from repro.errors import ReproError, ScenarioError
from repro.online.controller import ControllerConfig
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.library import load_scenario, resolve_scenario
from repro.scenarios.yamlio import load_yaml_file

#: Keys of a controller entry that are not ControllerConfig overrides.
_CONTROL_KEYS = {"name", "enabled"}

_CONFIG_FIELDS = {f.name for f in dataclass_fields(ControllerConfig)}


def load_matrix(path):
    """Parse and validate a matrix file into a plain dict."""
    data = load_yaml_file(path)
    label = os.path.basename(str(path))
    if not isinstance(data, dict):
        raise ScenarioError("%s: a matrix must be a mapping" % label)
    name = data.get("name", os.path.splitext(label)[0])
    scenarios = data.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ScenarioError("%s: matrix.scenarios must be a non-empty list"
                            % label)
    controllers = data.get("controllers")
    if not isinstance(controllers, list) or not controllers:
        raise ScenarioError("%s: matrix.controllers must be a non-empty "
                            "list" % label)
    seen = set()
    parsed = []
    for index, entry in enumerate(controllers):
        path_str = "controllers[%d]" % index
        if not isinstance(entry, dict) or "name" not in entry:
            raise ScenarioError("%s: %s must be a mapping with a 'name'"
                                % (label, path_str))
        if entry["name"] in seen:
            raise ScenarioError("%s: %s duplicates controller %r"
                                % (label, path_str, entry["name"]))
        seen.add(entry["name"])
        for key in entry:
            if key in _CONTROL_KEYS:
                continue
            if key not in _CONFIG_FIELDS:
                raise ScenarioError(
                    "%s: %s has unknown ControllerConfig field %r"
                    % (label, path_str, key)
                )
        parsed.append(dict(entry))
    seed = data.get("seed")
    if seed is not None and (isinstance(seed, bool)
                             or not isinstance(seed, int) or seed < 0):
        raise ScenarioError("%s: matrix.seed must be a non-negative "
                            "integer" % label)
    workers = data.get("workers", 1)
    if isinstance(workers, bool) or not isinstance(workers, int) \
            or workers < 1:
        raise ScenarioError("%s: matrix.workers must be a positive integer"
                            % label)
    # Resolve scenario references eagerly so a typo fails the whole
    # matrix up front instead of erroring one cell per controller.
    for ref in scenarios:
        resolve_scenario(str(ref))
    return {
        "name": str(name),
        "seed": seed,
        "workers": workers,
        "scenarios": [str(ref) for ref in scenarios],
        "controllers": parsed,
    }


def _predicted_max_util(targets, object_sizes, workloads, layout,
                        stripe_size):
    problem = LayoutProblem(object_sizes, targets, workloads,
                            stripe_size=stripe_size)
    return float(problem.evaluator().objective(layout.matrix))


def _percentile_ms(values, q):
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values), q) * 1000.0)


def run_cell(scenario_ref, controller_entry, seed=None):
    """Run one (scenario, controller) cell; returns its stats dict.

    Importable at module top level so the process pool can pickle it.
    """
    from repro.cli import load_problem
    from repro.core.advisor import LayoutAdvisor

    started = time.monotonic()
    spec = load_scenario(scenario_ref)
    compiled = compile_scenario(spec, seed=seed)
    trace = compiled.synthesize_trace()
    problem = load_problem(compiled.problem_payload())
    advised = LayoutAdvisor(problem, regular=True).recommend()
    layout = advised.recommended

    duration = compiled.duration_s
    baseline = compiled.baseline_workloads()
    end_state = compiled.mean_workloads(0.75 * duration, duration)
    sizes = compiled.object_sizes

    def predicted(workloads, candidate):
        return _predicted_max_util(problem.targets, sizes, workloads,
                                   candidate, problem.stripe_size)

    cell = {
        "scenario": compiled.name,
        "controller": controller_entry["name"],
        "status": "ok",
        "seed": compiled.seed,
        "duration_s": duration,
        "records": len(trace),
        "faults": len(compiled.fault_plan),
        "tenants": len(compiled.tenant_schedule()),
        "latency_p50_ms": _percentile_ms(
            [r.service_time for r in trace], 50),
        "latency_p99_ms": _percentile_ms(
            [r.service_time for r in trace], 99),
        "util_baseline": round(predicted(baseline, layout), 4),
        "util_end_frozen": round(predicted(end_state, layout), 4),
        "resolves": 0,
        "emergencies": 0,
        "migrations": 0,
        "bytes_moved": 0,
    }

    final_layout = layout
    if controller_entry.get("enabled", True):
        from repro.faults.injector import FaultInjector
        from repro.online.controller import OnlineController

        overrides = {key: value for key, value in controller_entry.items()
                     if key not in _CONTROL_KEYS}
        config = ControllerConfig(**overrides)
        controller = OnlineController(
            targets=problem.targets,
            object_sizes=sizes,
            initial_layout=layout,
            solved_workloads=baseline,
            stripe_size=problem.stripe_size,
            config=config,
        )
        faults = None
        if len(compiled.fault_plan):
            faults = FaultInjector(compiled.fault_plan,
                                   target_names=problem.target_names)
        log = controller.replay(trace, end_time=duration, faults=faults)
        final_layout = controller.layout
        migrations = [e for e in log.of_kind("migrated")]
        cell.update(
            resolves=controller.resolves,
            emergencies=controller.emergency_resolves,
            migrations=len(migrations),
            bytes_moved=int(sum(e.get("bytes_moved", 0)
                                for e in migrations)),
        )
    cell["util_end"] = round(predicted(end_state, final_layout), 4)
    cell["elapsed_s"] = round(time.monotonic() - started, 3)
    return cell


def _cell_error(scenario_ref, controller_entry, error):
    return {
        "scenario": str(scenario_ref),
        "controller": controller_entry.get("name", "?"),
        "status": "error",
        "error": "%s: %s" % (type(error).__name__,
                             " ".join(str(error).split())[:300]),
    }


def run_matrix(matrix, workers=None, seed=None):
    """Sweep the matrix; returns the results dict.

    Args:
        matrix: A matrix file path or a dict already shaped like
            :func:`load_matrix` output.
        workers: Parallel cell processes (default: the matrix's
            ``workers`` field).  ``1`` runs cells serially in-process.
        seed: Compile-seed override (default: the matrix's ``seed``,
            else each scenario's own).
    """
    if not isinstance(matrix, dict):
        matrix = load_matrix(matrix)
    if workers is None:
        workers = matrix.get("workers", 1)
    if seed is None:
        seed = matrix.get("seed")
    pairs = [(ref, entry) for ref in matrix["scenarios"]
             for entry in matrix["controllers"]]
    started = time.monotonic()
    cells = []
    if workers <= 1 or len(pairs) <= 1:
        for ref, entry in pairs:
            try:
                cells.append(run_cell(ref, entry, seed=seed))
            except ReproError as error:
                cells.append(_cell_error(ref, entry, error))
            except Exception as error:  # cell isolation: never kill sweep
                cells.append(_cell_error(ref, entry, error))
    else:
        with ProcessPoolExecutor(max_workers=int(workers)) as pool:
            futures = [
                (ref, entry, pool.submit(run_cell, ref, entry, seed=seed))
                for ref, entry in pairs
            ]
            for ref, entry, future in futures:
                error = future.exception()
                if error is not None:
                    cells.append(_cell_error(ref, entry, error))
                else:
                    cells.append(future.result())
    return {
        "matrix": matrix["name"],
        "seed": seed,
        "scenarios": matrix["scenarios"],
        "controllers": [entry["name"] for entry in matrix["controllers"]],
        "cells": cells,
        "ok": sum(1 for cell in cells if cell["status"] == "ok"),
        "errors": sum(1 for cell in cells if cell["status"] != "ok"),
        "elapsed_s": round(time.monotonic() - started, 3),
    }


def save_results(results, path):
    """Write the results dict as pretty JSON (BENCH_scenarios.json)."""
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_results(results):
    """Raise :class:`ScenarioError` unless a results dict is well-formed.

    The CI gate: every cell carries scenario/controller/status, ok
    cells carry the stat columns, and at least one cell succeeded.
    """
    if not isinstance(results, dict) or "cells" not in results:
        raise ScenarioError("matrix results must be a dict with 'cells'")
    required = ("scenario", "controller", "status")
    stats = ("records", "resolves", "migrations", "bytes_moved",
             "util_baseline", "util_end_frozen", "util_end",
             "latency_p50_ms", "latency_p99_ms")
    for index, cell in enumerate(results["cells"]):
        for key in required:
            if key not in cell:
                raise ScenarioError("cell %d misses %r" % (index, key))
        if cell["status"] == "ok":
            for key in stats:
                if key not in cell:
                    raise ScenarioError("ok cell %d misses stat %r"
                                        % (index, key))
        elif "error" not in cell:
            raise ScenarioError("failed cell %d carries no error message"
                                % index)
    if not any(cell["status"] == "ok" for cell in results["cells"]):
        raise ScenarioError("matrix produced no successful cells")
    return results
