"""YAML loading for scenario and matrix files.

PyYAML (``yaml.safe_load``) is used when importable.  When it is not —
the library otherwise depends only on numpy/scipy, and the serving
layer set the precedent of hand-rolling protocol plumbing rather than
growing the dependency set — a minimal safe-subset parser takes over.
The subset covers what scenario files actually use: block mappings,
block sequences, inline ``[a, b]`` lists and ``{k: v}`` maps, quoted
and plain scalars (int / float / bool / null / string), comments, and
blank lines.  Anchors, aliases, tags, multi-document streams, and
block scalars are deliberately out of scope.

Either path reports failures as a one-line
:class:`~repro.errors.ScenarioError` carrying ``file:line``.
"""

import re

from repro.errors import ScenarioError

try:  # pragma: no cover - exercised via the public functions
    import yaml as _pyyaml
except ImportError:  # pragma: no cover - container ships PyYAML
    _pyyaml = None


def load_yaml_file(path):
    """Parse one YAML file into plain dict/list/scalar data."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as error:
        raise ScenarioError("cannot read %s: %s" % (path, error))
    return parse_yaml(text, label=str(path))


def parse_yaml(text, label="<string>"):
    """Parse YAML text; raises one-line :class:`ScenarioError`."""
    if _pyyaml is not None:
        try:
            return _pyyaml.safe_load(text)
        except _pyyaml.YAMLError as error:
            mark = getattr(error, "problem_mark", None)
            where = ("%s:%d" % (label, mark.line + 1)
                     if mark is not None else label)
            problem = getattr(error, "problem", None) or str(error)
            raise ScenarioError(
                "%s: YAML parse error: %s" % (where, " ".join(
                    str(problem).split()))
            )
    return _MiniYaml(text, label).parse()


# ----------------------------------------------------------------------
# Fallback safe-subset parser
# ----------------------------------------------------------------------

_BOOLS = {"true": True, "True": True, "false": False, "False": False}
_NULLS = {"null", "~", "None", ""}
#: ``key:`` with a plain (unquoted, non-flow) key.
_KEY_RE = re.compile(r"^(?P<key>[^:#\s][^:#]*?)\s*:(?:\s+|$)")


class _Line:
    __slots__ = ("number", "indent", "text")

    def __init__(self, number, indent, text):
        self.number = number
        self.indent = indent
        self.text = text


class _MiniYaml:
    """Indentation-driven recursive-descent parser for the safe subset."""

    def __init__(self, text, label):
        self.label = label
        self.lines = []
        open_depth = 0
        for number, raw in enumerate(text.splitlines(), start=1):
            stripped = self._strip_comment(raw)
            if not stripped.strip():
                continue
            if "\t" in raw[: len(raw) - len(raw.lstrip())]:
                self._fail(number, "tabs are not allowed in indentation")
            if open_depth > 0:
                # Continuation of a flow collection begun on an earlier
                # line: fold into that logical line (PyYAML-compatible).
                prev = self.lines[-1]
                prev.text = prev.text + " " + stripped.strip()
                open_depth += self._flow_delta(stripped)
            else:
                indent = len(stripped) - len(stripped.lstrip(" "))
                self.lines.append(_Line(number, indent, stripped.strip()))
                open_depth = self._flow_delta(stripped)
            if open_depth < 0:
                self._fail(number, "unbalanced flow collection")
        if open_depth > 0:
            self._fail(self.lines[-1].number,
                       "unterminated flow collection")
        self.pos = 0

    @staticmethod
    def _flow_delta(text):
        depth, quote = 0, None
        for ch in text:
            if quote:
                if ch == quote:
                    quote = None
            elif ch in "'\"":
                quote = ch
            elif ch in "[{":
                depth += 1
            elif ch in "]}":
                depth -= 1
        return depth

    def _fail(self, number, message):
        raise ScenarioError("%s:%d: %s" % (self.label, number, message))

    @staticmethod
    def _strip_comment(raw):
        out = []
        quote = None
        for i, ch in enumerate(raw):
            if quote:
                if ch == quote:
                    quote = None
            elif ch in "'\"":
                quote = ch
            elif ch == "#" and (i == 0 or raw[i - 1] in " \t"):
                break
            out.append(ch)
        return "".join(out).rstrip()

    def parse(self):
        if not self.lines:
            return None
        value = self._block(self.lines[0].indent)
        if self.pos < len(self.lines):
            self._fail(self.lines[self.pos].number,
                       "unexpected dedent / mixed structure")
        return value

    def _block(self, indent):
        line = self.lines[self.pos]
        if line.text.startswith("- ") or line.text == "-":
            return self._sequence(indent)
        return self._mapping(indent)

    def _sequence(self, indent):
        items = []
        while self.pos < len(self.lines):
            line = self.lines[self.pos]
            if line.indent != indent or not (
                line.text.startswith("- ") or line.text == "-"
            ):
                break
            rest = line.text[1:].strip()
            self.pos += 1
            if not rest:
                items.append(self._nested(indent, line))
            elif _KEY_RE.match(rest) and not rest.startswith(("[", "{")):
                # ``- key: value`` compact mapping entry: re-parse the
                # remainder as a mapping indented past the dash.
                items.append(self._inline_mapping_entry(line, rest, indent))
            else:
                items.append(self._scalar(rest, line.number))
        return items

    def _inline_mapping_entry(self, line, rest, indent):
        virtual = _Line(line.number, indent + 2, rest)
        self.lines.insert(self.pos, virtual)
        return self._mapping(indent + 2)

    def _mapping(self, indent):
        mapping = {}
        while self.pos < len(self.lines):
            line = self.lines[self.pos]
            if line.indent != indent:
                break
            match = _KEY_RE.match(line.text)
            if match is None:
                if line.text.endswith(":"):
                    key_text, rest = line.text[:-1].strip(), ""
                else:
                    self._fail(line.number,
                               "expected 'key: value' or '- item'")
            else:
                key_text = match.group("key").strip()
                rest = line.text[match.end():].strip()
            key = self._scalar(key_text, line.number)
            if key in mapping:
                self._fail(line.number, "duplicate key %r" % key)
            self.pos += 1
            if rest:
                mapping[key] = self._scalar(rest, line.number)
            else:
                mapping[key] = self._nested(indent, line)
        return mapping

    def _nested(self, indent, line):
        if self.pos < len(self.lines):
            nxt = self.lines[self.pos]
            if nxt.indent > indent:
                return self._block(nxt.indent)
            if (nxt.indent == indent
                    and (nxt.text.startswith("- ") or nxt.text == "-")
                    and not (line.text.startswith("- ")
                             or line.text == "-")):
                # Sequences are allowed at the same indent as their key.
                return self._sequence(indent)
        return None

    # -- scalars and flow collections ----------------------------------

    def _scalar(self, text, number):
        text = text.strip()
        if text.startswith("["):
            return self._flow(text, number, "[", "]")
        if text.startswith("{"):
            return self._flow(text, number, "{", "}")
        if text.startswith(("'", '"')):
            if len(text) < 2 or text[-1] != text[0]:
                self._fail(number, "unterminated quoted string")
            return text[1:-1]
        if text in _BOOLS:
            return _BOOLS[text]
        if text in _NULLS:
            return None
        try:
            return int(text, 10)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            pass
        return text

    def _flow(self, text, number, opener, closer):
        if not text.endswith(closer):
            self._fail(number, "unterminated %r collection" % opener)
        body = text[1:-1].strip()
        parts = self._split_flow(body, number)
        if opener == "[":
            return [self._scalar(part, number) for part in parts]
        mapping = {}
        for part in parts:
            if ":" not in part:
                self._fail(number, "flow mapping entry %r needs a colon"
                           % part)
            key_text, value_text = part.split(":", 1)
            mapping[self._scalar(key_text, number)] = self._scalar(
                value_text, number
            )
        return mapping

    def _split_flow(self, body, number):
        if not body:
            return []
        parts, depth, quote, start = [], 0, None, 0
        for i, ch in enumerate(body):
            if quote:
                if ch == quote:
                    quote = None
            elif ch in "'\"":
                quote = ch
            elif ch in "[{":
                depth += 1
            elif ch in "]}":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append(body[start:i].strip())
                start = i + 1
        if quote or depth:
            self._fail(number, "unbalanced flow collection")
        parts.append(body[start:].strip())
        return parts
