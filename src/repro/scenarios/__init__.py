"""Declarative scenario language and scenario matrix runner.

A *scenario* is a YAML file describing a workload as data instead of
code: named objects, weighted task mixes over object sets, time-phased
schedules (ramp, diurnal sine, flash-crowd step, mix-to-mix drift),
optional tenant arrival/churn for serve-mode runs, and an embedded
fault section that compiles to a :class:`~repro.faults.plan.FaultPlan`.

The pipeline is::

    YAML file ──parse──▶ ScenarioSpec ──compile(seed)──▶ CompiledScenario
                                                │
                 ┌──────────────┬───────────────┼──────────────┐
                 ▼              ▼               ▼              ▼
          ObjectWorkloads  synthetic trace  FaultPlan   tenant schedule
          (workload/spec)  (trace_io)       (faults)    (serve)

Compilation is seed-deterministic: the same spec and seed always yield
an identical :meth:`CompiledScenario.signature` and byte-identical
synthesized traces — the same contract
:meth:`repro.faults.plan.FaultPlan.signature` provides for chaos runs.

The shipped scenario library lives in the repository's ``scenarios/``
directory (:mod:`repro.scenarios.library`), and
:mod:`repro.scenarios.matrix` sweeps scenarios × controller configs in
parallel and emits a comparison report.
"""

from repro.scenarios.compiler import CompiledScenario, compile_scenario
from repro.scenarios.library import (
    library_dir,
    list_scenarios,
    load_scenario,
)
from repro.scenarios.schema import ScenarioSpec
from repro.scenarios.yamlio import load_yaml_file, parse_yaml

__all__ = [
    "CompiledScenario",
    "ScenarioSpec",
    "compile_scenario",
    "library_dir",
    "list_scenarios",
    "load_scenario",
    "load_yaml_file",
    "parse_yaml",
]
