"""The shipped scenario library.

Named scenarios live as YAML files in the repository's ``scenarios/``
directory; :func:`load_scenario` resolves either a library name
(``oltp-steady``) or an explicit file path.  The search order is the
``REPRO_SCENARIO_DIR`` environment variable, the repository checkout
(located relative to this package), then ``./scenarios`` under the
current working directory.
"""

import os

from repro.errors import ScenarioError
from repro.scenarios.schema import ScenarioSpec
from repro.scenarios.yamlio import load_yaml_file

#: Alias names accepted by :func:`load_scenario` (satisfying callers
#: that predate the library, e.g. the online drift benchmark's old
#: hardcoded shape).
ALIASES = {
    "default": "oltp-scan-drift",
}

_SUFFIXES = (".yaml", ".yml")


def library_dir():
    """Directory holding the shipped scenario YAML files (or None)."""
    override = os.environ.get("REPRO_SCENARIO_DIR")
    if override:
        return override
    package = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(package)))
    for base in (repo_root, os.getcwd()):
        candidate = os.path.join(base, "scenarios")
        if os.path.isdir(candidate):
            return candidate
    return None


def list_scenarios(directory=None):
    """Sorted (name, path) pairs of the library's scenario files."""
    directory = directory or library_dir()
    if directory is None or not os.path.isdir(directory):
        return []
    out = []
    for entry in sorted(os.listdir(directory)):
        base, ext = os.path.splitext(entry)
        if ext not in _SUFFIXES or base.startswith("matrix"):
            continue
        out.append((base, os.path.join(directory, entry)))
    return out


def resolve_scenario(name_or_path, directory=None):
    """Resolve a scenario name or path to a YAML file path."""
    if os.path.sep in name_or_path or name_or_path.endswith(_SUFFIXES):
        if not os.path.isfile(name_or_path):
            raise ScenarioError("scenario file %s does not exist"
                                % name_or_path)
        return name_or_path
    name = ALIASES.get(name_or_path, name_or_path)
    directory = directory or library_dir()
    if directory:
        for suffix in _SUFFIXES:
            candidate = os.path.join(directory, name + suffix)
            if os.path.isfile(candidate):
                return candidate
    known = ", ".join(sorted(
        set([n for n, _ in list_scenarios(directory)] + list(ALIASES))
    )) or "(no scenario library found)"
    raise ScenarioError("unknown scenario %r; known: %s"
                        % (name_or_path, known))


def load_scenario(name_or_path, directory=None):
    """Load and validate one scenario by library name or file path."""
    path = resolve_scenario(name_or_path, directory=directory)
    data = load_yaml_file(path)
    return ScenarioSpec.from_payload(data, label=os.path.basename(path))
