"""Scenario spec model and validation.

A :class:`ScenarioSpec` is the validated, unit-normalized form of one
scenario YAML file.  The grammar (grounded in the weighted-task
workload files of SNIPPETS.md Snippet 3 — e-commerce / analytics /
social mixes — and dbworkload's run schedules)::

    name: ecommerce-diurnal
    description: one line for `repro scenarios list`
    duration_s: 120
    seed: 7                      # default compile seed
    objects:                     # catalog: object -> size
      catalog: {size_mib: 96}
      cart:    {size_mib: 32}
    sets:                        # named object groups tasks address
      browse: [catalog]
    targets:                     # optional: makes the spec a full problem
      - {name: d0, kind: disk15k, capacity_mib: 400}
    mixes:                       # weighted task mixes
      daytime:
        rate: 400                # total requests/s at multiplier 1.0
        tasks:
          - {name: view, weight: 60, objects: browse, kind: read,
             size_kib: 8, run_count: 4}
    schedule:                    # time-phased multipliers over mixes
      - {mix: daytime, shape: ramp, t0: 0, t1: 20, from: 0.2, to: 1.0}
      - {mix: daytime, shape: diurnal, t0: 20, t1: 120,
         mean: 1.0, amplitude: 0.5, period_s: 50}
    faults:                      # compiles to faults.plan.FaultPlan
      - {time: 60, kind: stall, target: d0, duration_s: 3}
    tenants:                     # serve-mode arrival/churn process
      arrival_rate_per_s: 0.2
      mean_lifetime_s: 30
      max_active: 8
    initial_layout:              # optional "solved long ago" layout
      catalog: [1.0]             # one fraction per target, sums to 1
      cart:    [1.0]

Shapes: ``constant`` (``level``), ``ramp`` (``from``/``to``),
``diurnal`` (``mean``/``amplitude``/``period_s``/``phase``), ``step``
(``base``/``peak``/``at``/``until``; the flash-crowd shape), and
``drift`` (``from_mix``/``to_mix``; a linear crossfade).  Schedule
entries may overlap in time — concurrent entries add.

Validation failures raise one-line
:class:`~repro.errors.ScenarioError` messages carrying the field path.
"""

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.errors import ScenarioError
from repro.faults.plan import FaultEvent, FaultPlan

#: Recognized schedule shapes.
SHAPES = ("constant", "ramp", "diurnal", "step", "drift")

#: Target kinds the CLI problem loader understands.
TARGET_KINDS = ("disk15k", "disk7200", "ssd", "raid0")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-]*$")


def _ctx(label, path):
    return "%s: %s" % (label, path) if label else path


def _need(data, key, path, label, types=None):
    if key not in data:
        raise ScenarioError("%s.%s is required" % (_ctx(label, path), key))
    value = data[key]
    if types is not None and not isinstance(value, types):
        raise ScenarioError("%s.%s has the wrong type"
                            % (_ctx(label, path), key))
    return value


def _number(data, key, path, label, default=None, minimum=None,
            positive=False):
    value = data.get(key, default)
    if value is None:
        raise ScenarioError("%s.%s is required" % (_ctx(label, path), key))
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError("%s.%s must be a number"
                            % (_ctx(label, path), key))
    value = float(value)
    if positive and value <= 0:
        raise ScenarioError("%s.%s must be positive"
                            % (_ctx(label, path), key))
    if minimum is not None and value < minimum:
        raise ScenarioError("%s.%s must be at least %g"
                            % (_ctx(label, path), key, minimum))
    return value


def _size_bytes(entry, path, label, keys=(("size_bytes", 1),
                                          ("size_kib", units.KIB),
                                          ("size_mib", units.MIB),
                                          ("size_gib", units.GIB))):
    given = [key for key, _ in keys if key in entry]
    if len(given) != 1:
        raise ScenarioError(
            "%s needs exactly one of %s"
            % (_ctx(label, path), "/".join(key for key, _ in keys))
        )
    unit = dict(keys)[given[0]]
    value = _number(entry, given[0], path, label, positive=True)
    return int(round(value * unit))


@dataclass(frozen=True)
class TaskSpec:
    """One weighted task in a mix.

    ``objects`` is already resolved (set names expanded); the task's
    share of the mix rate is split uniformly across them.
    """

    name: str
    weight: float
    objects: Tuple[str, ...]
    kind: str = "read"
    size: int = units.DEFAULT_PAGE_SIZE
    run_count: float = 1.0


@dataclass(frozen=True)
class MixSpec:
    """A named weighted-task mix with a nominal total request rate."""

    name: str
    rate: float
    tasks: Tuple[TaskSpec, ...]

    def task_rates(self):
        """Per-task request rates at multiplier 1.0."""
        total = sum(task.weight for task in self.tasks)
        return [(task, self.rate * task.weight / total)
                for task in self.tasks]


@dataclass(frozen=True)
class ScheduleEntry:
    """One schedule phase: a shape applied to a mix over [t0, t1)."""

    shape: str
    t0: float
    t1: float
    mix: Optional[str] = None          # constant/ramp/diurnal/step
    from_mix: Optional[str] = None     # drift
    to_mix: Optional[str] = None       # drift
    level: float = 1.0                 # constant, drift
    ramp_from: float = 0.0             # ramp
    ramp_to: float = 1.0               # ramp
    mean: float = 1.0                  # diurnal
    amplitude: float = 0.5             # diurnal
    period_s: float = 60.0             # diurnal
    phase: float = 0.0                 # diurnal
    base: float = 1.0                  # step
    peak: float = 2.0                  # step
    at: float = 0.0                    # step
    until: float = 0.0                 # step

    @property
    def mixes(self):
        if self.shape == "drift":
            return (self.from_mix, self.to_mix)
        return (self.mix,)


@dataclass(frozen=True)
class ScenarioTarget:
    """A storage target declaration (CLI problem-format compatible)."""

    name: str
    kind: str
    capacity: int
    members: int = 1

    def as_payload(self):
        payload = {"name": self.name, "kind": self.kind,
                   "capacity": self.capacity}
        if self.kind == "raid0":
            payload["members"] = self.members
        return payload


@dataclass(frozen=True)
class TenantSpec:
    """Tenant arrival/churn process for serve-mode runs."""

    arrival_rate_per_s: float
    mean_lifetime_s: float
    max_active: int = 16


@dataclass
class ScenarioSpec:
    """One validated scenario."""

    name: str
    description: str
    duration_s: float
    seed: int
    object_sizes: Dict[str, int]
    sets: Dict[str, Tuple[str, ...]]
    targets: Tuple[ScenarioTarget, ...]
    mixes: Dict[str, MixSpec]
    schedule: Tuple[ScheduleEntry, ...]
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    tenants: Optional[TenantSpec] = None
    initial_layout: Optional[Dict[str, Tuple[float, ...]]] = None
    source: Optional[str] = None

    @property
    def object_names(self):
        return list(self.object_sizes)

    @property
    def target_names(self):
        return [t.name for t in self.targets]

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    @classmethod
    def from_payload(cls, data, label=None):
        """Build and validate a spec from parsed YAML data."""
        if not isinstance(data, dict):
            raise ScenarioError("%s: a scenario must be a mapping"
                                % (label or "scenario"))
        name = _need(data, "name", "scenario", label, types=str)
        if not _NAME_RE.match(name):
            raise ScenarioError("%s: scenario.name %r is not a valid name"
                                % (label or "scenario", name))
        label = label or name
        description = str(data.get("description", "")).strip()
        duration = _number(data, "duration_s", "scenario", label,
                           positive=True)
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
            raise ScenarioError("%s: scenario.seed must be a non-negative "
                                "integer" % label)

        objects = cls._parse_objects(data, label)
        sets = cls._parse_sets(data, objects, label)
        targets = cls._parse_targets(data, label)
        mixes = cls._parse_mixes(data, objects, sets, label)
        schedule = cls._parse_schedule(data, mixes, duration, label)
        fault_plan = cls._parse_faults(data, targets, label)
        tenants = cls._parse_tenants(data, label)
        initial_layout = cls._parse_initial_layout(data, objects, targets,
                                                   label)

        known = {"name", "description", "duration_s", "seed", "objects",
                 "sets", "targets", "mixes", "schedule", "faults",
                 "tenants", "initial_layout"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioError("%s: unknown top-level key %r"
                                % (label, unknown[0]))
        return cls(
            name=name, description=description, duration_s=duration,
            seed=int(seed), object_sizes=objects, sets=sets,
            targets=targets, mixes=mixes, schedule=schedule,
            fault_plan=fault_plan, tenants=tenants,
            initial_layout=initial_layout, source=label,
        )

    @staticmethod
    def _parse_objects(data, label):
        entries = _need(data, "objects", "scenario", label, types=dict)
        if not entries:
            raise ScenarioError("%s: scenario.objects must name at least "
                                "one object" % label)
        objects = {}
        for obj, entry in entries.items():
            path = "objects.%s" % obj
            if not isinstance(obj, str) or not _NAME_RE.match(obj):
                raise ScenarioError("%s: objects key %r is not a valid "
                                    "object name" % (label, obj))
            if not isinstance(entry, dict):
                raise ScenarioError("%s.%s must be a mapping (e.g. "
                                    "{size_mib: 96})" % (label, path))
            objects[obj] = _size_bytes(entry, path, label)
        return objects

    @staticmethod
    def _parse_sets(data, objects, label):
        sets = {}
        for set_name, members in (data.get("sets") or {}).items():
            path = "sets.%s" % set_name
            if set_name in objects:
                raise ScenarioError("%s: %s collides with an object name"
                                    % (label, path))
            if not isinstance(members, list) or not members:
                raise ScenarioError("%s: %s must be a non-empty list"
                                    % (label, path))
            for member in members:
                if member not in objects:
                    raise ScenarioError("%s: %s names unknown object %r"
                                        % (label, path, member))
            sets[set_name] = tuple(members)
        return sets

    @staticmethod
    def _parse_targets(data, label):
        targets = []
        seen = set()
        for index, entry in enumerate(data.get("targets") or []):
            path = "targets[%d]" % index
            if not isinstance(entry, dict):
                raise ScenarioError("%s: %s must be a mapping"
                                    % (label, path))
            name = _need(entry, "name", path, label, types=str)
            if name in seen:
                raise ScenarioError("%s: %s duplicates target %r"
                                    % (label, path, name))
            seen.add(name)
            kind = entry.get("kind", "disk15k")
            if kind not in TARGET_KINDS:
                raise ScenarioError(
                    "%s: %s.kind must be one of %s"
                    % (label, path, "/".join(TARGET_KINDS))
                )
            capacity = _size_bytes(
                entry, path, label,
                keys=(("capacity_bytes", 1), ("capacity_mib", units.MIB),
                      ("capacity_gib", units.GIB)),
            )
            members = entry.get("members", 1)
            if isinstance(members, bool) or not isinstance(members, int) \
                    or members < 1:
                raise ScenarioError("%s: %s.members must be a positive "
                                    "integer" % (label, path))
            targets.append(ScenarioTarget(name, kind, capacity, members))
        return tuple(targets)

    @staticmethod
    def _parse_initial_layout(data, objects, targets, label):
        """Optional object → per-target fraction rows.

        When present, benchmarks and replays adopt this layout as the
        "solved long ago" starting point instead of running the advisor
        on the baseline phase.
        """
        entries = data.get("initial_layout")
        if entries is None:
            return None
        if not isinstance(entries, dict):
            raise ScenarioError("%s: scenario.initial_layout must be a "
                                "mapping" % label)
        if not targets:
            raise ScenarioError("%s: scenario.initial_layout needs a "
                                "targets section" % label)
        layout = {}
        for obj in objects:
            path = "initial_layout.%s" % obj
            row = entries.get(obj)
            if row is None:
                raise ScenarioError("%s: %s is required (every object "
                                    "needs a row)" % (label, path))
            if not isinstance(row, list) or len(row) != len(targets):
                raise ScenarioError(
                    "%s: %s must list one fraction per target (%d)"
                    % (label, path, len(targets))
                )
            values = []
            for value in row:
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)) \
                        or value < 0 or value > 1:
                    raise ScenarioError("%s: %s fractions must be numbers "
                                        "in [0, 1]" % (label, path))
                values.append(float(value))
            if abs(sum(values) - 1.0) > 1e-6:
                raise ScenarioError("%s: %s fractions must sum to 1"
                                    % (label, path))
            layout[obj] = tuple(values)
        unknown = sorted(set(entries) - set(objects))
        if unknown:
            raise ScenarioError("%s: initial_layout names unknown object "
                                "%r" % (label, unknown[0]))
        return layout

    @classmethod
    def _parse_mixes(cls, data, objects, sets, label):
        entries = _need(data, "mixes", "scenario", label, types=dict)
        if not entries:
            raise ScenarioError("%s: scenario.mixes must define at least "
                                "one mix" % label)
        mixes = {}
        for mix_name, entry in entries.items():
            path = "mixes.%s" % mix_name
            if not isinstance(entry, dict):
                raise ScenarioError("%s: %s must be a mapping"
                                    % (label, path))
            rate = _number(entry, "rate", path, label, positive=True)
            tasks = entry.get("tasks")
            if not isinstance(tasks, list) or not tasks:
                raise ScenarioError("%s: %s.tasks must be a non-empty list"
                                    % (label, path))
            parsed = []
            for index, task in enumerate(tasks):
                parsed.append(cls._parse_task(
                    task, objects, sets, "%s.tasks[%d]" % (path, index),
                    label,
                ))
            names = [t.name for t in parsed]
            if len(set(names)) != len(names):
                raise ScenarioError("%s: %s has duplicate task names"
                                    % (label, path))
            mixes[mix_name] = MixSpec(mix_name, rate, tuple(parsed))
        return mixes

    @staticmethod
    def _parse_task(task, objects, sets, path, label):
        if not isinstance(task, dict):
            raise ScenarioError("%s: %s must be a mapping" % (label, path))
        name = _need(task, "name", path, label, types=str)
        weight = _number(task, "weight", path, label, positive=True)
        on = _need(task, "objects", path, label)
        if isinstance(on, str):
            on = [on]
        if not isinstance(on, list) or not on:
            raise ScenarioError("%s: %s.objects must be an object, a set, "
                                "or a list of them" % (label, path))
        resolved = []
        for item in on:
            if item in sets:
                resolved.extend(sets[item])
            elif item in objects:
                resolved.append(item)
            else:
                raise ScenarioError("%s: %s.objects names unknown object "
                                    "or set %r" % (label, path, item))
        kind = task.get("kind", "read")
        if kind not in ("read", "write"):
            raise ScenarioError("%s: %s.kind must be 'read' or 'write'"
                                % (label, path))
        size = units.DEFAULT_PAGE_SIZE
        if any(key in task for key in ("size_bytes", "size_kib",
                                       "size_mib", "size_gib")):
            size = _size_bytes(task, path, label)
        run_count = _number(task, "run_count", path, label, default=1.0,
                            minimum=1.0)
        return TaskSpec(name=name, weight=weight,
                        objects=tuple(dict.fromkeys(resolved)), kind=kind,
                        size=size, run_count=run_count)

    @classmethod
    def _parse_schedule(cls, data, mixes, duration, label):
        entries = _need(data, "schedule", "scenario", label, types=list)
        if not entries:
            raise ScenarioError("%s: scenario.schedule must contain at "
                                "least one entry" % label)
        schedule = []
        for index, entry in enumerate(entries):
            schedule.append(cls._parse_schedule_entry(
                entry, mixes, duration, "schedule[%d]" % index, label,
            ))
        return tuple(schedule)

    @staticmethod
    def _parse_schedule_entry(entry, mixes, duration, path, label):
        if not isinstance(entry, dict):
            raise ScenarioError("%s: %s must be a mapping" % (label, path))
        shape = entry.get("shape", "constant")
        if shape not in SHAPES:
            raise ScenarioError("%s: %s.shape must be one of %s"
                                % (label, path, "/".join(SHAPES)))
        t0 = _number(entry, "t0", path, label, default=0.0, minimum=0.0)
        t1 = _number(entry, "t1", path, label, default=duration)
        if not t0 < t1:
            raise ScenarioError("%s: %s needs t0 < t1" % (label, path))
        if t1 > duration + 1e-9:
            raise ScenarioError("%s: %s.t1 exceeds duration_s"
                                % (label, path))

        def mix_ref(key):
            mix = _need(entry, key, path, label, types=str)
            if mix not in mixes:
                raise ScenarioError("%s: %s.%s names unknown mix %r"
                                    % (label, path, key, mix))
            return mix

        kwargs = {"shape": shape, "t0": t0, "t1": t1}
        if shape == "drift":
            kwargs["from_mix"] = mix_ref("from_mix")
            kwargs["to_mix"] = mix_ref("to_mix")
            kwargs["level"] = _number(entry, "level", path, label,
                                      default=1.0, minimum=0.0)
        else:
            kwargs["mix"] = mix_ref("mix")
        if shape == "constant":
            kwargs["level"] = _number(entry, "level", path, label,
                                      default=1.0, minimum=0.0)
        elif shape == "ramp":
            kwargs["ramp_from"] = _number(entry, "from", path, label,
                                          default=0.0, minimum=0.0)
            kwargs["ramp_to"] = _number(entry, "to", path, label,
                                        default=1.0, minimum=0.0)
        elif shape == "diurnal":
            kwargs["mean"] = _number(entry, "mean", path, label,
                                     default=1.0, minimum=0.0)
            amplitude = _number(entry, "amplitude", path, label,
                                default=0.5, minimum=0.0)
            if amplitude > 1.0:
                raise ScenarioError("%s: %s.amplitude must be in [0, 1] "
                                    "(rates cannot go negative)"
                                    % (label, path))
            kwargs["amplitude"] = amplitude
            kwargs["period_s"] = _number(entry, "period_s", path, label,
                                         positive=True, default=60.0)
            kwargs["phase"] = _number(entry, "phase", path, label,
                                      default=0.0)
        elif shape == "step":
            kwargs["base"] = _number(entry, "base", path, label,
                                     default=1.0, minimum=0.0)
            kwargs["peak"] = _number(entry, "peak", path, label,
                                     positive=True, default=2.0)
            at = _number(entry, "at", path, label)
            until = _number(entry, "until", path, label)
            if not t0 <= at < until <= t1:
                raise ScenarioError("%s: %s needs t0 <= at < until <= t1"
                                    % (label, path))
            kwargs["at"] = at
            kwargs["until"] = until
        return ScheduleEntry(**kwargs)

    @staticmethod
    def _parse_faults(data, targets, label):
        entries = data.get("faults") or []
        if not isinstance(entries, list):
            raise ScenarioError("%s: scenario.faults must be a list"
                                % label)
        events = []
        for index, entry in enumerate(entries):
            path = "faults[%d]" % index
            if not isinstance(entry, dict):
                raise ScenarioError("%s: %s must be a mapping"
                                    % (label, path))
            try:
                events.append(FaultEvent(**entry))
            except TypeError as error:
                raise ScenarioError("%s: %s: %s" % (label, path, error))
        try:
            plan = FaultPlan(events)
            if targets:
                plan.validate_targets([t.name for t in targets])
        except Exception as error:
            raise ScenarioError("%s: faults: %s" % (label, error))
        return plan

    @staticmethod
    def _parse_tenants(data, label):
        entry = data.get("tenants")
        if entry is None:
            return None
        path = "tenants"
        if not isinstance(entry, dict):
            raise ScenarioError("%s: %s must be a mapping" % (label, path))
        max_active = entry.get("max_active", 16)
        if isinstance(max_active, bool) or not isinstance(max_active, int) \
                or max_active < 1:
            raise ScenarioError("%s: %s.max_active must be a positive "
                                "integer" % (label, path))
        return TenantSpec(
            arrival_rate_per_s=_number(entry, "arrival_rate_per_s", path,
                                       label, positive=True),
            mean_lifetime_s=_number(entry, "mean_lifetime_s", path, label,
                                    positive=True),
            max_active=max_active,
        )
