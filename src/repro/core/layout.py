"""Layout matrices (paper Section 3).

A layout ``L`` is an N×M matrix where ``L_ij ∈ [0, 1]`` is the fraction
of object *i* assigned to target *j*.  Valid layouts satisfy the
integrity constraint (each row sums to one) and the capacity constraint.
A *regular* layout additionally has every row composed of equal shares
over a subset of targets — the only layouts a round-robin striping
mechanism can implement.
"""

import numpy as np

from repro.errors import LayoutError

#: Numeric tolerance for integrity/regularity checks.
TOLERANCE = 1e-6


class Layout:
    """An immutable-ish layout matrix with object/target names attached."""

    def __init__(self, matrix, object_names, target_names):
        self.matrix = np.asarray(matrix, dtype=float)
        self.object_names = list(object_names)
        self.target_names = list(target_names)
        if self.matrix.shape != (len(self.object_names), len(self.target_names)):
            raise LayoutError(
                "layout shape %s does not match %d objects x %d targets"
                % (self.matrix.shape, len(self.object_names), len(self.target_names))
            )

    @property
    def n_objects(self):
        return self.matrix.shape[0]

    @property
    def n_targets(self):
        return self.matrix.shape[1]

    def row(self, obj):
        """The per-target fractions of one object, by name or index."""
        if isinstance(obj, str):
            obj = self.object_names.index(obj)
        return self.matrix[obj]

    def fraction(self, obj, target):
        if isinstance(obj, str):
            obj = self.object_names.index(obj)
        if isinstance(target, str):
            target = self.target_names.index(target)
        return float(self.matrix[obj, target])

    def fractions_by_name(self):
        """Mapping of object name → list of fractions (placement-map input)."""
        return {
            name: self.matrix[i].tolist()
            for i, name in enumerate(self.object_names)
        }

    # ------------------------------------------------------------------
    # Validity predicates
    # ------------------------------------------------------------------

    def check_integrity(self):
        """Raise unless every row sums to one and entries are in [0, 1]."""
        if np.any(self.matrix < -TOLERANCE) or np.any(self.matrix > 1 + TOLERANCE):
            raise LayoutError("layout entries must lie in [0, 1]")
        sums = self.matrix.sum(axis=1)
        bad = np.where(np.abs(sums - 1.0) > 1e-4)[0]
        if bad.size:
            raise LayoutError(
                "integrity constraint violated for objects %s (row sums %s)"
                % ([self.object_names[i] for i in bad], sums[bad])
            )

    def check_capacity(self, sizes, capacities):
        """Raise unless per-target assigned bytes fit within capacities."""
        sizes = np.asarray(sizes, dtype=float)
        assigned = sizes @ self.matrix
        for j, capacity in enumerate(capacities):
            if assigned[j] > capacity * (1 + TOLERANCE):
                raise LayoutError(
                    "capacity constraint violated on target %s: %d > %d"
                    % (self.target_names[j], assigned[j], capacity)
                )

    def is_valid(self, sizes, capacities):
        """True when both validity constraints of Definition 1 hold."""
        try:
            self.check_integrity()
            self.check_capacity(sizes, capacities)
        except LayoutError:
            return False
        return True

    def is_regular(self, tolerance=1e-4):
        """True when every row is equal shares over a subset (Definition 2)."""
        for row in self.matrix:
            positive = row[row > tolerance]
            if positive.size == 0:
                return False
            if np.any(np.abs(positive - positive[0]) > tolerance):
                return False
        return True

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def see(cls, object_names, target_names):
        """Stripe-everything-everywhere: every object even over all targets."""
        n, m = len(object_names), len(target_names)
        return cls(np.full((n, m), 1.0 / m), object_names, target_names)

    @classmethod
    def from_assignment(cls, assignment, object_names, target_names):
        """Build a layout from ``{object: target or [targets]}``.

        Each object is spread evenly over the listed target(s).
        """
        n, m = len(object_names), len(target_names)
        matrix = np.zeros((n, m))
        index = {name: j for j, name in enumerate(target_names)}
        for i, obj in enumerate(object_names):
            spec = assignment[obj]
            if isinstance(spec, (str, int)):
                spec = [spec]
            columns = [index[t] if isinstance(t, str) else int(t) for t in spec]
            if not columns:
                raise LayoutError("object %s assigned to no target" % obj)
            for j in columns:
                matrix[i, j] = 1.0 / len(columns)
        return cls(matrix, object_names, target_names)

    @classmethod
    def regular_row(cls, targets, n_targets):
        """An equal-share row vector over the given target indices."""
        row = np.zeros(n_targets)
        for j in targets:
            row[j] = 1.0 / len(targets)
        return row

    def with_row(self, index, row):
        """Return a copy with one object's row replaced."""
        matrix = self.matrix.copy()
        matrix[index] = row
        return Layout(matrix, self.object_names, self.target_names)

    def copy(self):
        return Layout(self.matrix.copy(), self.object_names, self.target_names)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def describe(self, min_fraction=0.005, order=None):
        """Human-readable per-object layout, one line per object.

        Args:
            min_fraction: Hide shares below this threshold.
            order: Optional list of object names controlling line order
                (the paper's figures list objects by decreasing request
                rate).
        """
        names = order if order is not None else self.object_names
        lines = []
        for name in names:
            row = self.row(name)
            parts = [
                "%s:%.0f%%" % (self.target_names[j], 100 * row[j])
                for j in range(self.n_targets)
                if row[j] >= min_fraction
            ]
            lines.append("%-22s %s" % (name, "  ".join(parts)))
        return "\n".join(lines)

    def __repr__(self):
        return "Layout(%d objects x %d targets)" % (self.n_objects, self.n_targets)
