"""Objective evaluation: estimated target utilizations for a layout.

The solver evaluates the objective thousands of times, so workload
arrays are extracted once and all evaluation is vectorized numpy over
the (N, M) layout matrix.
"""

import numpy as np

from repro.models.target_model import (
    estimate_utilization_matrix,
    workload_arrays,
)


class ObjectiveEvaluator:
    """Bound evaluator of µ_ij, µ_j and the minimax objective.

    Args:
        problem: A :class:`~repro.core.problem.LayoutProblem`.
    """

    def __init__(self, problem):
        self.problem = problem
        self.arrays = workload_arrays(problem.workloads)
        self.evaluations = 0

    def utilization_matrix(self, matrix):
        """µ_ij for a raw (N, M) layout matrix."""
        self.evaluations += 1
        return estimate_utilization_matrix(
            self.problem.workloads,
            matrix,
            self.problem.models,
            stripe_size=self.problem.stripe_size,
            arrays=self.arrays,
        )

    def utilizations(self, matrix):
        """Per-target utilizations µ_j (shape (M,))."""
        return self.utilization_matrix(matrix).sum(axis=0)

    def objective(self, matrix):
        """The minimax objective: ``max_j µ_j``."""
        return float(self.utilizations(matrix).max())

    def object_loads(self, matrix):
        """Per-object total system load ``Σ_j µ_ij`` (regularizer order)."""
        return self.utilization_matrix(matrix).sum(axis=1)

    def softmax_objective(self, matrix, beta=25.0):
        """Smoothed max of µ_j, for gradient-based refinement.

        ``(1/β)·log Σ_j exp(β·µ_j)`` upper-bounds the true max and
        converges to it as β grows; it keeps the objective differentiable
        where the max switches between targets.
        """
        mu = self.utilizations(matrix)
        peak = mu.max()
        return float(peak + np.log(np.exp(beta * (mu - peak)).sum()) / beta)
