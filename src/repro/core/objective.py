"""Objective evaluation: estimated target utilizations for a layout.

The solver evaluates the objective thousands of times, so workload
arrays are extracted once and all evaluation is vectorized numpy over
the (N, M) layout matrix.

On top of the full (N, M) evaluation the evaluator maintains an
*incremental* cache keyed to one bound base matrix: the per-object
utilization contributions ``µ_ij``, their column sums ``µ_j``, the
contention numerators (Eq. 2), and the per-target run counts.  Because
``µ_ij`` depends on the layout only through object *i*'s own row and the
contention factor ``χ_ij`` — whose numerator sums the *other* objects'
rates — replacing a single row *i* perturbs only row *i* itself plus the
rows of objects that overlap with *i*.  A single-row probe therefore
costs O(M · (1 + overlap-degree)) cost-model lookups instead of the full
O(N · M) rebuild, and a batch of K candidate rows for the same object is
evaluated in one vectorized pass.
"""

import warnings

import numpy as np

from repro.models.target_model import (
    batch_model_groups,
    estimate_utilization_matrix,
    workload_arrays,
)
from repro.obs.metrics import NULL_REGISTRY
from repro.workload.layout_model import per_target_run_counts

#: Denominator floor of the contention factor; must match
#: :func:`repro.workload.contention.contention_factors`.
_CHI_FLOOR = 1e-9

#: Committed row updates between full cache rebuilds.  The rank-1
#: updates to the contention numerators are exact up to float rounding,
#: so periodic rebuilds keep accumulated drift orders of magnitude below
#: the solver's 1e-9 comparison tolerance.
REFRESH_INTERVAL = 256

#: Rebinds below this floor never warn: multi-restart portfolios
#: legitimately rebind once per starting point.
REBIND_WARN_FLOOR = 8


class ObjectiveEvaluator:
    """Bound evaluator of µ_ij, µ_j and the minimax objective.

    Args:
        problem: A :class:`~repro.core.problem.LayoutProblem`.
        incremental: Enable the single-row incremental cache.  With
            ``False`` every probe falls back to a full (N, M) rebuild —
            the pre-optimization behaviour, kept for benchmarking and as
            a correctness oracle.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            the evaluator feeds ``repro_evaluator_*`` counters (probe
            rows, full rebuilds, commits, rebinds, refreshes).  Defaults
            to the shared no-op registry.
    """

    def __init__(self, problem, incremental=True, metrics=None):
        self.problem = problem
        self.arrays = workload_arrays(problem.workloads)
        self.incremental = bool(incremental)
        #: Total candidate evaluations (full rebuilds + row probes).
        self.evaluations = 0
        #: Full (N, M) utilization-matrix rebuilds.
        self.full_evaluations = 0
        #: Single-row probe evaluations served from the cache.
        self.incremental_evaluations = 0
        #: Cache rebinds forced by a base-matrix mismatch (callers that
        #: thrash this defeat the incremental layer; see _ensure_bound).
        self.rebinds = 0
        #: Periodic full rebuilds triggered by REFRESH_INTERVAL.
        self.refreshes = 0
        #: Lifetime committed row updates (never reset, unlike the
        #: refresh countdown).
        self.commits = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_probe_rows = metrics.counter(
            "repro_evaluator_probe_rows_total")
        self._m_full = metrics.counter(
            "repro_evaluator_full_evaluations_total")
        self._m_commits = metrics.counter("repro_evaluator_commits_total")
        self._m_rebinds = metrics.counter("repro_evaluator_rebinds_total")
        self._m_refreshes = metrics.counter(
            "repro_evaluator_refreshes_total")
        self._rebind_warned = False
        self._base = None
        self._mu = None
        self._colsums = None
        self._competing = None
        self._run_counts = None
        self._neighbors = None
        self._overlap_offdiag = None
        self._model_groups = None
        self._commits = 0

    # ------------------------------------------------------------------
    # Full evaluation
    # ------------------------------------------------------------------

    def utilization_matrix(self, matrix):
        """µ_ij for a raw (N, M) layout matrix."""
        self.evaluations += 1
        self.full_evaluations += 1
        self._m_full.inc()
        return estimate_utilization_matrix(
            self.problem.workloads,
            matrix,
            self.problem.models,
            stripe_size=self.problem.stripe_size,
            arrays=self.arrays,
        )

    def utilizations(self, matrix):
        """Per-target utilizations µ_j (shape (M,))."""
        return self.utilization_matrix(matrix).sum(axis=0)

    def objective(self, matrix):
        """The minimax objective: ``max_j µ_j``."""
        return float(self.utilizations(matrix).max())

    def object_loads(self, matrix):
        """Per-object total system load ``Σ_j µ_ij`` (regularizer order)."""
        return self.utilization_matrix(matrix).sum(axis=1)

    def softmax_objective(self, matrix, beta=25.0):
        """Smoothed max of µ_j, for gradient-based refinement.

        ``(1/β)·log Σ_j exp(β·µ_j)`` upper-bounds the true max and
        converges to it as β grows; it keeps the objective differentiable
        where the max switches between targets.
        """
        mu = self.utilizations(matrix)
        peak = mu.max()
        return float(peak + np.log(np.exp(beta * (mu - peak)).sum()) / beta)

    # ------------------------------------------------------------------
    # Incremental evaluation
    # ------------------------------------------------------------------

    def bind(self, matrix):
        """Make ``matrix`` the base of the incremental cache.

        Performs one full evaluation and caches µ_ij, its column sums,
        the contention numerators ``Σ_k O_i[k]·λ_k·L_kj``, and the
        per-target run counts.  Returns µ_j of the bound matrix.
        """
        a = self.arrays
        self._base = np.array(matrix, dtype=float, copy=True)
        self._mu = self.utilization_matrix(self._base)
        self._colsums = self._mu.sum(axis=0)
        self._competing = self._overlap() @ (
            a["total_rate"][:, None] * self._base
        )
        self._run_counts = per_target_run_counts(
            a["run_count"], a["mean_size"], self._base,
            self.problem.stripe_size,
        )
        self._commits = 0
        return self._colsums.copy()

    def _ensure_bound(self, matrix):
        if self._base is None:
            self.bind(matrix)
        elif not np.array_equal(self._base, matrix):
            # A silent rebind is correct but expensive (one full (N, M)
            # rebuild); callers that alternate between base matrices
            # instead of committing rows thrash the cache into
            # worse-than-non-incremental behaviour.  Count every rebind
            # and warn once when rebinds overtake committed updates.
            self.rebinds += 1
            self._m_rebinds.inc()
            if (not self._rebind_warned
                    and self.rebinds >= REBIND_WARN_FLOOR
                    and self.rebinds > self.commits):
                self._rebind_warned = True
                warnings.warn(
                    "ObjectiveEvaluator rebound its incremental cache %d "
                    "times against %d committed row updates; a caller is "
                    "probing alternating base matrices, which degrades "
                    "the cache to full rebuilds (use commit_row, or a "
                    "separate evaluator per base)"
                    % (self.rebinds, self.commits),
                    RuntimeWarning, stacklevel=3,
                )
            self.bind(matrix)

    def _overlap(self):
        """The overlap matrix with its diagonal normalized to zero.

        Eq. 2 sums over ``k ≠ i``; :func:`workload_arrays` already zeroes
        the diagonal, but callers can hand the evaluator externally-built
        arrays, and a nonzero diagonal would put every object in its own
        neighbor set — double-counting its µ contribution in probe totals
        and desynchronizing the contention-numerator cache.
        """
        if self._overlap_offdiag is None:
            overlap = self.arrays["overlap"]
            if np.any(np.diagonal(overlap) != 0.0):
                overlap = overlap.copy()
                np.fill_diagonal(overlap, 0.0)
            self._overlap_offdiag = overlap
        return self._overlap_offdiag

    def _neighbor_indices(self, i):
        """Objects ``k ≠ i`` whose contention depends on object *i*'s row.

        Built once for all objects from the sparse nonzero structure of
        the overlap matrix — one ``np.nonzero`` over the whole matrix
        plus an argsort of the column indices — instead of N dense
        column scans, which dominated cache construction at fleet scale.
        """
        if self._neighbors is None:
            overlap = self._overlap()
            n = overlap.shape[0]
            rows, cols = np.nonzero(overlap)
            order = np.argsort(cols, kind="stable")
            rows = rows[order]
            counts = np.bincount(cols, minlength=n)
            self._neighbors = np.split(rows, np.cumsum(counts)[:-1])
        return self._neighbors[i]

    def _probe(self, i, rows):
        """Evaluate candidate rows for object *i* against the bound base.

        Returns ``(totals, mu_i, q_i, neighbours)``: per-candidate µ_j of
        shape (K, M), object *i*'s own µ contributions and run counts,
        and ``[(k, mu_k)]`` for every overlap-coupled object whose
        contribution shifts with the probe.

        The probed object and its neighbours are stacked into one (P, K)
        batch per target and request direction, so a probe costs 2M
        cost-model lookups regardless of the overlap degree (the degree
        only widens the batched arrays).
        """
        a = self.arrays
        overlap = self._overlap()
        k_count, m = rows.shape

        q_i = per_target_run_counts(
            np.full(k_count, a["run_count"][i]),
            np.full(k_count, a["mean_size"][i]),
            rows, self.problem.stripe_size,
        )
        delta = rows - self._base[i][None, :]
        nbrs = [
            int(k) for k in self._neighbor_indices(i)
            if overlap[k, i] * a["total_rate"][i] != 0.0
        ]
        objs = np.array([i] + nbrs)
        p_count = len(objs)

        fractions = np.empty((p_count, k_count, m))
        run_counts = np.empty((p_count, k_count, m))
        chi = np.empty((p_count, k_count, m))

        fractions[0] = rows
        run_counts[0] = q_i
        own = a["total_rate"][i] * rows
        chi[0] = np.where(
            own > _CHI_FLOOR,
            self._competing[i][None, :] / np.maximum(own, _CHI_FLOOR),
            0.0,
        )
        for t, k in enumerate(nbrs, start=1):
            coupling = overlap[k, i] * a["total_rate"][i]
            competing = self._competing[k][None, :] + coupling * delta
            own_k = a["total_rate"][k] * self._base[k]
            chi[t] = np.where(
                own_k[None, :] > _CHI_FLOOR,
                competing / np.maximum(own_k, _CHI_FLOOR)[None, :],
                0.0,
            )
            fractions[t] = self._base[k][None, :]
            run_counts[t] = self._run_counts[k][None, :]

        read_sizes = a["read_size"][objs][:, None, None]
        write_sizes = a["write_size"][objs][:, None, None]
        read_rates = a["read_rate"][objs][:, None, None]
        write_rates = a["write_rate"][objs][:, None, None]
        mu = np.empty((p_count, k_count, m))
        # One vectorized lookup per distinct target model, not per
        # target: on homogeneous fleets the per-target Python loop was
        # the per-partition hot path at M = 64.
        for cols, model in self._target_groups():
            read = model.read_model.lookup(
                read_sizes, run_counts[:, :, cols], chi[:, :, cols]
            )
            write = model.write_model.lookup(
                write_sizes, run_counts[:, :, cols], chi[:, :, cols]
            )
            mu[:, :, cols] = (
                read_rates * fractions[:, :, cols] * read
                + write_rates * fractions[:, :, cols] * write
            )

        totals = (self._colsums[None, :]
                  + mu.sum(axis=0)
                  - self._mu[objs].sum(axis=0)[None, :])
        neighbours = [(k, mu[t]) for t, k in enumerate(nbrs, start=1)]
        return totals, mu[0], q_i, neighbours

    def _target_groups(self):
        """Targets grouped by identical cost models (lazily cached)."""
        if self._model_groups is None:
            self._model_groups = batch_model_groups(self.problem.models)
        return self._model_groups

    def utilizations_with_rows(self, matrix, i, rows):
        """µ_j for ``matrix`` with row *i* replaced by each candidate.

        Args:
            matrix: The base (N, M) layout matrix.  Rebinds the cache
                when it differs from the currently bound base.
            i: Object index whose row is probed.
            rows: (K, M) array (or a single (M,) row) of candidates.

        Returns:
            (K, M) array of per-target utilizations, one row per
            candidate.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if not self.incremental:
            scratch = np.array(matrix, dtype=float, copy=True)
            totals = np.empty((rows.shape[0], scratch.shape[1]))
            for t, row in enumerate(rows):
                scratch[i] = row
                totals[t] = self.utilizations(scratch)
            return totals
        self._ensure_bound(matrix)
        totals, _, _, _ = self._probe(i, rows)
        self.evaluations += rows.shape[0]
        self.incremental_evaluations += rows.shape[0]
        self._m_probe_rows.inc(rows.shape[0])
        return totals

    def evaluate_rows(self, matrix, i, rows):
        """Minimax objective for each candidate row, shape (K,)."""
        return self.utilizations_with_rows(matrix, i, rows).max(axis=1)

    def utilizations_with_row(self, matrix, i, row):
        """µ_j for ``matrix`` with row *i* replaced by ``row`` (shape (M,))."""
        return self.utilizations_with_rows(matrix, i, row)[0]

    def objective_with_row(self, matrix, i, row):
        """``max_j µ_j`` for ``matrix`` with row *i* replaced by ``row``."""
        return float(self.utilizations_with_row(matrix, i, row).max())

    def utilizations_without_row(self, matrix, i):
        """µ_j with object *i* removed (its row zeroed).

        Used by the regularizer to rank balancing targets without the
        object's own load biasing the order.
        """
        zero = np.zeros((1, np.shape(matrix)[1]))
        return self.utilizations_with_rows(matrix, i, zero)[0]

    def commit_row(self, i, row):
        """Install ``row`` as object *i*'s row in the bound base.

        Updates the cached µ_ij, column sums, run counts, and contention
        numerators in O(M · (1 + overlap-degree)); every
        :data:`REFRESH_INTERVAL` commits the cache is rebuilt from
        scratch so float drift from the rank-1 numerator updates cannot
        accumulate.  No-op when incremental evaluation is disabled.
        """
        if not self.incremental:
            return
        if self._base is None:
            raise ValueError("commit_row requires a bound base matrix")
        row = np.asarray(row, dtype=float)
        self._commits += 1
        self.commits += 1
        self._m_commits.inc()
        if self._commits >= REFRESH_INTERVAL:
            self.refreshes += 1
            self._m_refreshes.inc()
            base = self._base
            base[i] = row
            self.bind(base)
            return
        totals, mu_i, q_i, neighbours = self._probe(i, row[None, :])
        a = self.arrays
        nbrs = self._neighbor_indices(i)
        if nbrs.size:
            delta = row - self._base[i]
            coupling = (self._overlap()[nbrs, i]
                        * a["total_rate"][i])[:, None]
            self._competing[nbrs] += coupling * delta[None, :]
        self._base[i] = row
        self._run_counts[i] = q_i[0]
        self._mu[i] = mu_i[0]
        for k, mu_k in neighbours:
            self._mu[k] = mu_k[0]
        self._colsums = totals[0].copy()

    def utilizations_for(self, matrix):
        """µ_j of ``matrix``, served from the cache when possible."""
        if not self.incremental:
            return self.utilizations(matrix)
        self._ensure_bound(matrix)
        return self._colsums.copy()

    def object_loads_for(self, matrix):
        """Per-object loads of ``matrix``, served from the cache."""
        if not self.incremental:
            return self.object_loads(matrix)
        self._ensure_bound(matrix)
        return self._mu.sum(axis=1)
