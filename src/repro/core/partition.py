"""Overlap-graph decomposition of the layout NLP (fleet-scale solves).

The contention term (Eq. 2) is the only coupling between objects in the
objective: µ_ij depends on object *i*'s own row plus the rows of objects
whose request streams temporally overlap *i*'s.  Objects in different
connected components of the overlap graph therefore contribute
*independent* terms to every target utilization, and the NLP decomposes:
each component can be solved against a per-partition share of the
capacity budget, in parallel, and the component layouts stitched into
one matrix whose full-problem utilizations are exactly the sums of the
per-partition ones ("Distributed Data Placement via Graph Partitioning"
reaches the same structure for Paxos groups).

What cannot be decomposed exactly is the *minimax* coupling through
shared targets: partitions solved against proportional capacity shares
may stack their hottest objects on the same device.  A bounded
cross-partition balancing pass — plain block-coordinate descent over the
stitched matrix, which moves whole object rows between targets with the
full objective in view — reconciles the partitions, so the final layout
is always evaluated (and validated) against the monolithic model.

Partitioning is exact for true components.  One giant component (e.g.
a ring of pairwise overlaps) is *split* by cutting edges — BFS-ordered
chunks of at most ``max_partition_size`` objects — which drops the cut
edges' contention terms from the sub-solves only; small components are
*merged* first-fit-decreasing into partition bins so per-partition solve
overhead amortizes.  The split makes the sub-solves approximate, which
is why callers get a parity gate in ``bench_solver_scaling`` rather than
a proof: the stitched-and-balanced objective must stay within
:data:`PARTITION_PARITY_RTOL` of a monolithic coordinate solve.
"""

import os
import pickle
import time
import warnings
from collections import deque

import numpy as np

from repro.core.initial import initial_layout
from repro.core.layout import Layout
from repro.core.pinning import PinningConstraints
from repro.core.problem import LayoutProblem, TargetSpec
from repro.core.solver import SolveResult, solve_coordinate
from repro.errors import SolverError
from repro.obs import Instrumentation, ensure_obs

#: Default cap on objects per partition: big enough that ring cuts are
#: rare relative to kept edges, small enough that a partition's
#: block-coordinate solve stays interactive.
MAX_PARTITION_OBJECTS = 128

#: Cross-partition balancing rounds over the stitched matrix.
BALANCE_ROUNDS = 3

#: Documented tolerance of the partitioned-vs-monolithic objective
#: parity gate (relative).  Exact decomposition (block-diagonal overlap)
#: solves the identical program per partition; split giant components
#: lose cut-edge contention terms in the sub-solves, and the balancing
#: pass must bring the stitched layout back within this band.
PARTITION_PARITY_RTOL = 0.05


def overlap_partitions(overlap, max_size=MAX_PARTITION_OBJECTS):
    """Partition object indices by overlap-graph connectivity.

    Connected components of the symmetrized nonzero structure of
    ``overlap`` are the exact decomposition units.  Components larger
    than ``max_size`` are split into BFS-ordered chunks (cutting as few
    neighborhood edges as a greedy order manages); components smaller
    than the cap are packed first-fit-decreasing so a fleet of tiny
    components does not pay per-partition solve overhead N times.

    Returns:
        A list of sorted index lists covering ``range(n)`` exactly once.
    """
    overlap = np.asarray(overlap)
    n = overlap.shape[0]
    max_size = max(1, int(max_size))
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    structure = csr_matrix(overlap != 0)
    count, labels = connected_components(structure, directed=False)
    components = [np.where(labels == c)[0] for c in range(count)]

    pieces = []
    for component in components:
        if component.size <= max_size:
            pieces.append(list(component))
            continue
        # Split one giant component along a BFS order: chunks keep
        # whole neighborhoods together and cut only frontier edges.
        member = set(component.tolist())
        adjacency = {i: set() for i in component}
        sub = overlap[np.ix_(component, component)]
        rows, cols = np.nonzero(sub)
        for r, c in zip(rows, cols):
            a, b = int(component[r]), int(component[c])
            adjacency[a].add(b)
            adjacency[b].add(a)
        seen = set()
        order = []
        for root in component:
            root = int(root)
            if root in seen:
                continue
            queue = deque([root])
            seen.add(root)
            while queue:
                node = queue.popleft()
                order.append(node)
                for neighbor in sorted(adjacency[node]):
                    if neighbor in member and neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
        for start in range(0, len(order), max_size):
            pieces.append(sorted(order[start:start + max_size]))

    # First-fit-decreasing merge of small pieces into partition bins.
    pieces.sort(key=len, reverse=True)
    bins = []
    for piece in pieces:
        for bin_ in bins:
            if len(bin_) + len(piece) <= max_size:
                bin_.extend(piece)
                break
        else:
            bins.append(list(piece))
    return [sorted(bin_) for bin_ in bins]


def _partition_budgets(problem, partitions):
    """Per-partition, per-target capacity budgets (bytes).

    Bytes consumed by pinned-fixed rows are reserved off the top — they
    land on their targets in every layout — and the remaining capacity
    of each target is shared between partitions proportionally to their
    unfixed bytes.  Budgets sum to at most the true capacities, so
    stitching per-partition-valid layouts cannot oversubscribe a target.
    """
    n_targets = problem.n_targets
    _, fixed_rows = problem.pinning.resolve(
        problem.object_names, problem.target_names
    )
    fixed_bytes = np.zeros((len(partitions), n_targets))
    unfixed_sizes = np.zeros(len(partitions))
    for p, indices in enumerate(partitions):
        for i in indices:
            if i in fixed_rows:
                fixed_bytes[p] += problem.sizes[i] * fixed_rows[i]
            else:
                unfixed_sizes[p] += problem.sizes[i]
    remaining = np.maximum(problem.capacities - fixed_bytes.sum(axis=0), 0.0)
    total_unfixed = unfixed_sizes.sum()
    if total_unfixed > 0:
        shares = unfixed_sizes / total_unfixed
    else:
        shares = np.full(len(partitions), 1.0 / len(partitions))
    budgets = fixed_bytes + shares[:, None] * remaining[None, :]
    # LayoutProblem rejects non-positive capacities; a one-byte floor on
    # a target some partition cannot use anyway is far inside the
    # validator's relative tolerance.
    return np.maximum(budgets, 1.0)


def _subproblem(problem, indices, budget):
    """The layout sub-problem for one partition under its budget."""
    names = [problem.object_names[i] for i in indices]
    name_set = set(names)
    sizes = {
        problem.object_names[i]: float(problem.sizes[i]) for i in indices
    }
    targets = [
        TargetSpec(spec.name, float(budget[j]), spec.model)
        for j, spec in enumerate(problem.targets)
    ]
    workloads = [problem.workloads[i] for i in indices]
    pinning = PinningConstraints(
        allowed={k: v for k, v in problem.pinning.allowed.items()
                 if k in name_set},
        fixed={k: v for k, v in problem.pinning.fixed.items()
               if k in name_set},
    )
    return LayoutProblem(sizes, targets, workloads,
                         stripe_size=problem.stripe_size, pinning=pinning)


def _solve_partition(subproblem, start_rows, restarts, seed, max_iter,
                     capture=False):
    """Solve one partition (module-level: process-pool picklable).

    Partitions always use block-coordinate descent — partitioned solving
    is the scale-out of the coordinate path, and a per-partition SLSQP
    would dominate the wall clock it exists to cut.  ``start_rows``
    optionally warm-starts the sub-solve from the caller's initial
    layout when those rows are valid under the partition budget.

    With ``capture=True`` the sub-solve runs under live instrumentation
    and returns ``{"result", "spans", "metrics", "pid"}``; the parent
    stitches the serialized span tree into its own trace, preserving
    per-round solver spans across the process boundary.
    """
    del max_iter  # coordinate search has no continuous iteration cap
    obs = Instrumentation.on() if capture else None
    root = None
    if obs is not None:
        root = obs.tracer.start("partition.solve",
                                n_objects=subproblem.n_objects,
                                pid=os.getpid())
    start = None
    if start_rows is not None:
        candidate = subproblem.make_layout(np.asarray(start_rows, dtype=float))
        try:
            subproblem.validate_layout(candidate)
            start = candidate
        except Exception:
            start = None
    if start is None:
        start = initial_layout(subproblem)
    evaluator = subproblem.evaluator(
        metrics=obs.metrics if obs is not None else None
    )
    best = None
    for attempt in range(max(1, restarts)):
        attempt_start = start if attempt == 0 else initial_layout(
            subproblem, rng=np.random.default_rng(seed + attempt), jitter=0.3
        )
        result = solve_coordinate(subproblem, attempt_start,
                                  evaluator=evaluator, obs=obs,
                                  attempt=attempt)
        if best is None or result.objective < best.objective:
            best = result
    solved = SolveResult(
        layout=best.layout,
        objective=best.objective,
        utilizations=best.utilizations,
        method=best.method,
        evaluations=evaluator.evaluations,
        elapsed_s=best.elapsed_s,
        success=best.success,
    )
    if obs is None:
        return solved
    obs.tracer.finish(root, objective=solved.objective)
    return {
        "result": solved,
        "spans": obs.tracer.to_records(),
        "metrics": obs.metrics.to_records(),
        "pid": os.getpid(),
    }


def _run_partitions_parallel(tasks, workers):
    """Fan partition solves over a process pool; None = pool unusable."""
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(
            max_workers=min(int(workers), len(tasks))
        ) as pool:
            futures = [pool.submit(_solve_partition, *task) for task in tasks]
            return [future.result() for future in futures]
    except (OSError, BrokenProcessPool, pickle.PicklingError):
        return None


def solve_partitioned(problem, initial=None, restarts=1, seed=0,
                      evaluator=None, max_iter=150, warm_start=False,
                      workers=1, max_partition_size=MAX_PARTITION_OBJECTS,
                      balance_rounds=BALANCE_ROUNDS, obs=None):
    """Solve via overlap-graph decomposition, then reconcile.

    Pipeline: partition the overlap graph (exact components, size-capped
    merge/split), solve every partition independently against its
    capacity budget — over a process pool when ``workers > 1`` — stitch
    the partition layouts into one matrix, and run a bounded
    cross-partition balancing pass (block-coordinate descent over the
    full problem, starting from the stitched matrix) so the minimax
    coupling through shared targets is restored.

    Args:
        problem: The layout problem.
        initial: Optional starting layout; partition rows that remain
            valid under the partition budget warm-start their sub-solve.
        restarts: Per-partition restart portfolio size.
        seed: RNG seed for restart jitter (per-partition offsets keep
            the outcome deterministic under any worker count).
        evaluator: Optional shared full-problem evaluator; used for the
            balancing pass and final accounting.
        max_iter: Iteration cap forwarded to continuous sub-solves.
        warm_start: Accepted for :func:`repro.core.solver.solve`
            signature compatibility; partition warm starts are already
            derived from ``initial`` when it is given.
        workers: Process count for the partition fan-out.
        max_partition_size: Object cap per partition (merge/split knob).
        balance_rounds: Coordinate rounds for the reconciliation pass
            (0 skips it).
        obs: Optional instrumentation; every partition solve is recorded
            as a ``solver.partition`` span and counted in
            ``repro_solver_partitions_total``, the balancing pass in a
            ``solver.partition_balance`` span.

    Returns:
        A :class:`~repro.core.solver.SolveResult` with
        ``method="partitioned"``; its objective and utilizations are
        always evaluated against the full (monolithic) model.
    """
    del warm_start  # signature compatibility with solve()
    started = time.perf_counter()
    obs = ensure_obs(obs)
    if evaluator is None:
        evaluator = problem.evaluator(metrics=obs.metrics)

    partitions = overlap_partitions(evaluator.arrays["overlap"],
                                    max_size=max_partition_size)
    obs.metrics.gauge("repro_solver_partition_count").set(len(partitions))

    budgets = _partition_budgets(problem, partitions)
    capture = bool(obs.tracer.enabled)
    tasks = []
    for p, indices in enumerate(partitions):
        sub = _subproblem(problem, indices, budgets[p])
        start_rows = initial.matrix[indices] if initial is not None else None
        tasks.append((sub, start_rows, restarts, seed + 1000 * p, max_iter,
                      capture))

    raw = None
    if workers is not None and workers > 1 and len(tasks) > 1:
        raw = _run_partitions_parallel(tasks, workers)
    if raw is None:
        raw = [_solve_partition(*task) for task in tasks]
    results = [entry["result"] if isinstance(entry, dict) else entry
               for entry in raw]

    matrix = np.zeros((problem.n_objects, problem.n_targets))
    evaluations = 0
    for p, (indices, result) in enumerate(zip(partitions, results)):
        matrix[indices] = result.layout.matrix
        evaluations += result.evaluations
        span = obs.tracer.add_span(
            "solver.partition", result.elapsed_s, partition=p,
            n_objects=len(indices), objective=result.objective,
            method=result.method,
        )
        entry = raw[p]
        if isinstance(entry, dict):
            # Stitch the partition worker's span tree under this
            # partition span (skew-anchored at its backdated end) and
            # fold the worker's counters into the caller's registry.
            grafted = obs.tracer.graft_records(
                entry["spans"], parent=span, end_at=span.end_s
            )
            for remote in grafted:
                if remote.parent_id == span.span_id:
                    remote.set_tag("pid", entry["pid"])
            if obs.metrics.enabled:
                obs.metrics.merge_records(entry["metrics"])
        obs.metrics.counter("repro_solver_partitions_total",
                            method=result.method).inc()
    evaluator.evaluations += evaluations

    stitched = problem.make_layout(matrix)
    try:
        problem.validate_layout(stitched)
    except Exception:
        # Budget floors or pinning interactions produced an invalid
        # stitch (rare: requires a near-infeasible instance).  Fall back
        # to a monolithic coordinate solve rather than failing a solve
        # the monolithic path could still answer.
        warnings.warn(
            "partitioned solve produced an invalid stitched layout; "
            "falling back to a monolithic coordinate solve",
            RuntimeWarning, stacklevel=2,
        )
        fallback = solve_coordinate(problem, initial_layout(problem),
                                    evaluator=evaluator, obs=obs,
                                    attempt="partition-fallback")
        return SolveResult(
            layout=fallback.layout,
            objective=fallback.objective,
            utilizations=fallback.utilizations,
            method="partitioned-fallback",
            evaluations=evaluator.evaluations,
            elapsed_s=time.perf_counter() - started,
            success=fallback.success,
        )

    if balance_rounds > 0:
        span = obs.tracer.start("solver.partition_balance",
                                rounds=balance_rounds)
        balanced = solve_coordinate(problem, stitched, evaluator=evaluator,
                                    max_rounds=balance_rounds, obs=obs,
                                    attempt="balance")
        obs.tracer.finish(span, objective=balanced.objective)
        layout = balanced.layout
        utilizations = balanced.utilizations
        success = balanced.success
    else:
        layout = stitched
        utilizations = evaluator.utilizations(stitched.matrix)
        success = True

    if layout is None:
        raise SolverError("partitioned solve produced no layout")
    return SolveResult(
        layout=layout,
        objective=float(utilizations.max()),
        utilizations=utilizations,
        method="partitioned",
        evaluations=evaluator.evaluations,
        elapsed_s=time.perf_counter() - started,
        success=success,
    )
