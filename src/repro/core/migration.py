"""Migration planning between layouts.

A layout recommendation is only useful if an administrator can act on
it: the paper's §3 discusses implementing layouts via logical volumes
or tablespace containers, and moving from the current layout to a
recommended one means physically relocating data.  This module computes
that plan — how many bytes of each object move between which targets —
and summarizes the total movement cost, so a DBA can weigh a
recommendation's benefit (utilization reduction) against its migration
bill.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import LayoutError


@dataclass(frozen=True)
class Move:
    """One relocation: bytes of an object from one target to another."""

    obj: str
    source: str
    destination: str
    bytes: int


@dataclass
class MigrationPlan:
    """The full movement plan between two layouts.

    Attributes:
        moves: Individual relocations, largest first.
        total_bytes: Total data moved.
        bytes_read / bytes_written: Per-target traffic the migration
            itself generates (reads at sources, writes at destinations).
    """

    moves: List[Move] = field(default_factory=list)
    total_bytes: int = 0
    bytes_read: Dict[str, int] = field(default_factory=dict)
    bytes_written: Dict[str, int] = field(default_factory=dict)

    def moved_fraction(self, total_size):
        """Moved bytes as a fraction of total database size."""
        return self.total_bytes / total_size if total_size else 0.0

    def describe(self, top=None):
        """Human-readable plan listing, largest moves first."""
        lines = [
            "migration plan: %.1f MiB total" % (self.total_bytes / (1 << 20))
        ]
        moves = self.moves[:top] if top else self.moves
        for move in moves:
            lines.append(
                "  %-22s %s -> %s  %.1f MiB"
                % (move.obj, move.source, move.destination,
                   move.bytes / (1 << 20))
            )
        if top and len(self.moves) > top:
            lines.append("  ... and %d smaller moves"
                         % (len(self.moves) - top))
        return "\n".join(lines)


def plan_migration(current, target, object_sizes):
    """Compute the minimal per-object movement plan between two layouts.

    For each object, targets whose share shrinks are sources and targets
    whose share grows are destinations; surpluses are matched to
    deficits greedily (largest first), which minimizes per-object moved
    bytes (the total surplus) regardless of matching order.

    Args:
        current: The :class:`~repro.core.layout.Layout` in production.
        target: The recommended layout.
        object_sizes: Mapping of object name to bytes.

    Raises:
        LayoutError: If the two layouts disagree on objects or targets.
    """
    if current.object_names != target.object_names:
        raise LayoutError("layouts describe different object sets")
    if current.target_names != target.target_names:
        raise LayoutError("layouts describe different target sets")

    plan = MigrationPlan()
    reads = {name: 0 for name in current.target_names}
    writes = {name: 0 for name in current.target_names}

    for i, obj in enumerate(current.object_names):
        size = object_sizes[obj]
        delta = (target.matrix[i] - current.matrix[i]) * size
        sources = [
            (j, -delta[j]) for j in np.nonzero(delta < -0.5)[0]
        ]
        destinations = [
            (j, delta[j]) for j in np.nonzero(delta > 0.5)[0]
        ]
        sources.sort(key=lambda item: -item[1])
        destinations.sort(key=lambda item: -item[1])

        si, di = 0, 0
        while si < len(sources) and di < len(destinations):
            source_j, available = sources[si]
            dest_j, needed = destinations[di]
            amount = int(round(min(available, needed)))
            if amount > 0:
                plan.moves.append(Move(
                    obj=obj,
                    source=current.target_names[source_j],
                    destination=current.target_names[dest_j],
                    bytes=amount,
                ))
                plan.total_bytes += amount
                reads[current.target_names[source_j]] += amount
                writes[current.target_names[dest_j]] += amount
            available -= amount
            needed -= amount
            if available <= 0.5:
                si += 1
            else:
                sources[si] = (source_j, available)
            if needed <= 0.5:
                di += 1
            else:
                destinations[di] = (dest_j, needed)

    plan.moves.sort(key=lambda move: -move.bytes)
    plan.bytes_read = reads
    plan.bytes_written = writes
    return plan


def migration_cost_seconds(plan, transfer_bps=80 * (1 << 20)):
    """Rough lower bound on migration wall time.

    Each target reads its outgoing bytes and writes its incoming bytes
    at ``transfer_bps``; targets work in parallel, so the bound is the
    busiest target's traffic over the rate.
    """
    busiest = 0
    for name in plan.bytes_read:
        busiest = max(busiest,
                      plan.bytes_read[name] + plan.bytes_written.get(name, 0))
    return busiest / transfer_bps
