"""Layout problem definition (paper Definition 1 and Figure 3)."""

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import units
from repro.errors import CapacityError, LayoutError, WorkloadError
from repro.core.layout import Layout
from repro.core.pinning import PinningConstraints


@dataclass
class TargetSpec:
    """One storage target as the advisor sees it.

    Attributes:
        name: Target name.
        capacity: Capacity in bytes (``c_j``).
        model: A :class:`~repro.models.target_model.TargetModel` used to
            predict per-request costs on this target.  Different targets
            may carry different models — that is how heterogeneity enters
            the optimization.
    """

    name: str
    capacity: int
    model: object


class LayoutProblem:
    """N objects, M targets, and a workload description per object.

    Args:
        object_sizes: Mapping of object name to size in bytes (``s_i``).
            Iteration order fixes the object index order.
        targets: Sequence of :class:`TargetSpec`.
        workloads: Sequence of
            :class:`~repro.workload.spec.ObjectWorkload`, one per object
            (any order; matched by name).
        stripe_size: LVM stripe size used by the Figure-7 layout model.
        pinning: Optional administrative constraints.

    Raises:
        WorkloadError: If workloads and objects do not match up.
        CapacityError: If the objects cannot fit on the targets at all.
    """

    def __init__(self, object_sizes, targets, workloads,
                 stripe_size=units.DEFAULT_STRIPE_SIZE, pinning=None):
        self.object_names = list(object_sizes)
        self.sizes = np.array([object_sizes[n] for n in self.object_names],
                              dtype=float)
        self.targets = list(targets)
        self.target_names = [t.name for t in self.targets]
        self.capacities = np.array([t.capacity for t in self.targets],
                                   dtype=float)
        self.models = [t.model for t in self.targets]
        self.stripe_size = int(stripe_size)
        self.pinning = pinning or PinningConstraints()

        if not self.object_names:
            raise LayoutError("a layout problem needs at least one object")
        if not self.targets:
            raise LayoutError("a layout problem needs at least one target")

        by_name = {w.name: w for w in workloads}
        missing = [n for n in self.object_names if n not in by_name]
        if missing:
            raise WorkloadError("no workload description for objects %s" % missing)
        extra = [n for n in by_name if n not in self.object_names]
        if extra:
            raise WorkloadError("workloads for unknown objects %s" % extra)
        self.workloads = [by_name[n] for n in self.object_names]

        if self.sizes.sum() > self.capacities.sum():
            raise CapacityError(
                "total object size %d exceeds total capacity %d"
                % (self.sizes.sum(), self.capacities.sum())
            )
        if np.any(self.sizes <= 0):
            raise LayoutError("object sizes must be positive")
        if np.any(self.capacities <= 0):
            raise LayoutError("target capacities must be positive")

    @property
    def n_objects(self):
        return len(self.object_names)

    @property
    def n_targets(self):
        return len(self.targets)

    def make_layout(self, matrix):
        """Wrap a raw matrix in a named :class:`Layout`."""
        return Layout(matrix, self.object_names, self.target_names)

    def see_layout(self):
        """The stripe-everything-everywhere baseline layout."""
        return Layout.see(self.object_names, self.target_names)

    def validate_layout(self, layout):
        """Raise :class:`LayoutError` unless the layout is valid here."""
        layout.check_integrity()
        layout.check_capacity(self.sizes, self.capacities)

    def objects_by_rate(self):
        """Object indices in decreasing total-request-rate order."""
        rates = np.array([w.total_rate for w in self.workloads])
        return list(np.argsort(-rates, kind="stable"))

    def evaluator(self, metrics=None):
        """An :class:`ObjectiveEvaluator` bound to this problem.

        Args:
            metrics: Optional metrics registry forwarded to the
                evaluator's ``repro_evaluator_*`` counters.
        """
        from repro.core.objective import ObjectiveEvaluator

        return ObjectiveEvaluator(self, metrics=metrics)
