"""Randomized-search solver (the paper's §7 DAD alternative).

"To explore its space of potential system configurations and layouts,
DAD uses an ad hoc technique involving an initial bin-packing step
followed by randomized search ... It should be possible to design a
similar randomized search technique to solve the layout problem faced
by our layout advisor — this would be an alternative to the NLP solver
that we used."

This module is that alternative: simulated annealing over layout moves.
It searches the *regular* layout space directly (each move reassigns
one object to a new equal-share target set or shifts fractional mass),
so it can skip the regularization step entirely; the benchmark suite
compares it against the NLP path.
"""

import math
import time

import numpy as np

from repro.core.layout import Layout
from repro.core.solver import SolveResult
from repro.obs import ensure_obs

#: Record one convergence sample at least every this many proposals
#: (accepted moves are always recorded).
_TRAJECTORY_STRIDE = 100


def _random_regular_row(rng, m, upper_row):
    """A random equal-share row over allowed targets."""
    allowed = np.nonzero(upper_row > 0)[0]
    k = int(rng.integers(1, len(allowed) + 1))
    chosen = rng.choice(allowed, size=k, replace=False)
    return Layout.regular_row([int(j) for j in chosen], m)


def _neighbour(rng, matrix, i, utilizations, upper_row):
    """Propose a replacement row for object *i*."""
    m = matrix.shape[1]
    kind = rng.integers(0, 3)
    if kind == 0:
        return _random_regular_row(rng, m, upper_row)
    if kind == 1:
        # Move to the k least-utilized allowed targets.
        allowed = [j for j in range(m) if upper_row[j] > 0]
        order = sorted(allowed, key=lambda j: (utilizations[j], j))
        k = int(rng.integers(1, len(order) + 1))
        return Layout.regular_row(order[:k], m)
    # Swap one member of the current support for a random other target.
    row = matrix[i].copy()
    support = np.nonzero(row > 0)[0]
    others = [j for j in range(m) if row[j] == 0 and upper_row[j] > 0]
    if len(support) == 0 or not others:
        return _random_regular_row(rng, m, upper_row)
    out = int(rng.choice(support))
    into = int(rng.choice(others))
    row[into] = row[out]
    row[out] = 0.0
    return row


def solve_anneal(problem, initial, evaluator=None, iterations=3000,
                 initial_temperature=0.2, seed=0, obs=None, attempt=0):
    """Simulated annealing over per-object layout moves.

    Args:
        problem: The layout problem.
        initial: Starting layout (any valid layout; the greedy initial
            works well).
        iterations: Proposal count.
        initial_temperature: Starting acceptance temperature, as a
            fraction of the initial objective; decays geometrically to
            near-zero.
        seed: RNG seed.
        obs: Optional :class:`~repro.obs.Instrumentation`; records the
            annealing trajectory (every accepted move, plus a sample
            every :data:`_TRAJECTORY_STRIDE` proposals) as a
            ``repro_solver_convergence`` series.
        attempt: Restart index used to label the series.

    Returns:
        A :class:`~repro.core.solver.SolveResult` with
        ``method="anneal"``.
    """
    start = time.perf_counter()
    obs = ensure_obs(obs)
    if evaluator is None:
        evaluator = problem.evaluator(metrics=obs.metrics)
    rng = np.random.default_rng(seed)
    upper, fixed_rows = problem.pinning.resolve(
        problem.object_names, problem.target_names
    )

    matrix = initial.matrix.copy()
    for i, row in fixed_rows.items():
        matrix[i] = row

    current = float(evaluator.utilizations_for(matrix).max())
    best_matrix = matrix.copy()
    best_value = current

    scale = max(current, 1e-9)
    temperature = initial_temperature * scale
    cooling = (1e-3) ** (1.0 / max(iterations, 1))

    movable = [i for i in range(problem.n_objects) if i not in fixed_rows]
    if not movable:
        movable = list(range(problem.n_objects))

    observing = obs.enabled
    series = None
    if observing:
        series = obs.metrics.series("repro_solver_convergence",
                                    attempt=attempt, method="anneal")
        series.record(iteration=0, objective=current, accepted=False)

    assigned = problem.sizes @ matrix
    for proposal in range(iterations):
        i = int(rng.choice(movable))
        utilizations = evaluator.utilizations_for(matrix)
        row = _neighbour(rng, matrix, i, utilizations, upper[i])

        trial_assigned = assigned - problem.sizes[i] * matrix[i] \
            + problem.sizes[i] * row
        if np.any(trial_assigned > problem.capacities * (1 + 1e-9)):
            temperature *= cooling
            continue

        # Incremental single-row probe: only object i and its
        # overlap-coupled peers are re-evaluated.
        value = evaluator.objective_with_row(matrix, i, row)
        accept = value < current or (
            temperature > 0
            and rng.random() < math.exp(-(value - current) / temperature)
        )
        if accept:
            matrix[i] = row
            evaluator.commit_row(i, row)
            current = value
            assigned = trial_assigned
            if value < best_value:
                best_value = value
                best_matrix = matrix.copy()
            if observing:
                series.record(iteration=proposal + 1, objective=current,
                              accepted=True)
        elif observing and (proposal + 1) % _TRAJECTORY_STRIDE == 0:
            series.record(iteration=proposal + 1, objective=current,
                          accepted=False)
        temperature *= cooling

    layout = problem.make_layout(best_matrix)
    problem.validate_layout(layout)
    utilizations = evaluator.utilizations(best_matrix)
    return SolveResult(
        layout=layout,
        objective=float(utilizations.max()),
        utilizations=utilizations,
        method="anneal",
        evaluations=evaluator.evaluations,
        elapsed_s=time.perf_counter() - start,
        success=True,
    )
