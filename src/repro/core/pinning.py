"""Administrative layout constraints.

The paper notes that formulating layout as an explicit NLP "makes it easy
to incorporate additional constraints", e.g. when administrators require
certain objects on particular targets.  :class:`PinningConstraints`
captures the two common cases: restricting an object to a subset of
allowed targets, and fixing an object's layout row entirely.
"""

import numpy as np

from repro.errors import LayoutError


class PinningConstraints:
    """Per-object placement restrictions.

    Args:
        allowed: Mapping from object name to an iterable of target names
            or indices the object may occupy.  Objects not mentioned may
            go anywhere.
        fixed: Mapping from object name to a full fractions row (list of
            M floats summing to 1); these objects are excluded from
            optimization entirely.
    """

    def __init__(self, allowed=None, fixed=None):
        self.allowed = dict(allowed or {})
        self.fixed = dict(fixed or {})

    def is_empty(self):
        return not self.allowed and not self.fixed

    def resolve(self, object_names, target_names):
        """Compile to numeric form for a specific problem instance.

        Returns:
            (upper_bounds, fixed_rows): ``upper_bounds`` is an (N, M)
            array of per-entry upper bounds (0 where a target is
            disallowed, 1 elsewhere); ``fixed_rows`` maps object index to
            its fixed row.
        """
        n, m = len(object_names), len(target_names)
        target_index = {name: j for j, name in enumerate(target_names)}
        upper = np.ones((n, m))

        for obj, targets in self.allowed.items():
            if obj not in object_names:
                raise LayoutError("pinned object %s is not in the problem" % obj)
            i = object_names.index(obj)
            allowed_columns = set()
            for t in targets:
                j = target_index[t] if isinstance(t, str) else int(t)
                allowed_columns.add(j)
            if not allowed_columns:
                raise LayoutError("object %s has an empty allowed set" % obj)
            for j in range(m):
                if j not in allowed_columns:
                    upper[i, j] = 0.0

        fixed_rows = {}
        for obj, row in self.fixed.items():
            if obj not in object_names:
                raise LayoutError("fixed object %s is not in the problem" % obj)
            row = np.asarray(row, dtype=float)
            if row.shape != (m,):
                raise LayoutError(
                    "fixed row for %s has wrong length %d" % (obj, row.size)
                )
            if abs(row.sum() - 1.0) > 1e-6 or np.any(row < 0):
                raise LayoutError("fixed row for %s is not a valid layout row" % obj)
            fixed_rows[object_names.index(obj)] = row

        return upper, fixed_rows

    def permits(self, object_name, target_index, object_names, target_names):
        """True when the object may place a positive share on the target."""
        upper, fixed = self.resolve(object_names, target_names)
        i = object_names.index(object_name)
        if i in fixed:
            return fixed[i][target_index] > 0
        return upper[i, target_index] > 0
