"""NLP solve step (paper Section 4.1).

The paper formulates layout as a non-convex NLP in AMPL and solves it
with MINOS, whose external-function facility hosts the black-box target
cost models.  Here the same program — minimize ``t`` subject to
``µ_j(L) ≤ t``, capacity, integrity, and box constraints — is solved
with SciPy's SLSQP, with the cost-model lookups inside the constraint
functions playing the external-function role.  Because local NLP methods
need tractable dimensionality, large instances (the Figure 19 scaling
workloads) fall back to a block-coordinate search over per-object row
candidates, which the paper's related-work section sketches as the
randomized-search alternative to an NLP solver.
"""

import os
import pickle
import time
from dataclasses import dataclass, replace

import numpy as np
from scipy.optimize import minimize

from repro.errors import SolverError
from repro.core.initial import initial_layout
from repro.core.layout import Layout
from repro.obs import Instrumentation, ensure_obs

#: Instances with more than this many layout variables use the
#: coordinate method under ``method="auto"``.
SLSQP_VARIABLE_LIMIT = 600

#: Instances with more than this many layout variables use the
#: partitioned method under ``method="auto"``: one monolithic
#: block-coordinate pass stops fitting interactive budgets well before
#: the overlap graph stops decomposing.
PARTITIONED_VARIABLE_LIMIT = 8192

#: Entries below this are snapped to zero after the continuous solve.
SNAP_THRESHOLD = 1e-4

#: Problems with fewer layout variables than this never use the process
#: pool: worker startup would dwarf the solve itself.
PARALLEL_MIN_VARIABLES = 64

#: Coordinate search enumerates equal-share candidate rows over the k
#: least-utilized targets for every k up to this; beyond it k follows a
#: geometric ladder so wide fleets (M = 64+) do not pay O(M) candidate
#: evaluations per object step.
DENSE_CANDIDATE_TARGETS = 16


@dataclass
class SolveResult:
    """Outcome of a solve: the layout plus diagnostics."""

    layout: Layout
    objective: float
    utilizations: np.ndarray
    method: str
    evaluations: int
    elapsed_s: float
    success: bool


def _renormalize_row(row, upper):
    """Scale one row to sum one without pushing entries above their caps.

    Dividing the whole row by its sum is only safe when the sum exceeds
    one (entries shrink) or no entry is near its upper bound; scaling a
    short row *up* can push a just-clamped entry back over its cap
    (e.g. ``[0.5, 0.3]`` with caps ``[0.5, 1.0]`` would renormalize to
    ``[0.625, 0.375]``).  Instead the deficit is spread over the entries
    with slack — proportionally to their mass, or to their remaining
    headroom when the slack entries carry no mass — re-clamping and
    repeating as entries hit their caps.
    """
    total = row.sum()
    if total <= 0:
        # A fully-zero row can only appear from pathological inputs;
        # spread it over the allowed targets, headroom-proportionally so
        # fractional caps are respected whenever the caps admit any
        # valid row at all.
        headroom = np.maximum(upper, 0.0)
        if headroom.sum() <= 0:
            return row
        return np.minimum(headroom / headroom.sum(), headroom)
    scaled = row / total
    if np.all(scaled <= upper + 1e-12):
        return scaled
    row = np.minimum(row.copy(), upper)
    clamped_total = row.sum()
    if clamped_total > 1.0:
        # Clamping left a surplus: scaling *down* shrinks every entry,
        # so the result stays under the caps and sums to exactly one.
        return row / clamped_total
    for _ in range(row.size + 1):
        deficit = 1.0 - row.sum()
        if deficit <= 1e-12:
            break
        # Strict headroom test: the old ``row < upper - 1e-12`` marked
        # entries within 1e-12 of their cap as frozen, so a row whose
        # caps are binding yet sum to one (within float tolerance) could
        # exit with a residual deficit spread across those entries.
        head = upper - row
        free = head > 0.0
        if not free.any():
            # Caps sum to less than one: no valid row exists, return the
            # clamped best effort and let layout validation flag it.
            break
        mass = row[free].sum()
        if mass > 0:
            grown = row[free] * (mass + deficit) / mass
        else:
            grown = row[free] + deficit * head[free] / head[free].sum()
        row[free] = np.minimum(grown, upper[free])
    deficit = 1.0 - row.sum()
    if deficit > 1e-12:
        # Mass-proportional growth cannot feed zero-mass entries, and
        # clamping can strand a sub-1e-12 sliver per entry; one exact
        # headroom-proportional water-fill clears any residual whenever
        # the caps admit a full row at all.
        head = np.maximum(upper - row, 0.0)
        if head.sum() > 0.0:
            row = np.minimum(row + deficit * head / head.sum(), upper)
    return row


def _snap(matrix, upper):
    """Zero out dust entries and renormalize rows within pin bounds."""
    matrix = np.where(matrix < SNAP_THRESHOLD, 0.0, matrix)
    matrix = np.minimum(matrix, upper)
    for i in range(matrix.shape[0]):
        matrix[i] = _renormalize_row(matrix[i], upper[i])
    return matrix


def solve_slsqp(problem, initial, evaluator=None, max_iter=150, obs=None,
                attempt=0):
    """Solve the continuous layout NLP with SLSQP.

    Args:
        problem: The layout problem.
        initial: Starting :class:`Layout` (must be valid).
        evaluator: Optional shared
            :class:`~repro.core.objective.ObjectiveEvaluator`.
        max_iter: SLSQP iteration cap.
        obs: Optional :class:`~repro.obs.Instrumentation`; records the
            epigraph-variable trajectory as a
            ``repro_solver_convergence`` series.
        attempt: Restart index used to label the convergence series.
    """
    start = time.perf_counter()
    obs = ensure_obs(obs)
    if evaluator is None:
        evaluator = problem.evaluator(metrics=obs.metrics)
    n, m = problem.n_objects, problem.n_targets
    nm = n * m

    upper, fixed_rows = problem.pinning.resolve(
        problem.object_names, problem.target_names
    )

    x0 = np.concatenate([initial.matrix.ravel(), [0.0]])
    x0[-1] = evaluator.objective(initial.matrix) * 1.05 + 1e-6

    bounds = []
    for i in range(n):
        for j in range(m):
            if i in fixed_rows:
                value = fixed_rows[i][j]
                bounds.append((value, value))
            else:
                bounds.append((0.0, upper[i, j]))
    bounds.append((0.0, None))

    # Integrity: row sums equal one (linear).
    integrity_jac = np.zeros((n, nm + 1))
    for i in range(n):
        integrity_jac[i, i * m:(i + 1) * m] = 1.0

    def integrity_fun(x):
        return x[:nm].reshape(n, m).sum(axis=1) - 1.0

    # Capacity: c_j - Σ_i s_i L_ij >= 0 (linear).
    capacity_jac = np.zeros((m, nm + 1))
    for j in range(m):
        capacity_jac[j, j:nm:m] = -problem.sizes

    def capacity_fun(x):
        layout = x[:nm].reshape(n, m)
        return problem.capacities - problem.sizes @ layout

    # Utilization epigraph: t - µ_j(L) >= 0 (nonlinear, FD jacobian).
    def utilization_fun(x):
        layout = x[:nm].reshape(n, m)
        return x[-1] - evaluator.utilizations(layout)

    constraints = [
        {"type": "eq", "fun": integrity_fun, "jac": lambda x: integrity_jac},
        {"type": "ineq", "fun": capacity_fun, "jac": lambda x: capacity_jac},
        {"type": "ineq", "fun": utilization_fun},
    ]

    objective_jac = np.zeros(nm + 1)
    objective_jac[-1] = 1.0

    callback = None
    if obs.enabled:
        series = obs.metrics.series("repro_solver_convergence",
                                    attempt=attempt, method="slsqp")
        series.record(iteration=0, objective=float(x0[-1]), accepted=False)
        state = {"iteration": 0}

        def callback(xk):
            state["iteration"] += 1
            series.record(iteration=state["iteration"],
                          objective=float(xk[-1]), accepted=True)

    result = minimize(
        lambda x: x[-1],
        x0,
        jac=lambda x: objective_jac,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        callback=callback,
        options={"maxiter": max_iter, "ftol": 1e-6},
    )

    matrix = _snap(result.x[:nm].reshape(n, m), upper)
    layout = problem.make_layout(matrix)
    try:
        problem.validate_layout(layout)
        valid = True
    except Exception:
        valid = False
    if not valid:
        # Fall back to the feasible starting point rather than returning
        # an unusable layout.
        layout = initial.copy()

    utilizations = evaluator.utilizations(layout.matrix)
    return SolveResult(
        layout=layout,
        objective=float(utilizations.max()),
        utilizations=utilizations,
        method="slsqp",
        evaluations=evaluator.evaluations,
        elapsed_s=time.perf_counter() - start,
        success=bool(result.success) and valid,
    )


def _row_candidates(problem, matrix, i, utilizations, upper):
    """Candidate replacement rows for object *i* in coordinate search."""
    m = problem.n_targets
    allowed = [j for j in range(m) if upper[i, j] > 0]
    if not allowed:
        return []

    candidates = []
    # Equal shares over the k least-utilized allowed targets.  Dense in
    # k on narrow fleets; a geometric ladder past
    # DENSE_CANDIDATE_TARGETS keeps the per-object candidate count
    # O(log M) on wide ones.
    by_load = sorted(allowed, key=lambda j: (utilizations[j], j))
    count = len(by_load)
    if count <= DENSE_CANDIDATE_TARGETS:
        widths = range(1, count + 1)
    else:
        widths = list(range(1, DENSE_CANDIDATE_TARGETS + 1))
        k = DENSE_CANDIDATE_TARGETS
        while k < count:
            k = min(count, k * 3 // 2)
            widths.append(k)
    for k in widths:
        candidates.append(Layout.regular_row(by_load[:k], m))

    # Shift part of the row's mass from its most-loaded used target to
    # the least-loaded allowed target.
    row = matrix[i]
    used = [j for j in allowed if row[j] > 0]
    if used:
        worst = max(used, key=lambda j: utilizations[j])
        best = by_load[0]
        if worst != best:
            for delta in (0.25, 0.5, 1.0):
                shifted = row.copy()
                moved = shifted[worst] * delta
                shifted[worst] -= moved
                shifted[best] += moved
                candidates.append(shifted)
    return candidates


def solve_coordinate(problem, initial, evaluator=None, max_rounds=25,
                     obs=None, attempt=0):
    """Block-coordinate descent over per-object row candidates.

    Scales to instances where SLSQP's dense quadratic subproblems become
    impractical; used for the paper's Figure 19 large synthetic
    workloads.

    Args:
        obs: Optional :class:`~repro.obs.Instrumentation`; wraps every
            descent round in a ``solver.round`` span and records the
            ``(iteration, objective, accepted-move)`` trajectory as a
            ``repro_solver_convergence`` series.  The hot loop checks
            ``obs.enabled`` once, so disabled instrumentation costs one
            attribute read per solve.
        attempt: Restart index used to label spans and series.
    """
    start = time.perf_counter()
    obs = ensure_obs(obs)
    if evaluator is None:
        evaluator = problem.evaluator(metrics=obs.metrics)
    upper, fixed_rows = problem.pinning.resolve(
        problem.object_names, problem.target_names
    )

    matrix = initial.matrix.copy()
    for i, row in fixed_rows.items():
        matrix[i] = row

    observing = obs.enabled
    series = None
    current = float(evaluator.utilizations_for(matrix).max())
    if observing:
        series = obs.metrics.series("repro_solver_convergence",
                                    attempt=attempt, method="coordinate")
        series.record(iteration=0, objective=current, accepted=False)
    iteration = 0
    for round_index in range(max_rounds):
        improved = False
        round_span = obs.tracer.start("solver.round", attempt=attempt,
                                      round=round_index) if observing \
            else None
        loads = evaluator.object_loads_for(matrix)
        order = list(np.argsort(-loads, kind="stable"))
        for i in order:
            if i in fixed_rows:
                continue
            iteration += 1
            utilizations = evaluator.utilizations_for(matrix)
            other_bytes = problem.sizes @ matrix - problem.sizes[i] * matrix[i]
            proposed = _row_candidates(problem, matrix, i, utilizations,
                                       upper)
            if not proposed:
                continue
            # One vectorized capacity check over the whole candidate
            # stack (a per-row np.any here dominates profiles on wide
            # fleets).
            stack = np.array(proposed)
            fits = ~np.any(
                other_bytes + problem.sizes[i] * stack
                > problem.capacities * (1 + 1e-9),
                axis=1,
            )
            if not fits.any():
                continue
            candidates = stack[fits]
            # One vectorized incremental pass over every candidate row.
            values = evaluator.evaluate_rows(matrix, i, candidates)
            pick = int(np.argmin(values))
            if values[pick] < current - 1e-9:
                matrix[i] = candidates[pick]
                evaluator.commit_row(i, candidates[pick])
                current = float(values[pick])
                improved = True
                if observing:
                    series.record(iteration=iteration, objective=current,
                                  accepted=True, object=i)
        if observing:
            series.record(iteration=iteration, objective=current,
                          accepted=False, round=round_index)
            obs.tracer.finish(round_span, objective=current,
                              improved=improved)
        if not improved:
            break

    layout = problem.make_layout(matrix)
    problem.validate_layout(layout)
    utilizations = evaluator.utilizations(matrix)
    return SolveResult(
        layout=layout,
        objective=float(utilizations.max()),
        utilizations=utilizations,
        method="coordinate",
        evaluations=evaluator.evaluations,
        elapsed_s=time.perf_counter() - start,
        success=True,
    )


def _portfolio_attempt(problem, start_layout, method, attempt_seed,
                       max_iter, capture=False):
    """Run one restart with its own evaluator (worker-process entry).

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it; each worker builds a private evaluator because the
    incremental µ_ij cache cannot be shared across processes.

    With ``capture=True`` the attempt runs under live instrumentation
    and returns ``{"result", "spans", "metrics", "pid"}`` instead of a
    bare result, so the parent can stitch the worker's span tree into
    its own trace (the registry itself still cannot be shared across
    the process boundary — serialized records can).
    """
    obs = Instrumentation.on() if capture else None
    root = None
    if obs is not None:
        root = obs.tracer.start("portfolio.attempt", method=method,
                                pid=os.getpid())

    def attempt():
        if method == "slsqp":
            return solve_slsqp(problem, start_layout, max_iter=max_iter,
                               obs=obs)
        if method == "anneal":
            from repro.core.anneal import solve_anneal

            return solve_anneal(problem, start_layout, seed=attempt_seed,
                                obs=obs)
        return solve_coordinate(problem, start_layout, obs=obs)

    result = attempt()
    if obs is None:
        return result
    obs.tracer.finish(root, objective=result.objective,
                      method=result.method)
    return {
        "result": result,
        "spans": obs.tracer.to_records(),
        "metrics": obs.metrics.to_records(),
        "pid": os.getpid(),
    }


def _run_portfolio_parallel(problem, starts, method, seed, max_iter,
                            workers, capture=False):
    """Fan the start portfolio out over a process pool.

    Per-restart seeds are assigned deterministically (``seed + attempt``)
    in the parent, so the result is identical to the serial loop
    regardless of worker count.  Returns None when the pool cannot be
    used (unpicklable problem, restricted OS), letting the caller fall
    back to the serial path; solver errors inside an attempt propagate.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(
            max_workers=min(int(workers), len(starts))
        ) as pool:
            futures = [
                pool.submit(_portfolio_attempt, problem, start, method,
                            seed + attempt, max_iter, capture)
                for attempt, start in enumerate(starts)
            ]
            return [future.result() for future in futures]
    except (OSError, BrokenProcessPool, pickle.PicklingError):
        return None


def solve(problem, initial=None, method="auto", restarts=1, seed=0,
          evaluator=None, max_iter=150, expert_layouts=(),
          warm_start=False, workers=1, obs=None):
    """Solve the layout NLP, optionally from multiple starting points.

    Args:
        problem: The layout problem.
        initial: Starting layout; the Section 4.2 greedy layout when
            omitted.  Extra restarts perturb the greedy construction.
        method: ``"slsqp"``, ``"coordinate"``, ``"anneal"``,
            ``"partitioned"``, or ``"auto"`` (pick by problem size:
            SLSQP up to :data:`SLSQP_VARIABLE_LIMIT` variables,
            block-coordinate up to :data:`PARTITIONED_VARIABLE_LIMIT`,
            overlap-graph-partitioned beyond).  ``"partitioned"``
            delegates to :func:`repro.core.partition.solve_partitioned`:
            the restart portfolio runs per partition and
            ``expert_layouts`` are ignored (partition budgets make them
            ill-defined).
        restarts: Number of starting points (Figure 4's repeat loop).
            Restart/seed interaction: attempt 0 starts from ``initial``
            when given (unjittered greedy otherwise); attempts 1..k-1
            re-run the greedy construction with multiplicative jitter
            drawn from ``default_rng(seed)``, so the same seed always
            produces the same start portfolio; stochastic methods
            (``"anneal"``) additionally receive ``seed + attempt``.
        seed: RNG seed for restart jitter.
        expert_layouts: Extra starting layouts supplied by a domain
            expert — the paper notes multiple initial layouts "offer a
            convenient way of introducing the knowledge of domain
            experts into the optimization process".  Each is used as an
            additional restart.
        warm_start: Incremental re-solve mode for online callers.  With
            ``warm_start=True`` (requires ``initial``) the portfolio is
            exactly ``initial`` plus ``expert_layouts``: no greedy
            construction runs and the SEE start is skipped, so a
            near-optimal prior layout is refined rather than rebuilt.
            Requesting ``restarts > 1`` still adds jittered greedy
            starts — an explicit ask for exploration wins over
            warmness.
        workers: Process count for the start portfolio.  With
            ``workers > 1`` the restarts run concurrently in a
            ``ProcessPoolExecutor`` with deterministic per-restart seeds,
            so results match the serial path exactly; ``workers=1`` (the
            default), a single start, or a problem smaller than
            :data:`PARALLEL_MIN_VARIABLES` layout variables run serially.
        obs: Optional :class:`~repro.obs.Instrumentation`.  Each restart
            is wrapped in a ``solver.restart`` span (parallel-portfolio
            restarts are recorded from their reported elapsed time,
            tagged ``parallel``, and carry no convergence series because
            worker processes cannot share the registry), the polish pass
            in ``solver.polish``, and the descent methods record
            per-restart ``repro_solver_convergence`` trajectories.

    Returns:
        The best :class:`SolveResult` across all starting points.

    Raises:
        SolverError: If no restart produced a valid layout, or if
            ``warm_start`` is requested without an ``initial`` layout.
    """
    if warm_start and initial is None:
        raise SolverError("warm_start requires an initial layout")
    obs = ensure_obs(obs)
    if evaluator is None:
        evaluator = problem.evaluator(metrics=obs.metrics)
    variables = problem.n_objects * problem.n_targets
    if method == "auto":
        if variables <= SLSQP_VARIABLE_LIMIT:
            method = "slsqp"
        elif variables <= PARTITIONED_VARIABLE_LIMIT:
            method = "coordinate"
        else:
            method = "partitioned"
    if method == "partitioned":
        from repro.core.partition import solve_partitioned

        return solve_partitioned(
            problem, initial=initial, restarts=restarts, seed=seed,
            evaluator=evaluator, max_iter=max_iter,
            warm_start=warm_start, workers=workers, obs=obs,
        )

    def run(start_layout, attempt_seed, attempt):
        if method == "slsqp":
            return solve_slsqp(problem, start_layout, evaluator=evaluator,
                               max_iter=max_iter, obs=obs, attempt=attempt)
        if method == "anneal":
            from repro.core.anneal import solve_anneal

            return solve_anneal(problem, start_layout, evaluator=evaluator,
                                seed=attempt_seed, obs=obs, attempt=attempt)
        return solve_coordinate(problem, start_layout, evaluator=evaluator,
                                obs=obs, attempt=attempt)

    rng = np.random.default_rng(seed)
    starts = []
    for attempt in range(max(1, restarts)):
        if attempt == 0 and initial is not None:
            starts.append(initial)
        else:
            # attempt > 0 only happens under an explicit restarts > 1,
            # which requests greedy exploration even for warm starts.
            jitter = 0.0 if attempt == 0 else 0.3
            starts.append(initial_layout(problem, rng=rng, jitter=jitter))
    # Local NLP methods get stuck in starting-point-dependent local
    # minima (the paper reports the same of MINOS and repeats the solve
    # from different initial layouts).  SEE, although often itself a
    # local minimum, is a cheap structurally different second start.
    # Warm starts skip it: the prior layout already encodes structure.
    if not warm_start:
        try:
            see = problem.see_layout()
            problem.validate_layout(see)
            starts.append(see)
        except Exception:
            pass
    for expert in expert_layouts:
        problem.validate_layout(expert)
        starts.append(expert)

    best = None
    use_pool = (
        workers is not None and workers > 1 and len(starts) > 1
        and problem.n_objects * problem.n_targets >= PARALLEL_MIN_VARIABLES
    )
    if use_pool:
        raw = _run_portfolio_parallel(problem, starts, method, seed,
                                      max_iter, workers,
                                      capture=obs.tracer.enabled)
        if raw is not None:
            results = [entry["result"] if isinstance(entry, dict)
                       else entry for entry in raw]
            evaluator.evaluations += sum(r.evaluations for r in results)
            for attempt, (entry, result) in enumerate(zip(raw, results)):
                span = obs.tracer.add_span(
                    "solver.restart", result.elapsed_s, attempt=attempt,
                    method=result.method, objective=result.objective,
                    parallel=True,
                )
                if isinstance(entry, dict):
                    # Stitch the worker's captured span tree under this
                    # restart span, anchored at its (backdated) end.
                    grafted = obs.tracer.graft_records(
                        entry["spans"], parent=span, end_at=span.end_s
                    )
                    for remote in grafted:
                        if remote.parent_id == span.span_id:
                            remote.set_tag("pid", entry["pid"])
                    if obs.metrics.enabled:
                        obs.metrics.merge_records(entry["metrics"])
                obs.metrics.counter("repro_solver_restarts_total",
                                    method=result.method).inc()
                if best is None or result.objective < best.objective:
                    best = result
            best = replace(best, evaluations=evaluator.evaluations)
    if best is None:
        for attempt, start_layout in enumerate(starts):
            span = obs.tracer.start("solver.restart", attempt=attempt,
                                    method=method)
            result = run(start_layout, seed + attempt, attempt)
            obs.tracer.finish(span, objective=result.objective,
                              method=result.method, success=result.success)
            obs.metrics.counter("repro_solver_restarts_total",
                                method=result.method).inc()
            if best is None or result.objective < best.objective:
                best = result
        # Serial restarts share one evaluator, and each result snapshots
        # its lifetime counter at that restart's finish — so the best
        # restart's snapshot undercounts whenever a later restart did
        # more work.  Report the same lifetime total the parallel path
        # reports.
        best = replace(best, evaluations=evaluator.evaluations)
    if best is None:
        raise SolverError("no solve attempt produced a layout")

    # Cheap block-coordinate polish: escapes the vertex local optima
    # the continuous method can converge into.
    if method != "coordinate":
        span = obs.tracer.start("solver.polish")
        polished = solve_coordinate(problem, best.layout,
                                    evaluator=evaluator, max_rounds=5,
                                    obs=obs, attempt="polish")
        obs.tracer.finish(span, objective=polished.objective)
        if polished.objective < best.objective - 1e-12:
            best = SolveResult(
                layout=polished.layout,
                objective=polished.objective,
                utilizations=polished.utilizations,
                method=best.method + "+polish",
                evaluations=evaluator.evaluations,
                elapsed_s=best.elapsed_s + polished.elapsed_s,
                success=best.success,
            )
    return best
