"""The layout advisor — the paper's primary contribution.

Pipeline (paper Figure 4): build a valid initial layout, hand the
non-convex minimax program to an NLP solver, and optionally regularize
the solver's fractional layout into equal-share form for layout
mechanisms that only support round-robin striping.
"""

from repro.core.layout import Layout
from repro.core.problem import LayoutProblem, TargetSpec
from repro.core.objective import ObjectiveEvaluator
from repro.core.initial import initial_layout
from repro.core.solver import solve, solve_slsqp, solve_coordinate, SolveResult
from repro.core.anneal import solve_anneal
from repro.core.partition import overlap_partitions, solve_partitioned
from repro.core.robust import RobustProblem, RobustEvaluator
from repro.core.migration import (
    MigrationPlan,
    Move,
    migration_cost_seconds,
    plan_migration,
)
from repro.core.regularize import regularize
from repro.core.pinning import PinningConstraints
from repro.core.advisor import LayoutAdvisor, AdvisorResult

__all__ = [
    "Layout",
    "LayoutProblem",
    "TargetSpec",
    "ObjectiveEvaluator",
    "initial_layout",
    "solve",
    "solve_slsqp",
    "solve_coordinate",
    "solve_anneal",
    "solve_partitioned",
    "overlap_partitions",
    "SolveResult",
    "RobustProblem",
    "RobustEvaluator",
    "MigrationPlan",
    "Move",
    "migration_cost_seconds",
    "plan_migration",
    "regularize",
    "PinningConstraints",
    "LayoutAdvisor",
    "AdvisorResult",
]
