"""The layout advisor: the full Figure-4 pipeline in one call.

``LayoutAdvisor.recommend()`` runs initial-layout construction, the NLP
solve (optionally from several starting points), and — when a regular
layout is requested — the regularization step, and returns every
intermediate stage with its estimated utilizations so callers can
reproduce the paper's Figure 13 stage-by-stage comparison and the
Figure 19 timing breakdown.
"""

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.initial import initial_layout
from repro.core.layout import Layout
from repro.core.regularize import regularize
from repro.core.solver import solve
from repro.core.watchdog import solve_with_watchdog
from repro.obs import ensure_obs


@dataclass
class AdvisorResult:
    """All stages of one advisor run.

    Attributes:
        initial: The Section-4.2 greedy starting layout.
        solver: The (possibly non-regular) NLP solution.
        regular: The regularized layout, or None when regularization was
            not requested.
        utilizations: Estimated µ_j per stage, keyed by stage name
            (``"see"`` is included for comparison, as in Figure 13).
        solver_time_s / regularization_time_s / initial_time_s: Wall
            clock per stage (the paper's Figure 19 columns).
        method: The solve method that produced ``solver``.
        degraded: True when the solve ran under a watchdog budget and a
            fallback rung answered — the layout is valid but weaker
            than an unconstrained solve would give.
        watchdog_rung: Which watchdog rung produced ``solver``
            (``portfolio`` / ``serial`` / ``greedy``; empty when no
            budget was set).
    """

    initial: Layout
    solver: Layout
    regular: Optional[Layout]
    utilizations: Dict[str, np.ndarray] = field(default_factory=dict)
    initial_time_s: float = 0.0
    solver_time_s: float = 0.0
    regularization_time_s: float = 0.0
    method: str = ""
    degraded: bool = False
    watchdog_rung: str = ""

    @property
    def recommended(self):
        """The layout a caller should implement."""
        return self.regular if self.regular is not None else self.solver

    @property
    def total_time_s(self):
        return self.initial_time_s + self.solver_time_s + self.regularization_time_s

    def max_utilization(self, stage):
        return float(np.max(self.utilizations[stage]))

    def to_payload(self):
        """Machine-readable summary of the run.

        The shared JSON shape consumed by ``repro.cli advise --json``,
        the online controller's event log, and the online benchmarks:
        per-object fractions, per-stage max and per-target estimated
        utilizations, solve method, and stage timings.
        """
        layout = self.recommended
        return {
            "layout": layout.fractions_by_name(),
            "targets": list(layout.target_names),
            "objects": list(layout.object_names),
            "max_utilization": {
                stage: float(np.max(values))
                for stage, values in self.utilizations.items()
            },
            "utilizations": {
                stage: {
                    name: float(value)
                    for name, value in zip(layout.target_names, values)
                }
                for stage, values in self.utilizations.items()
            },
            "method": self.method,
            "degraded": self.degraded,
            "watchdog_rung": self.watchdog_rung,
            "initial_time_s": self.initial_time_s,
            "solver_time_s": self.solver_time_s,
            "regularization_time_s": self.regularization_time_s,
            "total_time_s": self.total_time_s,
        }


class LayoutAdvisor:
    """Standalone database storage layout advisor.

    Args:
        problem: The :class:`~repro.core.problem.LayoutProblem` to solve.
        regular: Whether the final layout must be regular (needed when
            the layout mechanism round-robin stripes; see Definition 2).
        restarts: Number of solver starting points (Figure 4 repeat loop).
        method: Solve method, ``"auto"`` / ``"slsqp"`` / ``"coordinate"``
            / ``"anneal"`` / ``"partitioned"``.  ``"partitioned"``
            decomposes the workload overlap graph and solves the pieces
            independently (:mod:`repro.core.partition`) — the scale-out
            path for thousand-object fleets; ``"auto"`` picks it on its
            own above the solver's variable-count threshold.
        seed: RNG seed for restart jitter.
        expert_layouts: Optional domain-expert starting layouts, used as
            extra solver restarts (paper §4.1).
        workers: Process count for the solver's multi-start portfolio;
            ``1`` (the default) keeps every restart in-process, larger
            values fan restarts out over a process pool with
            deterministic per-restart seeds.
        solve_budget_s: Optional wall-clock budget for the solve step.
            When set, the solve runs under
            :func:`~repro.core.watchdog.solve_with_watchdog` and falls
            back portfolio → partitioned → serial → greedy rather than
            overrunning;
            the result's ``degraded`` / ``watchdog_rung`` report which
            rung answered.
        chaos_hook: Optional no-arg callable run at the start of each
            bounded watchdog rung (fault injection for tests and chaos
            runs); ignored without ``solve_budget_s``.
        obs: Optional :class:`~repro.obs.Instrumentation`.  When given,
            the run is wrapped in an ``advise`` root span with
            ``advise.initial`` / ``advise.solve`` / ``advise.regularize``
            children, per-stage objectives land in the
            ``repro_advise_objective`` gauge, and the evaluator/solver
            feed their own metrics.  The default no-op bundle keeps the
            pipeline uninstrumented at zero cost.
    """

    def __init__(self, problem, regular=True, restarts=1, method="auto",
                 seed=0, expert_layouts=(), workers=1, solve_budget_s=None,
                 chaos_hook=None, obs=None):
        self.problem = problem
        self.regular = regular
        self.restarts = restarts
        self.method = method
        self.seed = seed
        self.expert_layouts = tuple(expert_layouts)
        self.workers = workers
        self.solve_budget_s = solve_budget_s
        self.chaos_hook = chaos_hook
        self.obs = ensure_obs(obs)

    def recommend(self):
        """Run the pipeline and return an :class:`AdvisorResult`."""
        problem = self.problem
        obs = self.obs
        root = obs.tracer.start(
            "advise", n_objects=problem.n_objects,
            n_targets=problem.n_targets, method=self.method,
            restarts=self.restarts, regular=self.regular,
        )
        evaluator = problem.evaluator(metrics=obs.metrics)
        utilizations = {
            "see": evaluator.utilizations(problem.see_layout().matrix)
        }

        start = time.perf_counter()
        with obs.tracer.span("advise.initial"):
            start_layout = initial_layout(problem)
        initial_time = time.perf_counter() - start
        utilizations["initial"] = evaluator.utilizations(start_layout.matrix)

        solve_started = time.perf_counter()
        degraded = False
        watchdog_rung = ""
        with obs.tracer.span("advise.solve", restarts=self.restarts,
                             workers=self.workers) as solve_span:
            if self.solve_budget_s is not None:
                watchdog = solve_with_watchdog(
                    problem,
                    initial=start_layout,
                    budget_s=self.solve_budget_s,
                    method=self.method,
                    restarts=self.restarts,
                    seed=self.seed,
                    expert_layouts=self.expert_layouts,
                    workers=self.workers,
                    chaos_hook=self.chaos_hook,
                    obs=obs,
                )
                solve_result = watchdog.result
                degraded = watchdog.degraded
                watchdog_rung = watchdog.rung
                solve_span.set_tag("rung", watchdog.rung)
                solve_span.set_tag("degraded", watchdog.degraded)
            else:
                solve_result = solve(
                    problem,
                    initial=start_layout,
                    method=self.method,
                    restarts=self.restarts,
                    seed=self.seed,
                    evaluator=evaluator,
                    expert_layouts=self.expert_layouts,
                    workers=self.workers,
                    obs=obs,
                )
            solve_span.set_tag("objective", solve_result.objective)
            solve_span.set_tag("method", solve_result.method)
        # Wall time of the whole solve step (all portfolio starts), the
        # quantity the paper's Figure 19 reports — not just the winning
        # attempt's share.
        solve_wall_time = time.perf_counter() - solve_started
        utilizations["solver"] = solve_result.utilizations

        regular_layout = None
        regularization_time = 0.0
        if self.regular:
            start = time.perf_counter()
            with obs.tracer.span("advise.regularize"):
                regular_layout = regularize(problem, solve_result.layout,
                                            evaluator=evaluator, obs=obs)
            regularization_time = time.perf_counter() - start
            utilizations["regular"] = evaluator.utilizations(regular_layout.matrix)

        result = AdvisorResult(
            initial=start_layout,
            solver=solve_result.layout,
            regular=regular_layout,
            utilizations=utilizations,
            initial_time_s=initial_time,
            solver_time_s=solve_wall_time,
            regularization_time_s=regularization_time,
            method=solve_result.method,
            degraded=degraded,
            watchdog_rung=watchdog_rung,
        )
        if obs.enabled:
            for stage, values in utilizations.items():
                obs.metrics.gauge("repro_advise_objective",
                                  stage=stage).set(float(values.max()))
            for stage, seconds in (
                ("initial", initial_time),
                ("solve", solve_wall_time),
                ("regularize", regularization_time),
            ):
                obs.metrics.gauge("repro_advise_stage_seconds",
                                  stage=stage).set(seconds)
        obs.tracer.finish(
            root, method=result.method,
            objective=result.max_utilization(
                "regular" if regular_layout is not None else "solver"
            ),
        )
        return result

    #: ``advise()`` is the operator-facing alias of :meth:`recommend`.
    advise = recommend
