"""Initial layout heuristic (paper Section 4.2).

The paper found SEE a poor starting point (a local minimum MINOS had
trouble escaping), and instead seeds the solver greedily: objects are
placed one at a time in decreasing total-request-rate order, each
assigned entirely to the target with the lowest total assigned request
rate among targets with enough remaining capacity.  The result is
approximately balanced by request rate but ignores interference,
sequentiality, and target performance differences — exactly what the
solver is there to fix.
"""

import numpy as np

from repro.errors import CapacityError
from repro.core.layout import Layout


def initial_layout(problem, rng=None, jitter=0.0):
    """Compute the greedy initial layout for a problem.

    Args:
        problem: The :class:`~repro.core.problem.LayoutProblem`.
        rng: Optional numpy Generator used when ``jitter > 0``.
        jitter: Standard deviation of multiplicative noise applied to the
            tie-breaking load totals.  Multi-start restarts perturb the
            greedy choices this way to give the solver distinct starting
            points, implementing the repeat loop of Figure 4.

    Raises:
        CapacityError: When some object fits on no target.
    """
    n, m = problem.n_objects, problem.n_targets
    matrix = np.zeros((n, m))
    assigned_rate = np.zeros(m)
    remaining = problem.capacities.copy()

    upper, fixed_rows = problem.pinning.resolve(
        problem.object_names, problem.target_names
    )

    # Tie-breaking jitter must be relative to the workload's rate scale:
    # an absolute perturbation would swamp the real load differences of
    # low-rate workloads (and could drive load totals negative), turning
    # perturbed-greedy into a uniformly random assignment.
    rate_scale = max((w.total_rate for w in problem.workloads), default=0.0)
    if rate_scale <= 0:
        rate_scale = 1.0

    for i in problem.objects_by_rate():
        if i in fixed_rows:
            matrix[i] = fixed_rows[i]
            remaining -= problem.sizes[i] * fixed_rows[i]
            assigned_rate += problem.workloads[i].total_rate * fixed_rows[i]
            continue

        candidates = [
            j for j in range(m)
            if remaining[j] >= problem.sizes[i] and upper[i, j] > 0
        ]
        if candidates:
            loads = assigned_rate[candidates]
            if jitter > 0 and rng is not None:
                loads = loads * (1.0 + jitter * rng.standard_normal(len(candidates)))
                # Shuffle exact ties (all-zero loads) with noise small
                # relative to the rate scale, so it breaks ties without
                # reordering genuinely different load totals.
                loads = loads + jitter * 1e-3 * rate_scale \
                    * rng.standard_normal(len(candidates))
            j = candidates[int(np.argmin(loads))]
            matrix[i, j] = 1.0
            remaining[j] -= problem.sizes[i]
            assigned_rate[j] += problem.workloads[i].total_rate
        else:
            # The paper's heuristic places whole objects, which fails
            # when an object is larger than any target's remaining
            # space.  Fall back to splitting it over the least-loaded
            # allowed targets, filling each before moving on.
            _split_across_targets(problem, i, matrix, remaining,
                                  assigned_rate, upper)

    layout = Layout(matrix, problem.object_names, problem.target_names)
    problem.validate_layout(layout)
    return layout


def _split_across_targets(problem, i, matrix, remaining, assigned_rate,
                          upper):
    """Place object *i* fractionally when it fits on no single target."""
    size = problem.sizes[i]
    rate = problem.workloads[i].total_rate
    unplaced = size
    order = sorted(
        (j for j in range(problem.n_targets) if upper[i, j] > 0),
        key=lambda j: (assigned_rate[j], j),
    )
    for j in order:
        if unplaced <= 0:
            break
        share = min(remaining[j], unplaced)
        if share <= 0:
            continue
        fraction = share / size
        matrix[i, j] = fraction
        remaining[j] -= share
        assigned_rate[j] += rate * fraction
        unplaced -= share
    if unplaced > 1e-6:
        raise CapacityError(
            "no combination of targets has room for object %s (%d bytes)"
            % (problem.object_names[i], size)
        )
